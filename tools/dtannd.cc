/**
 * @file
 * dtannd: the campaign service daemon.
 *
 *   dtannd --state-dir /var/tmp/dtannd --listen 127.0.0.1:8437
 *   dtannd --state-dir ./state --listen 127.0.0.1:0 --port-file p
 *
 * Accepts scenario specs over local HTTP (POST /jobs), runs them as
 * queued jobs on one shared worker pool with shared task/netlist
 * caches, and serves status, results, and metrics back; see
 * service/server/http_server.hh for the endpoint table and
 * DESIGN.md §12 for the architecture.
 *
 * Every job is journaled in the state directory, so killing the
 * daemon — even with SIGKILL mid-job — loses nothing: on restart it
 * re-queues unfinished jobs and resumes them bit-identically from
 * their journals. Graceful shutdown is an endpoint (POST /shutdown;
 * drain by default, ?mode=now cancels running jobs), not a signal.
 *
 * With a TCP listen address of port 0 the kernel assigns a port;
 * the resolved address is printed on stdout ("listening on ...")
 * and, with --port-file, published to a file (atomically, so a
 * watcher never reads a partial write).
 *
 * Exit codes: 0 clean shutdown, 1 runtime error, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <unistd.h>

#include "common/logging.hh"
#include "service/server/http_server.hh"

using namespace dtann;

namespace {

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: dtannd --state-dir DIR [options]\n"
        "\n"
        "Campaign service daemon: accepts scenario specs over HTTP,\n"
        "runs them as journaled jobs, serves results and metrics.\n"
        "\n"
        "  --state-dir DIR  job persistence root (required); an\n"
        "                   existing dir resumes its unfinished jobs\n"
        "  --listen ADDR    listen address: \"127.0.0.1:PORT\" (0 =\n"
        "                   ephemeral) or \"unix:/path\"\n"
        "                   (default 127.0.0.1:0)\n"
        "  --threads N      shared worker pool width (default: all\n"
        "                   hardware threads)\n"
        "  --runners N      jobs running concurrently (default 2)\n"
        "  --workers N      shard every job across N dtann_campaign\n"
        "                   worker processes (default 0 = run jobs\n"
        "                   in-process); results are byte-identical\n"
        "                   either way\n"
        "  --worker-bin P   dtann_campaign binary to spawn as shard\n"
        "                   workers (default: next to this binary)\n"
        "  --port-file FILE publish the resolved address to FILE\n");
    return to == stderr ? 2 : 0;
}

/**
 * The sibling dtann_campaign of this dtannd binary — the default
 * shard worker. Resolved via /proc/self/exe so it works no matter
 * what cwd or PATH the daemon was launched with.
 */
std::string
siblingCampaignBinary()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string path(buf);
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return "";
    return path.substr(0, slash + 1) + "dtann_campaign";
}

} // namespace

int
main(int argc, char **argv)
{
    JobQueue::Config cfg;
    std::string listen = "127.0.0.1:0", port_file;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n",
                             flag);
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--state-dir")
            cfg.stateDir = value("--state-dir");
        else if (arg == "--listen")
            listen = value("--listen");
        else if (arg == "--threads")
            cfg.threads =
                (int)std::strtol(value("--threads"), nullptr, 10);
        else if (arg == "--runners")
            cfg.runners =
                (int)std::strtol(value("--runners"), nullptr, 10);
        else if (arg == "--workers")
            cfg.shardWorkers =
                (int)std::strtol(value("--workers"), nullptr, 10);
        else if (arg == "--worker-bin")
            cfg.workerCmd = value("--worker-bin");
        else if (arg == "--port-file")
            port_file = value("--port-file");
        else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(stderr);
        }
    }
    if (cfg.stateDir.empty()) {
        std::fprintf(stderr, "--state-dir is required\n");
        return usage(stderr);
    }
    if (cfg.shardWorkers < 0 || cfg.shardWorkers > 4096) {
        std::fprintf(stderr, "--workers must be in [0, 4096]\n");
        return usage(stderr);
    }
    if (cfg.shardWorkers >= 2) {
        if (cfg.workerCmd.empty())
            cfg.workerCmd = siblingCampaignBinary();
        if (cfg.workerCmd.empty() ||
            ::access(cfg.workerCmd.c_str(), X_OK) != 0) {
            std::fprintf(stderr,
                         "--workers %d needs an executable "
                         "dtann_campaign worker binary ('%s' is "
                         "not); pass one with --worker-bin\n",
                         cfg.shardWorkers, cfg.workerCmd.c_str());
            return usage(stderr);
        }
    }

    try {
        JobQueue queue(cfg);
        CampaignServer server(queue, listen);

        std::printf("listening on %s\n", server.address().c_str());
        std::fflush(stdout);
        if (!port_file.empty()) {
            std::string tmp = port_file + ".tmp";
            {
                std::ofstream out(tmp, std::ios::trunc);
                if (!out)
                    throw std::runtime_error("cannot write '" + tmp +
                                             "'");
                out << server.address() << "\n";
            }
            if (std::rename(tmp.c_str(), port_file.c_str()) != 0)
                throw std::runtime_error("cannot publish '" +
                                         port_file + "'");
        }

        bool cancel_running = server.serve();
        inform("shutting down (%s)",
               cancel_running ? "cancelling running jobs"
                              : "draining running jobs");
        queue.shutdown(cancel_running);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dtannd: %s\n", e.what());
        return 1;
    }
}
