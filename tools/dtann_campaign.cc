/**
 * @file
 * Campaign-as-a-service driver: run any scenario spec, locally or
 * against a dtannd daemon.
 *
 *   dtann_campaign specs/fig10.json
 *   dtann_campaign --builtin mitigation --full
 *   dtann_campaign specs/fig10.json --journal run.jnl --out fig10.json
 *   dtann_campaign --validate specs/fig10.json
 *   dtann_campaign submit --server 127.0.0.1:8437 specs/fig10.json
 *   dtann_campaign result --server 127.0.0.1:8437 3 --out fig10.json
 *
 * The spec (a JSON document, see DESIGN.md and specs/) picks the
 * campaign kind and all of its knobs; DTANN_SEED/DTANN_THREADS act
 * as documented overrides applied in exactly one place
 * (applyEnvOverrides). With --journal, completed cells are
 * checkpointed to a results journal as they finish, and a rerun
 * against the same journal skips them — the final export is
 * bit-identical to an uninterrupted run, so long campaigns survive
 * kills, crashes, and reboots.
 *
 * The subcommands (submit/status/result/cancel/metrics/shutdown)
 * talk to a running dtannd daemon instead of computing locally; the
 * daemon journals every job in its state dir, so the result fetched
 * from it is byte-identical to what the local run path prints.
 *
 * Exit codes (uniform across local and daemon modes):
 *   0  success
 *   1  runtime error (campaign, journal, job failed/cancelled)
 *   2  usage error
 *   3  spec error (parse or validation)
 *   4  file I/O error
 *   5  daemon unreachable or daemon protocol error
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/json.hh"
#include "core/campaign.hh"
#include "service/builtin_specs.hh"
#include "service/client.hh"
#include "service/journal.hh"
#include "service/plan.hh"
#include "service/runner.hh"

using namespace dtann;

namespace {

enum ExitCode {
    kOk = 0,
    kRuntimeError = 1,
    kUsageError = 2,
    kSpecError = 3,
    kIoError = 4,
    kDaemonError = 5,
};

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: dtann_campaign [options] [spec.json]\n"
        "       dtann_campaign submit   --server ADDR spec.json\n"
        "       dtann_campaign status   --server ADDR JOB_ID\n"
        "       dtann_campaign result   --server ADDR JOB_ID [--out F]\n"
        "       dtann_campaign cancel   --server ADDR JOB_ID\n"
        "       dtann_campaign metrics  --server ADDR\n"
        "       dtann_campaign shutdown --server ADDR [--now]\n"
        "\n"
        "Run one campaign described by a scenario spec — locally by\n"
        "default, or on a dtannd daemon via the subcommands.\n"
        "\n"
        "  --builtin NAME  run a built-in spec instead of a file\n"
        "                  (%s)\n"
        "  --full          built-in spec at paper scale "
        "(default: quick)\n"
        "  --validate      dry run: parse and expand the spec, print\n"
        "                  its cell plan, run nothing\n"
        "  --journal FILE  checkpoint finished cells to FILE and\n"
        "                  resume by skipping cells journaled there\n"
        "  --shard K/N     worker mode: compute only the cells whose\n"
        "                  index i has i %% N == K, journaling them to\n"
        "                  --journal (required); no result envelope\n"
        "                  is written. N workers' journals merged and\n"
        "                  replayed reproduce the unsharded result\n"
        "                  byte-identically (dtannd --workers does\n"
        "                  this automatically)\n"
        "  --out FILE      write the result envelope JSON to FILE\n"
        "                  ('-' = stdout, the default)\n"
        "  --progress N    progress heartbeat to stderr every N\n"
        "                  cells (default 50; 0 disables)\n"
        "  --server ADDR   daemon address (\"127.0.0.1:8437\" or\n"
        "                  \"unix:/path\"; default $DTANN_SERVER)\n"
        "  --now           with shutdown: cancel running jobs\n"
        "                  instead of draining them\n"
        "  --list          list built-in spec names and exit\n"
        "\n"
        "Environment overrides (applied after parsing the spec):\n"
        "  DTANN_SEED      overrides the spec's seed\n"
        "  DTANN_THREADS   overrides the spec's worker threads\n"
        "  DTANN_JSON_OUT  also mirror the envelope to this dir\n"
        "  DTANN_SERVER    default --server address\n"
        "\n"
        "Exit codes: 0 success, 1 runtime error, 2 usage, 3 spec\n"
        "error, 4 file I/O error, 5 daemon unreachable/protocol.\n",
        [] {
            static std::string names;
            for (const std::string &n : builtinSpecNames())
                names += (names.empty() ? "" : ", ") + n;
            return names.c_str();
        }());
    return to == stderr ? kUsageError : kOk;
}

/** Map a daemon answer to the uniform exit codes above. */
int
daemonExitCode(const ClientError &e)
{
    if (e.status == 0)
        return kDaemonError; // transport: unreachable/unparseable
    if (e.status == 400)
        return kSpecError; // daemon rejected the spec
    return kRuntimeError;  // job failed/cancelled/unknown etc.
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

bool
writeOut(const std::string &out_path, const std::string &document)
{
    if (out_path == "-") {
        std::printf("%s\n", document.c_str());
        return true;
    }
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return false;
    }
    out << document << "\n";
    return true;
}

/** Print the --validate dry-run report for @p spec. */
int
validateSpec(const ScenarioSpec &spec)
{
    SpecPlan plan = planSpec(spec);
    // Network campaigns name their resolved hardware target; fig5
    // sweeps bare operators and has none.
    std::string backend = spec.backendLabel();
    if (!backend.empty())
        backend = " backend=" + backend;
    std::printf("spec ok: kind=%s name=%s seed=%llu cells=%zu%s\n",
                spec.kind.c_str(), spec.name.c_str(),
                (unsigned long long)spec.runConfig().seed, plan.cells,
                backend.c_str());
    size_t task_w = std::strlen("task"), var_w = std::strlen("variant");
    for (const PlanRow &row : plan.rows) {
        task_w = std::max(task_w, row.task.size());
        var_w = std::max(var_w, row.variant.size());
    }
    std::printf("  %-*s  %-*s  %s\n", (int)task_w, "task", (int)var_w,
                "variant", "reps");
    for (const PlanRow &row : plan.rows)
        std::printf("  %-*s  %-*s  %zu\n", (int)task_w,
                    row.task.c_str(), (int)var_w, row.variant.c_str(),
                    row.reps);
    return kOk;
}

struct Options
{
    std::string command; ///< "" = local run
    std::string spec_path, builtin, journal_path, out_path = "-";
    std::string server;
    std::string job_id;
    bool full = false;
    bool validate = false;
    bool now = false;
    long progress_every = 50;
    int shard_index = 0, shard_count = 1;
};

/** Parse a --shard "K/N" argument; false on malformed input. */
bool
parseShard(const char *arg, int &index, int &count)
{
    char *end = nullptr;
    long k = std::strtol(arg, &end, 10);
    if (end == arg || *end != '/')
        return false;
    const char *rest = end + 1;
    long n = std::strtol(rest, &end, 10);
    if (end == rest || *end != '\0')
        return false;
    if (n < 1 || k < 0 || k >= n || n > 4096)
        return false;
    index = static_cast<int>(k);
    count = static_cast<int>(n);
    return true;
}

int
runDaemonCommand(const Options &opt)
{
    if (opt.server.empty()) {
        std::fprintf(stderr,
                     "%s needs --server ADDR (or $DTANN_SERVER)\n",
                     opt.command.c_str());
        return usage(stderr);
    }
    CampaignClient client(opt.server);
    try {
        if (opt.command == "submit") {
            std::string text;
            if (!readWholeFile(opt.spec_path, text)) {
                std::fprintf(stderr, "cannot read spec '%s'\n",
                             opt.spec_path.c_str());
                return kIoError;
            }
            uint64_t id = client.submit(text);
            // Bare id on stdout: scripts capture it directly.
            std::printf("%llu\n", (unsigned long long)id);
            return kOk;
        }

        uint64_t id = 0;
        if (opt.command == "status" || opt.command == "result" ||
            opt.command == "cancel") {
            if (opt.job_id.empty() ||
                opt.job_id.find_first_not_of("0123456789") !=
                    std::string::npos) {
                std::fprintf(stderr, "%s needs a numeric job id\n",
                             opt.command.c_str());
                return usage(stderr);
            }
            id = std::stoull(opt.job_id);
        }

        if (opt.command == "status") {
            std::printf("%s\n", client.status(id).c_str());
        } else if (opt.command == "result") {
            // The daemon serves its result file verbatim, already
            // newline-terminated exactly like the local run path's
            // --out bytes; write it through untouched.
            std::string body = client.result(id);
            if (body.empty() || body.back() != '\n')
                body += '\n';
            if (opt.out_path == "-") {
                std::fputs(body.c_str(), stdout);
            } else {
                std::ofstream out(opt.out_path,
                                  std::ios::binary | std::ios::trunc);
                if (!out) {
                    std::fprintf(stderr, "cannot write '%s'\n",
                                 opt.out_path.c_str());
                    return kIoError;
                }
                out << body;
            }
        } else if (opt.command == "cancel") {
            client.cancel(id);
            std::fprintf(stderr, "job %llu cancelled\n",
                         (unsigned long long)id);
        } else if (opt.command == "metrics") {
            std::printf("%s\n", client.metrics().c_str());
        } else if (opt.command == "shutdown") {
            client.shutdown(opt.now);
            std::fprintf(stderr, "daemon at %s shutting down (%s)\n",
                         opt.server.c_str(),
                         opt.now ? "now" : "drain");
        }
        return kOk;
    } catch (const ClientError &e) {
        std::fprintf(stderr, "daemon error: %s\n", e.what());
        return daemonExitCode(e);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (const char *server = std::getenv("DTANN_SERVER"))
        opt.server = server;

    int argi = 1;
    if (argi < argc && argv[argi][0] != '-') {
        std::string word = argv[argi];
        if (word == "submit" || word == "status" || word == "result" ||
            word == "cancel" || word == "metrics" ||
            word == "shutdown") {
            opt.command = word;
            ++argi;
        }
    }

    for (int i = argi; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n",
                             flag);
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--list") {
            for (const std::string &n : builtinSpecNames())
                std::printf("%s\n", n.c_str());
            return kOk;
        }
        if (arg == "--builtin")
            opt.builtin = value("--builtin");
        else if (arg == "--full")
            opt.full = true;
        else if (arg == "--validate")
            opt.validate = true;
        else if (arg == "--journal")
            opt.journal_path = value("--journal");
        else if (arg == "--out")
            opt.out_path = value("--out");
        else if (arg == "--server")
            opt.server = value("--server");
        else if (arg == "--now")
            opt.now = true;
        else if (arg == "--progress")
            opt.progress_every =
                std::strtol(value("--progress"), nullptr, 10);
        else if (arg == "--shard") {
            const char *v = value("--shard");
            if (!parseShard(v, opt.shard_index, opt.shard_count)) {
                std::fprintf(stderr,
                             "bad --shard '%s' (expected K/N with "
                             "0 <= K < N)\n",
                             v);
                return usage(stderr);
            }
        }
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(stderr);
        } else if (!opt.command.empty() && opt.command != "submit" &&
                   opt.job_id.empty() && opt.spec_path.empty()) {
            opt.job_id = arg;
        } else if (opt.spec_path.empty()) {
            opt.spec_path = arg;
        } else {
            std::fprintf(stderr, "more than one spec given\n");
            return usage(stderr);
        }
    }

    if (!opt.command.empty()) {
        if (opt.command == "submit" && opt.spec_path.empty()) {
            std::fprintf(stderr, "submit needs a spec file\n");
            return usage(stderr);
        }
        return runDaemonCommand(opt);
    }

    if (opt.spec_path.empty() == opt.builtin.empty()) {
        std::fprintf(stderr,
                     "give exactly one of a spec file or --builtin\n");
        return usage(stderr);
    }

    try {
        ScenarioSpec spec;
        if (!opt.builtin.empty()) {
            spec = builtinSpec(opt.builtin, opt.full);
        } else {
            std::string text;
            if (!readWholeFile(opt.spec_path, text)) {
                std::fprintf(stderr, "cannot read spec '%s'\n",
                             opt.spec_path.c_str());
                return kIoError;
            }
            spec = ScenarioSpec::parse(text);
        }
        applyEnvOverrides(spec);

        if (opt.validate)
            return validateSpec(spec);

        if (opt.shard_count > 1) {
            if (opt.journal_path.empty()) {
                std::fprintf(stderr,
                             "--shard needs --journal FILE (the "
                             "shard's cells are its only output)\n");
                return usage(stderr);
            }
            spec.runConfig().shardIndex = opt.shard_index;
            spec.runConfig().shardCount = opt.shard_count;
        }

        if (opt.progress_every > 0) {
            long every = opt.progress_every;
            spec.runConfig().onCellDone = [every](const CellReport &r) {
                if (r.cellsDone % static_cast<size_t>(every) == 0 ||
                    r.cellsDone == r.cellsTotal)
                    std::fprintf(stderr,
                                 "  [%zu/%zu] %s defects=%d rep=%d\n",
                                 r.cellsDone, r.cellsTotal,
                                 r.task.c_str(), r.defects, r.rep);
            };
        }

        // The journal binds to the spec echo *after* overrides: a
        // different seed or axis set is a different campaign. (The
        // echo normalizes the thread count away — results are
        // bit-identical for any width, so resume may change it.)
        std::unique_ptr<ResultJournal> journal;
        if (!opt.journal_path.empty()) {
            journal = std::make_unique<ResultJournal>(
                opt.journal_path, spec.journalEcho());
            spec.runConfig().journal = journal.get();
            if (journal->resumedCells() > 0)
                std::fprintf(stderr,
                             "resuming: %zu cells journaled in %s\n",
                             journal->resumedCells(),
                             opt.journal_path.c_str());
        }

        ScenarioResult result = runScenario(spec);
        std::fprintf(stderr, "%s: %zu cells done\n",
                     result.name.c_str(), result.cells);

        if (opt.shard_count > 1) {
            // Worker mode: the shard's journal is the product; the
            // in-process accumulation covers only this shard's
            // cells, so the envelope would be misleading.
            std::fprintf(stderr,
                         "shard %d/%d journaled to %s (no envelope "
                         "written)\n",
                         opt.shard_index, opt.shard_count,
                         opt.journal_path.c_str());
            return kOk;
        }
        if (!writeOut(opt.out_path, result.json))
            return kIoError;
        maybeWriteJson(result.name, result.json);
        return kOk;
    } catch (const JsonError &e) {
        std::fprintf(stderr, "spec error: %s\n", e.what());
        return kSpecError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kRuntimeError;
    }
}
