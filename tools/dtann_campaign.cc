/**
 * @file
 * Campaign-as-a-service driver: run any scenario spec.
 *
 *   dtann_campaign specs/fig10.json
 *   dtann_campaign --builtin mitigation --full
 *   dtann_campaign specs/fig10.json --journal run.jnl --out fig10.json
 *
 * The spec (a JSON document, see DESIGN.md and specs/) picks the
 * campaign kind and all of its knobs; DTANN_SEED/DTANN_THREADS act
 * as documented overrides applied in exactly one place
 * (applyEnvOverrides). With --journal, completed cells are
 * checkpointed to a results journal as they finish, and a rerun
 * against the same journal skips them — the final export is
 * bit-identical to an uninterrupted run, so long campaigns survive
 * kills, crashes, and reboots.
 *
 * Exit codes: 0 success, 1 spec/journal/IO error, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/json.hh"
#include "core/campaign.hh"
#include "service/builtin_specs.hh"
#include "service/journal.hh"
#include "service/runner.hh"

using namespace dtann;

namespace {

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: dtann_campaign [options] [spec.json]\n"
        "\n"
        "Run one campaign described by a scenario spec.\n"
        "\n"
        "  --builtin NAME  run a built-in spec instead of a file\n"
        "                  (%s)\n"
        "  --full          built-in spec at paper scale "
        "(default: quick)\n"
        "  --journal FILE  checkpoint finished cells to FILE and\n"
        "                  resume by skipping cells journaled there\n"
        "  --out FILE      write the result envelope JSON to FILE\n"
        "                  ('-' = stdout, the default)\n"
        "  --progress N    progress heartbeat to stderr every N\n"
        "                  cells (default 50; 0 disables)\n"
        "  --list          list built-in spec names and exit\n"
        "\n"
        "Environment overrides (applied after parsing the spec):\n"
        "  DTANN_SEED      overrides the spec's seed\n"
        "  DTANN_THREADS   overrides the spec's worker threads\n"
        "  DTANN_JSON_OUT  also mirror the envelope to this dir\n",
        [] {
            static std::string names;
            for (const std::string &n : builtinSpecNames())
                names += (names.empty() ? "" : ", ") + n;
            return names.c_str();
        }());
    return to == stderr ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec_path, builtin, journal_path, out_path = "-";
    bool full = false;
    long progress_every = 50;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n",
                             flag);
                std::exit(usage(stderr));
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--list") {
            for (const std::string &n : builtinSpecNames())
                std::printf("%s\n", n.c_str());
            return 0;
        }
        if (arg == "--builtin")
            builtin = value("--builtin");
        else if (arg == "--full")
            full = true;
        else if (arg == "--journal")
            journal_path = value("--journal");
        else if (arg == "--out")
            out_path = value("--out");
        else if (arg == "--progress")
            progress_every = std::strtol(value("--progress"), nullptr, 10);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(stderr);
        } else if (spec_path.empty())
            spec_path = arg;
        else {
            std::fprintf(stderr, "more than one spec given\n");
            return usage(stderr);
        }
    }
    if (spec_path.empty() == builtin.empty()) {
        std::fprintf(stderr,
                     "give exactly one of a spec file or --builtin\n");
        return usage(stderr);
    }

    try {
        ScenarioSpec spec;
        if (!builtin.empty()) {
            spec = builtinSpec(builtin, full);
        } else {
            std::ifstream in(spec_path);
            if (!in) {
                std::fprintf(stderr, "cannot read spec '%s'\n",
                             spec_path.c_str());
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            spec = ScenarioSpec::parse(text.str());
        }
        applyEnvOverrides(spec);

        if (progress_every > 0)
            spec.runConfig().onCellDone = [=](const CellReport &r) {
                if (r.cellsDone % static_cast<size_t>(progress_every) ==
                        0 ||
                    r.cellsDone == r.cellsTotal)
                    std::fprintf(stderr,
                                 "  [%zu/%zu] %s defects=%d rep=%d\n",
                                 r.cellsDone, r.cellsTotal,
                                 r.task.c_str(), r.defects, r.rep);
            };

        // The journal binds to the spec echo *after* overrides: a
        // different seed or axis set is a different campaign. (The
        // echo normalizes the thread count away — results are
        // bit-identical for any width, so resume may change it.)
        std::unique_ptr<ResultJournal> journal;
        if (!journal_path.empty()) {
            journal = std::make_unique<ResultJournal>(
                journal_path, spec.journalEcho());
            spec.runConfig().journal = journal.get();
            if (journal->resumedCells() > 0)
                std::fprintf(stderr,
                             "resuming: %zu cells journaled in %s\n",
                             journal->resumedCells(),
                             journal_path.c_str());
        }

        ScenarioResult result = runScenario(spec);
        std::fprintf(stderr, "%s: %zu cells done\n",
                     result.name.c_str(), result.cells);

        if (out_path == "-") {
            std::printf("%s\n", result.json.c_str());
        } else {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             out_path.c_str());
                return 1;
            }
            out << result.json << "\n";
        }
        maybeWriteJson(result.name, result.json);
        return 0;
    } catch (const JsonError &e) {
        std::fprintf(stderr, "spec error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
