/**
 * @file
 * bench_compare: diff two google-benchmark JSON envelopes.
 *
 *   bench_compare BASELINE.json CURRENT.json [--tolerance F]
 *
 * Matches benchmarks by name, prints a speedup table (baseline time
 * over current time, so > 1 is faster than the baseline), and fails
 * when any benchmark regressed beyond the tolerance: current time
 * above baseline * (1 + F), default F = 0.5. Only plain iteration
 * runs are compared (aggregate rows are skipped), and only names
 * present in both files count — a new benchmark has no baseline to
 * regress against.
 *
 * Comparing across build types is meaningless (a debug run is not a
 * regression of a Release baseline), so when the two envelopes
 * record different "dtann_build_type" contexts the tool explains
 * that and exits 77 — ctest's SKIP_RETURN_CODE, turning the
 * perf-smoke comparison into a skip instead of a false alarm.
 *
 * Exit codes: 0 within tolerance, 1 regression, 2 usage or
 * unreadable input, 77 build-type mismatch (skip).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

using namespace dtann;

namespace {

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: bench_compare BASELINE.json CURRENT.json "
        "[--tolerance F]\n"
        "\n"
        "Compare two google-benchmark JSON envelopes; fail (exit 1)\n"
        "when a benchmark in CURRENT is slower than BASELINE by\n"
        "more than the tolerance fraction (default 0.5). Exits 77\n"
        "when the envelopes record different dtann build types.\n");
    return to == stderr ? 2 : 0;
}

struct Run
{
    double realTime = 0.0;
    std::string timeUnit;
};

struct Envelope
{
    std::string buildType; ///< context.dtann_build_type ("" if absent)
    std::map<std::string, Run> runs;
};

Envelope
loadEnvelope(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream body;
    body << in.rdbuf();
    JsonValue v = jsonParse(body.str());

    Envelope env;
    if (const JsonValue *ctx = v.find("context"))
        if (const JsonValue *bt = ctx->find("dtann_build_type"))
            env.buildType = bt->asString();
    const JsonValue *benches = v.find("benchmarks");
    if (!benches)
        throw std::runtime_error("'" + path +
                                 "' has no \"benchmarks\" array");
    for (const JsonValue &b : benches->items()) {
        // Aggregates (mean/median/stddev rows of repeated runs)
        // would double-count; compare plain iteration runs only.
        if (const JsonValue *rt = b.find("run_type"))
            if (rt->asString() != "iteration")
                continue;
        Run run;
        run.realTime = b.at("real_time").asNumber();
        if (const JsonValue *u = b.find("time_unit"))
            run.timeUnit = u->asString();
        env.runs[b.at("name").asString()] = run;
    }
    return env;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string basePath, curPath;
    double tolerance = 0.5;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--tolerance requires an argument\n");
                return usage(stderr);
            }
            char *end = nullptr;
            tolerance = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || tolerance < 0) {
                std::fprintf(stderr, "bad tolerance '%s'\n", argv[i]);
                return usage(stderr);
            }
        } else if (basePath.empty())
            basePath = arg;
        else if (curPath.empty())
            curPath = arg;
        else {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (basePath.empty() || curPath.empty())
        return usage(stderr);

    Envelope base, cur;
    try {
        base = loadEnvelope(basePath);
        cur = loadEnvelope(curPath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_compare: %s\n", e.what());
        return 2;
    }

    if (base.buildType != cur.buildType) {
        std::fprintf(
            stderr,
            "bench_compare: build types differ (baseline '%s' vs "
            "current '%s'); timings are not comparable — skipping\n",
            base.buildType.empty() ? "unrecorded"
                                   : base.buildType.c_str(),
            cur.buildType.empty() ? "unrecorded"
                                  : cur.buildType.c_str());
        return 77;
    }

    std::printf("%-48s %14s %14s %9s\n", "benchmark",
                "baseline", "current", "speedup");
    size_t compared = 0;
    std::vector<std::string> regressions;
    for (const auto &kv : cur.runs) {
        auto it = base.runs.find(kv.first);
        if (it == base.runs.end())
            continue;
        const Run &b = it->second, &c = kv.second;
        if (!b.timeUnit.empty() && !c.timeUnit.empty() &&
            b.timeUnit != c.timeUnit) {
            std::printf("%-48s  (time units differ: %s vs %s)\n",
                        kv.first.c_str(), b.timeUnit.c_str(),
                        c.timeUnit.c_str());
            continue;
        }
        ++compared;
        double speedup =
            c.realTime > 0 ? b.realTime / c.realTime : 0.0;
        bool regressed =
            c.realTime > b.realTime * (1.0 + tolerance);
        std::printf("%-48s %12.1f%s %12.1f%s %8.2fx%s\n",
                    kv.first.c_str(), b.realTime,
                    b.timeUnit.c_str(), c.realTime,
                    c.timeUnit.c_str(), speedup,
                    regressed ? "  REGRESSED" : "");
        if (regressed)
            regressions.push_back(kv.first);
    }
    std::printf("%zu benchmark(s) compared, tolerance %.0f%%\n",
                compared, 100.0 * tolerance);
    if (!regressions.empty()) {
        std::fprintf(stderr,
                     "bench_compare: %zu benchmark(s) regressed "
                     "beyond tolerance:\n",
                     regressions.size());
        for (const std::string &name : regressions)
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }
    return 0;
}
