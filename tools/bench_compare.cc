/**
 * @file
 * bench_compare: diff two google-benchmark JSON envelopes, or two
 * campaign result envelopes (the {"kind", "config", "results"}
 * objects dtann_campaign and the benches export).
 *
 *   bench_compare BASELINE.json CURRENT.json [--tolerance F]
 *
 * Benchmark mode matches benchmarks by name, prints a speedup table
 * (baseline time over current time, so > 1 is faster than the
 * baseline), and fails when any benchmark regressed beyond the
 * tolerance: current time above baseline * (1 + F), default
 * F = 0.5. Only plain iteration runs are compared (aggregate rows
 * are skipped), and only names present in both files count — a new
 * benchmark has no baseline to regress against.
 *
 * Campaign mode is selected automatically when both inputs are
 * campaign envelopes. It matches result curves by figure, task and
 * strategy, and reports per-point accuracy deltas plus the
 * mitigation Pareto movement (pareto accuracy, area/energy
 * overhead). Campaign numbers are deterministic measurements, not
 * timings, so this mode is informational: it always exits 0 (added
 * or removed curves are listed, mirroring the no-baseline rule
 * above) and never trips the perf-smoke gate.
 *
 * Comparing across build types is meaningless for timings (a debug
 * run is not a regression of a Release baseline), so when two
 * benchmark envelopes record different "dtann_build_type" contexts
 * the tool explains that and exits 77 — ctest's SKIP_RETURN_CODE,
 * turning the perf-smoke comparison into a skip instead of a false
 * alarm.
 *
 * Exit codes: 0 within tolerance (always, in campaign mode),
 * 1 regression, 2 usage or unreadable/mismatched input, 77
 * build-type mismatch (skip).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

using namespace dtann;

namespace {

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: bench_compare BASELINE.json CURRENT.json "
        "[--tolerance F]\n"
        "\n"
        "Compare two google-benchmark JSON envelopes; fail (exit 1)\n"
        "when a benchmark in CURRENT is slower than BASELINE by\n"
        "more than the tolerance fraction (default 0.5). Exits 77\n"
        "when the envelopes record different dtann build types.\n"
        "\n"
        "When both files are campaign envelopes (dtann_campaign /\n"
        "bench JSON exports) the tool diffs result curves instead:\n"
        "per-point accuracy deltas and Pareto movement, always\n"
        "exit 0 (informational).\n");
    return to == stderr ? 2 : 0;
}

struct Run
{
    double realTime = 0.0;
    std::string timeUnit;
};

struct Envelope
{
    std::string buildType; ///< context.dtann_build_type ("" if absent)
    std::map<std::string, Run> runs;
};

JsonValue
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream body;
    body << in.rdbuf();
    return jsonParse(body.str());
}

/** A campaign envelope carries "kind" + "results" instead of the
 *  google-benchmark "benchmarks" array. */
bool
isCampaignEnvelope(const JsonValue &v)
{
    return v.find("benchmarks") == nullptr &&
        v.find("kind") != nullptr && v.find("results") != nullptr;
}

Envelope
loadEnvelope(const std::string &path, const JsonValue &v)
{
    Envelope env;
    if (const JsonValue *ctx = v.find("context"))
        if (const JsonValue *bt = ctx->find("dtann_build_type"))
            env.buildType = bt->asString();
    const JsonValue *benches = v.find("benchmarks");
    if (!benches)
        throw std::runtime_error("'" + path +
                                 "' has no \"benchmarks\" array");
    for (const JsonValue &b : benches->items()) {
        // Aggregates (mean/median/stddev rows of repeated runs)
        // would double-count; compare plain iteration runs only.
        if (const JsonValue *rt = b.find("run_type"))
            if (rt->asString() != "iteration")
                continue;
        Run run;
        run.realTime = b.at("real_time").asNumber();
        if (const JsonValue *u = b.find("time_unit"))
            run.timeUnit = u->asString();
        env.runs[b.at("name").asString()] = run;
    }
    return env;
}

/** One campaign result curve, reduced to comparable numbers. */
struct CurveData
{
    std::map<double, double> accuracy; ///< x (defects/amplitude) -> mean
    bool hasPareto = false;
    double paretoAcc = 0.0;
    double areaOvh = 0.0;
    double energyOvh = 0.0;
};

/**
 * Flatten a campaign envelope's curves, keyed "figure task[:strategy]"
 * — the same identity the campaign layer uses to order them. Points
 * use whichever x coordinate the figure carries (defect counts, or
 * amplitude bins for fig11).
 */
std::map<std::string, CurveData>
loadCurves(const JsonValue &v)
{
    std::map<std::string, CurveData> curves;
    for (const JsonValue &c : v.at("results").items()) {
        std::string key;
        if (const JsonValue *fig = c.find("figure"))
            key = fig->asString();
        if (const JsonValue *task = c.find("task"))
            key += (key.empty() ? "" : " ") + task->asString();
        if (const JsonValue *strat = c.find("strategy"))
            key += ":" + strat->asString();

        CurveData data;
        const JsonValue *points = c.find("points");
        if (points == nullptr)
            points = c.find("bins");
        if (points != nullptr)
            for (const JsonValue &p : points->items()) {
                const JsonValue *x = p.find("defects");
                if (x == nullptr)
                    x = p.find("amplitude");
                const JsonValue *acc = p.find("accuracy");
                if (x != nullptr && acc != nullptr)
                    data.accuracy[x->asNumber()] = acc->asNumber();
            }
        if (const JsonValue *pareto = c.find("pareto")) {
            data.hasPareto = true;
            data.paretoAcc = pareto->at("accuracy").asNumber();
            data.areaOvh = pareto->at("area_overhead").asNumber();
            data.energyOvh = pareto->at("energy_overhead").asNumber();
        }
        curves[key] = data;
    }
    return curves;
}

/** Hardware-backend name of an envelope's config. Pre-backend
 *  envelopes (and fig5, whose config has no backend field) read as
 *  the implicit "spatial". */
std::string
envelopeBackend(const JsonValue &v)
{
    if (const JsonValue *config = v.find("config"))
        if (const JsonValue *backend = config->find("backend"))
            return backend->asString();
    return "spatial";
}

/** Informational diff of two campaign envelopes; always returns 0
 *  (2 when the envelopes target different hardware backends —
 *  accuracy deltas between backends are architecture differences,
 *  not regressions, so the diff would mislead). */
int
compareCampaigns(const JsonValue &base, const JsonValue &cur)
{
    std::string base_backend = envelopeBackend(base);
    std::string cur_backend = envelopeBackend(cur);
    if (base_backend != cur_backend) {
        std::fprintf(stderr,
                     "cannot compare campaign envelopes across "
                     "hardware backends (baseline is '%s', current "
                     "is '%s'): their accuracy deltas reflect the "
                     "architecture change, not a regression. Rerun "
                     "both campaigns on the same backend to "
                     "compare.\n",
                     base_backend.c_str(), cur_backend.c_str());
        return 2;
    }
    std::map<std::string, CurveData> b = loadCurves(base);
    std::map<std::string, CurveData> c = loadCurves(cur);

    std::printf("campaign envelope diff (kind \"%s\", "
                "informational)\n",
                cur.at("kind").asString().c_str());
    std::printf("%-40s %9s %9s %12s\n", "curve", "points",
                "max |da|", "pareto da");
    size_t compared = 0;
    for (const auto &kv : c) {
        auto it = b.find(kv.first);
        if (it == b.end()) {
            std::printf("%-40s  (new curve, no baseline)\n",
                        kv.first.c_str());
            continue;
        }
        ++compared;
        const CurveData &bd = it->second, &cd = kv.second;
        double max_delta = 0.0;
        size_t matched = 0;
        for (const auto &pt : cd.accuracy) {
            auto bp = bd.accuracy.find(pt.first);
            if (bp == bd.accuracy.end())
                continue;
            ++matched;
            max_delta = std::max(max_delta,
                                 std::abs(pt.second - bp->second));
        }
        if (cd.hasPareto && bd.hasPareto) {
            std::printf("%-40s %9zu %9.4f %+12.4f\n",
                        kv.first.c_str(), matched, max_delta,
                        cd.paretoAcc - bd.paretoAcc);
            if (cd.areaOvh != bd.areaOvh ||
                cd.energyOvh != bd.energyOvh)
                std::printf("%-40s   cost moved: area %+0.4f, "
                            "energy %+0.4f\n",
                            "", cd.areaOvh - bd.areaOvh,
                            cd.energyOvh - bd.energyOvh);
        } else {
            std::printf("%-40s %9zu %9.4f %12s\n", kv.first.c_str(),
                        matched, max_delta, "-");
        }
    }
    for (const auto &kv : b)
        if (c.find(kv.first) == c.end())
            std::printf("%-40s  (removed, baseline only)\n",
                        kv.first.c_str());
    std::printf("%zu curve(s) compared\n", compared);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string basePath, curPath;
    double tolerance = 0.5;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(stdout);
        if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--tolerance requires an argument\n");
                return usage(stderr);
            }
            char *end = nullptr;
            tolerance = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || tolerance < 0) {
                std::fprintf(stderr, "bad tolerance '%s'\n", argv[i]);
                return usage(stderr);
            }
        } else if (basePath.empty())
            basePath = arg;
        else if (curPath.empty())
            curPath = arg;
        else {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         arg.c_str());
            return usage(stderr);
        }
    }
    if (basePath.empty() || curPath.empty())
        return usage(stderr);

    Envelope base, cur;
    try {
        JsonValue baseJson = loadJson(basePath);
        JsonValue curJson = loadJson(curPath);
        bool baseCampaign = isCampaignEnvelope(baseJson);
        bool curCampaign = isCampaignEnvelope(curJson);
        if (baseCampaign != curCampaign)
            throw std::runtime_error(
                "cannot mix a campaign envelope with a benchmark "
                "envelope");
        if (baseCampaign) {
            std::string bk = baseJson.at("kind").asString();
            std::string ck = curJson.at("kind").asString();
            if (bk != ck)
                throw std::runtime_error(
                    "campaign kinds differ ('" + bk + "' vs '" + ck +
                    "')");
            return compareCampaigns(baseJson, curJson);
        }
        base = loadEnvelope(basePath, baseJson);
        cur = loadEnvelope(curPath, curJson);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_compare: %s\n", e.what());
        return 2;
    }

    if (base.buildType != cur.buildType) {
        std::fprintf(
            stderr,
            "bench_compare: build types differ (baseline '%s' vs "
            "current '%s'); timings are not comparable — skipping\n",
            base.buildType.empty() ? "unrecorded"
                                   : base.buildType.c_str(),
            cur.buildType.empty() ? "unrecorded"
                                  : cur.buildType.c_str());
        return 77;
    }

    std::printf("%-48s %14s %14s %9s\n", "benchmark",
                "baseline", "current", "speedup");
    size_t compared = 0;
    std::vector<std::string> regressions;
    for (const auto &kv : cur.runs) {
        auto it = base.runs.find(kv.first);
        if (it == base.runs.end())
            continue;
        const Run &b = it->second, &c = kv.second;
        if (!b.timeUnit.empty() && !c.timeUnit.empty() &&
            b.timeUnit != c.timeUnit) {
            std::printf("%-48s  (time units differ: %s vs %s)\n",
                        kv.first.c_str(), b.timeUnit.c_str(),
                        c.timeUnit.c_str());
            continue;
        }
        ++compared;
        double speedup =
            c.realTime > 0 ? b.realTime / c.realTime : 0.0;
        bool regressed =
            c.realTime > b.realTime * (1.0 + tolerance);
        std::printf("%-48s %12.1f%s %12.1f%s %8.2fx%s\n",
                    kv.first.c_str(), b.realTime,
                    b.timeUnit.c_str(), c.realTime,
                    c.timeUnit.c_str(), speedup,
                    regressed ? "  REGRESSED" : "");
        if (regressed)
            regressions.push_back(kv.first);
    }
    std::printf("%zu benchmark(s) compared, tolerance %.0f%%\n",
                compared, 100.0 * tolerance);
    if (!regressions.empty()) {
        std::fprintf(stderr,
                     "bench_compare: %zu benchmark(s) regressed "
                     "beyond tolerance:\n",
                     regressions.size());
        for (const std::string &name : regressions)
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }
    return 0;
}
