#include "mitigate/remap.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

std::vector<int>
planOutputRemap(const DefectMap &map, MlpTopology logical,
                const AcceleratorConfig &cfg)
{
    std::vector<int> bad = map.suspectNeurons(Layer::Output);
    auto row_faulty = [&](int row) {
        return std::binary_search(bad.begin(), bad.end(), row);
    };

    std::vector<int> assignment(static_cast<size_t>(logical.outputs));
    int next_spare = logical.outputs;
    for (int k = 0; k < logical.outputs; ++k) {
        assignment[static_cast<size_t>(k)] = k;
        if (!row_faulty(k))
            continue;
        // Find the next clean spare row.
        while (next_spare < cfg.outputs && row_faulty(next_spare))
            ++next_spare;
        if (next_spare < cfg.outputs)
            assignment[static_cast<size_t>(k)] = next_spare++;
        // else: out of spares, keep the faulty row.
    }
    return assignment;
}

MlpTopology
RemappedOutputMlp::extendedTopology(MlpTopology logical,
                                    const AcceleratorConfig &cfg)
{
    return {logical.inputs, logical.hidden, cfg.outputs};
}

RemappedOutputMlp::RemappedOutputMlp(Accelerator &a,
                                     MlpTopology logical_topo,
                                     std::vector<int> row_map)
    : accel(a), logical(logical_topo), map(std::move(row_map))
{
    dtann_assert(accel.topology() ==
                     extendedTopology(logical, accel.config()),
                 "accelerator must be mapped with the extended "
                 "topology (use extendedTopology())");
    dtann_assert(static_cast<int>(map.size()) == logical.outputs,
                 "row map arity mismatch");
    std::vector<int> sorted = map;
    std::sort(sorted.begin(), sorted.end());
    dtann_assert(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "row map assigns one physical row twice");
    for (int row : map)
        dtann_assert(row >= 0 && row < accel.config().outputs,
                     "row map out of physical range");
}

int
RemappedOutputMlp::remappedCount() const
{
    int n = 0;
    for (size_t k = 0; k < map.size(); ++k)
        n += map[k] != static_cast<int>(k);
    return n;
}

void
RemappedOutputMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    MlpTopology extended = extendedTopology(logical, accel.config());
    MlpWeights steered(extended);
    for (int j = 0; j < logical.hidden; ++j)
        for (int i = 0; i <= logical.inputs; ++i)
            steered.hid(j, i) = w.hid(j, i);
    for (int k = 0; k < logical.outputs; ++k)
        for (int j = 0; j <= logical.hidden; ++j)
            steered.out(map[static_cast<size_t>(k)], j) = w.out(k, j);
    accel.setWeights(steered);
}

Activations
RemappedOutputMlp::forward(std::span<const double> input)
{
    Activations phys = accel.forward(input);
    Activations act;
    act.layers.resize(2);
    act.hidden().assign(phys.hidden().begin(),
                        phys.hidden().begin() + logical.hidden);
    act.output().resize(static_cast<size_t>(logical.outputs));
    for (int k = 0; k < logical.outputs; ++k)
        act.output()[static_cast<size_t>(k)] = phys.output()[
            static_cast<size_t>(map[static_cast<size_t>(k)])];
    return act;
}

std::vector<Activations>
RemappedOutputMlp::forwardBatch(std::span<const std::vector<double>> inputs)
{
    std::vector<Activations> phys = accel.forwardBatch(inputs);
    std::vector<Activations> acts(phys.size());
    for (size_t r = 0; r < phys.size(); ++r) {
        Activations &act = acts[r];
        act.layers.resize(2);
        act.hidden().assign(phys[r].hidden().begin(),
                            phys[r].hidden().begin() + logical.hidden);
        act.output().resize(static_cast<size_t>(logical.outputs));
        for (int k = 0; k < logical.outputs; ++k)
            act.output()[static_cast<size_t>(k)] = phys[r].output()[
                static_cast<size_t>(map[static_cast<size_t>(k)])];
    }
    return acts;
}

} // namespace dtann
