#include "mitigate/mitigator.hh"

#include "ann/crossval.hh"
#include "common/logging.hh"
#include "mitigate/remap.hh"

namespace dtann {

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::NoOp: return "noop";
      case Strategy::RetrainOnly: return "retrain";
      case Strategy::BypassFaulty: return "bypass";
      case Strategy::RemapToSpares: return "remap";
    }
    panic("bad strategy");
}

bool
strategyFromName(const std::string &name, Strategy &out)
{
    for (Strategy s : {Strategy::NoOp, Strategy::RetrainOnly,
                       Strategy::BypassFaulty,
                       Strategy::RemapToSpares}) {
        if (name == strategyName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

namespace {

/** Retrain through @p model and cross-validate (shared tail). */
double
retrainedAccuracy(ForwardModel &model, const MitigationSetup &setup,
                  Rng &rng)
{
    Trainer retrainer(setup.retrain);
    return crossValidate(model, setup.ds, setup.folds, retrainer, rng,
                         &setup.baseline)
        .meanAccuracy;
}

class NoOpMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::NoOp; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(Accelerator &)> &inject,
        Rng &) override
    {
        Accelerator accel(setup.array, setup.logical);
        inject(accel);
        accel.setWeights(setup.baseline);
        MitigationOutcome out;
        out.accuracy = evalAccuracy(accel, setup.ds);
        out.sim = accel.simCounters();
        return out;
    }
};

class RetrainOnlyMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::RetrainOnly; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(Accelerator &)> &inject,
        Rng &rng) override
    {
        Accelerator accel(setup.array, setup.logical);
        inject(accel);
        MitigationOutcome out;
        out.accuracy = retrainedAccuracy(accel, setup, rng);
        out.sim = accel.simCounters();
        return out;
    }
};

class BypassFaultyMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::BypassFaulty; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(Accelerator &)> &inject,
        Rng &rng) override
    {
        Accelerator accel(setup.array, setup.logical);
        inject(accel);

        DefectMap map;
        DiagnosisReport report = diagnose(accel, setup.bist, rng, &map);
        for (const UnitSite &s : map.suspects()) {
            // An output-layer activation cannot be disconnected —
            // its class would never be predicted — so retraining
            // has to cope with those (the Fig 11 weak spot that
            // RemapToSpares addresses instead).
            if (s.layer == Layer::Output &&
                s.kind == UnitKind::Activation)
                continue;
            accel.bypassUnit(s);
        }

        MitigationOutcome out;
        out.coverage = report.coverage();
        out.diagnosed = static_cast<int>(map.size());
        out.mitigatedUnits =
            static_cast<int>(accel.bypassedSites().size());
        out.accuracy = retrainedAccuracy(accel, setup, rng);
        out.sim = accel.simCounters();
        return out;
    }
};

class RemapToSparesMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::RemapToSpares; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(Accelerator &)> &inject,
        Rng &rng) override
    {
        // Map the array with every physical output row addressable
        // so spare rows can take over diagnosed-faulty ones.
        Accelerator accel(setup.array,
                          RemappedOutputMlp::extendedTopology(
                              setup.logical, setup.array));
        inject(accel);

        DefectMap map;
        DiagnosisReport report = diagnose(accel, setup.bist, rng, &map);
        RemappedOutputMlp remapped(
            accel, setup.logical,
            planOutputRemap(map, setup.logical, setup.array));

        MitigationOutcome out;
        out.coverage = report.coverage();
        out.diagnosed = static_cast<int>(map.size());
        out.mitigatedUnits = remapped.remappedCount();
        out.accuracy = retrainedAccuracy(remapped, setup, rng);
        out.sim = accel.simCounters();
        return out;
    }
};

} // namespace

std::unique_ptr<Mitigator>
makeMitigator(Strategy s)
{
    switch (s) {
      case Strategy::NoOp:
        return std::make_unique<NoOpMitigator>();
      case Strategy::RetrainOnly:
        return std::make_unique<RetrainOnlyMitigator>();
      case Strategy::BypassFaulty:
        return std::make_unique<BypassFaultyMitigator>();
      case Strategy::RemapToSpares:
        return std::make_unique<RemapToSparesMitigator>();
    }
    panic("bad strategy");
}

} // namespace dtann
