#include "mitigate/mitigator.hh"

#include <algorithm>
#include <set>
#include <tuple>

#include "ann/crossval.hh"
#include "common/logging.hh"
#include "mitigate/remap.hh"
#include "mitigate/replicate.hh"

namespace dtann {

const std::vector<Strategy> &
allStrategies()
{
    static const std::vector<Strategy> all = {
        Strategy::NoOp,          Strategy::RetrainOnly,
        Strategy::BypassFaulty,  Strategy::RemapToSpares,
        Strategy::ClampActivations, Strategy::ReplicateCritical,
    };
    return all;
}

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::NoOp: return "noop";
      case Strategy::RetrainOnly: return "retrain";
      case Strategy::BypassFaulty: return "bypass";
      case Strategy::RemapToSpares: return "remap";
      case Strategy::ClampActivations: return "clamp";
      case Strategy::ReplicateCritical: return "replicate";
    }
    panic("bad strategy");
}

bool
strategyFromName(const std::string &name, Strategy &out)
{
    for (Strategy s : allStrategies()) {
        if (name == strategyName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

std::string
strategyNameList()
{
    std::string list;
    for (Strategy s : allStrategies()) {
        if (!list.empty())
            list += ", ";
        list += strategyName(s);
    }
    return list;
}

bool
strategySupported(Strategy s, BackendKind backend)
{
    if (backend == BackendKind::Spatial)
        return true;
    return s != Strategy::RemapToSpares &&
        s != Strategy::ReplicateCritical;
}

std::vector<PrunedSynapse>
pruneMaskForBypasses(const HardwareBackend &accel, MlpTopology logical)
{
    const AcceleratorConfig &cfg = accel.config();
    bool systolic = accel.backendKind() == BackendKind::Systolic;
    std::set<std::tuple<size_t, int, int>> mask;

    // Map a physical synapse index to its logical input index:
    // indices below the logical fan-in map directly, the physical
    // bias column maps to the logical bias, everything else is an
    // unused zero-weight synapse.
    auto logicalInput = [](int index, int phys_fanin,
                           int logical_fanin) {
        if (index < logical_fanin)
            return index;
        if (index == phys_fanin)
            return logical_fanin; // bias synapse
        return -1;
    };

    // Prune the synapses that bypassed unit @p s zeroes when it
    // executes logical stage @p stage. On the spatial array a unit
    // serves exactly one stage; a systolic grid unit is shared by
    // both passes and gets one view per pass it participates in.
    auto applyView = [&](const UnitSite &s, size_t stage) {
        int width = stage == 0 ? logical.hidden : logical.outputs;
        int fanin = stage == 0 ? logical.inputs : logical.hidden;
        int phys_fanin = stage == 0 ? cfg.inputs : cfg.hidden;
        if (s.neuron >= width)
            return; // unused physical row/column

        switch (s.kind) {
          case UnitKind::Multiplier:
          case UnitKind::WeightLatch: {
            int i = logicalInput(s.index, phys_fanin, fanin);
            if (i >= 0)
                mask.insert({stage, s.neuron, i});
            break;
          }
          case UnitKind::AdderStage: {
            // Stage t accumulates the product of synapse t+1 (the
            // chain starts from synapse 0's product); skipping the
            // stage drops exactly that product.
            int i = logicalInput(s.index + 1, phys_fanin, fanin);
            if (i >= 0)
                mask.insert({stage, s.neuron, i});
            break;
          }
          case UnitKind::Activation: {
            // A silenced hidden neuron feeds constant zero into the
            // output layer: prune every synapse reading it so
            // back-propagation stops steering gradients through the
            // dead connection. (Activations that produce network
            // outputs are never bypassed — see
            // BypassFaultyMitigator.)
            if (stage == 0 && s.neuron < logical.hidden)
                for (int k = 0; k < logical.outputs; ++k)
                    mask.insert({1, k, s.neuron});
            break;
          }
        }
    };

    for (const UnitSite &s : accel.bypassedSites()) {
        if (!systolic) {
            applyView(s, s.layer == Layer::Hidden ? 0 : 1);
            continue;
        }
        // Hidden-canonical grid site: the unit participates in a
        // pass when its row position lies inside that pass's
        // physical fan-in (see SystolicBackend's mapping).
        auto inPass = [&](size_t stage) {
            int phys_fanin = stage == 0 ? cfg.inputs : cfg.hidden;
            switch (s.kind) {
              case UnitKind::Multiplier:
              case UnitKind::WeightLatch:
                return s.index <= phys_fanin;
              case UnitKind::AdderStage:
                return s.index < phys_fanin;
              case UnitKind::Activation:
                return true;
            }
            return false;
        };
        for (size_t stage = 0; stage < 2; ++stage)
            if (inPass(stage))
                applyView(s, stage);
    }

    std::vector<PrunedSynapse> out;
    out.reserve(mask.size());
    for (const auto &[stage, neuron, input] : mask)
        out.push_back({stage, neuron, input});
    return out;
}

namespace {

/** Retrain through @p model and cross-validate (shared tail). */
double
retrainedAccuracy(ForwardModel &model, const MitigationSetup &setup,
                  Rng &rng, const Trainer &retrainer)
{
    return crossValidate(model, setup.ds, setup.folds, retrainer, rng,
                         &setup.baseline)
        .meanAccuracy;
}

double
retrainedAccuracy(ForwardModel &model, const MitigationSetup &setup,
                  Rng &rng)
{
    return retrainedAccuracy(model, setup, rng,
                             Trainer(setup.retrain));
}

class NoOpMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::NoOp; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &) override
    {
        auto accel =
            makeBackend(setup.backend, setup.array, setup.logical);
        inject(*accel);
        accel->setWeights(setup.baseline);
        MitigationOutcome out;
        out.accuracy = evalAccuracy(*accel, setup.ds);
        out.sim = accel->simCounters();
        return out;
    }
};

class RetrainOnlyMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::RetrainOnly; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &rng) override
    {
        auto accel =
            makeBackend(setup.backend, setup.array, setup.logical);
        inject(*accel);
        MitigationOutcome out;
        out.accuracy = retrainedAccuracy(*accel, setup, rng);
        out.sim = accel->simCounters();
        return out;
    }
};

class BypassFaultyMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::BypassFaulty; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &rng) override
    {
        auto accel =
            makeBackend(setup.backend, setup.array, setup.logical);
        inject(*accel);

        DefectMap map;
        DiagnosisReport report =
            diagnose(*accel, setup.bist, rng, &map);
        for (const UnitSite &s : map.suspects()) {
            // An activation that produces a network output cannot
            // be disconnected — its class would never be predicted
            // — so retraining has to cope with those (the Fig 11
            // weak spot that RemapToSpares addresses instead). On
            // the spatial array that is the output layer; on the
            // systolic grid the shared activation at column c
            // produces output c whenever c is an output column.
            bool output_act = s.kind == UnitKind::Activation &&
                (setup.backend == BackendKind::Systolic
                     ? s.neuron < setup.array.outputs
                     : s.layer == Layer::Output);
            if (output_act)
                continue;
            accel->bypassUnit(s);
        }

        // Fault-aware pruning: the trainer's shadow weights at the
        // bypassed synapses are frozen to zero, keeping back-
        // propagation consistent with the hardware's zeroed
        // forward path.
        Trainer retrainer(setup.retrain);
        retrainer.setPruneMask(
            pruneMaskForBypasses(*accel, setup.logical));

        MitigationOutcome out;
        out.coverage = report.coverage();
        out.diagnosed = static_cast<int>(map.size());
        out.mitigatedUnits =
            static_cast<int>(accel->bypassedSites().size());
        out.accuracy =
            retrainedAccuracy(*accel, setup, rng, retrainer);
        out.sim = accel->simCounters();
        return out;
    }
};

class RemapToSparesMitigator : public Mitigator
{
  public:
    Strategy kind() const override { return Strategy::RemapToSpares; }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &rng) override
    {
        dtann_assert(
            strategySupported(Strategy::RemapToSpares, setup.backend),
            "remap requires the spatial backend");
        // Map the array with every physical output row addressable
        // so spare rows can take over diagnosed-faulty ones.
        Accelerator accel(setup.array,
                          RemappedOutputMlp::extendedTopology(
                              setup.logical, setup.array));
        inject(accel);

        DefectMap map;
        DiagnosisReport report = diagnose(accel, setup.bist, rng, &map);
        RemappedOutputMlp remapped(
            accel, setup.logical,
            planOutputRemap(map, setup.logical, setup.array));

        MitigationOutcome out;
        out.coverage = report.coverage();
        out.diagnosed = static_cast<int>(map.size());
        out.mitigatedUnits = remapped.remappedCount();
        out.accuracy = retrainedAccuracy(remapped, setup, rng);
        out.sim = accel.simCounters();
        return out;
    }
};

/** Clamp-profiling margin: one-sixteenth of a value unit beyond
 *  the observed clean range, so quantization wobble at the window
 *  edge never clips a healthy activation. */
constexpr double kClampMargin = 1.0 / 16.0;

class ClampActivationsMitigator : public Mitigator
{
  public:
    Strategy kind() const override
    {
        return Strategy::ClampActivations;
    }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &rng) override
    {
        auto accel =
            makeBackend(setup.backend, setup.array, setup.logical);
        inject(*accel);

        // Learn the per-layer windows by profiling the clean
        // reference network over the task data (deterministic — no
        // diagnosis, no randomness), Liu-Cheng style: the filter
        // bounds come from what healthy activations actually span.
        FloatMlp ref(setup.logical);
        ref.setWeights(setup.baseline);
        double lo[2] = {1e300, 1e300};
        double hi[2] = {-1e300, -1e300};
        for (const Activations &act : ref.forwardBatch(setup.ds.rows))
            for (size_t layer = 0; layer < 2; ++layer)
                for (double v : act.layers[layer]) {
                    lo[layer] = std::min(lo[layer], v);
                    hi[layer] = std::max(hi[layer], v);
                }
        for (Layer layer : {Layer::Hidden, Layer::Output})
            accel->setActivationClamp(
                layer,
                Fix16::fromDouble(
                    lo[static_cast<size_t>(layer)] - kClampMargin),
                Fix16::fromDouble(
                    hi[static_cast<size_t>(layer)] + kClampMargin));

        // Retrain through the clamped array so the weights adapt to
        // the filtered forward path.
        MitigationOutcome out;
        out.accuracy = retrainedAccuracy(*accel, setup, rng);
        // Blind strategy: no diagnosis, nothing missed by its own
        // contract. Every activation unit that feeds the datapath
        // gets a comparator pair — one per pass position, since the
        // clamp windows are configured per pass.
        out.mitigatedUnits = setup.array.hidden + setup.array.outputs;
        out.sim = accel->simCounters();
        return out;
    }
};

class ReplicateCriticalMitigator : public Mitigator
{
  public:
    Strategy kind() const override
    {
        return Strategy::ReplicateCritical;
    }

    MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &rng) override
    {
        dtann_assert(strategySupported(Strategy::ReplicateCritical,
                                       setup.backend),
                     "replicate requires the spatial backend");
        Accelerator accel(setup.array,
                          ReplicatedOutputMlp::extendedTopology(
                              setup.logical, setup.array));
        inject(accel);

        DefectMap map;
        DiagnosisReport report = diagnose(accel, setup.bist, rng, &map);
        ReplicatedOutputMlp replicated(
            accel, setup.logical,
            planOutputReplication(map, setup.logical, setup.array));

        MitigationOutcome out;
        out.coverage = report.coverage();
        out.diagnosed = static_cast<int>(map.size());
        out.mitigatedUnits = replicated.spareRowsUsed();
        out.accuracy = retrainedAccuracy(replicated, setup, rng);
        out.sim = accel.simCounters();
        return out;
    }
};

} // namespace

std::unique_ptr<Mitigator>
makeMitigator(Strategy s)
{
    switch (s) {
      case Strategy::NoOp:
        return std::make_unique<NoOpMitigator>();
      case Strategy::RetrainOnly:
        return std::make_unique<RetrainOnlyMitigator>();
      case Strategy::BypassFaulty:
        return std::make_unique<BypassFaultyMitigator>();
      case Strategy::RemapToSpares:
        return std::make_unique<RemapToSparesMitigator>();
      case Strategy::ClampActivations:
        return std::make_unique<ClampActivationsMitigator>();
      case Strategy::ReplicateCritical:
        return std::make_unique<ReplicateCriticalMitigator>();
    }
    panic("bad strategy");
}

} // namespace dtann
