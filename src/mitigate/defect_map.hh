/**
 * @file
 * Defect map: the output of diagnosis, the input of mitigation.
 *
 * The paper tolerates defects blindly (retraining plus spare output
 * neurons); knowing *where* the defects are enables cheaper and
 * stronger mitigations (fault-aware pruning/bypass, map-driven
 * remapping to spares). A DefectMap records the unit instances a
 * diagnosis pass flagged as suspect, and a DiagnosisReport scores
 * the map against the injector's ground truth — diagnosis can miss
 * faults (limited vector budgets, faults that never reach an
 * output), so mitigation code must cope with imperfect maps.
 */

#ifndef DTANN_MITIGATE_DEFECT_MAP_HH
#define DTANN_MITIGATE_DEFECT_MAP_HH

#include <set>
#include <string>
#include <vector>

#include "core/accelerator.hh"

namespace dtann {

/** Set of unit instances diagnosed as (possibly) defective. */
class DefectMap
{
  public:
    DefectMap() = default;

    /** Oracle map: take the injector's ground truth verbatim. */
    static DefectMap fromGroundTruth(const Accelerator &accel);

    /** Flag @p site as suspect (idempotent). */
    void markSuspect(const UnitSite &site);

    /** Is @p site flagged? */
    bool suspect(const UnitSite &site) const;

    /** All flagged sites in deterministic (UnitSite) order. */
    std::vector<UnitSite> suspects() const;

    /** Flagged sites restricted to one layer. */
    std::vector<UnitSite> suspectsIn(Layer layer) const;

    /** Physical neurons of @p layer hosting at least one suspect. */
    std::vector<int> suspectNeurons(Layer layer) const;

    size_t size() const { return sites.size(); }
    bool empty() const { return sites.empty(); }

    /** Machine-readable export (JSON array of site descriptions). */
    std::string toJson() const;

  private:
    std::set<UnitSite> sites;
};

/** Score of one diagnosis pass against injector ground truth. */
struct DiagnosisReport
{
    size_t unitsTested = 0;    ///< unit instances probed
    size_t vectorsApplied = 0; ///< total test vectors driven
    int truePositives = 0;     ///< faulty units flagged
    int falsePositives = 0;    ///< clean units flagged
    int falseNegatives = 0;    ///< faulty units missed

    /** Fraction of truly faulty units flagged (1.0 when none). */
    double coverage() const;

    /** Fraction of truly faulty units missed (0.0 when none). */
    double falseNegativeRate() const { return 1.0 - coverage(); }

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/**
 * Score @p map against @p ground_truth (the accelerator's actually
 * faulty sites). Unit counts carried over from the BIST run can be
 * filled in by the caller.
 */
DiagnosisReport scoreDiagnosis(const DefectMap &map,
                               const std::vector<UnitSite> &ground_truth);

} // namespace dtann

#endif // DTANN_MITIGATE_DEFECT_MAP_HH
