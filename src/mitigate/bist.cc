#include "mitigate/bist.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

namespace {

/** Test operand for vector @p v: corners first, then random. */
Fix16
testFix16(int v, Rng &rng)
{
    if (v == 0)
        return Fix16();                 // all zeros
    if (v == 1)
        return Fix16::fromRaw(-1);      // all ones
    return Fix16::fromRaw(
        static_cast<int16_t>(rng.nextUint(1ull << 16)));
}

Acc24
testAcc24(int v, Rng &rng)
{
    if (v == 0)
        return Acc24();
    if (v == 1)
        return Acc24::fromRaw(-1);      // all ones
    return Acc24::fromRaw(static_cast<int32_t>(
        rng.nextInt(Acc24::rawMin, Acc24::rawMax)));
}

/** Probe one unit with @p vectors test vectors; true = mismatch. */
bool
probeUnit(HardwareBackend &accel, const UnitSite &s, int vectors,
          Rng &rng)
{
    for (int v = 0; v < vectors; ++v) {
        switch (s.kind) {
          case UnitKind::Multiplier: {
            Fix16 w = testFix16(v, rng);
            Fix16 x = testFix16(v == 1 ? 2 : v, rng);
            if (accel.bistMul(s.layer, s.neuron, s.index, w, x) !=
                Fix16::hwMul(w, x))
                return true;
            break;
          }
          case UnitKind::AdderStage: {
            Acc24 a = testAcc24(v, rng);
            Acc24 b = testAcc24(v == 1 ? 2 : v, rng);
            if (accel.bistAdd(s.layer, s.neuron, s.index, a, b) !=
                Acc24::hwAdd(a, b))
                return true;
            break;
          }
          case UnitKind::Activation: {
            Fix16 x = testFix16(v, rng);
            if (accel.bistAct(s.layer, s.neuron, x) !=
                logisticPwlFix(x))
                return true;
            break;
          }
          case UnitKind::WeightLatch: {
            Fix16 d = testFix16(v, rng);
            if (accel.bistLatchStore(s.layer, s.neuron, s.index, d) !=
                d)
                return true;
            break;
          }
        }
    }
    return false;
}

} // namespace

BistResult
runBist(HardwareBackend &accel, const BistConfig &config, Rng &rng)
{
    dtann_assert(config.vectorsPerUnit >= 1,
                 "BIST needs at least one vector per unit");
    BistResult result;
    std::vector<UnitSite> sites = accel.enumerateSites(config.pool);
    for (const UnitSite &s : sites) {
        ++result.unitsTested;
        result.vectorsApplied +=
            static_cast<size_t>(config.vectorsPerUnit);
        if (probeUnit(accel, s, config.vectorsPerUnit, rng))
            result.map.markSuspect(s);
    }
    // Probing pollutes the faulty units' deviation probes; reset
    // them so accuracy-phase amplitude measurements stay clean.
    accel.clearProbes();
    return result;
}

DiagnosisReport
diagnose(HardwareBackend &accel, const BistConfig &config, Rng &rng,
         DefectMap *out)
{
    BistResult bist = runBist(accel, config, rng);
    DiagnosisReport report =
        scoreDiagnosis(bist.map, accel.faultySites());
    report.unitsTested = bist.unitsTested;
    report.vectorsApplied = bist.vectorsApplied;
    if (out != nullptr)
        *out = std::move(bist.map);
    return report;
}

} // namespace dtann
