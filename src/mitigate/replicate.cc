#include "mitigate/replicate.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/spare.hh"

namespace dtann {

std::vector<std::vector<int>>
planOutputReplication(const DefectMap &map, MlpTopology logical,
                      const AcceleratorConfig &cfg)
{
    std::vector<int> bad = map.suspectNeurons(Layer::Output);
    auto row_faulty = [&](int row) {
        return std::binary_search(bad.begin(), bad.end(), row);
    };

    std::vector<std::vector<int>> groups(
        static_cast<size_t>(logical.outputs));
    int next_spare = logical.outputs;
    for (int k = 0; k < logical.outputs; ++k) {
        groups[static_cast<size_t>(k)] = {k};
        if (!row_faulty(k))
            continue;
        // Recruit up to two clean spares: the original stays in the
        // vote, so a median-of-3 outvotes it when it misbehaves and
        // a pair averages when only one spare is left.
        for (int copies = 0; copies < 2; ++copies) {
            while (next_spare < cfg.outputs && row_faulty(next_spare))
                ++next_spare;
            if (next_spare >= cfg.outputs)
                break;
            groups[static_cast<size_t>(k)].push_back(next_spare++);
        }
    }
    return groups;
}

MlpTopology
ReplicatedOutputMlp::extendedTopology(MlpTopology logical,
                                      const AcceleratorConfig &cfg)
{
    return {logical.inputs, logical.hidden, cfg.outputs};
}

ReplicatedOutputMlp::ReplicatedOutputMlp(
    Accelerator &a, MlpTopology logical_topo,
    std::vector<std::vector<int>> row_groups)
    : accel(a), logical(logical_topo), groups(std::move(row_groups))
{
    dtann_assert(accel.topology() ==
                     extendedTopology(logical, accel.config()),
                 "accelerator must be mapped with the extended "
                 "topology (use extendedTopology())");
    dtann_assert(static_cast<int>(groups.size()) == logical.outputs,
                 "replication group arity mismatch");
    std::vector<int> all;
    for (size_t k = 0; k < groups.size(); ++k) {
        dtann_assert(!groups[k].empty() &&
                         groups[k].front() == static_cast<int>(k),
                     "group must start with its own row");
        for (int row : groups[k]) {
            dtann_assert(row >= 0 && row < accel.config().outputs,
                         "replication row out of physical range");
            all.push_back(row);
        }
    }
    std::sort(all.begin(), all.end());
    dtann_assert(std::adjacent_find(all.begin(), all.end()) ==
                     all.end(),
                 "replication groups share a physical row");
}

int
ReplicatedOutputMlp::spareRowsUsed() const
{
    int n = 0;
    for (const std::vector<int> &g : groups)
        n += static_cast<int>(g.size()) - 1;
    return n;
}

void
ReplicatedOutputMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    MlpTopology extended = extendedTopology(logical, accel.config());
    MlpWeights dup(extended);
    for (int j = 0; j < logical.hidden; ++j)
        for (int i = 0; i <= logical.inputs; ++i)
            dup.hid(j, i) = w.hid(j, i);
    for (int k = 0; k < logical.outputs; ++k)
        for (int j = 0; j <= logical.hidden; ++j)
            for (int row : groups[static_cast<size_t>(k)])
                dup.out(row, j) = w.out(k, j);
    accel.setWeights(dup);
}

void
ReplicatedOutputMlp::vote(const std::vector<double> &phys,
                          std::vector<double> &out) const
{
    out.resize(static_cast<size_t>(logical.outputs));
    std::vector<double> copy_vals;
    for (int k = 0; k < logical.outputs; ++k) {
        const std::vector<int> &g = groups[static_cast<size_t>(k)];
        copy_vals.clear();
        for (int row : g)
            copy_vals.push_back(phys[static_cast<size_t>(row)]);
        out[static_cast<size_t>(k)] = medianVote(copy_vals);
    }
}

Activations
ReplicatedOutputMlp::forward(std::span<const double> input)
{
    Activations phys = accel.forward(input);
    Activations act;
    act.layers.resize(2);
    act.hidden().assign(phys.hidden().begin(),
                        phys.hidden().begin() + logical.hidden);
    vote(phys.output(), act.output());
    return act;
}

std::vector<Activations>
ReplicatedOutputMlp::forwardBatch(
    std::span<const std::vector<double>> inputs)
{
    std::vector<Activations> phys = accel.forwardBatch(inputs);
    std::vector<Activations> acts(phys.size());
    for (size_t r = 0; r < phys.size(); ++r) {
        Activations &act = acts[r];
        act.layers.resize(2);
        act.hidden().assign(phys[r].hidden().begin(),
                            phys[r].hidden().begin() + logical.hidden);
        vote(phys[r].output(), act.output());
    }
    return acts;
}

} // namespace dtann
