/**
 * @file
 * Mitigation strategies behind a common interface.
 *
 * Every strategy answers the same question — given a (possibly
 * faulty) array and a training set, what accuracy can the mapped
 * task reach? — but spends different hardware/diagnosis budgets:
 *
 *  - NoOp:          baseline weights on the faulty array, no
 *                   retraining, no diagnosis (lower bound).
 *  - RetrainOnly:   the paper's blind mitigation — retrain through
 *                   the faulty array (Section VI-C).
 *  - BypassFaulty:  BIST diagnosis, then disconnect diagnosed units
 *                   (zero product / skipped stage / silenced
 *                   neuron) and retrain around the bypasses with
 *                   the matching synapse-level prune mask on the
 *                   trainer's shadow weights — fault-aware pruning
 *                   in the style of Zhang et al. (arXiv:1802.04657).
 *  - RemapToSpares: BIST diagnosis, then steer logical outputs off
 *                   diagnosed-faulty physical output rows onto
 *                   clean spare rows (map-driven use of the spare
 *                   output neurons the paper adds blindly), plus
 *                   retraining for the hidden layer.
 *  - ClampActivations: blind (no diagnosis) learned activation
 *                   clamping — per-layer windows profiled from the
 *                   clean reference network bound every activation
 *                   unit's datapath output, filtering the
 *                   exceptional values faulty sigmoid units emit
 *                   before they reach the next layer; retraining
 *                   runs through the clamped array so the weights
 *                   adapt to the filter (Liu-Cheng style).
 *  - ReplicateCritical: BIST diagnosis, then replicate
 *                   diagnosed-faulty output rows onto clean spare
 *                   rows and merge the copies with the spare-array
 *                   median voter (RedMulE-FT style replication +
 *                   voting) — the suspect row stays in the vote, so
 *                   a median-of-3 tolerates a wrong diagnosis.
 */

#ifndef DTANN_MITIGATE_MITIGATOR_HH
#define DTANN_MITIGATE_MITIGATOR_HH

#include <functional>
#include <memory>
#include <string>

#include "ann/trainer.hh"
#include "circuit/sim_counters.hh"
#include "mitigate/bist.hh"

namespace dtann {

/** The implemented mitigation strategies. */
enum class Strategy : uint8_t {
    NoOp,
    RetrainOnly,
    BypassFaulty,
    RemapToSpares,
    ClampActivations,
    ReplicateCritical,
};

/** Every implemented strategy, in enum order — the single source
 *  the name parser, spec error messages, and default campaign
 *  racing lists derive from. */
const std::vector<Strategy> &allStrategies();

/** Stable short name (used in reports and JSON exports). */
const char *strategyName(Strategy s);

/** Parse a strategyName(); returns false on unknown names. */
bool strategyFromName(const std::string &name, Strategy &out);

/** "noop, retrain, ..." — for error messages naming a bad value. */
std::string strategyNameList();

/**
 * Whether @p s can run on @p backend. The spare-output-row
 * strategies (remap, replicate) steer logical outputs across
 * physical output rows — structure only the spatially expanded
 * array has. The weight-stationary systolic grid shares its columns
 * between both passes and provisions no spare rows, so those two
 * strategies have no hardware to drive there; everything else is
 * backend-agnostic.
 */
bool strategySupported(Strategy s, BackendKind backend);

/** Per-cell inputs shared by every strategy. */
struct MitigationSetup
{
    AcceleratorConfig array;     ///< physical array dimensions
    MlpTopology logical;         ///< task network
    const Dataset &ds;           ///< task dataset
    Hyper retrain;               ///< retraining hyper-parameters
    const MlpWeights &baseline;  ///< clean-trained warm-start weights
    int folds = 10;              ///< cross-validation folds
    BistConfig bist;             ///< diagnosis budget
    /** Hardware target the strategy instantiates. Strategies that
     *  require spatial structure assert strategySupported(). */
    BackendKind backend = BackendKind::Spatial;
};

/** What one strategy achieved on one faulty array. */
struct MitigationOutcome
{
    double accuracy = 0.0;
    /** Diagnosis coverage vs ground truth (1.0 for blind
     *  strategies, which diagnose nothing and miss nothing by
     *  their own contract). */
    double coverage = 1.0;
    int diagnosed = 0;      ///< suspect units flagged by BIST
    int mitigatedUnits = 0; ///< units bypassed / outputs remapped
    SimCounters sim;        ///< gate-simulation work of this cell
};

/**
 * One mitigation strategy. run() owns the whole cell: it builds the
 * hardware model (strategies choose their own array mapping), has
 * @p inject install the cell's defects, diagnoses when the strategy
 * uses a map, mitigates, and measures accuracy.
 */
class Mitigator
{
  public:
    virtual ~Mitigator() = default;

    virtual Strategy kind() const = 0;

    std::string name() const { return strategyName(kind()); }

    /**
     * @param setup shared cell inputs
     * @param inject installs the cell's defects into the freshly
     *        built accelerator (the campaign drives this from a
     *        strategy-independent RNG stream so every strategy
     *        faces identical physical defects)
     * @param rng the strategy's own randomness (diagnosis vectors,
     *        fold shuffling, retraining)
     */
    virtual MitigationOutcome
    run(const MitigationSetup &setup,
        const std::function<void(HardwareBackend &)> &inject,
        Rng &rng) = 0;
};

/** Build the requested strategy. */
std::unique_ptr<Mitigator> makeMitigator(Strategy s);

/**
 * The synapse-level prune mask matching @p accel's active bypasses
 * for a task mapped with @p logical (coordinates in the logical
 * 2-stage weight space): a bypassed multiplier/latch prunes its
 * synapse, a bypassed adder stage prunes the synapse whose product
 * it would have accumulated, and a bypassed hidden activation
 * prunes every output-layer synapse reading that silenced neuron.
 * Bypasses on physical units outside the logical mapping carry no
 * trainable weight and are skipped. On the systolic backend a
 * bypassed grid unit is shared by both passes, so its mask entries
 * cover the matching synapse in *both* logical stages.
 */
std::vector<PrunedSynapse>
pruneMaskForBypasses(const HardwareBackend &accel, MlpTopology logical);

} // namespace dtann

#endif // DTANN_MITIGATE_MITIGATOR_HH
