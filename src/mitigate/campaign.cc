#include "mitigate/campaign.hh"

#include <algorithm>
#include <cstdint>

#include "common/json.hh"

namespace dtann {

namespace {

/**
 * Stream roots of the mitigation campaign (Rng::substream paths).
 * Data/train roots deliberately match the core campaigns so the
 * same seed yields the same datasets and baselines as Fig 10. The
 * injection root omits the strategy coordinate: all strategies of a
 * (task, defect count, repetition) cell see identical defects.
 */
enum StreamRoot : uint64_t {
    kStreamData = 1,   ///< {kStreamData, task}: dataset generation
    kStreamTrain = 2,  ///< {kStreamTrain, task}: baseline training
    kStreamCell = 3,   ///< {kStreamCell, task, variant, strat, rep}
    kStreamInject = 4, ///< {kStreamInject, task, variant, rep}
};

} // namespace

std::string
MitigationConfig::toJson() const
{
    std::string out = "{" + jsonCampaignFields();
    out += ",\"defect_counts\":[";
    for (size_t i = 0; i < defectCounts.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(defectCounts[i]);
    }
    out += "],\"strategies\":[";
    for (size_t i = 0; i < strategies.size(); ++i) {
        if (i > 0)
            out += ",";
        out += jsonString(strategyName(strategies[i]));
    }
    out += "],\"bist_vectors_per_unit\":" +
        std::to_string(bist.vectorsPerUnit);
    out += ",\"inject_pool\":" + injectPool.toJson();
    out += "}";
    return out;
}

MitigationConfig
MitigationConfig::fromJson(const JsonValue &v)
{
    MitigationConfig c;
    c.readCampaignFields(v);
    c.defectCounts = jsonGetIntArray(v, "defect_counts", c.defectCounts);
    if (const JsonValue *s = v.find("strategies")) {
        c.strategies.clear();
        for (const JsonValue &e : s->items()) {
            Strategy strat;
            if (!strategyFromName(e.asString(), strat))
                throw JsonError(
                    "unknown strategy '" + e.asString() +
                    "' (expected noop, retrain, bypass or remap)");
            c.strategies.push_back(strat);
        }
    }
    c.bist.vectorsPerUnit = jsonGetInt(v, "bist_vectors_per_unit",
                                       c.bist.vectorsPerUnit, 1,
                                       1 << 20);
    if (const JsonValue *p = v.find("inject_pool"))
        c.injectPool = SitePool::fromJson(*p);
    return c;
}

std::vector<MitigationCurve>
runMitigationCampaign(const MitigationConfig &config)
{
    std::vector<UciTaskSpec> specs = selectTasks(config.tasks);
    CampaignEngine engine(config);

    // The shared preparation path (core/campaign): identical
    // (seed, scale) configs yield identical contexts to Fig 10/11,
    // so a daemon's context cache is shared across campaign kinds.
    auto ctx = prepareCampaignTasks(engine, config, specs);

    // Flatten into independent cells. The defect-free point runs a
    // single repetition per strategy (no injection randomness).
    struct Cell
    {
        size_t task;
        size_t variant; ///< index into defectCounts
        size_t strat;   ///< index into strategies
        int rep;
    };
    std::vector<Cell> cells;
    for (size_t t = 0; t < specs.size(); ++t)
        for (size_t d = 0; d < config.defectCounts.size(); ++d) {
            int reps =
                config.defectCounts[d] == 0 ? 1 : config.repetitions;
            for (size_t s = 0; s < config.strategies.size(); ++s)
                for (int rep = 0; rep < reps; ++rep)
                    cells.push_back({t, d, s, rep});
        }

    std::vector<MitigationOutcome> outcomes(cells.size());
    engine.beginCampaign(cells.size());
    engine.parallelFor(cells.size(), [&](size_t i) {
        const Cell &c = cells[i];
        const TaskContext &t = *ctx[c.task];
        int defects = config.defectCounts[c.variant];
        Strategy strategy = config.strategies[c.strat];

        CellKey key{"mitigation", t.spec.name,
                    "v" + std::to_string(c.variant) + ":d" +
                        std::to_string(defects) + ":" +
                        strategyName(strategy),
                    static_cast<uint64_t>(c.rep)};
        if (journalLookup(config.journal, key, [&](const JsonValue &v) {
                MitigationOutcome &o = outcomes[i];
                o.accuracy = v.at("accuracy").asNumber();
                o.coverage = v.at("coverage").asNumber();
                o.diagnosed = static_cast<int>(
                    v.at("diagnosed").asInt(0, INT32_MAX));
                o.mitigatedUnits = static_cast<int>(
                    v.at("mitigated_units").asInt(0, INT32_MAX));
                o.sim = SimCounters::fromJson(v.at("sim"));
            })) {
            engine.reportCell(t.spec.name + std::string(":") +
                                  strategyName(strategy),
                              defects, c.rep, outcomes[i].accuracy);
            return;
        }
        if (!config.inShard(i))
            return;

        MitigationSetup setup{
            config.array,
            t.logical,
            t.ds,
            retrainHyper(t.hyper, config.retrainScale),
            t.baseline,
            config.folds,
            config.bist,
        };

        // Identical physical defects for every strategy of this
        // (task, variant, rep): the inject stream has no strategy
        // coordinate.
        auto inject = [&](Accelerator &accel) {
            if (defects <= 0)
                return;
            Rng inject_rng = Rng::substream(
                config.seed, {kStreamInject, c.task, c.variant,
                              static_cast<uint64_t>(c.rep)});
            DefectInjector injector(accel, config.injectPool,
                                    config.weighting);
            injector.inject(defects, inject_rng);
        };

        Rng rng = Rng::substream(
            config.seed, {kStreamCell, c.task, c.variant, c.strat,
                          static_cast<uint64_t>(c.rep)});
        outcomes[i] = makeMitigator(strategy)->run(setup, inject, rng);
        if (config.journal) {
            const MitigationOutcome &o = outcomes[i];
            config.journal->store(
                key, "{\"accuracy\":" + jsonNumber(o.accuracy) +
                    ",\"coverage\":" + jsonNumber(o.coverage) +
                    ",\"diagnosed\":" + std::to_string(o.diagnosed) +
                    ",\"mitigated_units\":" +
                    std::to_string(o.mitigatedUnits) +
                    ",\"sim\":" + o.sim.toJson() + "}");
        }
        engine.reportCell(t.spec.name + std::string(":") +
                              strategyName(strategy),
                          defects, c.rep, outcomes[i].accuracy);
    });

    // Deterministic accumulation in cell-index order.
    size_t n_var = config.defectCounts.size();
    size_t n_strat = config.strategies.size();
    struct PointStat
    {
        RunningStat accuracy, coverage, mitigated;
    };
    std::vector<PointStat> stats(specs.size() * n_strat * n_var);
    std::vector<SimCounters> curveSim(specs.size() * n_strat);
    SimCounters totalSim;
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        PointStat &p = stats[(c.task * n_strat + c.strat) * n_var +
                             c.variant];
        p.accuracy.add(outcomes[i].accuracy);
        p.coverage.add(outcomes[i].coverage);
        p.mitigated.add(outcomes[i].mitigatedUnits);
        curveSim[c.task * n_strat + c.strat].merge(outcomes[i].sim);
        totalSim.merge(outcomes[i].sim);
    }
    logSimCounters("mitigation", totalSim);

    std::vector<MitigationCurve> curves;
    curves.reserve(specs.size() * n_strat);
    for (size_t t = 0; t < specs.size(); ++t)
        for (size_t s = 0; s < n_strat; ++s) {
            MitigationCurve curve;
            curve.task = specs[t].name;
            curve.strategy = config.strategies[s];
            curve.sim = curveSim[t * n_strat + s];
            for (size_t d = 0; d < n_var; ++d) {
                const PointStat &p = stats[(t * n_strat + s) * n_var + d];
                curve.points.push_back({config.defectCounts[d],
                                        p.accuracy.mean(),
                                        p.accuracy.stddev(),
                                        p.coverage.mean(),
                                        p.mitigated.mean()});
            }
            curves.push_back(std::move(curve));
        }
    return curves;
}

std::string
MitigationCurve::toJson() const
{
    std::string out = "{\"figure\":\"mitigation\",\"task\":" +
        jsonString(task);
    out += ",\"strategy\":" + jsonString(strategyName(strategy));
    out += ",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"defects\":" + std::to_string(points[i].defects);
        out += ",\"accuracy\":" + jsonNumber(points[i].accuracy);
        out += ",\"stddev\":" + jsonNumber(points[i].stddev);
        out += ",\"coverage\":" + jsonNumber(points[i].coverage);
        out += ",\"mitigated\":" + jsonNumber(points[i].mitigated) + "}";
    }
    out += "],\"sim\":" + sim.toJson() + "}";
    return out;
}

} // namespace dtann
