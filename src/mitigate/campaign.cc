#include "mitigate/campaign.hh"

#include <algorithm>
#include <cstdint>

#include "common/json.hh"
#include "core/cost_model.hh"

namespace dtann {

namespace {

/**
 * Stream roots of the mitigation campaign (Rng::substream paths).
 * Data/train roots deliberately match the core campaigns so the
 * same seed yields the same datasets and baselines as Fig 10. The
 * injection root omits the strategy coordinate: all strategies of a
 * (task, defect count, repetition) cell see identical defects.
 */
enum StreamRoot : uint64_t {
    kStreamData = 1,   ///< {kStreamData, task}: dataset generation
    kStreamTrain = 2,  ///< {kStreamTrain, task}: baseline training
    kStreamCell = 3,   ///< {kStreamCell, task, variant, strategy id, rep}
    kStreamInject = 4, ///< {kStreamInject, task, variant, rep}
};

/**
 * Decode one journaled mitigation cell.
 *
 * Journal-compat contract: a payload written by a different build
 * may lack fields this build knows (or carry extras it doesn't).
 * Every result field is *required for replay* — a missing one
 * throws JsonError here, which journalLookup turns into a warn +
 * recompute of just that cell, because substituting a default
 * would silently change the merged export (the byte-identity
 * contract). Extra unknown fields are ignored, and *within* the
 * sim object genuinely derivable counters default (see
 * SimCounters::fromJson, e.g. pre-wide-lane lane slots). The
 * outcome is built locally and committed whole, so a mid-decode
 * throw can never leave a half-rehydrated cell behind.
 */
MitigationOutcome
decodeJournaledCell(const JsonValue &v)
{
    MitigationOutcome o;
    o.accuracy = v.at("accuracy").asNumber();
    o.coverage = v.at("coverage").asNumber();
    o.diagnosed =
        static_cast<int>(v.at("diagnosed").asInt(0, INT32_MAX));
    o.mitigatedUnits =
        static_cast<int>(v.at("mitigated_units").asInt(0, INT32_MAX));
    o.sim = SimCounters::fromJson(v.at("sim"));
    return o;
}

/**
 * Per-bit transistor estimates for the small mitigation add-ons, in
 * the same NAND-cell style the unit netlists use: a 2:1 mux is
 * three NAND2s (12 T), a magnitude-comparator bit-slice about
 * 10 T. Coarse, but measured against the exact netlist counts of
 * the units they attach to, so the overhead *ratios* are honest.
 */
constexpr size_t kMuxBitT = 12;
constexpr size_t kCmpBitT = 10;

} // namespace

MitigationCost
mitigationCost(Strategy s, const AcceleratorConfig &array,
               MlpTopology logical, const BistConfig &bist,
               BackendKind backend)
{
    CostModel model(array);
    MitigationCost c;

    size_t syn, stages, acts;
    int spare_rows;
    if (backend == BackendKind::Systolic) {
        // The weight-stationary grid instantiates one latch +
        // multiplier per PE, one adder stage per inter-PE hop, and
        // one activation per column; both passes share them. No
        // spare output rows exist to provision.
        size_t rows = static_cast<size_t>(
                          std::max(array.inputs, array.hidden)) + 1;
        size_t cols = static_cast<size_t>(
            std::max(array.hidden, array.outputs));
        syn = rows * cols;
        stages = (rows - 1) * cols;
        acts = cols;
        spare_rows = 0;
    } else {
        syn = static_cast<size_t>(array.hidden) *
                static_cast<size_t>(array.inputs + 1) +
            static_cast<size_t>(array.outputs) *
                static_cast<size_t>(array.hidden + 1);
        stages = static_cast<size_t>(array.hidden) *
                static_cast<size_t>(array.inputs) +
            static_cast<size_t>(array.outputs) *
                static_cast<size_t>(array.hidden);
        acts = static_cast<size_t>(array.hidden) +
            static_cast<size_t>(array.outputs);
        spare_rows = std::max(0, array.outputs - logical.outputs);
    }

    // Scan-access isolation muxes on every unit's inputs — the
    // hardware that lets BIST drive a unit apart from the datapath.
    // Static in mission mode: area only.
    size_t scan = syn * (16 + 16) * kMuxBitT // mult operands + latch D
        + stages * 48 * kMuxBitT             // two 24-bit adder operands
        + acts * 16 * kMuxBitT;              // activation input

    switch (s) {
      case Strategy::NoOp:
      case Strategy::RetrainOnly:
        // Blind strategies on the stock array: retraining runs on
        // the companion core, outside the array budget (as in the
        // paper's own accounting).
        break;
      case Strategy::BypassFaulty:
        // One output-gating mux per unit: product (16 b), adder
        // stage (24 b), activation (16 b); the product mux covers
        // the latch+multiplier pair.
        c.missionTransistors = syn * 16 * kMuxBitT +
            stages * 24 * kMuxBitT + acts * 16 * kMuxBitT;
        c.testTransistors = scan;
        c.bistVectorsPerUnit = bist.vectorsPerUnit;
        break;
      case Strategy::RemapToSpares:
        // Provisioned spare rows plus a row-steering mux per
        // logical output (one 2:1 stage per spare candidate).
        c.spareRows = spare_rows;
        c.missionTransistors =
            static_cast<size_t>(spare_rows) *
                model.outputRowTransistors() +
            static_cast<size_t>(logical.outputs) *
                static_cast<size_t>(spare_rows) * 16 * kMuxBitT;
        c.testTransistors = scan;
        c.bistVectorsPerUnit = bist.vectorsPerUnit;
        break;
      case Strategy::ClampActivations:
        // Two comparators + one saturating mux, 16 bits, after
        // every physical activation unit. Blind: no scan, no BIST.
        c.missionTransistors =
            acts * 16 * (2 * kCmpBitT + kMuxBitT);
        break;
      case Strategy::ReplicateCritical:
        // Provisioned spare rows plus a median-of-3 voter (three
        // comparators, two muxes, 16 bits) per logical output.
        c.spareRows = spare_rows;
        c.missionTransistors =
            static_cast<size_t>(spare_rows) *
                model.outputRowTransistors() +
            static_cast<size_t>(logical.outputs) * 16 *
                (3 * kCmpBitT + 2 * kMuxBitT);
        c.testTransistors = scan;
        c.bistVectorsPerUnit = bist.vectorsPerUnit;
        break;
    }

    BlockCost base = model.accelerator();
    c.areaOverhead =
        model.areaOf(c.missionTransistors + c.testTransistors) /
        base.areaMm2;
    c.energyOverhead =
        model.energyPerRowOf(c.missionTransistors) /
        base.energyPerRowNj;
    return c;
}

std::string
MitigationCost::toJson() const
{
    std::string out =
        "{\"spare_rows\":" + std::to_string(spareRows);
    out += ",\"bist_vectors_per_unit\":" +
        std::to_string(bistVectorsPerUnit);
    out += ",\"mission_transistors\":" +
        std::to_string(missionTransistors);
    out += ",\"test_transistors\":" + std::to_string(testTransistors);
    out += ",\"area_overhead\":" + jsonNumber(areaOverhead);
    out += ",\"energy_overhead\":" + jsonNumber(energyOverhead);
    out += "}";
    return out;
}

std::string
MitigationConfig::toJson() const
{
    std::string out = "{" + jsonCampaignFields();
    out += ",\"defect_counts\":[";
    for (size_t i = 0; i < defectCounts.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(defectCounts[i]);
    }
    out += "],\"strategies\":[";
    for (size_t i = 0; i < strategies.size(); ++i) {
        if (i > 0)
            out += ",";
        out += jsonString(strategyName(strategies[i]));
    }
    out += "],\"bist_vectors_per_unit\":" +
        std::to_string(bist.vectorsPerUnit);
    out += ",\"inject_pool\":" + injectPool.toJson();
    out += "}";
    return out;
}

MitigationConfig
MitigationConfig::fromJson(const JsonValue &v)
{
    MitigationConfig c;
    c.readCampaignFields(v);
    c.defectCounts = jsonGetIntArray(v, "defect_counts", c.defectCounts);
    if (const JsonValue *s = v.find("strategies")) {
        c.strategies.clear();
        for (const JsonValue &e : s->items()) {
            Strategy strat;
            if (!strategyFromName(e.asString(), strat))
                throw JsonError("unknown strategy '" + e.asString() +
                                "' (expected one of: " +
                                strategyNameList() + ")");
            // An explicitly requested strategy the backend cannot
            // drive is a spec error, not something to drop quietly.
            if (!strategySupported(strat, c.backend))
                throw JsonError(
                    "strategy '" + std::string(strategyName(strat)) +
                    "' is not supported on backend '" +
                    backendName(c.backend) + "'");
            c.strategies.push_back(strat);
        }
    } else {
        // The default lineup races everything the backend can
        // drive; the spare-row strategies silently drop off the
        // systolic grid (there are no spare rows to steer).
        std::erase_if(c.strategies, [&](Strategy strat) {
            return !strategySupported(strat, c.backend);
        });
    }
    c.bist.vectorsPerUnit = jsonGetInt(v, "bist_vectors_per_unit",
                                       c.bist.vectorsPerUnit, 1,
                                       1 << 20);
    if (const JsonValue *p = v.find("inject_pool"))
        c.injectPool = SitePool::fromJson(*p);
    return c;
}

std::vector<MitigationCurve>
runMitigationCampaign(const MitigationConfig &config)
{
    std::vector<UciTaskSpec> specs = selectTasks(config.tasks);
    CampaignEngine engine(config);

    // The shared preparation path (core/campaign): identical
    // (seed, scale) configs yield identical contexts to Fig 10/11,
    // so a daemon's context cache is shared across campaign kinds.
    auto ctx = prepareCampaignTasks(engine, config, specs);

    // Flatten into independent cells. The defect-free point runs a
    // single repetition per strategy (no injection randomness).
    struct Cell
    {
        size_t task;
        size_t variant; ///< index into defectCounts
        size_t strat;   ///< index into strategies
        int rep;
    };
    std::vector<Cell> cells;
    for (size_t t = 0; t < specs.size(); ++t)
        for (size_t d = 0; d < config.defectCounts.size(); ++d) {
            int reps =
                config.defectCounts[d] == 0 ? 1 : config.repetitions;
            for (size_t s = 0; s < config.strategies.size(); ++s)
                for (int rep = 0; rep < reps; ++rep)
                    cells.push_back({t, d, s, rep});
        }

    std::vector<MitigationOutcome> outcomes(cells.size());
    // A sharded run computes only its own cells (plus whatever the
    // journal replays); the rest stay default-constructed and must
    // not leak into the aggregates below.
    std::vector<uint8_t> computed(cells.size(), 0);
    engine.beginCampaign(cells.size());
    engine.parallelFor(cells.size(), [&](size_t i) {
        const Cell &c = cells[i];
        const TaskContext &t = *ctx[c.task];
        int defects = config.defectCounts[c.variant];
        Strategy strategy = config.strategies[c.strat];

        CellKey key{"mitigation", t.spec.name,
                    "v" + std::to_string(c.variant) + ":d" +
                        std::to_string(defects) + ":" +
                        strategyName(strategy),
                    static_cast<uint64_t>(c.rep)};
        if (journalLookup(config.journal, key, [&](const JsonValue &v) {
                // Decode into a local and commit whole: if an older
                // build's payload misses a field, the JsonError
                // escapes *before* outcomes[i] is touched and
                // journalLookup recomputes this cell.
                outcomes[i] = decodeJournaledCell(v);
            })) {
            computed[i] = 1;
            engine.reportCell(t.spec.name + std::string(":") +
                                  strategyName(strategy),
                              defects, c.rep, outcomes[i].accuracy);
            return;
        }
        if (!config.inShard(i))
            return;

        MitigationSetup setup{
            config.array,
            t.logical,
            t.ds,
            retrainHyper(t.hyper, config.retrainScale),
            t.baseline,
            config.folds,
            config.bist,
            config.backend,
        };

        // Identical physical defects for every strategy of this
        // (task, variant, rep): the inject stream has no strategy
        // coordinate.
        auto inject = [&](HardwareBackend &accel) {
            if (defects <= 0)
                return;
            Rng inject_rng = Rng::substream(
                config.seed, {kStreamInject, c.task, c.variant,
                              static_cast<uint64_t>(c.rep)});
            DefectInjector injector(accel, config.injectPool,
                                    config.weighting);
            injector.inject(defects, inject_rng);
        };

        // Keyed by the stable strategy id, not the lineup index:
        // a strategy's stream (and thus its whole curve) must not
        // move when the lineup around it is reordered or trimmed.
        Rng rng = Rng::substream(
            config.seed, {kStreamCell, c.task, c.variant,
                          static_cast<uint64_t>(strategy),
                          static_cast<uint64_t>(c.rep)});
        outcomes[i] = makeMitigator(strategy)->run(setup, inject, rng);
        computed[i] = 1;
        if (config.journal) {
            const MitigationOutcome &o = outcomes[i];
            config.journal->store(
                key, "{\"accuracy\":" + jsonNumber(o.accuracy) +
                    ",\"coverage\":" + jsonNumber(o.coverage) +
                    ",\"diagnosed\":" + std::to_string(o.diagnosed) +
                    ",\"mitigated_units\":" +
                    std::to_string(o.mitigatedUnits) +
                    ",\"sim\":" + o.sim.toJson() + "}");
        }
        engine.reportCell(t.spec.name + std::string(":") +
                              strategyName(strategy),
                          defects, c.rep, outcomes[i].accuracy);
    });

    // Deterministic accumulation in cell-index order. Only computed
    // cells contribute: a shard split can starve a (strategy, defect)
    // pair entirely, and folding the default-constructed placeholders
    // in would poison its means (accuracy 0, coverage 1) while
    // looking like data. A starved point instead reports samples == 0
    // with all-zero means (the RunningStat empty contract — no NaN).
    size_t n_var = config.defectCounts.size();
    size_t n_strat = config.strategies.size();
    struct PointStat
    {
        RunningStat accuracy, coverage, mitigated;
    };
    std::vector<PointStat> stats(specs.size() * n_strat * n_var);
    std::vector<SimCounters> curveSim(specs.size() * n_strat);
    SimCounters totalSim;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (!computed[i])
            continue;
        const Cell &c = cells[i];
        PointStat &p = stats[(c.task * n_strat + c.strat) * n_var +
                             c.variant];
        p.accuracy.add(outcomes[i].accuracy);
        p.coverage.add(outcomes[i].coverage);
        p.mitigated.add(outcomes[i].mitigatedUnits);
        curveSim[c.task * n_strat + c.strat].merge(outcomes[i].sim);
        totalSim.merge(outcomes[i].sim);
    }
    logSimCounters("mitigation", totalSim);

    std::vector<MitigationCurve> curves;
    curves.reserve(specs.size() * n_strat);
    for (size_t t = 0; t < specs.size(); ++t)
        for (size_t s = 0; s < n_strat; ++s) {
            MitigationCurve curve;
            curve.task = specs[t].name;
            curve.strategy = config.strategies[s];
            curve.sim = curveSim[t * n_strat + s];
            curve.cost = mitigationCost(config.strategies[s],
                                        config.array, ctx[t]->logical,
                                        config.bist, config.backend);
            // The Pareto y coordinate: mean accuracy over the
            // defective points, weighting each defect count equally
            // (matching how Fig 10 curves are read).
            RunningStat pareto;
            for (size_t d = 0; d < n_var; ++d) {
                const PointStat &p = stats[(t * n_strat + s) * n_var + d];
                curve.points.push_back({config.defectCounts[d],
                                        p.accuracy.mean(),
                                        p.accuracy.stddev(),
                                        p.coverage.mean(),
                                        p.mitigated.mean(),
                                        static_cast<long>(
                                            p.accuracy.count())});
                if (config.defectCounts[d] > 0 &&
                    p.accuracy.count() > 0)
                    pareto.add(p.accuracy.mean());
            }
            curve.paretoAccuracy = pareto.mean();
            curves.push_back(std::move(curve));
        }
    return curves;
}

std::string
MitigationCurve::toJson() const
{
    std::string out = "{\"figure\":\"mitigation\",\"task\":" +
        jsonString(task);
    out += ",\"strategy\":" + jsonString(strategyName(strategy));
    out += ",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"defects\":" + std::to_string(points[i].defects);
        out += ",\"accuracy\":" + jsonNumber(points[i].accuracy);
        out += ",\"stddev\":" + jsonNumber(points[i].stddev);
        out += ",\"coverage\":" + jsonNumber(points[i].coverage);
        out += ",\"mitigated\":" + jsonNumber(points[i].mitigated);
        out += ",\"count\":" + std::to_string(points[i].samples) + "}";
    }
    out += "],\"cost\":" + cost.toJson();
    out += ",\"pareto\":{\"accuracy\":" + jsonNumber(paretoAccuracy);
    out += ",\"area_overhead\":" + jsonNumber(cost.areaOverhead);
    out += ",\"energy_overhead\":" + jsonNumber(cost.energyOverhead);
    out += "}";
    out += ",\"sim\":" + sim.toJson() + "}";
    return out;
}

} // namespace dtann
