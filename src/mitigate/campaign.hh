/**
 * @file
 * Head-to-head mitigation campaign.
 *
 * Sweeps defect counts x mitigation strategies over the benchmark
 * tasks on the parallel CampaignEngine, producing one
 * accuracy-vs-defects curve per (task, strategy) — directly
 * comparable to Fig 10 — annotated with the measured diagnosis
 * coverage. Every strategy of a given (task, defect count,
 * repetition) cell faces *identical* physical defects: the
 * injection stream is derived without the strategy coordinate.
 */

#ifndef DTANN_MITIGATE_CAMPAIGN_HH
#define DTANN_MITIGATE_CAMPAIGN_HH

#include "core/campaign.hh"
#include "mitigate/mitigator.hh"

namespace dtann {

/** Scaling knobs of the mitigation campaign. */
struct MitigationConfig : CampaignConfig
{
    std::vector<int> defectCounts = {0, 2, 4, 8, 14, 20};
    std::vector<Strategy> strategies = {
        Strategy::NoOp, Strategy::RetrainOnly, Strategy::BypassFaulty,
        Strategy::RemapToSpares};
    /** Diagnosis budget used by the map-driven strategies. */
    BistConfig bist;
    /**
     * Defects land anywhere in the array by default (unlike Fig 10's
     * input+hidden pool) so the output-layer weak spot that
     * RemapToSpares addresses is part of the comparison.
     */
    SitePool injectPool = SitePool::all();

    /** JSON object (spec echo). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static MitigationConfig fromJson(const JsonValue &v);
};

/** One (defect count, accuracy) point of a strategy's curve. */
struct MitigationPoint
{
    int defects;
    double accuracy;
    double stddev;
    double coverage;  ///< mean diagnosis coverage vs ground truth
    double mitigated; ///< mean units bypassed / outputs remapped
};

/** Accuracy-vs-defects curve of one (task, strategy) pair. */
struct MitigationCurve
{
    std::string task;
    Strategy strategy;
    std::vector<MitigationPoint> points;
    SimCounters sim; ///< gate-simulation work over this curve's cells

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/**
 * Run the mitigation campaign; curves are ordered task-major, then
 * by the config's strategy order. Bit-identical for any thread
 * count.
 */
std::vector<MitigationCurve>
runMitigationCampaign(const MitigationConfig &config);

} // namespace dtann

#endif // DTANN_MITIGATE_CAMPAIGN_HH
