/**
 * @file
 * Head-to-head mitigation campaign.
 *
 * Sweeps defect counts x mitigation strategies over the benchmark
 * tasks on the parallel CampaignEngine, producing one
 * accuracy-vs-defects curve per (task, strategy) — directly
 * comparable to Fig 10 — annotated with the measured diagnosis
 * coverage. Every strategy of a given (task, defect count,
 * repetition) cell faces *identical* physical defects: the
 * injection stream is derived without the strategy coordinate.
 */

#ifndef DTANN_MITIGATE_CAMPAIGN_HH
#define DTANN_MITIGATE_CAMPAIGN_HH

#include "core/campaign.hh"
#include "mitigate/mitigator.hh"

namespace dtann {

/** Scaling knobs of the mitigation campaign. */
struct MitigationConfig : CampaignConfig
{
    std::vector<int> defectCounts = {0, 2, 4, 8, 14, 20};
    /** Every implemented strategy races by default. */
    std::vector<Strategy> strategies = allStrategies();
    /** Diagnosis budget used by the map-driven strategies. */
    BistConfig bist;
    /**
     * Defects land anywhere in the array by default (unlike Fig 10's
     * input+hidden pool) so the output-layer weak spot that
     * RemapToSpares addresses is part of the comparison.
     */
    SitePool injectPool = SitePool::all();

    /** JSON object (spec echo). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static MitigationConfig fromJson(const JsonValue &v);
};

/** One (defect count, accuracy) point of a strategy's curve. */
struct MitigationPoint
{
    int defects;
    double accuracy;
    double stddev;
    double coverage;  ///< mean diagnosis coverage vs ground truth
    double mitigated; ///< mean units bypassed / outputs remapped
    /** Cells aggregated into this point. A sharded run can starve a
     *  (strategy, defect) pair entirely — then the count is 0 and
     *  the means above are 0 by the RunningStat empty contract
     *  (never NaN). */
    long samples = 0;
};

/**
 * Hardware budget of one (task, strategy) pair, costed from the
 * same netlist-measured transistor counts as core/cost_model's
 * Table III calibration. Overheads are fractions of the base
 * array's area / per-row energy. Spare output rows count against
 * the strategies that *require* them (remap, replicate): a chip
 * provisioned for any other strategy could omit those rows.
 * Scan-access logic is static in mission mode, so it contributes
 * area but not per-row energy; the BIST vector budget is one-time
 * configuration work reported explicitly rather than folded into
 * the per-row numbers.
 */
struct MitigationCost
{
    int spareRows = 0;             ///< provisioned spare output rows
    int bistVectorsPerUnit = 0;    ///< diagnosis budget (0 = blind)
    size_t missionTransistors = 0; ///< added logic toggling per row
    size_t testTransistors = 0;    ///< scan access (static in mission)
    double areaOverhead = 0.0;     ///< added area / base array area
    double energyOverhead = 0.0;   ///< added row energy / base row energy

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/**
 * Cost @p s on @p array for a task mapped as @p logical, with unit
 * populations counted for @p backend (the systolic grid shares its
 * PEs between both passes and provisions no spare rows). Overhead
 * ratios are always reported against the paper's spatial base
 * array, keeping them comparable across backends.
 */
MitigationCost mitigationCost(Strategy s,
                              const AcceleratorConfig &array,
                              MlpTopology logical,
                              const BistConfig &bist,
                              BackendKind backend =
                                  BackendKind::Spatial);

/** Accuracy-vs-defects curve of one (task, strategy) pair. */
struct MitigationCurve
{
    std::string task;
    Strategy strategy;
    std::vector<MitigationPoint> points;
    SimCounters sim; ///< gate-simulation work over this curve's cells
    /** The strategy's hardware budget on this task's mapping. */
    MitigationCost cost;
    /** Mean accuracy over the defective points (defects > 0) — the
     *  y coordinate of this curve's accuracy-vs-area/energy Pareto
     *  point (cost carries the x coordinates). */
    double paretoAccuracy = 0.0;

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/**
 * Run the mitigation campaign; curves are ordered task-major, then
 * by the config's strategy order. Bit-identical for any thread
 * count.
 */
std::vector<MitigationCurve>
runMitigationCampaign(const MitigationConfig &config);

} // namespace dtann

#endif // DTANN_MITIGATE_CAMPAIGN_HH
