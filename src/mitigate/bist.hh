/**
 * @file
 * BIST-style defect diagnosis.
 *
 * A built-in self-test pass isolates each unit instance of the
 * array through the scan access path (HardwareBackend::bist*) and
 * drives a configurable budget of test vectors through it — two
 * deterministic corner vectors followed by random ones — comparing
 * each response against the native fixed-point reference. Any
 * mismatch flags the unit in the DefectMap.
 *
 * Coverage is imperfect by construction: a small vector budget can
 * miss faults that only disturb rare input patterns, and some
 * transistor defects never alter the unit's function at all (e.g.
 * delay faults on non-critical paths, defects masked by the B-block
 * resolution). The measured coverage / false-negative rate against
 * the injector's ground truth is itself an experimental output.
 */

#ifndef DTANN_MITIGATE_BIST_HH
#define DTANN_MITIGATE_BIST_HH

#include "core/injector.hh"
#include "mitigate/defect_map.hh"

namespace dtann {

/** Knobs of one diagnosis pass. */
struct BistConfig
{
    /** Units to probe (diagnosis sweeps the whole array by default). */
    SitePool pool = SitePool::all();
    /** Test vectors per unit instance (>= 1). The first two vectors
     *  are deterministic corners (all-zeros, all-ones); the rest are
     *  random. */
    int vectorsPerUnit = 12;
};

/** Outcome of one diagnosis pass. */
struct BistResult
{
    DefectMap map;             ///< flagged unit instances
    size_t unitsTested = 0;    ///< unit instances probed
    size_t vectorsApplied = 0; ///< total vectors driven
};

/**
 * Run one BIST pass over @p accel. Probing exercises faulty units'
 * gate-level simulations (their internal state advances) and resets
 * the deviation probes afterwards; installed weights are untouched.
 * The probed population is the backend's own physical site
 * enumeration, so a shared systolic PE is tested once, not once per
 * pass that routes through it.
 */
BistResult runBist(HardwareBackend &accel, const BistConfig &config,
                   Rng &rng);

/**
 * Run one BIST pass and score it against the injector's ground
 * truth in one step. When @p out is non-null the defect map is
 * copied there for use by a mitigation strategy.
 */
DiagnosisReport diagnose(HardwareBackend &accel,
                         const BistConfig &config, Rng &rng,
                         DefectMap *out = nullptr);

} // namespace dtann

#endif // DTANN_MITIGATE_BIST_HH
