/**
 * @file
 * Map-driven selective replication of critical output neurons onto
 * spare rows, RedMulE-FT style (replication + voting).
 *
 * Where RemapToSpares *moves* a diagnosed-faulty logical output off
 * its physical row, replication keeps the suspect row in place and
 * recruits spare rows to compute additional copies of the same
 * logical output; the spare-array median voter (core/spare's
 * medianVote rule) merges the copies. With two clean spares the
 * vote is a median-of-3 that rejects the broken copy outright even
 * when the diagnosis is wrong about *which* unit failed — the
 * robustness margin remapping lacks — at the price of burning two
 * spare rows per critical output instead of one.
 */

#ifndef DTANN_MITIGATE_REPLICATE_HH
#define DTANN_MITIGATE_REPLICATE_HH

#include "core/accelerator.hh"
#include "mitigate/defect_map.hh"

namespace dtann {

/**
 * Plan the replication groups for @p map: entry k lists the
 * physical output rows voting for logical output k, the original
 * row k always first. Clean rows stay singleton (no vote). A
 * diagnosed-faulty row recruits up to two clean spare rows (rows
 * logical.outputs .. cfg.outputs-1, taken in ascending order, each
 * used once) for a median-of-3; when only one spare remains the
 * pair averages (halving the deviation); when spares run out the
 * row degrades gracefully to retrain-only. A row counts as faulty
 * when any output-layer unit on it is suspect.
 */
std::vector<std::vector<int>>
planOutputReplication(const DefectMap &map, MlpTopology logical,
                      const AcceleratorConfig &cfg);

/** ForwardModel voting replicated output rows per logical output. */
class ReplicatedOutputMlp : public ForwardModel
{
  public:
    /**
     * @param accel physical array, mapped with the extended
     *        topology {inputs, hidden, cfg.outputs} so every
     *        physical output row is addressable
     * @param logical the task network
     * @param groups voting rows per logical output (from
     *        planOutputReplication); rows must be distinct across
     *        all groups and in range
     */
    ReplicatedOutputMlp(Accelerator &accel, MlpTopology logical,
                        std::vector<std::vector<int>> groups);

    MlpTopology topology() const override { return logical; }

    /** Write logical output row k onto every row of its group
     *  (unused rows hold zero weights). */
    void setWeights(const MlpWeights &w) override;

    /** Forward, voting each logical output over its group. */
    Activations forward(std::span<const double> input) override;

    /** Batched forward through the accelerator's lane path, voting
     *  per row like forward(). */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Work counters of the backing accelerator's faulty units. */
    SimCounters simCounters() const override
    {
        return accel.simCounters();
    }

    /** The active replication groups. */
    const std::vector<std::vector<int>> &replicationGroups() const
    {
        return groups;
    }

    /** Spare rows recruited beyond the original ones. */
    int spareRowsUsed() const;

    /** The topology the accelerator must be mapped with (same
     *  extended mapping the remap strategy uses). */
    static MlpTopology extendedTopology(MlpTopology logical,
                                        const AcceleratorConfig &cfg);

  private:
    Accelerator &accel;
    MlpTopology logical;
    std::vector<std::vector<int>> groups;

    /** Vote one physical output vector into logical outputs. */
    void vote(const std::vector<double> &phys,
              std::vector<double> &out) const;
};

} // namespace dtann

#endif // DTANN_MITIGATE_REPLICATE_HH
