#include "mitigate/defect_map.hh"

#include <algorithm>

#include "common/json.hh"

namespace dtann {

DefectMap
DefectMap::fromGroundTruth(const Accelerator &accel)
{
    DefectMap map;
    for (const UnitSite &s : accel.faultySites())
        map.markSuspect(s);
    return map;
}

void
DefectMap::markSuspect(const UnitSite &site)
{
    sites.insert(site);
}

bool
DefectMap::suspect(const UnitSite &site) const
{
    return sites.find(site) != sites.end();
}

std::vector<UnitSite>
DefectMap::suspects() const
{
    return {sites.begin(), sites.end()};
}

std::vector<UnitSite>
DefectMap::suspectsIn(Layer layer) const
{
    std::vector<UnitSite> out;
    for (const UnitSite &s : sites)
        if (s.layer == layer)
            out.push_back(s);
    return out;
}

std::vector<int>
DefectMap::suspectNeurons(Layer layer) const
{
    std::vector<int> neurons;
    for (const UnitSite &s : sites)
        if (s.layer == layer)
            neurons.push_back(s.neuron);
    std::sort(neurons.begin(), neurons.end());
    neurons.erase(std::unique(neurons.begin(), neurons.end()),
                  neurons.end());
    return neurons;
}

std::string
DefectMap::toJson() const
{
    std::string out = "[";
    bool first = true;
    for (const UnitSite &s : sites) {
        if (!first)
            out += ",";
        first = false;
        out += jsonString(s.describe());
    }
    return out + "]";
}

double
DiagnosisReport::coverage() const
{
    int faults = truePositives + falseNegatives;
    if (faults == 0)
        return 1.0;
    return static_cast<double>(truePositives) / faults;
}

std::string
DiagnosisReport::toJson() const
{
    std::string out = "{\"units_tested\":" +
        std::to_string(unitsTested);
    out += ",\"vectors_applied\":" + std::to_string(vectorsApplied);
    out += ",\"true_positives\":" + std::to_string(truePositives);
    out += ",\"false_positives\":" + std::to_string(falsePositives);
    out += ",\"false_negatives\":" + std::to_string(falseNegatives);
    out += ",\"coverage\":" + jsonNumber(coverage()) + "}";
    return out;
}

DiagnosisReport
scoreDiagnosis(const DefectMap &map,
               const std::vector<UnitSite> &ground_truth)
{
    DiagnosisReport r;
    std::set<UnitSite> truth(ground_truth.begin(), ground_truth.end());
    for (const UnitSite &s : truth) {
        if (map.suspect(s))
            ++r.truePositives;
        else
            ++r.falseNegatives;
    }
    for (const UnitSite &s : map.suspects())
        if (truth.find(s) == truth.end())
            ++r.falsePositives;
    return r;
}

} // namespace dtann
