/**
 * @file
 * Map-driven remapping of logical outputs onto spare physical rows.
 *
 * The paper's spare-output mitigation replicates *every* logical
 * output blindly (SparedOutputMlp). With a defect map, the same
 * physical spare rows can be used far more cheaply: each logical
 * output keeps its own physical row unless that row is diagnosed
 * faulty, in which case it is routed to a clean spare row. Only a
 * small steering mux per logical output is needed, and one set of
 * spares serves any number of logical outputs.
 */

#ifndef DTANN_MITIGATE_REMAP_HH
#define DTANN_MITIGATE_REMAP_HH

#include "core/accelerator.hh"
#include "mitigate/defect_map.hh"

namespace dtann {

/**
 * Plan the logical-output -> physical-row assignment for @p map:
 * row k stays at k when clean; a diagnosed-faulty row is moved to
 * the lowest clean spare row (rows logical.outputs ..
 * cfg.outputs-1). A row counts as faulty when any output-layer unit
 * on it is suspect. When spares run out, remaining faulty rows keep
 * their original position (mitigation degrades gracefully to
 * retrain-only for them).
 */
std::vector<int> planOutputRemap(const DefectMap &map,
                                 MlpTopology logical,
                                 const AcceleratorConfig &cfg);

/** ForwardModel steering logical outputs onto remapped rows. */
class RemappedOutputMlp : public ForwardModel
{
  public:
    /**
     * @param accel physical array, mapped with the extended
     *        topology {inputs, hidden, cfg.outputs} so every
     *        physical output row is addressable
     * @param logical the task network
     * @param row_map physical output row per logical output (from
     *        planOutputRemap); rows must be distinct and in range
     */
    RemappedOutputMlp(Accelerator &accel, MlpTopology logical,
                      std::vector<int> row_map);

    MlpTopology topology() const override { return logical; }

    /** Write logical output rows onto their mapped physical rows
     *  (unmapped rows hold zero weights). */
    void setWeights(const MlpWeights &w) override;

    /** Forward, reading each logical output from its mapped row. */
    Activations forward(std::span<const double> input) override;

    /** Batched forward through the accelerator's 64-lane path,
     *  steered like forward(). */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Work counters of the backing accelerator's faulty units. */
    SimCounters simCounters() const override
    {
        return accel.simCounters();
    }

    /** The active assignment. */
    const std::vector<int> &rowMap() const { return map; }

    /** Number of logical outputs steered away from their row. */
    int remappedCount() const;

    /** The topology the accelerator must be mapped with. */
    static MlpTopology extendedTopology(MlpTopology logical,
                                        const AcceleratorConfig &cfg);

  private:
    Accelerator &accel;
    MlpTopology logical;
    std::vector<int> map;
};

} // namespace dtann

#endif // DTANN_MITIGATE_REMAP_HH
