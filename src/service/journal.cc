#include "service/journal.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/spec.hh"

namespace dtann {

namespace {

/**
 * Does the stored header echo bind to the same campaign as the
 * current one? Byte equality first; failing that, re-parse the
 * stored echo through the spec parser and compare the canonical
 * journal echoes. That accepts journals written by an older build
 * whose echo simply lacks fields the parser now defaults (e.g.
 * pre-backend journals, which implicitly meant "backend":"spatial")
 * while still rejecting every echo that decodes to a different
 * campaign.
 */
bool
specEchoCompatible(const std::string &stored,
                   const std::string &current)
{
    if (stored == current)
        return true;
    try {
        return ScenarioSpec::parse(stored).journalEcho() == current;
    } catch (const JsonError &) {
        return false;
    }
}

} // namespace

ResultJournal::ResultJournal(const std::string &path,
                             const std::string &specEcho)
    : spec(specEcho)
{
    // Writer lock first: hold an advisory exclusive flock on the
    // file before reading a single byte, so a concurrent
    // driver/daemon can neither race our resume scan nor interleave
    // appends. The fd stays open (and locked) for the journal's
    // lifetime; flock is per open-file-description, so a second
    // open — even in this process — conflicts as intended.
    lockFd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (lockFd < 0)
        throw std::runtime_error("cannot open journal '" + path +
                                 "': " + std::strerror(errno));
    if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) {
        int err = errno;
        ::close(lockFd);
        lockFd = -1;
        if (err == EWOULDBLOCK)
            throw std::runtime_error(
                "journal '" + path +
                "' is locked by another process (a driver or daemon "
                "is already resuming this campaign); wait for it to "
                "finish or use a different --journal file");
        throw std::runtime_error("cannot lock journal '" + path +
                                 "': " + std::strerror(err));
    }

    bool have_header = false;
    try {
        std::ifstream in(path);
        std::string line;
        size_t lineno = 0;
        while (in && std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            if (!have_header) {
                // A corrupt header is not recoverable: without it
                // we cannot tell whose cells these are.
                JsonValue v = jsonParse(line);
                if (v.at("journal").asString() != "dtann")
                    throw JsonError(
                        "'" + path +
                        "' is not a dtann results journal");
                if (!specEchoCompatible(v.at("spec").asString(),
                                        specEcho))
                    throw JsonError(
                        "journal '" + path +
                        "' was written by a different spec; point "
                        "--journal at a fresh file or delete it");
                have_header = true;
                continue;
            }
            try {
                JsonValue v = jsonParse(line);
                cells[v.at("cell").asString()] =
                    v.at("payload").asString();
            } catch (const JsonError &e) {
                // Typically the partial trailing line of a killed
                // run.
                warn("journal '%s' line %zu is unreadable (%s); "
                     "skipping it",
                     path.c_str(), lineno, e.what());
            }
        }
    } catch (...) {
        // The destructor will not run for a half-constructed
        // object; drop the lock here.
        ::close(lockFd);
        lockFd = -1;
        throw;
    }
    resumed = cells.size();

    // A killed run can leave a partial record with no trailing
    // newline; appending straight onto it would corrupt the next
    // record too. Seal such a tail with a newline so the partial
    // line stays an isolated (warned, skipped) casualty.
    bool seal_tail = false;
    {
        std::ifstream tail(path, std::ios::binary | std::ios::ate);
        if (tail && tail.tellg() > 0) {
            tail.seekg(-1, std::ios::end);
            char last = '\n';
            tail.get(last);
            seal_tail = last != '\n';
        }
    }

    out.open(path, std::ios::app);
    if (!out) {
        ::close(lockFd);
        lockFd = -1;
        throw std::runtime_error("cannot open journal '" + path +
                                 "' for writing");
    }
    if (seal_tail) {
        out << "\n";
        out.flush();
    }
    if (!have_header) {
        out << "{\"journal\":\"dtann\",\"version\":1,\"spec\":"
            << jsonString(specEcho) << "}\n";
        out.flush();
    }
}

ResultJournal::~ResultJournal()
{
    if (lockFd >= 0)
        ::close(lockFd); // releases the flock
}

bool
ResultJournal::lookup(const CellKey &key, std::string &payload)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = cells.find(key.toString());
    if (it == cells.end())
        return false;
    payload = it->second;
    return true;
}

void
ResultJournal::store(const CellKey &key, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mu);
    storeLocked(key.toString(), payload);
}

void
ResultJournal::storeLocked(const std::string &key,
                           const std::string &payload)
{
    if (!cells.emplace(key, payload).second)
        return; // already journaled; keep the file append-once
    out << "{\"cell\":" << jsonString(key)
        << ",\"payload\":" << jsonString(payload) << "}\n";
    out.flush();
}

size_t
ResultJournal::absorb(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        warn("cannot read shard journal '%s'; skipping it",
             path.c_str());
        return 0;
    }
    std::lock_guard<std::mutex> lock(mu);
    size_t added = 0;
    size_t before = cells.size();
    bool have_header = false;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        try {
            JsonValue v = jsonParse(line);
            if (!have_header) {
                if (v.at("journal").asString() != "dtann" ||
                    !specEchoCompatible(v.at("spec").asString(),
                                        spec)) {
                    warn("shard journal '%s' belongs to a different "
                         "spec; skipping it",
                         path.c_str());
                    return 0;
                }
                have_header = true;
                continue;
            }
            storeLocked(v.at("cell").asString(),
                        v.at("payload").asString());
        } catch (const JsonError &e) {
            if (!have_header) {
                warn("shard journal '%s' has no readable header "
                     "(%s); skipping it",
                     path.c_str(), e.what());
                return 0;
            }
            // Typically the partial trailing line of a killed
            // worker; the replay recomputes that cell.
            warn("shard journal '%s' line %zu is unreadable (%s); "
                 "skipping it",
                 path.c_str(), lineno, e.what());
        }
    }
    added = cells.size() - before;
    return added;
}

} // namespace dtann
