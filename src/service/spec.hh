/**
 * @file
 * Scenario specs: one JSON document describes one campaign.
 *
 * A spec names a campaign kind ("fig5", "fig10", "fig11",
 * "mitigation") and carries that kind's config fields inline —
 * parsed into the existing config structs through their fromJson()
 * constructors, which are symmetric with toJson(), so
 * parse(spec.toJson()) is the identity. The dtann_campaign driver
 * runs any spec through the campaign runners (service/runner.hh);
 * the benches build their specs from service/builtin_specs.hh.
 *
 * Fig 5 is the one kind whose paper experiment sweeps an axis the
 * per-run config cannot express (operator x defect count), so its
 * spec level is a Fig5Sweep that expand()s into per-variant
 * Fig5Configs with counter-derived per-variant seeds.
 */

#ifndef DTANN_SERVICE_SPEC_HH
#define DTANN_SERVICE_SPEC_HH

#include <string>
#include <vector>

#include "core/campaign.hh"
#include "mitigate/campaign.hh"

namespace dtann {

/**
 * The Fig 5 sweep axes: operators x defect counts, cross-producted
 * by expand() into independent Fig5Config variants.
 */
struct Fig5Sweep : CampaignRunConfig
{
    Fig5Sweep() { repetitions = 1000; }

    std::vector<Fig5Operator> operators = {Fig5Operator::Adder4};
    std::vector<int> defectCounts = {1};
    FaStyle style = FaStyle::Nand9;

    /** JSON object (spec echo). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static Fig5Sweep fromJson(const JsonValue &v);

    /**
     * Cross-product the axes into one Fig5Config per (operator,
     * defect count) cell, operator-major. Every variant derives its
     * own seed (seed + defects + 1000 * operator index) so results
     * are independent of sweep order; journal/threads/progress are
     * propagated verbatim.
     */
    std::vector<Fig5Config> expand() const;
};

/**
 * One parsed scenario spec. Exactly the config matching `kind` is
 * meaningful; the others stay default-constructed.
 */
struct ScenarioSpec
{
    std::string kind; ///< "fig5" | "fig10" | "fig11" | "mitigation"
    /** Export name (JSON file stem, journal display); default kind. */
    std::string name;

    Fig5Sweep fig5;
    Fig10Config fig10;
    Fig11Config fig11;
    MitigationConfig mitigation;

    /** The active kind's execution knobs (seed/threads/journal/...). */
    CampaignRunConfig &runConfig();
    const CampaignRunConfig &runConfig() const;

    /**
     * The active kind's network-campaign config, or nullptr for
     * fig5 (an operator sweep — no network, no hardware backend).
     */
    const CampaignConfig *campaignConfig() const;

    /**
     * Resolved hardware-target name of the active kind ("spatial",
     * "systolic", ...), or "" for fig5.
     */
    std::string backendLabel() const;

    /**
     * Canonical JSON echo: {"kind":..., "name":..., <config
     * fields>}. Execution-context members that are not data
     * (progress callback, journal pointer) are not part of it.
     */
    std::string toJson() const;

    /**
     * The echo a results journal binds to: toJson() with the worker
     * thread count normalized to 0. Campaign results are
     * bit-identical for any thread count, so a journal written at
     * one width must resume at another; every other field changes
     * the campaign's results and therefore the journal identity.
     */
    std::string journalEcho() const;

    /** Symmetric counterpart of toJson(); throws JsonError. */
    static ScenarioSpec fromJson(const JsonValue &v);

    /** Parse a spec document; throws JsonError with position info. */
    static ScenarioSpec parse(const std::string &text);
};

/** The valid spec kinds, for error messages and --list. */
std::vector<std::string> scenarioKinds();

} // namespace dtann

#endif // DTANN_SERVICE_SPEC_HH
