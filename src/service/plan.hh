/**
 * @file
 * Spec admission: expand a parsed scenario spec into its cell plan
 * without running anything.
 *
 * planSpec() enumerates exactly the (task, variant, repetitions)
 * groups the campaign runners will schedule — the daemon admits
 * every submitted job through it (rejecting bad specs before they
 * reach the queue, and sizing the job's progress fraction), and
 * `dtann_campaign --validate` prints it as a dry run. Keeping one
 * enumeration path means the daemon's advertised cell count always
 * matches what the runners actually execute (ScenarioResult.cells),
 * which the service tests assert.
 */

#ifndef DTANN_SERVICE_PLAN_HH
#define DTANN_SERVICE_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "service/spec.hh"

namespace dtann {

/** One (task, variant) group of identical-shape cells. */
struct PlanRow
{
    std::string task;    ///< task or operator name
    std::string variant; ///< swept-axis coordinates (CellKey form)
    size_t reps = 0;     ///< repetitions scheduled for the group
};

/** The expanded cell plan of one spec. */
struct SpecPlan
{
    size_t cells = 0; ///< total cells (== ScenarioResult.cells)
    std::vector<PlanRow> rows;

    /** {"cells":N,"rows":[{"task":...,"variant":...,"reps":N}...]} */
    std::string toJson() const;
};

/**
 * Expand @p spec into its plan. Performs the same validation the
 * runners would (unknown task names etc. throw), so a spec that
 * plans cleanly is admissible.
 */
SpecPlan planSpec(const ScenarioSpec &spec);

} // namespace dtann

#endif // DTANN_SERVICE_PLAN_HH
