#include "service/client.hh"

#include <utility>

#include "common/http.hh"
#include "common/json.hh"
#include "common/socket.hh"

namespace dtann {

namespace {

/** The daemon's {"error":...} message, or the raw body. */
std::string
errorMessage(const std::string &body)
{
    try {
        JsonValue v = jsonParse(body);
        return v.at("error").asString();
    } catch (const JsonError &) {
        return body.empty() ? "empty response" : body;
    }
}

/** Throw unless @p r is 2xx; returns it otherwise. */
const CampaignClient::Response &
expectOk(const CampaignClient::Response &r)
{
    if (r.status < 200 || r.status > 299)
        throw ClientError(r.status, errorMessage(r.body));
    return r;
}

} // namespace

CampaignClient::CampaignClient(std::string address)
    : addr(std::move(address))
{
}

CampaignClient::Response
CampaignClient::request(const std::string &method,
                        const std::string &target,
                        const std::string &body) const
{
    try {
        Socket conn = connectTo(addr);
        conn.writeAll(httpRequest(method, target, body));

        HttpParser parser(HttpParser::Mode::Response);
        char buf[4096];
        while (parser.state() == HttpParser::State::NeedMore) {
            size_t n = conn.readSome(buf, sizeof(buf));
            if (n == 0) {
                parser.finish();
                break;
            }
            parser.feed(buf, n);
        }
        if (parser.state() != HttpParser::State::Done)
            throw ClientError(0, "daemon at " + addr +
                                     " sent an unparseable response: " +
                                     parser.errorMessage());
        return {parser.message().status, parser.message().body};
    } catch (const SocketError &e) {
        throw ClientError(0, std::string("cannot reach daemon at ") +
                                 addr + ": " + e.what());
    }
}

uint64_t
CampaignClient::submit(const std::string &specText) const
{
    const Response r = expectOk(request("POST", "/jobs", specText));
    try {
        return static_cast<uint64_t>(
            jsonParse(r.body).at("id").asInt());
    } catch (const JsonError &e) {
        throw ClientError(0, std::string("malformed submit response: ") +
                                 e.what());
    }
}

std::string
CampaignClient::status(uint64_t id) const
{
    return expectOk(request("GET", "/jobs/" + std::to_string(id)))
        .body;
}

std::string
CampaignClient::result(uint64_t id) const
{
    // 202 ("still running") is a 2xx but not a result; only 200
    // carries the envelope.
    const Response r =
        request("GET", "/jobs/" + std::to_string(id) + "/result");
    if (r.status != 200)
        throw ClientError(r.status, errorMessage(r.body));
    return r.body;
}

void
CampaignClient::cancel(uint64_t id) const
{
    expectOk(request("DELETE", "/jobs/" + std::to_string(id)));
}

std::string
CampaignClient::metrics() const
{
    return expectOk(request("GET", "/metrics")).body;
}

void
CampaignClient::shutdown(bool cancelRunning) const
{
    expectOk(request("POST", cancelRunning ? "/shutdown?mode=now"
                                           : "/shutdown"));
}

} // namespace dtann
