#include "service/builtin_specs.hh"

#include <stdexcept>

namespace dtann {

namespace {

/** The documented default experiment seed (the ISCA 2012 date —
 *  the same fallback env.cc uses for DTANN_SEED). */
constexpr uint64_t kSeed = 20120609;

/** Quick-scale knobs shared by the network-level campaigns. */
void
quickNetworkScale(CampaignConfig &c)
{
    c.folds = 2;
    c.rows = 300;
    c.epochScale = 0.3;
    c.retrainScale = 0.3;
}

ScenarioSpec
fig5Spec(bool full)
{
    ScenarioSpec s;
    s.kind = s.name = "fig5";
    s.fig5.seed = kSeed;
    s.fig5.repetitions = full ? 1000 : 200;
    s.fig5.operators = {Fig5Operator::Adder4, Fig5Operator::Multiplier4};
    s.fig5.defectCounts = {1, 5, 20};
    return s;
}

ScenarioSpec
fig10Spec(bool full)
{
    ScenarioSpec s;
    s.kind = s.name = "fig10";
    s.fig10.seed = kSeed;
    if (full) {
        s.fig10.repetitions = 100;
    } else {
        s.fig10.defectCounts = {0, 3, 6, 12, 18, 24, 27, 54};
        s.fig10.repetitions = 1;
        quickNetworkScale(s.fig10);
    }
    return s;
}

ScenarioSpec
fig11Spec(bool full)
{
    ScenarioSpec s;
    s.kind = s.name = "fig11";
    s.fig11.seed = kSeed;
    if (full) {
        s.fig11.repetitions = 100;
    } else {
        s.fig11.tasks = {"iris", "ionosphere", "robot", "wine"};
        s.fig11.repetitions = 12;
        quickNetworkScale(s.fig11);
    }
    return s;
}

ScenarioSpec
mitigationSpec(bool full)
{
    ScenarioSpec s;
    s.kind = s.name = "mitigation";
    MitigationConfig &c = s.mitigation;
    c.seed = kSeed;
    // Low-class-count tasks leave spare physical output rows on the
    // 90-10-10 array for the remap strategy to use.
    if (full) {
        c.tasks = {"breast", "iris", "vehicle"};
        c.defectCounts = {0, 2, 4, 8, 14, 20, 27};
        c.repetitions = 30;
        c.bist.vectorsPerUnit = 16;
    } else {
        c.tasks = {"breast", "iris"};
        c.defectCounts = {0, 2, 4, 8, 14};
        c.repetitions = 3;
        c.rows = 240;
        c.folds = 2;
        c.epochScale = 0.3;
        c.retrainScale = 0.3;
        c.bist.vectorsPerUnit = 8;
    }
    return s;
}

} // namespace

ScenarioSpec
builtinSpec(const std::string &kind, bool full)
{
    if (kind == "fig5")
        return fig5Spec(full);
    if (kind == "fig10")
        return fig10Spec(full);
    if (kind == "fig11")
        return fig11Spec(full);
    if (kind == "mitigation")
        return mitigationSpec(full);
    throw std::invalid_argument("unknown built-in spec '" + kind + "'");
}

std::vector<std::string>
builtinSpecNames()
{
    return scenarioKinds();
}

} // namespace dtann
