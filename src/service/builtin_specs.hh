/**
 * @file
 * Built-in scenario specs: the quick/full campaign shapes the
 * figure benches used to hardcode, now expressed as ScenarioSpecs
 * so `bench_fig10` and `dtann_campaign --builtin fig10` run the
 * exact same campaign through the exact same path.
 */

#ifndef DTANN_SERVICE_BUILTIN_SPECS_HH
#define DTANN_SERVICE_BUILTIN_SPECS_HH

#include <string>
#include <vector>

#include "service/spec.hh"

namespace dtann {

/**
 * The built-in spec for @p kind ("fig5", "fig10", "fig11",
 * "mitigation") at quick (@p full = false) or paper (@p full =
 * true) scale. Quick scale preserves the shape of every paper
 * result at a fraction of the runtime; see EXPERIMENTS.md.
 *
 * @throws std::invalid_argument on unknown kinds
 */
ScenarioSpec builtinSpec(const std::string &kind, bool full);

/** Names accepted by builtinSpec() (== scenarioKinds()). */
std::vector<std::string> builtinSpecNames();

} // namespace dtann

#endif // DTANN_SERVICE_BUILTIN_SPECS_HH
