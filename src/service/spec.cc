#include "service/spec.hh"

#include "common/json.hh"

namespace dtann {

std::string
Fig5Sweep::toJson() const
{
    std::string out = "{" + jsonRunFields();
    out += ",\"operators\":[";
    for (size_t i = 0; i < operators.size(); ++i) {
        if (i > 0)
            out += ",";
        out += jsonString(fig5OperatorName(operators[i]));
    }
    out += "],\"defect_counts\":[";
    for (size_t i = 0; i < defectCounts.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(defectCounts[i]);
    }
    out += "],\"fa_style\":" + jsonString(faStyleName(style));
    out += "}";
    return out;
}

Fig5Sweep
Fig5Sweep::fromJson(const JsonValue &v)
{
    Fig5Sweep s;
    s.readRunFields(v);
    if (const JsonValue *ops = v.find("operators")) {
        s.operators.clear();
        for (const JsonValue &e : ops->items()) {
            Fig5Operator op;
            if (!fig5OperatorFromName(e.asString(), op))
                throw JsonError("unknown operator '" + e.asString() +
                                "' (expected adder4 or multiplier4)");
            s.operators.push_back(op);
        }
    }
    s.defectCounts = jsonGetIntArray(v, "defect_counts", s.defectCounts);
    std::string style = jsonGetString(v, "fa_style", faStyleName(s.style));
    if (!faStyleFromName(style, s.style))
        throw JsonError("unknown fa_style '" + style +
                        "' (expected nand9 or mirror)");
    return s;
}

std::vector<Fig5Config>
Fig5Sweep::expand() const
{
    std::vector<Fig5Config> cells;
    for (size_t o = 0; o < operators.size(); ++o)
        for (int defects : defectCounts) {
            Fig5Config c;
            static_cast<CampaignRunConfig &>(c) = *this;
            c.op = operators[o];
            c.defects = defects;
            c.style = style;
            c.seed = seed + static_cast<uint64_t>(defects) + 1000 * o;
            cells.push_back(std::move(c));
        }
    return cells;
}

CampaignRunConfig &
ScenarioSpec::runConfig()
{
    if (kind == "fig5")
        return fig5;
    if (kind == "fig10")
        return fig10;
    if (kind == "fig11")
        return fig11;
    return mitigation;
}

const CampaignRunConfig &
ScenarioSpec::runConfig() const
{
    return const_cast<ScenarioSpec *>(this)->runConfig();
}

const CampaignConfig *
ScenarioSpec::campaignConfig() const
{
    if (kind == "fig5")
        return nullptr;
    if (kind == "fig10")
        return &fig10;
    if (kind == "fig11")
        return &fig11;
    return &mitigation;
}

std::string
ScenarioSpec::backendLabel() const
{
    const CampaignConfig *c = campaignConfig();
    return c == nullptr ? "" : backendName(c->backend);
}

std::string
ScenarioSpec::toJson() const
{
    std::string config;
    if (kind == "fig5")
        config = fig5.toJson();
    else if (kind == "fig10")
        config = fig10.toJson();
    else if (kind == "fig11")
        config = fig11.toJson();
    else
        config = mitigation.toJson();
    // Splice the config fields inline after kind/name: config is
    // "{...}", so dropping its opening brace concatenates cleanly.
    return "{\"kind\":" + jsonString(kind) +
        ",\"name\":" + jsonString(name) + "," + config.substr(1);
}

std::string
ScenarioSpec::journalEcho() const
{
    ScenarioSpec normalized = *this;
    normalized.runConfig().threads = 0;
    return normalized.toJson();
}

ScenarioSpec
ScenarioSpec::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw JsonError("scenario spec must be a JSON object");
    ScenarioSpec spec;
    spec.kind = v.at("kind").asString();
    bool known = false;
    for (const std::string &k : scenarioKinds())
        known = known || k == spec.kind;
    if (!known) {
        std::string kinds;
        for (const std::string &k : scenarioKinds())
            kinds += (kinds.empty() ? "" : ", ") + k;
        throw JsonError("unknown campaign kind '" + spec.kind +
                        "' (expected one of: " + kinds + ")");
    }
    spec.name = jsonGetString(v, "name", spec.kind);
    if (spec.kind == "fig5")
        spec.fig5 = Fig5Sweep::fromJson(v);
    else if (spec.kind == "fig10")
        spec.fig10 = Fig10Config::fromJson(v);
    else if (spec.kind == "fig11")
        spec.fig11 = Fig11Config::fromJson(v);
    else
        spec.mitigation = MitigationConfig::fromJson(v);
    return spec;
}

ScenarioSpec
ScenarioSpec::parse(const std::string &text)
{
    return fromJson(jsonParse(text));
}

std::vector<std::string>
scenarioKinds()
{
    return {"fig5", "fig10", "fig11", "mitigation"};
}

} // namespace dtann
