#include "service/plan.hh"

#include "common/json.hh"
#include "mitigate/campaign.hh"

namespace dtann {

namespace {

/**
 * Task names selected by @p config, validated without touching
 * uciTask() (which exits the process on unknown names — fine for a
 * bench, fatal for a daemon admitting untrusted specs).
 */
std::vector<std::string>
plannedTasks(const CampaignConfig &config)
{
    std::vector<std::string> known;
    for (const UciTaskSpec &spec : uciTasks())
        known.push_back(spec.name);
    if (config.tasks.empty())
        return known;
    for (const std::string &name : config.tasks) {
        bool ok = false;
        for (const std::string &k : known)
            ok = ok || k == name;
        if (!ok) {
            std::string names;
            for (const std::string &k : known)
                names += (names.empty() ? "" : ", ") + k;
            throw JsonError("unknown task '" + name +
                            "' (expected one of: " + names + ")");
        }
    }
    return config.tasks;
}

void
addRow(SpecPlan &plan, std::string task, std::string variant,
       size_t reps)
{
    plan.cells += reps;
    plan.rows.push_back({std::move(task), std::move(variant), reps});
}

} // namespace

std::string
SpecPlan::toJson() const
{
    std::string out = "{\"cells\":" + std::to_string(cells);
    out += ",\"rows\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"task\":" + jsonString(rows[i].task);
        out += ",\"variant\":" + jsonString(rows[i].variant);
        out += ",\"reps\":" + std::to_string(rows[i].reps) + "}";
    }
    out += "]}";
    return out;
}

SpecPlan
planSpec(const ScenarioSpec &spec)
{
    SpecPlan plan;
    if (spec.kind == "fig5") {
        // Mirrors Fig5Sweep::expand() + runFig5: one cell per
        // repetition of each (operator, defect count) variant.
        size_t reps = static_cast<size_t>(
            std::max(0, spec.fig5.repetitions));
        for (Fig5Operator op : spec.fig5.operators)
            for (int defects : spec.fig5.defectCounts)
                addRow(plan, fig5OperatorName(op),
                       "d" + std::to_string(defects), reps);
    } else if (spec.kind == "fig10") {
        for (const std::string &task : plannedTasks(spec.fig10))
            for (size_t d = 0; d < spec.fig10.defectCounts.size();
                 ++d) {
                int defects = spec.fig10.defectCounts[d];
                addRow(plan, task,
                       "v" + std::to_string(d) + ":d" +
                           std::to_string(defects),
                       defects == 0
                           ? 1
                           : static_cast<size_t>(
                                 spec.fig10.repetitions));
            }
    } else if (spec.kind == "fig11") {
        for (const std::string &task : plannedTasks(spec.fig11))
            addRow(plan, task, "v0",
                   static_cast<size_t>(
                       std::max(0, spec.fig11.repetitions)));
    } else if (spec.kind == "mitigation") {
        const MitigationConfig &c = spec.mitigation;
        for (const std::string &task : plannedTasks(c))
            for (size_t d = 0; d < c.defectCounts.size(); ++d) {
                int defects = c.defectCounts[d];
                for (Strategy s : c.strategies)
                    addRow(plan, task,
                           "v" + std::to_string(d) + ":d" +
                               std::to_string(defects) + ":" +
                               strategyName(s),
                           defects == 0
                               ? 1
                               : static_cast<size_t>(c.repetitions));
            }
    } else {
        throw JsonError("unknown campaign kind '" + spec.kind + "'");
    }
    return plan;
}

} // namespace dtann
