/**
 * @file
 * Scenario runner: one entry point that runs any parsed spec
 * through the matching campaign and wraps the outcome in the
 * shared campaignEnvelope() export.
 *
 * This is the layer the dtann_campaign driver and the figure
 * benches share: benches build a built-in spec, the driver parses
 * one from disk, and both call runScenario(). Environment knobs are
 * applied here, in exactly one place (applyEnvOverrides), instead
 * of ad hoc throughout the benches.
 */

#ifndef DTANN_SERVICE_RUNNER_HH
#define DTANN_SERVICE_RUNNER_HH

#include <string>
#include <vector>

#include "service/spec.hh"

namespace dtann {

/**
 * Outcome of one scenario. `json` is the complete
 * campaignEnvelope() document; the typed vector matching the
 * spec kind is populated for callers (benches) that print
 * human-readable analyses, the other three stay empty.
 */
struct ScenarioResult
{
    std::string kind;
    std::string name; ///< export name (JSON file stem)
    std::string json; ///< campaignEnvelope() document
    SimCounters sim;  ///< total gate-simulation work
    size_t cells = 0; ///< campaign cells (expanded sweep size)

    std::vector<Fig5Result> fig5;
    std::vector<Fig10Curve> fig10;
    std::vector<Fig11Curve> fig11;
    std::vector<MitigationCurve> mitigation;
};

/**
 * Run @p spec through its campaign. Execution context the caller
 * set on spec.runConfig() — journal, progress callback, thread
 * override — is honoured; results are bit-identical for any thread
 * count and for any journaled prefix.
 */
ScenarioResult runScenario(const ScenarioSpec &spec);

/**
 * Apply the documented environment overrides to @p spec — the one
 * place DTANN_* knobs meet spec fields:
 *
 *  - DTANN_SEED     overrides the spec's seed (when set)
 *  - DTANN_THREADS  overrides the spec's worker thread count
 *
 * Scale knobs (DTANN_FULL) select *which* built-in spec a bench
 * builds and never mutate a parsed spec: a spec file states its
 * scale explicitly.
 */
void applyEnvOverrides(ScenarioSpec &spec);

} // namespace dtann

#endif // DTANN_SERVICE_RUNNER_HH
