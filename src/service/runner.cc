#include "service/runner.hh"

#include <cstdlib>

#include "common/env.hh"
#include "common/json.hh"

namespace dtann {

namespace {

/**
 * Config echo for the result envelope. The worker thread count is
 * an execution knob, not campaign data — results are bit-identical
 * at any width — so it is normalized to 0 here, keeping the whole
 * export reproducible across widths (and across journal resumes
 * that change the width).
 */
template <typename Config>
std::string
echoJson(const Config &config)
{
    Config echo = config;
    echo.threads = 0;
    return echo.toJson();
}

} // namespace

ScenarioResult
runScenario(const ScenarioSpec &spec)
{
    ScenarioResult r;
    r.kind = spec.kind;
    r.name = spec.name.empty() ? spec.kind : spec.name;

    std::string results;
    if (spec.kind == "fig5") {
        // The sweep expander turns the spec axes into independent
        // per-variant configs; each variant parallelises its
        // repetitions internally.
        results = "[";
        for (const Fig5Config &cell : spec.fig5.expand()) {
            Fig5Result res = runFig5(cell);
            r.sim.merge(res.sim);
            r.cells += static_cast<size_t>(res.repetitions);
            if (results.size() > 1)
                results += ",";
            results += res.toJson();
            r.fig5.push_back(std::move(res));
        }
        results += "]";
        r.json = campaignEnvelope(r.kind, echoJson(spec.fig5),
                                  spec.fig5.seed, r.sim, results);
    } else if (spec.kind == "fig10") {
        r.fig10 = runFig10(spec.fig10);
        for (const Fig10Curve &c : r.fig10) {
            r.sim.merge(c.sim);
            for (const Fig10Point &p : c.points)
                r.cells += p.defects == 0
                    ? 1
                    : static_cast<size_t>(spec.fig10.repetitions);
        }
        r.json = campaignEnvelope(r.kind, echoJson(spec.fig10),
                                  spec.fig10.seed, r.sim,
                                  toJson(r.fig10));
    } else if (spec.kind == "fig11") {
        r.fig11 = runFig11(spec.fig11);
        for (const Fig11Curve &c : r.fig11) {
            r.sim.merge(c.sim);
            r.cells += c.samples.size();
        }
        r.json = campaignEnvelope(r.kind, echoJson(spec.fig11),
                                  spec.fig11.seed, r.sim,
                                  toJson(r.fig11));
    } else {
        r.mitigation = runMitigationCampaign(spec.mitigation);
        for (const MitigationCurve &c : r.mitigation) {
            r.sim.merge(c.sim);
            for (const MitigationPoint &p : c.points)
                r.cells += p.defects == 0
                    ? 1
                    : static_cast<size_t>(
                          spec.mitigation.repetitions);
        }
        r.json = campaignEnvelope(r.kind, echoJson(spec.mitigation),
                                  spec.mitigation.seed, r.sim,
                                  toJson(r.mitigation));
    }
    return r;
}

void
applyEnvOverrides(ScenarioSpec &spec)
{
    CampaignRunConfig &run = spec.runConfig();
    // experimentSeed() falls back to the repo default when DTANN_SEED
    // is unset — only an explicitly set knob may beat the spec.
    if (std::getenv("DTANN_SEED") != nullptr)
        run.seed = experimentSeed();
    if (threadCount() != 0)
        run.threads = threadCount();
}

} // namespace dtann
