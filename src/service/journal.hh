/**
 * @file
 * File-backed results journal (the CellCache the driver plugs into
 * campaign runners for checkpoint/resume).
 *
 * Format: JSON Lines. The first line is a header binding the
 * journal to one spec; every following line is one completed cell:
 *
 *   {"journal":"dtann","version":1,"spec":"<canonical spec echo>"}
 *   {"cell":"fig10/iris/v2:d6/17","payload":"<cell result JSON>"}
 *
 * Spec echo and cell payloads are stored as JSON *strings* (escaped
 * documents) so resume compares and replays them byte-exactly — the
 * round-trip guarantee the bit-identical-resume contract rests on.
 * Cells are appended and flushed as they complete, so a killed run
 * loses at most the line being written; a partial trailing line is
 * tolerated (skipped with a warning) on reopen. Reopening with a
 * different spec echo is an error: a journal belongs to exactly one
 * campaign.
 *
 * Single-writer guard: the journal holds an advisory exclusive
 * flock(2) on the file for its whole lifetime, so two drivers (or a
 * driver and a daemon) can never resume the same journal
 * concurrently — the second opener fails immediately with a clear
 * error instead of interleaving appends.
 */

#ifndef DTANN_SERVICE_JOURNAL_HH
#define DTANN_SERVICE_JOURNAL_HH

#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "core/engine.hh"

namespace dtann {

class ResultJournal final : public CellCache
{
  public:
    /**
     * Open @p path, creating it (with a header) when absent or
     * empty, else loading its journaled cells for resume.
     *
     * @param specEcho the campaign's canonical spec JSON
     *        (ScenarioSpec::toJson() after overrides); must match
     *        the header of an existing journal byte-for-byte
     * @throws JsonError on a corrupt header or a spec mismatch
     * @throws std::runtime_error when the file cannot be opened or
     *         another process already holds its writer lock
     */
    ResultJournal(const std::string &path, const std::string &specEcho);

    /** Releases the advisory writer lock. */
    ~ResultJournal() override;

    /** Cells loaded from an existing journal at open. */
    size_t resumedCells() const { return resumed; }

    bool lookup(const CellKey &key, std::string &payload) override;
    void store(const CellKey &key, const std::string &payload) override;

    /**
     * Merge another journal file's cells into this journal (the
     * sharded-campaign index-order merge: each worker process
     * journals its shard of cells into its own file, then the
     * parent absorbs them all and replays the campaign against the
     * merged journal). @p path is read without taking its writer
     * lock — only absorb journals whose writer has exited. A file
     * whose header spec differs from ours is skipped whole with a
     * warning (the replay recomputes anything missing); unreadable
     * cell lines are skipped like at open. Returns the number of
     * cells newly added.
     */
    size_t absorb(const std::string &path);

  private:
    std::mutex mu;
    std::string spec;                         ///< bound spec echo
    std::map<std::string, std::string> cells; ///< key -> payload
    std::ofstream out;                        ///< append stream
    int lockFd = -1; ///< fd holding the advisory flock
    size_t resumed = 0;

    /** store() by canonical key string; mu must be held. */
    void storeLocked(const std::string &key,
                     const std::string &payload);
};

} // namespace dtann

#endif // DTANN_SERVICE_JOURNAL_HH
