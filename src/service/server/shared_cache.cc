#include "service/server/shared_cache.hh"

namespace dtann {

template <typename T>
std::shared_ptr<const T>
ServerCache::get(Shard<T> &shard, const std::string &key,
                 const std::function<T()> &build)
{
    std::shared_future<std::shared_ptr<const T>> fut;
    std::promise<std::shared_ptr<const T>> mine;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            ++shard.hits;
            fut = it->second;
        } else {
            ++shard.misses;
            builder = true;
            fut = mine.get_future().share();
            shard.entries.emplace(key, fut);
        }
    }
    if (!builder)
        return fut.get(); // rethrows the builder's exception, if any

    try {
        mine.set_value(std::make_shared<const T>(build()));
    } catch (...) {
        // Poisoning the entry would wedge every later requester on
        // a transient failure; drop it so the next request retries.
        {
            std::lock_guard<std::mutex> lock(mu);
            shard.entries.erase(key);
        }
        mine.set_exception(std::current_exception());
    }
    return fut.get();
}

std::shared_ptr<const TaskContext>
ServerCache::task(const std::string &key,
                  const std::function<TaskContext()> &build)
{
    return get(tasks, key, build);
}

std::shared_ptr<const Netlist>
ServerCache::netlist(const std::string &key,
                     const std::function<Netlist()> &build)
{
    return get(netlists, key, build);
}

ServerCache::Stats
ServerCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s;
    s.taskHits = tasks.hits;
    s.taskMisses = tasks.misses;
    s.netlistHits = netlists.hits;
    s.netlistMisses = netlists.misses;
    return s;
}

std::string
ServerCache::statsJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    auto shard = [](const char *name, uint64_t hits, uint64_t misses,
                    size_t entries) {
        return std::string("\"") + name +
               "\":{\"hits\":" + std::to_string(hits) +
               ",\"misses\":" + std::to_string(misses) +
               ",\"entries\":" + std::to_string(entries) + "}";
    };
    return "{" +
           shard("task", tasks.hits, tasks.misses,
                 tasks.entries.size()) +
           "," +
           shard("netlist", netlists.hits, netlists.misses,
                 netlists.entries.size()) +
           "}";
}

} // namespace dtann
