#include "service/server/job_queue.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <spawn.h>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

#include "circuit/lane_plane.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "service/journal.hh"
#include "service/runner.hh"

extern "C" char **environ;

namespace fs = std::filesystem;

namespace dtann {

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read '" + path + "'");
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

/**
 * Publish @p content at @p path via a same-directory temp file and
 * rename, so the file either exists complete or not at all — the
 * property the "result file is the done marker" protocol needs.
 */
void
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot write '" + tmp + "'");
        out << content;
        out.flush();
        if (!out)
            throw std::runtime_error("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot publish '" + path + "'");
}

/**
 * Cells journaled in @p path so far: its non-empty line count minus
 * the header. Reading a file another process is appending to is
 * fine here — lines are flushed whole, and this only feeds progress
 * reporting, never results.
 */
size_t
countJournalCells(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return 0;
    size_t lines = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    return lines > 0 ? lines - 1 : 0;
}

/** Drop the per-run context pointers before the journal dies. */
void
clearRunContext(CampaignRunConfig &run)
{
    run.journal = nullptr;
    run.cancel = nullptr;
    run.sharedPool = nullptr;
    run.contextCache = nullptr;
    run.onCellDone = nullptr;
}

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

JobQueue::JobQueue(const Config &config)
    : cfg(config), pool(config.threads)
{
    if (cfg.runners < 1)
        cfg.runners = 1;
    scanStateDir();
    for (int i = 0; i < cfg.runners; ++i)
        runners.emplace_back([this] { runnerLoop(); });
}

JobQueue::~JobQueue()
{
    shutdown(true);
}

std::string
JobQueue::jobPath(uint64_t id, const char *suffix) const
{
    return cfg.stateDir + "/job-" + std::to_string(id) + suffix;
}

std::string
JobQueue::shardJournalPath(uint64_t id, int shard) const
{
    return jobPath(id, ".jnl.shard-") + std::to_string(shard);
}

void
JobQueue::scanStateDir()
{
    fs::create_directories(cfg.stateDir);
    for (const fs::directory_entry &entry :
         fs::directory_iterator(cfg.stateDir)) {
        std::string name = entry.path().filename().string();
        // Only spec files anchor a job; everything else is derived.
        const std::string prefix = "job-", suffix = ".spec.json";
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        uint64_t id = std::stoull(digits);

        auto job = std::make_unique<Job>();
        job->id = id;
        try {
            job->specText = readFile(entry.path().string());
            job->spec = ScenarioSpec::parse(job->specText);
            job->plan = planSpec(job->spec);
        } catch (const std::exception &e) {
            // An admitted spec no longer loading means the state dir
            // was damaged; keep the job visible as failed.
            job->state = JobState::Failed;
            job->error = e.what();
            warn("state dir job %llu is unloadable: %s",
                 (unsigned long long)id, e.what());
        }

        if (job->state != JobState::Failed) {
            if (fs::exists(jobPath(id, ".result.json"))) {
                job->state = JobState::Done;
                job->cellsDone = job->plan.cells;
            } else if (fs::exists(jobPath(id, ".cancelled"))) {
                job->state = JobState::Cancelled;
            } else if (fs::exists(jobPath(id, ".error"))) {
                job->state = JobState::Failed;
                try {
                    job->error = readFile(jobPath(id, ".error"));
                } catch (const std::exception &) {
                    job->error = "failed (reason lost)";
                }
                while (!job->error.empty() &&
                       job->error.back() == '\n')
                    job->error.pop_back();
            }
        }

        if (id >= nextId)
            nextId = id + 1;
        jobs.emplace(id, std::move(job));
    }

    // Unfinished jobs resume in id (submission) order; their
    // journals replay every cell that completed before the restart.
    size_t resumed = 0;
    for (auto &kv : jobs)
        if (kv.second->state == JobState::Queued) {
            queued.push_back(kv.second.get());
            ++resumed;
        }
    if (resumed > 0)
        inform("resuming %zu unfinished job(s) from '%s'", resumed,
               cfg.stateDir.c_str());
}

uint64_t
JobQueue::submit(const std::string &specText)
{
    // Admission: a spec that parses and plans is runnable; anything
    // else is rejected here with the parser's message, before any
    // state exists.
    auto job = std::make_unique<Job>();
    job->specText = specText;
    job->spec = ScenarioSpec::parse(specText);
    job->plan = planSpec(job->spec);

    std::unique_lock<std::mutex> lock(mu);
    if (stopping)
        throw std::runtime_error("daemon is shutting down");
    uint64_t id = nextId++;
    job->id = id;
    Job *raw = job.get();
    jobs.emplace(id, std::move(job));
    lock.unlock();

    try {
        writeFileAtomic(jobPath(id, ".spec.json"), specText);
    } catch (...) {
        std::lock_guard<std::mutex> relock(mu);
        jobs.erase(id);
        throw;
    }

    lock.lock();
    queued.push_back(raw);
    wake.notify_one();
    return id;
}

std::string
JobQueue::statusJson(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = jobs.find(id);
    if (it == jobs.end())
        return "";
    const Job &job = *it->second;
    std::string out = "{\"id\":" + std::to_string(job.id);
    out += ",\"state\":" +
           jsonString(jobStateName(job.state));
    out += ",\"kind\":" + jsonString(job.spec.kind);
    out += ",\"name\":" + jsonString(job.spec.name);
    out += ",\"cells_done\":" +
           std::to_string(job.cellsDone.load());
    out += ",\"cells_total\":" + std::to_string(job.plan.cells);
    if (job.state == JobState::Failed)
        out += ",\"error\":" + jsonString(job.error);
    out += "}";
    return out;
}

JobQueue::ResultState
JobQueue::result(uint64_t id, std::string &out) const
{
    JobState state;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = jobs.find(id);
        if (it == jobs.end())
            return ResultState::Unknown;
        state = it->second->state;
        if (state == JobState::Failed)
            out = it->second->error;
    }
    switch (state) {
      case JobState::Queued:
      case JobState::Running:
        return ResultState::Pending;
      case JobState::Cancelled:
        return ResultState::Cancelled;
      case JobState::Failed:
        return ResultState::Failed;
      case JobState::Done:
        break;
    }
    // The result file is immutable once renamed into place, so it is
    // read outside the lock.
    out = readFile(jobPath(id, ".result.json"));
    return ResultState::Ready;
}

bool
JobQueue::cancel(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = jobs.find(id);
    if (it == jobs.end())
        return false;
    Job &job = *it->second;
    if (job.state == JobState::Queued) {
        for (auto q = queued.begin(); q != queued.end(); ++q)
            if (*q == &job) {
                queued.erase(q);
                break;
            }
        finishJob(job, JobState::Cancelled, "");
    } else if (job.state == JobState::Running) {
        // Cooperative: the runner observes the flag at the next cell
        // boundary and retires the job as cancelled.
        job.cancelFlag.store(true);
    }
    return true;
}

std::string
JobQueue::metricsJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    size_t counts[5] = {0, 0, 0, 0, 0};
    for (const auto &kv : jobs)
        ++counts[static_cast<int>(kv.second->state)];
    std::map<std::string, size_t> backends = backendCountsLocked();
    std::string out = "{\"jobs\":{";
    out += "\"queued\":" +
           std::to_string(counts[(int)JobState::Queued]);
    out += ",\"running\":" +
           std::to_string(counts[(int)JobState::Running]);
    out += ",\"done\":" + std::to_string(counts[(int)JobState::Done]);
    out += ",\"failed\":" +
           std::to_string(counts[(int)JobState::Failed]);
    out += ",\"cancelled\":" +
           std::to_string(counts[(int)JobState::Cancelled]);
    out += "},\"backends\":{";
    bool first_backend = true;
    for (const auto &kv : backends) {
        if (!first_backend)
            out += ",";
        first_backend = false;
        out += jsonString(kv.first) + ":" + std::to_string(kv.second);
    }
    out += "},\"queue_depth\":" + std::to_string(queued.size());
    out += ",\"workers\":" + std::to_string(pool.size());
    out += ",\"runners\":" + std::to_string(runners.size());
    out += ",\"lanes\":{\"width\":" +
           std::to_string(batchLaneWidth()) +
           ",\"isa\":" + jsonString(batchLaneIsa()) + "}";
    out += ",\"shard_workers\":" + std::to_string(cfg.shardWorkers);
    std::string shards;
    for (const auto &kv : jobs) {
        const Job &job = *kv.second;
        if (job.state != JobState::Running || job.shardCells.empty())
            continue;
        for (size_t k = 0; k < job.shardCells.size(); ++k) {
            if (!shards.empty())
                shards += ",";
            shards += "{\"job\":" + std::to_string(job.id) +
                      ",\"shard\":" + std::to_string(k) +
                      ",\"cells_done\":" +
                      std::to_string(job.shardCells[k]) + "}";
        }
    }
    out += ",\"shards\":[" + shards + "]";
    out += ",\"cache\":" + sharedCache.statsJson();
    out += ",\"sim\":" + simTotals.toJson();
    out += "}";
    return out;
}

std::map<std::string, size_t>
JobQueue::backendCountsLocked() const
{
    std::map<std::string, size_t> counts;
    counts[backendName(BackendKind::Spatial)] = 0;
    counts[backendName(BackendKind::Systolic)] = 0;
    for (const auto &kv : jobs) {
        std::string label = kv.second->spec.backendLabel();
        ++counts[label.empty() ? "none" : label];
    }
    return counts;
}

std::string
JobQueue::metricsPrometheus() const
{
    std::lock_guard<std::mutex> lock(mu);
    size_t counts[5] = {0, 0, 0, 0, 0};
    for (const auto &kv : jobs)
        ++counts[static_cast<int>(kv.second->state)];

    std::string out;
    auto header = [&](const char *name, const char *type,
                      const char *help) {
        out += std::string("# HELP ") + name + " " + help + "\n";
        out += std::string("# TYPE ") + name + " " + type + "\n";
    };

    header("dtann_jobs", "gauge", "Jobs known to the queue by state.");
    for (JobState s : {JobState::Queued, JobState::Running,
                       JobState::Done, JobState::Failed,
                       JobState::Cancelled})
        out += std::string("dtann_jobs{state=\"") + jobStateName(s) +
               "\"} " + std::to_string(counts[(int)s]) + "\n";

    header("dtann_jobs_backend", "gauge",
           "Jobs by resolved hardware backend.");
    for (const auto &kv : backendCountsLocked())
        out += "dtann_jobs_backend{backend=\"" + kv.first + "\"} " +
               std::to_string(kv.second) + "\n";

    header("dtann_queue_depth", "gauge", "Jobs waiting for a runner.");
    out += "dtann_queue_depth " + std::to_string(queued.size()) + "\n";
    header("dtann_workers", "gauge", "Shared worker pool width.");
    out += "dtann_workers " + std::to_string(pool.size()) + "\n";
    header("dtann_runners", "gauge", "Concurrent job runner threads.");
    out += "dtann_runners " + std::to_string(runners.size()) + "\n";
    header("dtann_lane_width", "gauge",
           "Negotiated batch SIMD lane width.");
    out += "dtann_lane_width " + std::to_string(batchLaneWidth()) +
           "\n";
    header("dtann_shard_workers", "gauge",
           "Shard worker processes per job (0 = in-process).");
    out += "dtann_shard_workers " + std::to_string(cfg.shardWorkers) +
           "\n";

    header("dtann_shard_cells_done", "gauge",
           "Cells journaled per worker of running sharded jobs.");
    for (const auto &kv : jobs) {
        const Job &job = *kv.second;
        if (job.state != JobState::Running || job.shardCells.empty())
            continue;
        for (size_t k = 0; k < job.shardCells.size(); ++k)
            out += "dtann_shard_cells_done{job=\"" +
                   std::to_string(job.id) + "\",shard=\"" +
                   std::to_string(k) + "\"} " +
                   std::to_string(job.shardCells[k]) + "\n";
    }

    ServerCache::Stats cache = sharedCache.stats();
    header("dtann_cache_hits_total", "counter",
           "Shared-cache hits by entry kind.");
    out += "dtann_cache_hits_total{cache=\"task\"} " +
           std::to_string(cache.taskHits) + "\n";
    out += "dtann_cache_hits_total{cache=\"netlist\"} " +
           std::to_string(cache.netlistHits) + "\n";
    header("dtann_cache_misses_total", "counter",
           "Shared-cache misses (builds) by entry kind.");
    out += "dtann_cache_misses_total{cache=\"task\"} " +
           std::to_string(cache.taskMisses) + "\n";
    out += "dtann_cache_misses_total{cache=\"netlist\"} " +
           std::to_string(cache.netlistMisses) + "\n";

    header("dtann_sim_vectors_total", "counter",
           "Faulty-operator input vectors simulated, by path.");
    out += "dtann_sim_vectors_total{path=\"scalar\"} " +
           std::to_string(simTotals.scalarVectors) + "\n";
    out += "dtann_sim_vectors_total{path=\"batch\"} " +
           std::to_string(simTotals.batchVectors) + "\n";
    header("dtann_sim_batch_sweeps_total", "counter",
           "Wide-lane batch sweeps executed.");
    out += "dtann_sim_batch_sweeps_total " +
           std::to_string(simTotals.batchSweeps) + "\n";
    header("dtann_sim_batch_lane_slots_total", "counter",
           "Lane slots provisioned across batch sweeps.");
    out += "dtann_sim_batch_lane_slots_total " +
           std::to_string(simTotals.batchLaneSlots) + "\n";
    header("dtann_sim_gate_evals_total", "counter",
           "Scalar gate evaluations executed.");
    out += "dtann_sim_gate_evals_total " +
           std::to_string(simTotals.gateEvals) + "\n";
    header("dtann_sim_lane_occupancy", "gauge",
           "Mean occupied lanes per batch sweep, in [0, 1].");
    out += "dtann_sim_lane_occupancy " +
           jsonNumber(simTotals.laneOccupancy()) + "\n";
    return out;
}

void
JobQueue::finishJob(Job &job, JobState state, const std::string &error)
{
    job.state = state;
    job.error = error;
    try {
        if (state == JobState::Cancelled)
            writeFileAtomic(jobPath(job.id, ".cancelled"), "");
        else if (state == JobState::Failed)
            writeFileAtomic(jobPath(job.id, ".error"), error + "\n");
    } catch (const std::exception &e) {
        // In-memory state stays authoritative for this lifetime; a
        // restart will re-run the job, which is safe (journaled).
        warn("cannot persist job %llu outcome: %s",
             (unsigned long long)job.id, e.what());
    }
}

void
JobQueue::runShardWorkers(Job &job)
{
    const int n = cfg.shardWorkers;
    const std::string specPath = jobPath(job.id, ".spec.json");
    {
        std::lock_guard<std::mutex> lock(mu);
        job.shardCells.assign(static_cast<size_t>(n), 0);
    }

    struct Worker
    {
        pid_t pid = -1;
        int attempts = 0;
        bool done = false;
    };
    std::vector<Worker> crew(static_cast<size_t>(n));

    auto spawn = [&](int k) {
        std::string jnl = shardJournalPath(job.id, k);
        std::string shardArg =
            std::to_string(k) + "/" + std::to_string(n);
        std::string logPath = jnl + ".log";
        const char *argv[] = {cfg.workerCmd.c_str(),
                              specPath.c_str(),
                              "--journal",
                              jnl.c_str(),
                              "--shard",
                              shardArg.c_str(),
                              "--progress",
                              "0",
                              nullptr};
        // Worker chatter goes to a per-shard log beside its
        // journal, kept for post-mortems until the job succeeds.
        posix_spawn_file_actions_t fa;
        posix_spawn_file_actions_init(&fa);
        posix_spawn_file_actions_addopen(
            &fa, 1, logPath.c_str(),
            O_WRONLY | O_CREAT | O_APPEND, 0644);
        posix_spawn_file_actions_adddup2(&fa, 1, 2);
        pid_t pid = -1;
        int rc = posix_spawn(&pid, cfg.workerCmd.c_str(), &fa,
                             nullptr,
                             const_cast<char *const *>(argv),
                             environ);
        posix_spawn_file_actions_destroy(&fa);
        if (rc != 0)
            throw std::runtime_error("cannot spawn shard worker '" +
                                     cfg.workerCmd +
                                     "': " + std::strerror(rc));
        crew[static_cast<size_t>(k)].pid = pid;
        ++crew[static_cast<size_t>(k)].attempts;
    };

    auto killCrew = [&] {
        for (Worker &w : crew)
            if (w.pid > 0)
                ::kill(w.pid, SIGTERM);
        for (Worker &w : crew)
            if (w.pid > 0) {
                int st = 0;
                ::waitpid(w.pid, &st, 0);
                w.pid = -1;
            }
    };

    inform("job %llu: sharding %zu cell(s) across %d worker "
           "processes",
           (unsigned long long)job.id, job.plan.cells, n);
    for (int k = 0; k < n; ++k)
        spawn(k);

    constexpr int kMaxAttempts = 5;
    size_t running = crew.size();
    try {
        while (running > 0) {
            if (job.cancelFlag.load())
                throw CampaignCancelled();
            for (int k = 0; k < n; ++k) {
                Worker &w = crew[static_cast<size_t>(k)];
                if (w.pid <= 0)
                    continue;
                int st = 0;
                pid_t got = ::waitpid(w.pid, &st, WNOHANG);
                if (got == 0)
                    continue;
                w.pid = -1;
                if (got > 0 && WIFEXITED(st) &&
                    WEXITSTATUS(st) == 0) {
                    w.done = true;
                    --running;
                    continue;
                }
                // The shard journal holds everything the worker
                // finished; the respawn resumes behind it, so a
                // crash costs at most the cell being computed.
                if (w.attempts >= kMaxAttempts)
                    throw std::runtime_error(
                        "shard worker " + std::to_string(k) + "/" +
                        std::to_string(n) + " failed " +
                        std::to_string(w.attempts) +
                        " time(s); giving up (see " +
                        shardJournalPath(job.id, k) + ".log)");
                warn("job %llu: shard worker %d/%d died; "
                     "respawning (attempt %d)",
                     (unsigned long long)job.id, k, n,
                     w.attempts + 1);
                spawn(k);
            }
            // Progress: a shard journal's line count IS its cell
            // count, so polling the files is enough — no pipe
            // protocol with the workers needed.
            size_t total = 0;
            {
                std::lock_guard<std::mutex> lock(mu);
                for (int k = 0; k < n; ++k) {
                    size_t idx = static_cast<size_t>(k);
                    if (!crew[idx].done || job.shardCells[idx] == 0)
                        job.shardCells[idx] = countJournalCells(
                            shardJournalPath(job.id, k));
                    total += job.shardCells[idx];
                }
            }
            job.cellsDone.store(total);
            if (running > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
        }
    } catch (...) {
        killCrew();
        throw;
    }
}

void
JobQueue::runJob(Job &job)
{
    CampaignRunConfig &run = job.spec.runConfig();
    bool sharded = cfg.shardWorkers >= 2 && !cfg.workerCmd.empty();
    try {
        if (sharded)
            runShardWorkers(job);

        ResultJournal journal(jobPath(job.id, ".jnl"),
                              job.spec.journalEcho());
        if (sharded) {
            // Index-order merge: absorb every shard's cells, then
            // replay the campaign against the merged journal. The
            // replay recomputes any cell a dying worker failed to
            // journal and accumulates results in global cell-index
            // order, so the envelope published below is
            // byte-identical to a single-process run.
            size_t merged = 0;
            for (int k = 0; k < cfg.shardWorkers; ++k)
                merged += journal.absorb(shardJournalPath(job.id, k));
            inform("job %llu: absorbed %zu cell(s) from %d shard "
                   "journal(s); replaying for the merged result",
                   (unsigned long long)job.id, merged,
                   cfg.shardWorkers);
        }
        run.journal = &journal;
        run.cancel = &job.cancelFlag;
        run.sharedPool = &pool;
        run.contextCache = &sharedCache;
        Job *self = &job;
        run.onCellDone = [self](const CellReport &r) {
            self->cellsDone.store(r.cellsDone);
        };

        ScenarioResult res = runScenario(job.spec);
        clearRunContext(run);
        writeFileAtomic(jobPath(job.id, ".result.json"),
                        res.json + "\n");
        if (sharded)
            for (int k = 0; k < cfg.shardWorkers; ++k) {
                std::error_code ec;
                fs::remove(shardJournalPath(job.id, k), ec);
                fs::remove(shardJournalPath(job.id, k) + ".log", ec);
            }
        std::lock_guard<std::mutex> lock(mu);
        simTotals.merge(res.sim);
        finishJob(job, JobState::Done, "");
    } catch (const CampaignCancelled &) {
        clearRunContext(run);
        std::lock_guard<std::mutex> lock(mu);
        finishJob(job, JobState::Cancelled, "");
    } catch (const std::exception &e) {
        clearRunContext(run);
        std::lock_guard<std::mutex> lock(mu);
        finishJob(job, JobState::Failed, e.what());
    }
}

void
JobQueue::runnerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        wake.wait(lock,
                  [this] { return stopping || !queued.empty(); });
        if (queued.empty()) {
            if (stopping)
                return;
            continue;
        }
        Job *job = queued.front();
        queued.pop_front();
        job->state = JobState::Running;
        lock.unlock();
        runJob(*job);
        lock.lock();
    }
}

void
JobQueue::shutdown(bool cancelRunning)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
        if (cancelRunning) {
            while (!queued.empty()) {
                Job *job = queued.front();
                queued.pop_front();
                finishJob(*job, JobState::Cancelled, "");
            }
            for (auto &kv : jobs)
                if (kv.second->state == JobState::Running)
                    kv.second->cancelFlag.store(true);
        }
        wake.notify_all();
    }
    for (std::thread &t : runners)
        if (t.joinable())
            t.join();
}

} // namespace dtann
