/**
 * @file
 * The dtannd HTTP front end: routes requests onto a JobQueue.
 *
 * API (one request per connection, JSON in and out):
 *
 *   POST   /jobs              body = scenario spec -> 201 {"id":...}
 *                             (400 + parser message on a bad spec)
 *   GET    /jobs/<id>         200 status document, 404 unknown
 *   GET    /jobs/<id>/result  200 campaign envelope when done;
 *                             202 still queued/running, 410 after
 *                             cancel, 500 + message after failure
 *   DELETE /jobs/<id>         cancel: 200, 404 unknown
 *   GET    /metrics           200 queue/cache/sim/http counters
 *   POST   /shutdown[?mode=now]  200, then the serve loop returns;
 *                             default drains running jobs, mode=now
 *                             cancels them
 *
 * The routing layer is a pure request -> response function
 * (handle()), so every endpoint and error path is unit-testable
 * without sockets; serve() is a thin blocking accept loop around
 * it. Per-endpoint latency histograms (count / total / max / log2
 * buckets, microseconds) accumulate in handle() and are exported in
 * /metrics under "http".
 */

#ifndef DTANN_SERVICE_SERVER_HTTP_SERVER_HH
#define DTANN_SERVICE_SERVER_HTTP_SERVER_HH

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/http.hh"
#include "common/socket.hh"
#include "service/server/job_queue.hh"

namespace dtann {

class CampaignServer
{
  public:
    /**
     * Bind @p listenAddress (common/socket.hh syntax; TCP port 0 =
     * ephemeral) and serve @p queue. @throws SocketError when the
     * address cannot be bound.
     */
    CampaignServer(JobQueue &queue, const std::string &listenAddress);

    /** The resolved listen address ("127.0.0.1:41873", "unix:..."). */
    const std::string &address() const { return listener.address(); }
    /** Bound TCP port (0 for Unix sockets). */
    int port() const { return listener.port(); }

    /**
     * Accept and answer connections until a POST /shutdown arrives.
     * @return true when the shutdown asked for mode=now (cancel
     * running jobs rather than draining them).
     */
    bool serve();

    /**
     * Route one parsed request to a complete serialized HTTP
     * response. Pure aside from JobQueue effects and latency
     * accounting — the unit-test seam.
     */
    std::string handle(const HttpMessage &req);

    /** True once a shutdown request has been handled. */
    bool shutdownRequested() const { return stopRequested; }

  private:
    /** Latency record of one routed endpoint. */
    struct EndpointStats
    {
        uint64_t count = 0;
        uint64_t totalUs = 0;
        uint64_t maxUs = 0;
        /** bucket[i] counts latencies in [2^i, 2^(i+1)) us. */
        std::array<uint64_t, 20> buckets{};
    };

    std::string dispatch(const HttpMessage &req, std::string &label);
    void recordLatency(const std::string &label, uint64_t us);
    std::string httpStatsJson() const;
    /** The HTTP layer's own counters in Prometheus text format. */
    std::string httpStatsPrometheus() const;

    JobQueue &queue;
    ListenSocket listener;

    mutable std::mutex statsMu;
    std::map<std::string, EndpointStats> stats;

    bool stopRequested = false;
    bool cancelOnStop = false;
};

} // namespace dtann

#endif // DTANN_SERVICE_SERVER_HTTP_SERVER_HH
