/**
 * @file
 * The daemon's campaign job queue.
 *
 * A job is one admitted scenario spec. Submission parses and plans
 * the spec (service/plan.hh) so a malformed spec is rejected with
 * the parser's message before anything is queued, then persists the
 * submitted bytes under the state directory and enqueues the job.
 * A small crew of runner threads executes queued jobs in submission
 * order; every job runs with
 *
 *  - the queue's one shared ThreadPool (concurrent jobs fair-share
 *    workers instead of oversubscribing the host),
 *  - the shared ServerCache (task contexts and netlists built once
 *    across jobs), and
 *  - a per-job ResultJournal, so a daemon killed mid-job resumes
 *    the job bit-identically on restart.
 *
 * State directory layout (all names carry the numeric job id):
 *
 *   job-<id>.spec.json    exact submitted spec bytes (admission copy)
 *   job-<id>.jnl          the job's results journal
 *   job-<id>.result.json  campaign envelope; written atomically via
 *                         rename, so its existence IS the done marker
 *   job-<id>.cancelled    marker: job was cancelled
 *   job-<id>.error        marker + message: job failed
 *
 * On construction the queue scans the directory: finished jobs are
 * reloaded for status/result queries, unfinished ones are re-queued
 * (their journals replay completed cells), and new ids continue
 * after the highest found. Determinism makes this safe: a resumed
 * job's result is byte-identical to an uninterrupted run.
 *
 * Multi-process sharding (Config::shardWorkers >= 2, dtannd
 * --workers): each job is split across N `dtann_campaign --shard
 * k/N` worker processes, each journaling its own slice of the
 * placement-independent cell list to job-<id>.jnl.shard-<k>. The
 * runner babysits the crew — a worker that dies (crash, OOM kill)
 * is respawned and resumes from its shard journal — then absorbs
 * the shard journals into the canonical job journal and replays the
 * campaign in-process, so the published result is byte-identical to
 * a single-process run. Shard journals are deleted on success.
 */

#ifndef DTANN_SERVICE_SERVER_JOB_QUEUE_HH
#define DTANN_SERVICE_SERVER_JOB_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "circuit/sim_counters.hh"
#include "common/thread_pool.hh"
#include "service/plan.hh"
#include "service/server/shared_cache.hh"
#include "service/spec.hh"

namespace dtann {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

/** The lowercase wire name of @p s ("queued", "running", ...). */
const char *jobStateName(JobState s);

class JobQueue
{
  public:
    struct Config
    {
        std::string stateDir; ///< persistence root (created if absent)
        /** Shared worker pool width; 0 = hardware concurrency. */
        int threads = 0;
        /** Jobs executing concurrently (queue runner threads). */
        int runners = 2;
        /**
         * Shard every job across this many worker processes
         * (>= 2 enables multi-process mode; 0/1 = in-process).
         * Needs workerCmd.
         */
        int shardWorkers = 0;
        /** dtann_campaign binary spawned as the shard worker. */
        std::string workerCmd;
    };

    /** Create/scan the state dir and start the runner crew. */
    explicit JobQueue(const Config &config);

    /** Equivalent to shutdown(true): cancel, drain, join. */
    ~JobQueue();

    /**
     * Admit one spec document. @p specText is parsed and planned;
     * the exact bytes are persisted for restart and audit.
     *
     * @return the new job's id
     * @throws JsonError when the spec does not parse or plan
     * @throws std::runtime_error after shutdown() or on I/O failure
     */
    uint64_t submit(const std::string &specText);

    /**
     * Status document for @p id:
     * {"id":...,"state":...,"kind":...,"name":...,
     *  "cells_done":...,"cells_total":...[,"error":...]}
     * Empty string when the id is unknown.
     */
    std::string statusJson(uint64_t id) const;

    enum class ResultState { Unknown, Pending, Ready, Failed, Cancelled };

    /**
     * Fetch the result of @p id. Ready fills @p out with the
     * campaign envelope (newline-terminated, byte-identical to the
     * offline driver's export); Failed fills it with the error
     * message.
     */
    ResultState result(uint64_t id, std::string &out) const;

    /**
     * Cancel @p id: a queued job is retired immediately, a running
     * job is asked to stop at the next cell boundary (journaled
     * cells survive for a later resume). Finished jobs are
     * unaffected. @return false when the id is unknown.
     */
    bool cancel(uint64_t id);

    /**
     * Queue/cache/simulation metrics object for GET /metrics:
     * {"jobs":{per-state counts},"backends":{per-hardware-target
     *  job counts},"queue_depth":...,"workers":...,"runners":...,
     *  "lanes":{negotiated batch lane width + ISA},
     *  "shard_workers":...,"shards":[per-worker shard progress of
     *  running sharded jobs],"cache":...,"sim":...}
     */
    std::string metricsJson() const;

    /**
     * The same metrics in Prometheus text exposition format
     * (GET /metrics?format=prometheus): one dtann_-prefixed gauge
     * or counter per scalar, with job states, hardware backends,
     * shard progress, and cache shards as labels.
     */
    std::string metricsPrometheus() const;

    /**
     * Stop admitting jobs and wind down. @p cancelRunning false
     * drains: running and queued jobs finish first. True cancels
     * queued and running jobs at the next cell boundary. Joins the
     * runner crew; idempotent.
     */
    void shutdown(bool cancelRunning);

  private:
    struct Job
    {
        uint64_t id = 0;
        std::string specText; ///< exact submitted bytes
        ScenarioSpec spec;
        SpecPlan plan;
        JobState state = JobState::Queued;
        std::atomic<bool> cancelFlag{false};
        std::atomic<size_t> cellsDone{0};
        std::string error; ///< failure message (state Failed)
        /** Per-worker journaled-cell counts while the job runs
         *  sharded (guarded by the queue mutex; empty otherwise). */
        std::vector<size_t> shardCells;
    };

    std::string jobPath(uint64_t id, const char *suffix) const;
    /** Path of worker @p shard's journal for job @p id. */
    std::string shardJournalPath(uint64_t id, int shard) const;
    void scanStateDir();
    void runnerLoop();
    void runJob(Job &job);
    /**
     * Spawn and babysit the shard worker crew for @p job: one
     * `dtann_campaign --shard k/N` process per shard, each
     * journaling to shardJournalPath(). Dead workers are respawned
     * (resuming from their journal) up to a retry cap. Throws
     * CampaignCancelled when the job's cancel flag interrupts the
     * crew, std::runtime_error when a shard keeps failing.
     */
    void runShardWorkers(Job &job);
    /** Finish @p job: set state, write its marker file. */
    void finishJob(Job &job, JobState state, const std::string &error);
    /** Jobs per resolved hardware target. Every known backend is
     *  present (possibly 0); fig5 jobs count under "none". Caller
     *  holds mu. */
    std::map<std::string, size_t> backendCountsLocked() const;

    Config cfg;
    ThreadPool pool;
    ServerCache sharedCache;

    mutable std::mutex mu;
    std::condition_variable wake;
    std::map<uint64_t, std::unique_ptr<Job>> jobs;
    std::deque<Job *> queued;
    uint64_t nextId = 1;
    bool stopping = false;
    SimCounters simTotals; ///< across jobs finished this lifetime

    std::vector<std::thread> runners;
};

} // namespace dtann

#endif // DTANN_SERVICE_SERVER_JOB_QUEUE_HH
