/**
 * @file
 * The daemon's cross-job cache for expensive campaign state.
 *
 * Concurrent jobs racing strategies (or whole campaign kinds) over
 * the same circuit rebuild identical state: operator netlists and
 * prepared task contexts (synthetic dataset + clean baseline
 * weights, i.e. a full training run). ServerCache implements the
 * SharedContextCache hook the campaign runners consult
 * (core/campaign.hh) with build-once semantics: the first requester
 * of a key builds, every concurrent requester of the same key
 * blocks on the same shared_future instead of duplicating the work,
 * and later requesters hit the completed entry. Hit/miss counters
 * per entry kind surface in GET /metrics.
 *
 * Keys canonically encode every build input (taskContextKey), so a
 * hit is bit-identical to a rebuild — caching never changes any
 * campaign result, it only removes redundant work.
 */

#ifndef DTANN_SERVICE_SERVER_SHARED_CACHE_HH
#define DTANN_SERVICE_SERVER_SHARED_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>

#include "core/campaign.hh"

namespace dtann {

class ServerCache final : public SharedContextCache
{
  public:
    std::shared_ptr<const TaskContext>
    task(const std::string &key,
         const std::function<TaskContext()> &build) override;

    std::shared_ptr<const Netlist>
    netlist(const std::string &key,
            const std::function<Netlist()> &build) override;

    /** Per-kind hit/miss counts (a miss is a build). */
    struct Stats
    {
        uint64_t taskHits = 0, taskMisses = 0;
        uint64_t netlistHits = 0, netlistMisses = 0;
    };
    Stats stats() const;

    /** {"task":{"hits":..,"misses":..,"entries":..},"netlist":...} */
    std::string statsJson() const;

  private:
    /** One build-once map: key -> future of the built value. */
    template <typename T> struct Shard
    {
        std::map<std::string, std::shared_future<std::shared_ptr<const T>>>
            entries;
        uint64_t hits = 0, misses = 0;
    };

    template <typename T>
    std::shared_ptr<const T> get(Shard<T> &shard,
                                 const std::string &key,
                                 const std::function<T()> &build);

    mutable std::mutex mu;
    Shard<TaskContext> tasks;
    Shard<Netlist> netlists;
};

} // namespace dtann

#endif // DTANN_SERVICE_SERVER_SHARED_CACHE_HH
