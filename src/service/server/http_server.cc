#include "service/server/http_server.hh"

#include <chrono>

#include "common/json.hh"
#include "common/logging.hh"

namespace dtann {

namespace {

std::string
errorBody(const std::string &message)
{
    return "{\"error\":" + jsonString(message) + "}";
}

/**
 * Parse "/jobs/<id>[/result]" out of @p path. Returns true and
 * fills @p id / @p rest ("" or "result") when the path is a
 * well-formed job reference.
 */
bool
parseJobPath(const std::string &path, uint64_t &id, std::string &rest)
{
    const std::string prefix = "/jobs/";
    if (path.compare(0, prefix.size(), prefix) != 0)
        return false;
    size_t pos = prefix.size();
    size_t end = path.find('/', pos);
    std::string digits = path.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos ||
        digits.size() > 18)
        return false;
    id = std::stoull(digits);
    rest = end == std::string::npos ? "" : path.substr(end + 1);
    return rest.empty() || rest == "result";
}

int
log2Bucket(uint64_t us)
{
    int b = 0;
    while (us > 1 && b < 19) {
        us >>= 1;
        ++b;
    }
    return b;
}

} // namespace

CampaignServer::CampaignServer(JobQueue &queue_,
                               const std::string &listenAddress)
    : queue(queue_), listener(listenAddress)
{
}

std::string
CampaignServer::dispatch(const HttpMessage &req, std::string &label)
{
    const std::string path = req.path();

    if (path == "/jobs" && req.method == "POST") {
        label = "POST /jobs";
        try {
            uint64_t id = queue.submit(req.body);
            return httpResponse(201,
                                "{\"id\":" + std::to_string(id) + "}");
        } catch (const JsonError &e) {
            return httpResponse(400, errorBody(e.what()));
        } catch (const std::exception &e) {
            return httpResponse(503, errorBody(e.what()));
        }
    }

    uint64_t id = 0;
    std::string rest;
    if (parseJobPath(path, id, rest)) {
        if (rest.empty() && req.method == "GET") {
            label = "GET /jobs/<id>";
            std::string status = queue.statusJson(id);
            if (status.empty())
                return httpResponse(404, errorBody("unknown job"));
            return httpResponse(200, status);
        }
        if (rest == "result" && req.method == "GET") {
            label = "GET /jobs/<id>/result";
            std::string out;
            switch (queue.result(id, out)) {
              case JobQueue::ResultState::Unknown:
                return httpResponse(404, errorBody("unknown job"));
              case JobQueue::ResultState::Pending:
                return httpResponse(202,
                                    errorBody("job is not finished"));
              case JobQueue::ResultState::Cancelled:
                return httpResponse(410,
                                    errorBody("job was cancelled"));
              case JobQueue::ResultState::Failed:
                return httpResponse(500, errorBody(out));
              case JobQueue::ResultState::Ready:
                return httpResponse(200, out);
            }
        }
        if (rest.empty() && req.method == "DELETE") {
            label = "DELETE /jobs/<id>";
            if (!queue.cancel(id))
                return httpResponse(404, errorBody("unknown job"));
            return httpResponse(
                200, "{\"id\":" + std::to_string(id) +
                         ",\"cancelled\":true}");
        }
        return httpResponse(405, errorBody("method not allowed"));
    }

    if (path == "/metrics" && req.method == "GET") {
        label = "GET /metrics";
        if (req.query() == "format=prometheus") {
            // Text exposition format for scrapers; the JSON object
            // stays the default for the CLI and scripts.
            std::string body =
                queue.metricsPrometheus() + httpStatsPrometheus();
            return httpResponse(200, body,
                                "text/plain; version=0.0.4");
        }
        if (!req.query().empty() && req.query() != "format=json")
            return httpResponse(
                400, errorBody("unknown metrics format '" +
                               req.query() +
                               "' (expected format=json or "
                               "format=prometheus)"));
        std::string body = queue.metricsJson();
        // Splice the HTTP layer's own counters into the queue's
        // document: {...,"http":{...}}.
        body.insert(body.size() - 1, ",\"http\":" + httpStatsJson());
        return httpResponse(200, body);
    }

    if (path == "/shutdown" && req.method == "POST") {
        label = "POST /shutdown";
        bool now = req.query() == "mode=now";
        stopRequested = true;
        cancelOnStop = now;
        return httpResponse(
            200, std::string("{\"shutting_down\":true,\"mode\":\"") +
                     (now ? "now" : "drain") + "\"}");
    }

    if (path == "/jobs" || path == "/metrics" || path == "/shutdown")
        return httpResponse(405, errorBody("method not allowed"));
    return httpResponse(404, errorBody("no such endpoint"));
}

std::string
CampaignServer::handle(const HttpMessage &req)
{
    auto start = std::chrono::steady_clock::now();
    std::string label = "other";
    std::string response = dispatch(req, label);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    recordLatency(label, static_cast<uint64_t>(us));
    return response;
}

void
CampaignServer::recordLatency(const std::string &label, uint64_t us)
{
    std::lock_guard<std::mutex> lock(statsMu);
    EndpointStats &s = stats[label];
    ++s.count;
    s.totalUs += us;
    if (us > s.maxUs)
        s.maxUs = us;
    ++s.buckets[log2Bucket(us)];
}

std::string
CampaignServer::httpStatsPrometheus() const
{
    std::lock_guard<std::mutex> lock(statsMu);
    std::string out;
    out += "# HELP dtann_http_requests_total Requests by endpoint.\n";
    out += "# TYPE dtann_http_requests_total counter\n";
    for (const auto &kv : stats)
        out += "dtann_http_requests_total{endpoint=\"" + kv.first +
               "\"} " + std::to_string(kv.second.count) + "\n";
    out += "# HELP dtann_http_request_us_total Summed request "
           "latency by endpoint, in microseconds.\n";
    out += "# TYPE dtann_http_request_us_total counter\n";
    for (const auto &kv : stats)
        out += "dtann_http_request_us_total{endpoint=\"" + kv.first +
               "\"} " + std::to_string(kv.second.totalUs) + "\n";
    out += "# HELP dtann_http_request_us_max Maximum observed "
           "request latency by endpoint, in microseconds.\n";
    out += "# TYPE dtann_http_request_us_max gauge\n";
    for (const auto &kv : stats)
        out += "dtann_http_request_us_max{endpoint=\"" + kv.first +
               "\"} " + std::to_string(kv.second.maxUs) + "\n";
    return out;
}

std::string
CampaignServer::httpStatsJson() const
{
    std::lock_guard<std::mutex> lock(statsMu);
    std::string out = "{";
    bool first = true;
    for (const auto &kv : stats) {
        if (!first)
            out += ",";
        first = false;
        const EndpointStats &s = kv.second;
        out += jsonString(kv.first) + ":{";
        out += "\"count\":" + std::to_string(s.count);
        out += ",\"total_us\":" + std::to_string(s.totalUs);
        out += ",\"max_us\":" + std::to_string(s.maxUs);
        out += ",\"log2_us_buckets\":[";
        for (size_t i = 0; i < s.buckets.size(); ++i)
            out += (i ? "," : "") + std::to_string(s.buckets[i]);
        out += "]}";
    }
    out += "}";
    return out;
}

bool
CampaignServer::serve()
{
    while (!stopRequested) {
        Socket conn;
        try {
            conn = listener.accept();
        } catch (const SocketError &e) {
            warn("accept failed: %s", e.what());
            continue;
        }

        try {
            HttpParser parser(HttpParser::Mode::Request);
            char buf[4096];
            while (parser.state() == HttpParser::State::NeedMore) {
                size_t n = conn.readSome(buf, sizeof(buf));
                if (n == 0) {
                    parser.finish();
                    break;
                }
                parser.feed(buf, n);
            }
            if (parser.state() == HttpParser::State::Done) {
                conn.writeAll(handle(parser.message()));
            } else {
                conn.writeAll(httpResponse(
                    parser.errorStatus(),
                    errorBody(parser.errorMessage())));
            }
        } catch (const SocketError &e) {
            // A client hanging up mid-exchange is its own problem.
            warn("connection error: %s", e.what());
        }
    }
    return cancelOnStop;
}

} // namespace dtann
