/**
 * @file
 * Client for a running dtannd daemon (service/server).
 *
 * A thin, blocking HTTP/1.1 client over the shared socket layer:
 * one request per connection (the daemon closes after answering),
 * JSON bodies both ways. The dtann_campaign subcommands (submit /
 * status / result / cancel) are built on it; tests use it to drive
 * a daemon end to end.
 *
 * request() is the transport primitive and returns whatever the
 * daemon said (status + body); the typed helpers turn non-2xx
 * answers into ClientError carrying the daemon's error message and
 * the HTTP status, so callers can map outcomes to exit codes.
 */

#ifndef DTANN_SERVICE_CLIENT_HH
#define DTANN_SERVICE_CLIENT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dtann {

/** A non-2xx daemon answer; what() is the daemon's error message. */
struct ClientError : std::runtime_error
{
    ClientError(int status_, const std::string &message)
        : std::runtime_error(message), status(status_)
    {
    }
    int status; ///< HTTP status (0 = transport-level failure)
};

class CampaignClient
{
  public:
    /** @param address daemon address (common/socket.hh syntax). */
    explicit CampaignClient(std::string address);

    /**
     * One round trip: connect, send, read the full response.
     * @return {status, body}
     * @throws ClientError(status=0) when the daemon cannot be
     *         reached or answers unparseable bytes
     */
    struct Response
    {
        int status = 0;
        std::string body;
    };
    Response request(const std::string &method,
                     const std::string &target,
                     const std::string &body = "") const;

    /** POST /jobs. @return the new job id. */
    uint64_t submit(const std::string &specText) const;

    /** GET /jobs/<id>. @return the status document. */
    std::string status(uint64_t id) const;

    /**
     * GET /jobs/<id>/result. @return the campaign envelope once the
     * job is done; throws ClientError (202/404/410/500) otherwise.
     */
    std::string result(uint64_t id) const;

    /** DELETE /jobs/<id>. */
    void cancel(uint64_t id) const;

    /** GET /metrics. @return the metrics document. */
    std::string metrics() const;

    /** POST /shutdown (mode=now when @p cancelRunning). */
    void shutdown(bool cancelRunning = false) const;

  private:
    std::string addr;
};

} // namespace dtann

#endif // DTANN_SERVICE_CLIENT_HH
