#include "rtl/latch.hh"

#include "common/logging.hh"

namespace dtann {

NetId
dLatch(NetlistBuilder &bld, NetId d, NetId en)
{
    Netlist &nl = bld.netlist();
    NetId dn = bld.notG(d);
    NetId sN = bld.nand2(d, en);   // active-low set
    NetId rN = bld.nand2(dn, en);  // active-low reset
    // Cross-coupled NAND pair; Qb is created first so Q's gate can
    // reference it, then the Qb gate is attached onto that net.
    NetId qb = nl.addNet();
    NetId q = nl.addGate(GateKind::Nand2, {sN, qb});
    nl.addGateOnto(GateKind::Nand2, {rN, q}, qb);
    return q;
}

Netlist
buildLatchRegister(int width)
{
    dtann_assert(width >= 1 && width <= 32, "unsupported register width");
    NetlistBuilder bld;
    Bus d = bld.inputBus(width);
    Bus en = bld.inputBus(1);
    Bus q(static_cast<size_t>(width));
    for (size_t i = 0; i < d.size(); ++i) {
        bld.beginCell();
        q[i] = dLatch(bld, d[i], en[0]);
    }
    bld.outputBus(q);
    return bld.take();
}

} // namespace dtann
