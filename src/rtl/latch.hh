/**
 * @file
 * Level-sensitive latch netlists.
 *
 * The accelerator stores synaptic weights in distributed latches at
 * each neuron. A latch is built structurally from NAND gates (gated
 * SR latch) so that transistor defects inside the storage element
 * itself can be injected; the relaxation evaluator resolves the
 * cross-coupled feedback.
 */

#ifndef DTANN_RTL_LATCH_HH
#define DTANN_RTL_LATCH_HH

#include "rtl/builder.hh"

namespace dtann {

/**
 * Attach one gated D latch to the netlist.
 *
 * While EN is high the latch is transparent (Q follows D); when EN
 * falls, Q holds. The caller should drive EN through an input.
 *
 * @return the Q output net
 */
NetId dLatch(NetlistBuilder &bld, NetId d, NetId en);

/**
 * Build a @p width bit latch register.
 *
 * Primary inputs: d[0..w-1], then en.
 * Primary outputs: q[0..w-1].
 * Each bit is one cell group.
 */
Netlist buildLatchRegister(int width);

} // namespace dtann

#endif // DTANN_RTL_LATCH_HH
