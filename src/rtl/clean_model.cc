#include "rtl/clean_model.hh"

#include "common/logging.hh"

namespace dtann {

namespace {

constexpr uint64_t
lowMask(int bits)
{
    return bits >= 64 ? ~0ull : (1ull << bits) - 1;
}

constexpr int64_t
signExtend(uint64_t bits, int width)
{
    uint64_t sign = 1ull << (width - 1);
    return static_cast<int64_t>((bits ^ sign)) - static_cast<int64_t>(sign);
}

} // namespace

CleanFn
cleanMultiplierSigned(int width)
{
    dtann_assert(width >= 1 && width <= 32, "multiplier width");
    return [width](uint64_t in) -> uint64_t {
        uint64_t m = lowMask(width);
        int64_t a = signExtend(in & m, width);
        int64_t b = signExtend((in >> width) & m, width);
        uint64_t p = static_cast<uint64_t>(a) * static_cast<uint64_t>(b);
        return p & lowMask(2 * width);
    };
}

CleanFn
cleanMultiplierUnsigned(int width)
{
    dtann_assert(width >= 1 && width <= 32, "multiplier width");
    return [width](uint64_t in) -> uint64_t {
        uint64_t m = lowMask(width);
        uint64_t p = (in & m) * ((in >> width) & m);
        return p & lowMask(2 * width);
    };
}

CleanFn
cleanAdder(int width, bool carry_out)
{
    dtann_assert(width >= 1 && width <= 31, "adder width");
    return [width, carry_out](uint64_t in) -> uint64_t {
        uint64_t m = lowMask(width);
        uint64_t sum = (in & m) + ((in >> width) & m);
        if (carry_out)
            return sum & lowMask(width + 1);
        return sum & m;
    };
}

CleanFn
cleanSigmoidUnit(const PwlTable &table)
{
    return [table](uint64_t in) -> uint64_t {
        Fix16 x = Fix16::fromRaw(
            static_cast<int16_t>(static_cast<uint16_t>(in & 0xffff)));
        return sigmoidUnitRef(table, x).bits();
    };
}

} // namespace dtann
