/**
 * @file
 * Native (defect-free) models of the operator netlists.
 *
 * Each factory returns a CleanFn with the netlist's exact packed
 * input/output bit contract — the same function a clean unit
 * computes in fixed-point hardware. OperatorSim hands these to the
 * pruned/batched evaluators, which simulate only the fault cone at
 * gate level and take every out-of-cone output bit from the native
 * model. The models are verified bit-identical to the full netlist
 * sweep by the differential tests.
 */

#ifndef DTANN_RTL_CLEAN_MODEL_HH
#define DTANN_RTL_CLEAN_MODEL_HH

#include "circuit/fault_cone.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {

/**
 * Clean model of buildMultiplierSigned(width): inputs
 * a[width] | b[width] << width, output the full signed product
 * modulo 2^(2*width).
 */
CleanFn cleanMultiplierSigned(int width);

/** Clean model of buildMultiplierUnsigned(width): same packing,
 *  unsigned product. */
CleanFn cleanMultiplierUnsigned(int width);

/**
 * Clean model of buildRippleAdder / buildCarrySelectAdder: inputs
 * a[width] | b[width] << width, output (a + b) mod 2^width, with
 * the carry-out appended at bit @p width when @p carry_out.
 */
CleanFn cleanAdder(int width, bool carry_out);

/** Clean model of buildSigmoidUnit(table): x[16] -> f[16], the
 *  bit-exact sigmoidUnitRef(). */
CleanFn cleanSigmoidUnit(const PwlTable &table);

} // namespace dtann

#endif // DTANN_RTL_CLEAN_MODEL_HH
