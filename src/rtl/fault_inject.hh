/**
 * @file
 * Random fault injection into operator netlists.
 *
 * Mirrors the paper's procedure: defects are "randomly spread over
 * the operator bits, and within each 1-bit operation, over all
 * transistors" — i.e., first pick a bit cell (netlist group)
 * uniformly, then a gate within it weighted by transistor count,
 * then a random transistor-level defect. The gate-level comparison
 * model instead draws stuck-at faults on logic gate inputs/outputs.
 */

#ifndef DTANN_RTL_FAULT_INJECT_HH
#define DTANN_RTL_FAULT_INJECT_HH

#include <string>
#include <vector>

#include "circuit/faults.hh"
#include "circuit/netlist.hh"
#include "common/rng.hh"
#include "transistor/defect.hh"

namespace dtann {

/** Record of one injected fault, for experiment logs. */
struct InjectionRecord
{
    uint32_t gate;       ///< gate index within the netlist
    std::string what;    ///< human-readable fault description
};

/** Result of an injection: faults plus their provenance. */
struct Injection
{
    FaultSet faults;
    std::vector<InjectionRecord> records;
};

/**
 * Inject @p count transistor-level defects. Multiple defects may
 * land in the same gate; their combined behaviour is reconstructed
 * jointly.
 */
Injection injectTransistorDefects(const Netlist &nl, int count, Rng &rng,
                                  const DefectMix &mix = DefectMix());

/**
 * Inject @p count gate-level stuck-at faults (random gate input or
 * output stuck at a random value) — the abstract model the paper
 * compares against.
 */
Injection injectGateLevelFaults(const Netlist &nl, int count, Rng &rng);

} // namespace dtann

#endif // DTANN_RTL_FAULT_INJECT_HH
