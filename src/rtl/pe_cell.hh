/**
 * @file
 * Weight-stationary processing element (PE) cell.
 *
 * The systolic backend's grid cell, assembled from the same
 * operator library the spatial array instantiates per synapse: a
 * 16-bit weight latch holding the stationary weight, a Q6.10
 * signed multiplier, and a 24-bit ripple adder stage that folds the
 * product into the partial sum flowing down the column. Activation
 * units sit at the column feet and are not part of the cell.
 *
 * The cell exists as an rtl-level grouping so the systolic cost
 * accounting and defect weighting can census a PE's transistors
 * from the same netlists the fault injector perturbs — the defect
 * model and the area model stay one structure.
 */

#ifndef DTANN_RTL_PE_CELL_HH
#define DTANN_RTL_PE_CELL_HH

#include <memory>

#include "rtl/builder.hh"

namespace dtann {

/** Transistor census of one weight-stationary PE cell. */
struct PeCellCensus
{
    size_t latchTransistors = 0;
    size_t multiplierTransistors = 0;
    size_t adderTransistors = 0;

    /** Whole-cell transistor count. */
    size_t total() const
    {
        return latchTransistors + multiplierTransistors +
            adderTransistors;
    }
};

/**
 * One weight-stationary PE: the three operator netlists a grid
 * cell instantiates. Rows of PEs share nothing — as in the spatial
 * array, there is no central weight memory; the stationary weight
 * lives in the cell's own latch.
 */
class PeCell
{
  public:
    /** Build the cell's netlists in @p style. */
    explicit PeCell(FaStyle style);

    /** 16-bit stationary-weight latch register. */
    const Netlist &latchNetlist() const { return *latchNl; }
    /** 16x16 signed Q6.10 multiplier. */
    const Netlist &multiplierNetlist() const { return *multNl; }
    /** 24-bit partial-sum adder stage. */
    const Netlist &adderNetlist() const { return *addNl; }

    /** Per-operator and whole-cell transistor counts. */
    PeCellCensus census() const;

  private:
    std::shared_ptr<const Netlist> latchNl;
    std::shared_ptr<const Netlist> multNl;
    std::shared_ptr<const Netlist> addNl;
};

} // namespace dtann

#endif // DTANN_RTL_PE_CELL_HH
