/**
 * @file
 * Ripple-carry adder netlists.
 */

#ifndef DTANN_RTL_ADDER_HH
#define DTANN_RTL_ADDER_HH

#include "rtl/builder.hh"

namespace dtann {

/**
 * Build an N-bit ripple-carry adder.
 *
 * Primary inputs: a[0..w-1], b[0..w-1].
 * Primary outputs: sum[0..w-1], then carry-out (if requested).
 * Each bit position is one cell group.
 *
 * @param width operand width
 * @param style full-adder implementation
 * @param carry_out expose the final carry as an extra output
 */
Netlist buildRippleAdder(int width, FaStyle style = FaStyle::Nand9,
                         bool carry_out = true);

/**
 * Attach a ripple adder to existing buses inside a larger netlist.
 *
 * @param bld builder owning the netlist
 * @param a first operand bus
 * @param b second operand bus (same width)
 * @param cin carry-in net (use bld.constant(false) for none)
 * @param style full-adder implementation
 * @param cout_net out-parameter receiving the carry-out (optional)
 * @return the sum bus
 */
Bus rippleAdd(NetlistBuilder &bld, const Bus &a, const Bus &b, NetId cin,
              FaStyle style, NetId *cout_net = nullptr);

/**
 * Build a carry-select adder: @p block_width bit ripple blocks are
 * computed twice (carry-in 0 and 1) and the incoming block carry
 * selects sums and carry-out through 2-to-1 muxes. Faster critical
 * path at ~1.8x the transistor cost — a second adder architecture
 * for the operator-implementation studies.
 *
 * Same interface as buildRippleAdder.
 */
Netlist buildCarrySelectAdder(int width, int block_width = 4,
                              FaStyle style = FaStyle::Nand9,
                              bool carry_out = true);

/** Attachable carry-select adder (see buildCarrySelectAdder). */
Bus carrySelectAdd(NetlistBuilder &bld, const Bus &a, const Bus &b,
                   NetId cin, int block_width, FaStyle style,
                   NetId *cout_net = nullptr);

} // namespace dtann

#endif // DTANN_RTL_ADDER_HH
