/**
 * @file
 * Faulty-operator simulation wrapper.
 *
 * The accelerator model routes only defective operators through
 * gate-level simulation; clean ones use native fixed-point
 * arithmetic (the paper's methodology). An OperatorSim owns the
 * evaluation state of one such defective operator instance and
 * picks the fastest exact evaluation path for its fault set:
 *
 *  - wide-lane batch (applyLanes; 64/256/512 lanes per sweep, see
 *    circuit/lane_plane.hh and the DTANN_LANES knob): state-free
 *    fault sets on feedback-free netlists, cone-pruned when a
 *    clean model is available;
 *  - cone-pruned scalar (apply): feedback-free netlists with a
 *    clean model, any fault semantics (MEM, delay);
 *  - full scalar relaxation: everything else (e.g. latches).
 *
 * All paths are bit-identical to the full scalar sweep; the env
 * knobs DTANN_NO_BATCH / DTANN_NO_CONE force the slower paths for
 * equivalence testing. The underlying netlist is shared (immutable)
 * across instances of the same operator shape.
 */

#ifndef DTANN_RTL_OPERATOR_SIM_HH
#define DTANN_RTL_OPERATOR_SIM_HH

#include <memory>
#include <optional>

#include "circuit/batch_evaluator.hh"
#include "circuit/evaluator.hh"
#include "circuit/sim_counters.hh"
#include "rtl/fault_inject.hh"

namespace dtann {

/** A gate-level simulated operator instance with injected faults. */
class OperatorSim
{
  public:
    /**
     * @param netlist the shared operator netlist
     * @param injection the faults to install
     * @param clean optional native model of the defect-free
     *        operator (packed bits -> packed bits); enables cone
     *        pruning and batch splicing
     */
    OperatorSim(std::shared_ptr<const Netlist> netlist,
                Injection injection, CleanFn clean = {});

    /**
     * Evaluate the operator. Inputs are the netlist's primary
     * inputs packed LSB-first; the return value packs the primary
     * outputs. State (memory effects) persists across calls.
     */
    uint64_t apply(uint64_t input_bits);

    /**
     * Evaluate @p count packed input vectors (any count; chunked
     * into laneCount()-wide batches internally). Results are
     * bit-identical to calling apply() in order at every lane
     * width; fault sets that need the scalar path fall back to
     * exactly that, preserving state order.
     */
    void applyLanes(const uint64_t *inputs, uint64_t *outputs,
                    size_t count);

    /** Clear any internal (defect-induced or latch) state. */
    void reset();

    /** True when applyLanes() uses the wide-lane batch path. */
    bool batched() const { return batch.has_value(); }

    /** Lanes per batch sweep (0 on the scalar fallback). */
    size_t laneCount() const
    {
        return batch ? batch->laneCount() : 0;
    }

    /** True when apply() runs the cone-pruned scalar path. */
    bool conePruned() const { return eval.conePruned(); }

    /** True when the last apply() hit the relaxation sweep cap.
     *  Always false on the batch path (feedback-free by
     *  construction). */
    bool lastOscillated() const { return eval.lastOscillated(); }

    /** Work counters accumulated by this instance. */
    SimCounters counters() const;

    /** Provenance of the injected faults. */
    const std::vector<InjectionRecord> &faultRecords() const
    {
        return records;
    }

    /** The underlying netlist. */
    const Netlist &netlist() const { return *nl; }

    /** Direct evaluator access (tests, amplitude probes). */
    Evaluator &evaluator() { return eval; }

  private:
    std::shared_ptr<const Netlist> nl;
    std::vector<InjectionRecord> records;
    Evaluator eval;
    std::optional<BatchEvaluator> batch;
    uint64_t scalarVectors = 0;
    uint64_t batchVectors = 0;
    /** Lane slots provisioned by this instance's batch sweeps (the
     *  full plane width per sweep, whatever the chunk occupancy) —
     *  accumulated per sweep rather than derived as sweeps x width,
     *  so backends that sweep differently shaped batches still
     *  report honest occupancy. */
    uint64_t laneSlots = 0;
};

} // namespace dtann

#endif // DTANN_RTL_OPERATOR_SIM_HH
