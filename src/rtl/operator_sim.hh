/**
 * @file
 * Faulty-operator simulation wrapper.
 *
 * The accelerator model routes only defective operators through
 * gate-level simulation; clean ones use native fixed-point
 * arithmetic (the paper's methodology). An OperatorSim owns the
 * evaluation state of one such defective operator instance. The
 * underlying netlist is shared (immutable) across instances of the
 * same operator shape.
 */

#ifndef DTANN_RTL_OPERATOR_SIM_HH
#define DTANN_RTL_OPERATOR_SIM_HH

#include <memory>

#include "circuit/evaluator.hh"
#include "rtl/fault_inject.hh"

namespace dtann {

/** A gate-level simulated operator instance with injected faults. */
class OperatorSim
{
  public:
    /**
     * @param netlist the shared operator netlist
     * @param injection the faults to install
     */
    OperatorSim(std::shared_ptr<const Netlist> netlist,
                Injection injection)
        : nl(std::move(netlist)), records(std::move(injection.records)),
          eval(*nl, std::move(injection.faults))
    {
    }

    /**
     * Evaluate the operator. Inputs are the netlist's primary
     * inputs packed LSB-first; the return value packs the primary
     * outputs. State (memory effects) persists across calls.
     */
    uint64_t apply(uint64_t input_bits) { return eval.evaluateBits(input_bits); }

    /** Clear any internal (defect-induced or latch) state. */
    void reset() { eval.reset(); }

    /** Provenance of the injected faults. */
    const std::vector<InjectionRecord> &faultRecords() const
    {
        return records;
    }

    /** The underlying netlist. */
    const Netlist &netlist() const { return *nl; }

    /** Direct evaluator access (tests, amplitude probes). */
    Evaluator &evaluator() { return eval; }

  private:
    std::shared_ptr<const Netlist> nl;
    std::vector<InjectionRecord> records;
    Evaluator eval;
};

} // namespace dtann

#endif // DTANN_RTL_OPERATOR_SIM_HH
