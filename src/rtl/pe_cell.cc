#include "rtl/pe_cell.hh"

#include "rtl/adder.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"

namespace dtann {

PeCell::PeCell(FaStyle style)
    : latchNl(std::make_shared<Netlist>(buildLatchRegister(16))),
      multNl(std::make_shared<Netlist>(
          buildMultiplierSigned(16, style))),
      addNl(std::make_shared<Netlist>(buildRippleAdder(24, style, false)))
{
}

PeCellCensus
PeCell::census() const
{
    PeCellCensus c;
    c.latchTransistors = latchNl->transistorCount();
    c.multiplierTransistors = multNl->transistorCount();
    c.adderTransistors = addNl->transistorCount();
    return c;
}

} // namespace dtann
