/**
 * @file
 * Composite-logic netlist builder.
 *
 * Provides buses and the standard composite functions (AND, OR,
 * XOR, MUX, full adders) expressed in the inverting CMOS primitives
 * of src/circuit. Every 1-bit arithmetic cell is tagged with its own
 * group so the defect injector can sample "a random bit operation,
 * then a random transistor within it", as in the paper.
 */

#ifndef DTANN_RTL_BUILDER_HH
#define DTANN_RTL_BUILDER_HH

#include <string>
#include <vector>

#include "circuit/netlist.hh"

namespace dtann {

/** A bundle of nets, LSB first. */
using Bus = std::vector<NetId>;

/** Full-adder implementation styles. */
enum class FaStyle : uint8_t {
    Nand9,  ///< classic 9x NAND2 full adder (36 transistors)
    Mirror, ///< 28-transistor mirror adder (complex CMOS gates)
};

/** Stable lower-case style name ("nand9"/"mirror"), used in JSON. */
const char *faStyleName(FaStyle s);

/** Parse a faStyleName(); returns false on unknown names. */
bool faStyleFromName(const std::string &name, FaStyle &out);

/** Sum/carry pair returned by adder cells. */
struct SumCarry
{
    NetId sum;
    NetId carry;
};

/** Builds composite logic on top of a Netlist. */
class NetlistBuilder
{
  public:
    /** The netlist under construction. */
    Netlist &netlist() { return nl; }

    /** Move the finished netlist out of the builder. */
    Netlist take() { return std::move(nl); }

    /** Create a @p width bit primary-input bus. */
    Bus inputBus(int width);

    /** Declare @p bus as the next primary outputs (LSB first). */
    void outputBus(const Bus &bus);

    /** Start a new bit-cell group for subsequently added gates. */
    void beginCell();

    /** @name Primitive gates @{ */
    NetId notG(NetId a) { return nl.addGate(GateKind::Not, {a}); }
    NetId nand2(NetId a, NetId b)
    {
        return nl.addGate(GateKind::Nand2, {a, b});
    }
    NetId nor2(NetId a, NetId b)
    {
        return nl.addGate(GateKind::Nor2, {a, b});
    }
    /** @} */

    /** @name Composite two-level functions @{ */
    NetId and2(NetId a, NetId b) { return notG(nand2(a, b)); }
    NetId or2(NetId a, NetId b) { return notG(nor2(a, b)); }
    NetId xor2(NetId a, NetId b);
    NetId xnor2(NetId a, NetId b) { return notG(xor2(a, b)); }
    /** 2-to-1 multiplexer: sel ? b : a. */
    NetId mux2(NetId sel, NetId a, NetId b);
    /** @} */

    /** Reduction trees. */
    NetId andTree(const Bus &nets);
    NetId orTree(const Bus &nets);

    /** One-bit adders (each call is NOT its own cell; use
     *  beginCell() around calls to delimit bit cells). @{ */
    SumCarry halfAdder(NetId a, NetId b);
    SumCarry fullAdder(NetId a, NetId b, NetId cin, FaStyle style);
    /** @} */

    /** Shared constant net. */
    NetId constant(bool v) { return nl.constNet(v); }

  private:
    Netlist nl;
    uint16_t nextGroup = 0;
};

} // namespace dtann

#endif // DTANN_RTL_BUILDER_HH
