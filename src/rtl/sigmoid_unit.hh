/**
 * @file
 * Gate-level activation-function unit (paper Fig 4).
 *
 * The sigmoid is approximated by 16 linear segments over [-8, 8):
 * f(x) = a_i * x + b_i, where i is the segment index derived from
 * the integral bits of x. Inputs outside the range saturate to 0
 * or 1. The unit comprises: range detection, segment decoder,
 * coefficient look-up (hardwired constants selected through an
 * AND-OR mux), a signed multiplier and a final adder — all built
 * from CMOS primitives so transistor defects can land anywhere,
 * including inside the LUT.
 */

#ifndef DTANN_RTL_SIGMOID_UNIT_HH
#define DTANN_RTL_SIGMOID_UNIT_HH

#include <array>

#include "common/fixed_point.hh"
#include "rtl/builder.hh"

namespace dtann {

/** One piecewise-linear segment: f(x) = a * x + b. */
struct PwlSegment
{
    Fix16 a;
    Fix16 b;
};

/** The 16-entry coefficient table. */
using PwlTable = std::array<PwlSegment, 16>;

/**
 * Build the activation unit netlist.
 *
 * Primary inputs: x[16] (Q6.10); primary outputs: f[16] (Q6.10).
 *
 * @param table segment coefficients, index 0 covering [-8, -7)
 * @param style full-adder implementation for the datapath
 */
Netlist buildSigmoidUnit(const PwlTable &table,
                         FaStyle style = FaStyle::Nand9);

/**
 * Reference (native) evaluation with the same bit-exact semantics
 * as the netlist: used for clean operators and for equivalence
 * tests.
 */
Fix16 sigmoidUnitRef(const PwlTable &table, Fix16 x);

} // namespace dtann

#endif // DTANN_RTL_SIGMOID_UNIT_HH
