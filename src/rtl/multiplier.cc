#include "rtl/multiplier.hh"

#include <deque>
#include <vector>

#include "common/logging.hh"

namespace dtann {

namespace {

/**
 * Reduce per-column partial-product tokens to one bit per column
 * using full/half adder cells, dropping carries beyond the product
 * width (modulo arithmetic).
 */
Bus
reduceColumns(NetlistBuilder &bld,
              std::vector<std::deque<NetId>> &cols, FaStyle style)
{
    size_t width = cols.size();
    Bus product(width);
    for (size_t col = 0; col < width; ++col) {
        auto &tokens = cols[col];
        dtann_assert(!tokens.empty(), "empty product column %zu", col);
        while (tokens.size() >= 3) {
            NetId a = tokens.front(); tokens.pop_front();
            NetId b = tokens.front(); tokens.pop_front();
            NetId c = tokens.front(); tokens.pop_front();
            bld.beginCell();
            SumCarry sc = bld.fullAdder(a, b, c, style);
            tokens.push_back(sc.sum);
            if (col + 1 < width)
                cols[col + 1].push_back(sc.carry);
        }
        if (tokens.size() == 2) {
            NetId a = tokens.front(); tokens.pop_front();
            NetId b = tokens.front(); tokens.pop_front();
            bld.beginCell();
            SumCarry sc = bld.halfAdder(a, b);
            tokens.push_back(sc.sum);
            if (col + 1 < width)
                cols[col + 1].push_back(sc.carry);
        }
        product[col] = tokens.front();
    }
    return product;
}

} // namespace

Bus
multiplyUnsigned(NetlistBuilder &bld, const Bus &a, const Bus &b,
                 FaStyle style)
{
    dtann_assert(a.size() == b.size(), "operand width mismatch");
    size_t w = a.size();
    std::vector<std::deque<NetId>> cols(2 * w);
    for (size_t i = 0; i < w; ++i) {
        for (size_t j = 0; j < w; ++j) {
            bld.beginCell();
            cols[i + j].push_back(bld.and2(a[i], b[j]));
        }
    }
    // The top column receives only carries; seed it so reduction
    // always finds a token.
    if (cols[2 * w - 1].empty())
        cols[2 * w - 1].push_back(bld.constant(false));
    return reduceColumns(bld, cols, style);
}

Bus
multiplySigned(NetlistBuilder &bld, const Bus &a, const Bus &b,
               FaStyle style)
{
    dtann_assert(a.size() == b.size(), "operand width mismatch");
    size_t w = a.size();
    size_t msb = w - 1;
    std::vector<std::deque<NetId>> cols(2 * w);

    // Baugh-Wooley: mixed MSB partial products are complemented
    // (NAND instead of AND), and constant 1s enter at columns w and
    // 2w-1.
    for (size_t i = 0; i < w; ++i) {
        for (size_t j = 0; j < w; ++j) {
            bld.beginCell();
            bool mixed = (i == msb) != (j == msb);
            NetId pp = mixed ? bld.nand2(a[i], b[j])
                             : bld.and2(a[i], b[j]);
            cols[i + j].push_back(pp);
        }
    }
    cols[w].push_back(bld.constant(true));
    cols[2 * w - 1].push_back(bld.constant(true));
    return reduceColumns(bld, cols, style);
}

Netlist
buildMultiplierUnsigned(int width, FaStyle style)
{
    dtann_assert(width >= 2 && width <= 16, "unsupported multiplier width");
    NetlistBuilder bld;
    Bus a = bld.inputBus(width);
    Bus b = bld.inputBus(width);
    Bus p = multiplyUnsigned(bld, a, b, style);
    bld.outputBus(p);
    return bld.take();
}

Netlist
buildMultiplierSigned(int width, FaStyle style)
{
    dtann_assert(width >= 2 && width <= 16, "unsupported multiplier width");
    NetlistBuilder bld;
    Bus a = bld.inputBus(width);
    Bus b = bld.inputBus(width);
    Bus p = multiplySigned(bld, a, b, style);
    bld.outputBus(p);
    return bld.take();
}

} // namespace dtann
