#include "rtl/sigmoid_unit.hh"

#include "common/logging.hh"
#include "rtl/adder.hh"
#include "rtl/multiplier.hh"

namespace dtann {

Fix16
sigmoidUnitRef(const PwlTable &table, Fix16 x)
{
    int16_t raw = x.raw();
    if (raw >= 8 * Fix16::scale)
        return Fix16::fromDouble(1.0);
    if (raw < -8 * Fix16::scale)
        return Fix16::fromDouble(0.0);
    size_t idx = static_cast<size_t>((raw >> Fix16::fracBits) + 8);
    const PwlSegment &seg = table[idx];
    return Fix16::hwAdd(Fix16::hwMul(seg.a, x), seg.b);
}

Netlist
buildSigmoidUnit(const PwlTable &table, FaStyle style)
{
    NetlistBuilder bld;
    Bus x = bld.inputBus(16);

    // Range detection: x is in [-8, 8) exactly when bits 14 and 13
    // both equal the sign bit (sign extension holds down to the
    // integral MSB).
    bld.beginCell();
    NetId sign = x[15];
    NetId eq14 = bld.xnor2(x[14], sign);
    NetId eq13 = bld.xnor2(x[13], sign);
    NetId in_range = bld.and2(eq14, eq13);
    NetId out_range = bld.notG(in_range);
    NetId hi_sat = bld.and2(bld.notG(sign), out_range);
    NetId lo_sat = bld.and2(sign, out_range);

    // Segment index: floor(x) + 8 in 4 bits = {x12..x10, !x13}.
    bld.beginCell();
    Bus idx = {x[10], x[11], x[12], bld.notG(x[13])};
    Bus idx_n(4);
    for (size_t i = 0; i < 4; ++i)
        idx_n[i] = bld.notG(idx[i]);

    // 4-to-16 one-hot decoder.
    Bus sel(16);
    for (size_t i = 0; i < 16; ++i) {
        bld.beginCell();
        Bus lits(4);
        for (size_t b = 0; b < 4; ++b)
            lits[b] = (i >> b) & 1 ? idx[b] : idx_n[b];
        sel[i] = bld.andTree(lits);
    }

    // Hardwired coefficient look-up: AND-OR selection of constant
    // bits. A bit of the selected coefficient is the OR of the
    // select lines of all entries having that bit set.
    auto lookup = [&](auto bit_of) {
        Bus out(16);
        for (size_t k = 0; k < 16; ++k) {
            bld.beginCell();
            Bus terms;
            for (size_t i = 0; i < 16; ++i)
                if (bit_of(table[i], k))
                    terms.push_back(sel[i]);
            out[k] = terms.empty() ? bld.constant(false)
                                   : bld.orTree(terms);
        }
        return out;
    };
    Bus coeff_a = lookup([](const PwlSegment &s, size_t k) {
        return (s.a.bits() >> k) & 1;
    });
    Bus coeff_b = lookup([](const PwlSegment &s, size_t k) {
        return (s.b.bits() >> k) & 1;
    });

    // Datapath: (a * x) >> 10 selected from the 32-bit product,
    // then + b with 16-bit wrap.
    Bus product = multiplySigned(bld, coeff_a, x, style);
    Bus shifted(product.begin() + Fix16::fracBits,
                product.begin() + Fix16::fracBits + 16);
    Bus sum = rippleAdd(bld, shifted, coeff_b, bld.constant(false),
                        style, nullptr);

    // Output stage: saturate to 1.0 (raw 1<<10) or 0.0 outside the
    // input range.
    Bus f(16);
    for (size_t k = 0; k < 16; ++k) {
        bld.beginCell();
        NetId base = bld.and2(sum[k], in_range);
        f[k] = (k == Fix16::fracBits) ? bld.or2(base, hi_sat) : base;
    }
    (void)lo_sat; // Low saturation is the all-zero base path.

    bld.outputBus(f);
    return bld.take();
}

} // namespace dtann
