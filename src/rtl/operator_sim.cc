#include "rtl/operator_sim.hh"

#include "circuit/lane_plane.hh"
#include "common/env.hh"

namespace dtann {

OperatorSim::OperatorSim(std::shared_ptr<const Netlist> netlist,
                         Injection injection, CleanFn clean)
    : nl(std::move(netlist)), records(std::move(injection.records)),
      eval(*nl, injection.faults, noCone() ? CleanFn{} : clean),
      batch(noBatch()
                ? std::optional<BatchEvaluator>{}
                : BatchEvaluator::tryCreate(
                      *nl, std::move(injection.faults),
                      noCone() ? CleanFn{} : std::move(clean),
                      batchLaneWidth()))
{
}

uint64_t
OperatorSim::apply(uint64_t input_bits)
{
    ++scalarVectors;
    return eval.evaluateBits(input_bits);
}

void
OperatorSim::applyLanes(const uint64_t *inputs, uint64_t *outputs,
                        size_t count)
{
    if (!batch) {
        // Scalar fallback: evaluation order matters (memory
        // effects), so walk the vectors in order.
        for (size_t i = 0; i < count; ++i)
            outputs[i] = apply(inputs[i]);
        return;
    }
    size_t width = batch->laneCount();
    for (size_t off = 0; off < count; off += width) {
        size_t chunk = std::min(width, count - off);
        batch->evaluateLanes(inputs + off, outputs + off, chunk);
        batchVectors += chunk;
        laneSlots += width; // a sweep provisions the whole plane
    }
}

void
OperatorSim::reset()
{
    eval.reset();
}

SimCounters
OperatorSim::counters() const
{
    SimCounters c;
    c.scalarVectors = scalarVectors;
    c.batchVectors = batchVectors;
    c.gateEvals = eval.gateEvals();
    if (batch) {
        c.batchSweeps = batch->sweeps();
        // Sweeps driven through applyLanes() report their exact
        // provisioned slots; sweeps some other path executed on the
        // evaluator directly fall back to the full-width estimate.
        uint64_t accounted = laneSlots / batch->laneCount();
        c.batchLaneSlots = laneSlots +
            (batch->sweeps() - std::min(batch->sweeps(), accounted)) *
                batch->laneCount();
        c.batchGateSweeps = batch->gateSweeps();
    }
    return c;
}

} // namespace dtann
