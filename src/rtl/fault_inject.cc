#include "rtl/fault_inject.hh"

#include <map>

#include "common/logging.hh"
#include "transistor/reconstruct.hh"
#include "transistor/switch_network.hh"

namespace dtann {

namespace {

/** Gates of each cell group that are usable fault sites. */
std::vector<std::vector<uint32_t>>
groupSites(const Netlist &nl)
{
    std::vector<std::vector<uint32_t>> groups(nl.numGroups());
    for (uint32_t gi = 0; gi < nl.numGates(); ++gi)
        if (hasSchematic(nl.gate(gi).kind))
            groups[nl.gate(gi).group].push_back(gi);
    // Drop empty groups (e.g., cells made only of constants).
    std::vector<std::vector<uint32_t>> out;
    for (auto &g : groups)
        if (!g.empty())
            out.push_back(std::move(g));
    return out;
}

/** Pick a gate within a group, weighted by transistor count. */
uint32_t
pickGate(const Netlist &nl, const std::vector<uint32_t> &sites, Rng &rng)
{
    size_t total = 0;
    for (uint32_t gi : sites)
        total += static_cast<size_t>(gateTransistorCount(nl.gate(gi).kind));
    size_t draw = rng.nextUint(total);
    for (uint32_t gi : sites) {
        size_t t =
            static_cast<size_t>(gateTransistorCount(nl.gate(gi).kind));
        if (draw < t)
            return gi;
        draw -= t;
    }
    panic("pickGate: weighted draw out of range");
}

} // namespace

Injection
injectTransistorDefects(const Netlist &nl, int count, Rng &rng,
                        const DefectMix &mix)
{
    auto groups = groupSites(nl);
    dtann_assert(!groups.empty(), "netlist has no fault sites");

    // Gather per-gate defect lists, then reconstruct each touched
    // gate once with all of its defects.
    std::map<uint32_t, std::vector<Defect>> per_gate;
    Injection inj;
    for (int k = 0; k < count; ++k) {
        const auto &sites = groups[rng.nextUint(groups.size())];
        uint32_t gi = pickGate(nl, sites, rng);
        Defect d = randomDefect(nl.gate(gi).kind, rng, mix);
        per_gate[gi].push_back(d);
        inj.records.push_back({gi, std::string(gateName(nl.gate(gi).kind)) +
                                       ":" + d.describe()});
    }
    for (const auto &[gi, defects] : per_gate) {
        ReconstructedGate rec =
            reconstruct(nl.gate(gi).kind, defects);
        inj.faults.overrides[gi] = rec.function;
        if (rec.delayed)
            inj.faults.delayed.insert(gi);
    }
    return inj;
}

Injection
injectGateLevelFaults(const Netlist &nl, int count, Rng &rng)
{
    auto groups = groupSites(nl);
    dtann_assert(!groups.empty(), "netlist has no fault sites");

    Injection inj;
    for (int k = 0; k < count; ++k) {
        const auto &sites = groups[rng.nextUint(groups.size())];
        uint32_t gi = sites[rng.nextUint(sites.size())];
        int arity = nl.gate(gi).arity();
        // Pick an input pin, or the output, uniformly.
        int pin = static_cast<int>(rng.nextUint(
            static_cast<uint64_t>(arity) + 1));
        StuckAtFault f;
        f.gate = gi;
        f.input = pin == arity ? -1 : static_cast<int8_t>(pin);
        f.value = rng.nextBool();
        inj.faults.stuckAt.push_back(f);
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s:stuck%s@%d",
                      gateName(nl.gate(gi).kind), f.value ? "1" : "0",
                      static_cast<int>(f.input));
        inj.records.push_back({gi, buf});
    }
    return inj;
}

} // namespace dtann
