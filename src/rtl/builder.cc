#include "rtl/builder.hh"

#include "common/logging.hh"

namespace dtann {

const char *
faStyleName(FaStyle s)
{
    return s == FaStyle::Nand9 ? "nand9" : "mirror";
}

bool
faStyleFromName(const std::string &name, FaStyle &out)
{
    if (name == "nand9") {
        out = FaStyle::Nand9;
        return true;
    }
    if (name == "mirror") {
        out = FaStyle::Mirror;
        return true;
    }
    return false;
}

Bus
NetlistBuilder::inputBus(int width)
{
    Bus bus(static_cast<size_t>(width));
    for (NetId &net : bus) {
        net = nl.addNet();
        nl.markInput(net);
    }
    return bus;
}

void
NetlistBuilder::outputBus(const Bus &bus)
{
    for (NetId net : bus)
        nl.markOutput(net);
}

void
NetlistBuilder::beginCell()
{
    nl.setGroup(nextGroup++);
}

NetId
NetlistBuilder::xor2(NetId a, NetId b)
{
    // Classic 4-NAND XOR.
    NetId n1 = nand2(a, b);
    NetId n2 = nand2(a, n1);
    NetId n3 = nand2(b, n1);
    return nand2(n2, n3);
}

NetId
NetlistBuilder::mux2(NetId sel, NetId a, NetId b)
{
    // sel ? b : a  ==  NAND(NAND(a, !sel), NAND(b, sel)).
    NetId nsel = notG(sel);
    return nand2(nand2(a, nsel), nand2(b, sel));
}

NetId
NetlistBuilder::andTree(const Bus &nets)
{
    dtann_assert(!nets.empty(), "empty reduction");
    Bus level = nets;
    while (level.size() > 1) {
        Bus next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(and2(level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

NetId
NetlistBuilder::orTree(const Bus &nets)
{
    dtann_assert(!nets.empty(), "empty reduction");
    Bus level = nets;
    while (level.size() > 1) {
        Bus next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(or2(level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

SumCarry
NetlistBuilder::halfAdder(NetId a, NetId b)
{
    return {xor2(a, b), and2(a, b)};
}

SumCarry
NetlistBuilder::fullAdder(NetId a, NetId b, NetId cin, FaStyle style)
{
    if (style == FaStyle::Mirror) {
        // 28T mirror adder: complex carry and sum stages + inverters.
        NetId coutN = nl.addGate(GateKind::CarryN, {a, b, cin});
        NetId sumN = nl.addGate(GateKind::MirrorSumN, {a, b, cin, coutN});
        return {notG(sumN), notG(coutN)};
    }

    // Classic 9-NAND2 full adder.
    NetId n1 = nand2(a, b);
    NetId n2 = nand2(a, n1);
    NetId n3 = nand2(b, n1);
    NetId axb = nand2(n2, n3); // a XOR b
    NetId n5 = nand2(axb, cin);
    NetId n6 = nand2(axb, n5);
    NetId n7 = nand2(cin, n5);
    NetId sum = nand2(n6, n7);
    NetId cout = nand2(n1, n5);
    return {sum, cout};
}

} // namespace dtann
