#include "rtl/adder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

Bus
rippleAdd(NetlistBuilder &bld, const Bus &a, const Bus &b, NetId cin,
          FaStyle style, NetId *cout_net)
{
    dtann_assert(a.size() == b.size(), "operand width mismatch");
    Bus sum(a.size());
    NetId carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        bld.beginCell();
        SumCarry sc = bld.fullAdder(a[i], b[i], carry, style);
        sum[i] = sc.sum;
        carry = sc.carry;
    }
    if (cout_net)
        *cout_net = carry;
    return sum;
}

Bus
carrySelectAdd(NetlistBuilder &bld, const Bus &a, const Bus &b,
               NetId cin, int block_width, FaStyle style,
               NetId *cout_net)
{
    dtann_assert(a.size() == b.size(), "operand width mismatch");
    dtann_assert(block_width >= 1, "block width must be positive");
    size_t w = a.size();
    Bus sum(w);
    NetId carry = cin;
    for (size_t base = 0; base < w;
         base += static_cast<size_t>(block_width)) {
        size_t len = std::min<size_t>(
            static_cast<size_t>(block_width), w - base);
        // Two speculative ripples per block: carry-in 0 and 1.
        Bus sum0(len), sum1(len);
        NetId c0 = bld.constant(false);
        NetId c1 = bld.constant(true);
        for (size_t i = 0; i < len; ++i) {
            bld.beginCell();
            SumCarry s0 = bld.fullAdder(a[base + i], b[base + i], c0,
                                        style);
            SumCarry s1 = bld.fullAdder(a[base + i], b[base + i], c1,
                                        style);
            sum0[i] = s0.sum;
            sum1[i] = s1.sum;
            c0 = s0.carry;
            c1 = s1.carry;
        }
        // The incoming carry selects the speculated results.
        for (size_t i = 0; i < len; ++i) {
            bld.beginCell();
            sum[base + i] = bld.mux2(carry, sum0[i], sum1[i]);
        }
        bld.beginCell();
        carry = bld.mux2(carry, c0, c1);
    }
    if (cout_net)
        *cout_net = carry;
    return sum;
}

Netlist
buildCarrySelectAdder(int width, int block_width, FaStyle style,
                      bool carry_out)
{
    dtann_assert(width >= 1 && width <= 32, "unsupported adder width");
    NetlistBuilder bld;
    Bus a = bld.inputBus(width);
    Bus b = bld.inputBus(width);
    NetId cout = invalidNet;
    Bus sum = carrySelectAdd(bld, a, b, bld.constant(false),
                             block_width, style, &cout);
    bld.outputBus(sum);
    if (carry_out)
        bld.netlist().markOutput(cout);
    return bld.take();
}

Netlist
buildRippleAdder(int width, FaStyle style, bool carry_out)
{
    dtann_assert(width >= 1 && width <= 32, "unsupported adder width");
    NetlistBuilder bld;
    Bus a = bld.inputBus(width);
    Bus b = bld.inputBus(width);
    NetId cout = invalidNet;
    Bus sum = rippleAdd(bld, a, b, bld.constant(false), style, &cout);
    bld.outputBus(sum);
    if (carry_out)
        bld.netlist().markOutput(cout);
    return bld.take();
}

} // namespace dtann
