/**
 * @file
 * Array multiplier netlists.
 *
 * Two variants:
 *  - unsigned AND-array multiplier (the paper's Fig 5 uses 4-bit
 *    unsigned operators),
 *  - Baugh-Wooley two's complement multiplier for the Q6.10
 *    datapath (the accelerator's synaptic multipliers).
 *
 * Partial products are reduced column-wise with half/full adder
 * cells; every partial-product generator and every adder cell is
 * its own defect-sampling group.
 */

#ifndef DTANN_RTL_MULTIPLIER_HH
#define DTANN_RTL_MULTIPLIER_HH

#include "rtl/builder.hh"

namespace dtann {

/**
 * Build an unsigned @p width x @p width array multiplier.
 *
 * Primary inputs: a[w], b[w]; primary outputs: p[2w].
 */
Netlist buildMultiplierUnsigned(int width,
                                FaStyle style = FaStyle::Nand9);

/**
 * Build a Baugh-Wooley two's complement @p width x @p width
 * multiplier. Primary inputs: a[w], b[w]; outputs: p[2w]
 * (the full signed product modulo 2^(2w)).
 */
Netlist buildMultiplierSigned(int width,
                              FaStyle style = FaStyle::Nand9);

/**
 * Attach a Baugh-Wooley signed multiplier to existing buses inside
 * a larger netlist. @return the 2w-bit product bus.
 */
Bus multiplySigned(NetlistBuilder &bld, const Bus &a, const Bus &b,
                   FaStyle style);

/**
 * Attach an unsigned array multiplier to existing buses inside a
 * larger netlist. @return the 2w-bit product bus.
 */
Bus multiplyUnsigned(NetlistBuilder &bld, const Bus &a, const Bus &b,
                     FaStyle style);

} // namespace dtann

#endif // DTANN_RTL_MULTIPLIER_HH
