/**
 * @file
 * Minimal hand-rolled HTTP/1.1 for the campaign daemon.
 *
 * The daemon (service/server) and the dtann_campaign client speak a
 * deliberately small slice of HTTP/1.1 over local sockets: one
 * request per connection, JSON bodies, Content-Length or chunked
 * transfer coding, no external dependencies. This module is the
 * wire layer only — an incremental message parser plus
 * serialization helpers — with no socket knowledge, so the edge
 * cases (truncated requests, oversized bodies, malformed chunking)
 * are unit-testable byte by byte.
 *
 * Parser contract: feed() bytes as they arrive; the parser settles
 * in Done (one complete message, trailing bytes ignored) or Error
 * (with an HTTP status — 400 malformed, 413 too large, 431 header
 * section too large, 501 unsupported transfer coding). A proper
 * prefix of a valid message is never an Error, so truncation is
 * always distinguishable from malformed input.
 */

#ifndef DTANN_COMMON_HTTP_HH
#define DTANN_COMMON_HTTP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dtann {

/** One parsed HTTP message (request or response). */
struct HttpMessage
{
    // Request start line (request mode).
    std::string method;  ///< e.g. "GET"
    std::string target;  ///< raw request target, e.g. "/jobs/3"
    // Status line (response mode).
    int status = 0;
    std::string reason;

    std::string version; ///< e.g. "HTTP/1.1"
    /** Headers in arrival order; names lower-cased, values trimmed. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Value of the first header named @p name (lower-case), or "". */
    const std::string &header(const std::string &name) const;

    /** The target's path ("/jobs/3") without the query string. */
    std::string path() const;
    /** The target's query string (after '?'), or "". */
    std::string query() const;
};

/** Incremental HTTP/1.1 message parser (see file comment). */
class HttpParser
{
  public:
    enum class Mode : uint8_t { Request, Response };
    enum class State : uint8_t { NeedMore, Done, Error };

    explicit HttpParser(Mode mode = Mode::Request,
                        size_t max_body = kDefaultMaxBody,
                        size_t max_headers = kDefaultMaxHeaders);

    /** Default request-body cap (daemon specs are small JSON). */
    static constexpr size_t kDefaultMaxBody = 1 << 20;
    /** Default cap on the start line + header section. */
    static constexpr size_t kDefaultMaxHeaders = 64 << 10;

    /**
     * Consume @p len bytes. Returns the parser state afterwards;
     * once Done or Error, further bytes are ignored.
     */
    State feed(const char *data, size_t len);
    State feed(const std::string &data)
    {
        return feed(data.data(), data.size());
    }

    /**
     * Signal end of input (peer closed). In response mode a body
     * delimited by connection close completes here; everything else
     * still mid-message becomes a 400 "truncated" Error.
     */
    State finish();

    State state() const { return st; }
    /** The parsed message; meaningful once state() == Done. */
    const HttpMessage &message() const { return msg; }

    /** HTTP status for the failure (400/413/431/501); Error only. */
    int errorStatus() const { return errStatus; }
    /** Human-readable parse failure; Error only. */
    const std::string &errorMessage() const { return errMessage; }

  private:
    enum class Phase : uint8_t {
        StartLine,
        Headers,
        FixedBody,
        UntilCloseBody,
        ChunkSize,
        ChunkData,
        ChunkDataEnd,
        Trailers,
        Complete,
        Failed,
    };

    State fail(int status, const std::string &why);
    bool consumeLine(std::string &line);
    void parseStartLine(const std::string &line);
    void parseHeaderLine(const std::string &line);
    void endOfHeaders();

    Mode mode;
    size_t maxBody;
    size_t maxHeaders;

    Phase phase = Phase::StartLine;
    State st = State::NeedMore;
    HttpMessage msg;
    std::string buf;          ///< unconsumed input
    size_t headerBytes = 0;   ///< start line + headers seen so far
    size_t bodyRemaining = 0; ///< FixedBody/ChunkData bytes left
    int errStatus = 0;
    std::string errMessage;
};

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpStatusReason(int status);

/**
 * Serialize a one-shot response: status line, Content-Type,
 * Content-Length and Connection: close headers, then @p body.
 */
std::string httpResponse(int status, const std::string &body,
                         const std::string &content_type =
                             "application/json");

/** Serialize a one-shot request with a Content-Length body. */
std::string httpRequest(const std::string &method,
                        const std::string &target,
                        const std::string &body = "");

} // namespace dtann

#endif // DTANN_COMMON_HTTP_HH
