/**
 * @file
 * Deterministic random number generation.
 *
 * All experiment code takes an explicit Rng so campaigns are exactly
 * reproducible from a single seed. Two sub-stream mechanisms exist:
 *
 * - split(): draws the child seed from the parent engine, so the
 *   child stream depends on *how many* splits happened before it.
 *   Fine for serial code; unusable for parallel work distribution,
 *   because any change in scheduling order changes every stream.
 *
 * - substream(seed, path): counter-based derivation. The child
 *   stream is a pure function of the master seed and a caller-chosen
 *   path of integers (e.g. {task, defect index, repetition}), so it
 *   is independent of evaluation order and thread count. This is
 *   what the parallel campaign engine uses to stay bit-identical
 *   for any number of worker threads.
 */

#ifndef DTANN_COMMON_RNG_HH
#define DTANN_COMMON_RNG_HH

#include <cstdint>
#include <initializer_list>
#include <random>
#include <vector>

#include "common/logging.hh"

namespace dtann {

/**
 * Seeded pseudo-random generator with convenience draws.
 *
 * Thin wrapper around std::mt19937_64 providing the handful of
 * distributions the library needs.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eedULL) : engine(seed) {}

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    nextUint(uint64_t bound)
    {
        dtann_assert(bound > 0, "nextUint bound must be positive");
        return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    nextInt(int64_t lo, int64_t hi)
    {
        dtann_assert(lo <= hi, "nextInt empty range");
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine);
    }

    /** Uniform double in [0, 1). */
    double nextDouble() { return unit(engine); }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Standard normal draw. */
    double nextGauss() { return gauss(engine); }

    /** Normal draw with given mean and standard deviation. */
    double nextGauss(double mean, double sd) { return mean + sd * nextGauss(); }

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5) { return nextDouble() < p; }

    /**
     * Split off an independent sub-stream.
     *
     * @warning The child seed is drawn from this engine, so the
     * result depends on the number of draws/splits performed before
     * the call. Serial code that always splits in the same order is
     * deterministic; work scheduled across threads is not. Parallel
     * code must use substream() instead.
     */
    Rng
    split()
    {
        uint64_t s = engine();
        return Rng(s ^ 0x9e3779b97f4a7c15ULL);
    }

    /** SplitMix64 finalizer (avalanching 64-bit hash). */
    static constexpr uint64_t
    mix64(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    /**
     * Derive an independent sub-stream by counter-based splitting.
     *
     * The child seed is a hash chain over the master @p seed and the
     * @p path of caller-chosen counters (position-sensitive: path
     * {1, 2} and {2, 1} give different streams). Unlike split(),
     * the result is a pure function of its arguments — no hidden
     * state — so any (task, variant, repetition) cell of a campaign
     * can derive its stream regardless of which thread runs it, or
     * in what order.
     */
    static Rng
    substream(uint64_t seed, std::initializer_list<uint64_t> path)
    {
        uint64_t h = mix64(seed);
        for (uint64_t p : path)
            h = mix64(h ^ mix64(p));
        return Rng(h);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[nextUint(i)]);
    }

    /** Draw k distinct indices from [0, n). @pre k <= n. */
    std::vector<size_t>
    sampleWithoutReplacement(size_t n, size_t k)
    {
        dtann_assert(k <= n, "sample larger than population");
        std::vector<size_t> idx(n);
        for (size_t i = 0; i < n; ++i)
            idx[i] = i;
        for (size_t i = 0; i < k; ++i)
            std::swap(idx[i], idx[i + nextUint(n - i)]);
        idx.resize(k);
        return idx;
    }

    /** Access the raw engine (for std distributions). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
    std::uniform_real_distribution<double> unit{0.0, 1.0};
    std::normal_distribution<double> gauss{0.0, 1.0};
};

} // namespace dtann

#endif // DTANN_COMMON_RNG_HH
