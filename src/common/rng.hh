/**
 * @file
 * Deterministic random number generation.
 *
 * All experiment code takes an explicit Rng so campaigns are exactly
 * reproducible from a single seed. Sub-streams can be split off for
 * independent components (e.g., one stream per repetition).
 */

#ifndef DTANN_COMMON_RNG_HH
#define DTANN_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.hh"

namespace dtann {

/**
 * Seeded pseudo-random generator with convenience draws.
 *
 * Thin wrapper around std::mt19937_64 providing the handful of
 * distributions the library needs.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eedULL) : engine(seed) {}

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    nextUint(uint64_t bound)
    {
        dtann_assert(bound > 0, "nextUint bound must be positive");
        return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    nextInt(int64_t lo, int64_t hi)
    {
        dtann_assert(lo <= hi, "nextInt empty range");
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine);
    }

    /** Uniform double in [0, 1). */
    double nextDouble() { return unit(engine); }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Standard normal draw. */
    double nextGauss() { return gauss(engine); }

    /** Normal draw with given mean and standard deviation. */
    double nextGauss(double mean, double sd) { return mean + sd * nextGauss(); }

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5) { return nextDouble() < p; }

    /** Split off an independent sub-stream. */
    Rng
    split()
    {
        uint64_t s = engine();
        return Rng(s ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[nextUint(i)]);
    }

    /** Draw k distinct indices from [0, n). @pre k <= n. */
    std::vector<size_t>
    sampleWithoutReplacement(size_t n, size_t k)
    {
        dtann_assert(k <= n, "sample larger than population");
        std::vector<size_t> idx(n);
        for (size_t i = 0; i < n; ++i)
            idx[i] = i;
        for (size_t i = 0; i < k; ++i)
            std::swap(idx[i], idx[i + nextUint(n - i)]);
        idx.resize(k);
        return idx;
    }

    /** Access the raw engine (for std distributions). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
    std::uniform_real_distribution<double> unit{0.0, 1.0};
    std::normal_distribution<double> gauss{0.0, 1.0};
};

} // namespace dtann

#endif // DTANN_COMMON_RNG_HH
