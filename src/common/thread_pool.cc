#include "common/thread_pool.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace dtann {

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    int env = threadCount();
    if (env > 0)
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    int width = resolveThreads(threads);
    workers.reserve(static_cast<size_t>(width - 1));
    for (int i = 0; i < width - 1; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::drainBatch()
{
    for (;;) {
        size_t i = nextIndex.fetch_add(1, std::memory_order_relaxed);
        if (i >= batchSize)
            return;
        try {
            (*batchFn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu);
            if (!firstError)
                firstError = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lk(mu);
        wake.wait(lk, [&] { return stopping || generation != seen; });
        if (stopping)
            return;
        seen = generation;
        lk.unlock();

        drainBatch();

        lk.lock();
        if (--running == 0) {
            lk.unlock();
            done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty()) {
        // Same drain-then-rethrow semantics as the threaded path:
        // one throwing index never starves the rest of the batch.
        batchSize = n;
        batchFn = &fn;
        nextIndex.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        drainBatch();
        batchFn = nullptr;
        if (firstError)
            std::rethrow_exception(firstError);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(mu);
        dtann_assert(batchFn == nullptr,
                     "nested/concurrent parallelFor on one pool");
        batchSize = n;
        batchFn = &fn;
        nextIndex.store(0, std::memory_order_relaxed);
        running = workers.size();
        firstError = nullptr;
        ++generation;
    }
    wake.notify_all();

    drainBatch(); // the calling thread participates

    std::unique_lock<std::mutex> lk(mu);
    done.wait(lk, [&] { return running == 0; });
    batchFn = nullptr;
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace dtann
