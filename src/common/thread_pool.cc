#include "common/thread_pool.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace dtann {

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    int env = threadCount();
    if (env > 0)
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    int width = resolveThreads(threads);
    workers.reserve(static_cast<size_t>(width - 1));
    for (int i = 0; i < width - 1; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        dtann_assert(batches.empty(),
                     "ThreadPool destroyed with a batch in flight");
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

ThreadPool::Batch *
ThreadPool::pickBatch()
{
    // Rotate the starting point so concurrent batches share the
    // workers fairly: each claim starts scanning one batch past the
    // previous claim's winner instead of always draining the oldest
    // batch first.
    size_t n = batches.size();
    for (size_t probe = 0; probe < n; ++probe) {
        Batch *b = batches[(rrCursor + probe) % n];
        if (b->next < b->size) {
            rrCursor = (rrCursor + probe + 1) % n;
            return b;
        }
    }
    return nullptr;
}

void
ThreadPool::runIndex(Batch *b, size_t index)
{
    try {
        (*b->fn)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!b->firstError)
            b->firstError = std::current_exception();
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        Batch *b = nullptr;
        wake.wait(lk, [&] {
            return stopping || (b = pickBatch()) != nullptr;
        });
        if (stopping)
            return;
        size_t index = b->next++;
        ++b->running;
        lk.unlock();
        runIndex(b, index);
        lk.lock();
        if (--b->running == 0 && b->next >= b->size)
            done.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty()) {
        // Same drain-then-rethrow semantics as the threaded path:
        // one throwing index never starves the rest of the batch.
        // All state is local, so concurrent callers stay isolated.
        std::exception_ptr first;
        for (size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return;
    }

    Batch batch;
    batch.size = n;
    batch.fn = &fn;

    std::unique_lock<std::mutex> lk(mu);
    batches.push_back(&batch);
    wake.notify_all();

    // The calling thread participates, claiming only from its own
    // batch: a job's submitter always works on that job, while the
    // shared workers interleave all active batches fairly.
    while (batch.next < batch.size) {
        size_t index = batch.next++;
        ++batch.running;
        lk.unlock();
        runIndex(&batch, index);
        lk.lock();
        if (--batch.running == 0 && batch.next >= batch.size)
            done.notify_all();
    }
    done.wait(lk, [&] {
        return batch.next >= batch.size && batch.running == 0;
    });
    for (size_t i = 0; i < batches.size(); ++i)
        if (batches[i] == &batch) {
            batches.erase(batches.begin() + static_cast<long>(i));
            break;
        }
    if (rrCursor >= batches.size())
        rrCursor = 0;
    lk.unlock();

    if (batch.firstError)
        std::rethrow_exception(batch.firstError);
}

} // namespace dtann
