/**
 * @file
 * Thin RAII wrappers over local stream sockets.
 *
 * The campaign daemon (service/server) listens on either a loopback
 * TCP socket or a Unix-domain socket; the dtann_campaign client
 * connects to the same addresses. Both ends use one address syntax:
 *
 *   "127.0.0.1:8437"   loopback TCP (port 0 = kernel-assigned)
 *   "unix:/path/sock"  Unix-domain stream socket
 *
 * No external dependencies; errors surface as SocketError with the
 * errno message attached. This is deliberately a minimal, blocking
 * API — the daemon's request handling is short-lived per
 * connection, and heavy work happens on the campaign pool, not on
 * sockets.
 */

#ifndef DTANN_COMMON_SOCKET_HH
#define DTANN_COMMON_SOCKET_HH

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dtann {

/** Error from socket setup or I/O; what() includes strerror. */
struct SocketError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** One connected (or listening) stream socket, closed on destroy. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /**
     * Read up to @p cap bytes into @p buf. Returns the byte count,
     * 0 on orderly peer close. Retries EINTR; throws SocketError on
     * other failures.
     */
    size_t readSome(char *buf, size_t cap);

    /** Write all @p len bytes (retrying partial writes and EINTR). */
    void writeAll(const char *data, size_t len);
    void writeAll(const std::string &data)
    {
        writeAll(data.data(), data.size());
    }

  private:
    int fd_ = -1;
};

/**
 * A bound, listening server socket for @p address (see file
 * comment for the syntax). For TCP, port 0 binds a kernel-assigned
 * ephemeral port. For Unix sockets, a stale socket file at the path
 * is removed before binding.
 */
class ListenSocket
{
  public:
    explicit ListenSocket(const std::string &address, int backlog = 16);
    ~ListenSocket();

    ListenSocket(const ListenSocket &) = delete;
    ListenSocket &operator=(const ListenSocket &) = delete;

    /** Block until a client connects. */
    Socket accept();

    /**
     * The resolved address: for TCP the actual bound port
     * ("127.0.0.1:41873"), for Unix sockets "unix:<path>".
     */
    const std::string &address() const { return addr; }

    /** Bound TCP port, or 0 for Unix sockets. */
    int port() const { return tcpPort; }

    int fd() const { return sock.fd(); }

  private:
    Socket sock;
    std::string addr;
    std::string unixPath; ///< non-empty => unlink on destroy
    int tcpPort = 0;
};

/** Connect to a daemon at @p address (same syntax as listening). */
Socket connectTo(const std::string &address);

} // namespace dtann

#endif // DTANN_COMMON_SOCKET_HH
