/**
 * @file
 * Q6.10 fixed-point arithmetic with hardware-exact semantics.
 *
 * The accelerator's datapath is 16-bit two's complement with a 6-bit
 * integral part and a 10-bit fractional part (the paper's design
 * point). Two flavours of each operation are provided:
 *
 *  - hw*(): bit-exact model of the gate-level datapath. Multiplies
 *    compute the full 32-bit product and select bits [25:10]
 *    (truncation toward minus infinity, wrap-around overflow), adds
 *    wrap. These match the RTL netlists bit for bit.
 *  - sat*(): saturating versions used where a software model prefers
 *    graceful clipping (weight updates on the companion core).
 *
 * Neuron accumulation uses a wider 24-bit Q14.10 accumulator
 * (Acc24), saturated back to Q6.10 at the activation input.
 */

#ifndef DTANN_COMMON_FIXED_POINT_HH
#define DTANN_COMMON_FIXED_POINT_HH

#include <cstdint>

namespace dtann {

/** A Q6.10 fixed-point value held in 16 bits. */
class Fix16
{
  public:
    /** Number of fractional bits. */
    static constexpr int fracBits = 10;
    /** Total width in bits. */
    static constexpr int width = 16;
    /** Scale factor (2^fracBits). */
    static constexpr int32_t scale = 1 << fracBits;
    /** Most positive raw value. */
    static constexpr int16_t rawMax = INT16_MAX;
    /** Most negative raw value. */
    static constexpr int16_t rawMin = INT16_MIN;

    constexpr Fix16() : value(0) {}

    /** Build from a raw 16-bit pattern. */
    static constexpr Fix16 fromRaw(int16_t raw) { return Fix16(raw); }

    /** Convert from double with round-to-nearest and saturation. */
    static Fix16 fromDouble(double x);

    /** Convert to double. */
    constexpr double toDouble() const
    {
        return static_cast<double>(value) / scale;
    }

    /** Raw two's complement pattern. */
    constexpr int16_t raw() const { return value; }

    /** Raw pattern as an unsigned bit vector (for netlist inputs). */
    constexpr uint16_t bits() const { return static_cast<uint16_t>(value); }

    /** Hardware add: 16-bit wrap-around. */
    static constexpr Fix16
    hwAdd(Fix16 a, Fix16 b)
    {
        return Fix16(static_cast<int16_t>(
            static_cast<uint16_t>(a.value) + static_cast<uint16_t>(b.value)));
    }

    /** Hardware subtract: 16-bit wrap-around. */
    static constexpr Fix16
    hwSub(Fix16 a, Fix16 b)
    {
        return Fix16(static_cast<int16_t>(
            static_cast<uint16_t>(a.value) - static_cast<uint16_t>(b.value)));
    }

    /**
     * Hardware multiply: full 32-bit product, arithmetic shift right
     * by fracBits (selects product bits [25:10]), wrap to 16 bits.
     */
    static constexpr Fix16
    hwMul(Fix16 a, Fix16 b)
    {
        int32_t p = static_cast<int32_t>(a.value) *
            static_cast<int32_t>(b.value);
        return Fix16(static_cast<int16_t>(
            static_cast<uint32_t>(p >> fracBits)));
    }

    /** Saturating add. */
    static Fix16 satAdd(Fix16 a, Fix16 b);
    /** Saturating multiply (truncating, like hwMul, but clipped). */
    static Fix16 satMul(Fix16 a, Fix16 b);

    constexpr bool operator==(const Fix16 &o) const = default;

  private:
    explicit constexpr Fix16(int16_t raw) : value(raw) {}

    int16_t value;
};

/**
 * 24-bit Q14.10 accumulator modelling the per-neuron adder tree.
 *
 * Adds wrap at 24 bits; toFix16() saturates to Q6.10 as the
 * activation-unit input stage does.
 */
class Acc24
{
  public:
    /** Total width in bits. */
    static constexpr int width = 24;
    /** Most positive raw value. */
    static constexpr int32_t rawMax = (1 << 23) - 1;
    /** Most negative raw value. */
    static constexpr int32_t rawMin = -(1 << 23);

    constexpr Acc24() : value(0) {}

    /** Build from a raw (sign-extended) 24-bit pattern. */
    static constexpr Acc24 fromRaw(int32_t raw) { return Acc24(wrap(raw)); }

    /** Sign-extend a Q6.10 value into the accumulator. */
    static constexpr Acc24
    fromFix16(Fix16 x)
    {
        return Acc24(static_cast<int32_t>(x.raw()));
    }

    /** Hardware add: 24-bit wrap-around. */
    static constexpr Acc24
    hwAdd(Acc24 a, Acc24 b)
    {
        return Acc24(wrap(a.value + b.value));
    }

    /** Saturate to Q6.10 (activation-unit input stage). */
    Fix16 toFix16Sat() const;

    /** Raw sign-extended value. */
    constexpr int32_t raw() const { return value; }

    /** Raw pattern as a 24-bit unsigned vector (for netlist inputs). */
    constexpr uint32_t
    bits() const
    {
        return static_cast<uint32_t>(value) & 0xffffffu;
    }

    /** Convert to double (Q14.10 interpretation). */
    constexpr double
    toDouble() const
    {
        return static_cast<double>(value) / Fix16::scale;
    }

    constexpr bool operator==(const Acc24 &o) const = default;

  private:
    explicit constexpr Acc24(int32_t raw) : value(raw) {}

    /** Wrap a value into the signed 24-bit range. */
    static constexpr int32_t
    wrap(int32_t v)
    {
        uint32_t u = static_cast<uint32_t>(v) & 0xffffffu;
        // Sign-extend bit 23.
        return (u & 0x800000u) ? static_cast<int32_t>(u | 0xff000000u)
                               : static_cast<int32_t>(u);
    }

    int32_t value;
};

} // namespace dtann

#endif // DTANN_COMMON_FIXED_POINT_HH
