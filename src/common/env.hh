/**
 * @file
 * Experiment scaling knobs.
 *
 * Paper-scale campaigns (1000 repetitions, full hyper-parameter
 * grids, 10-fold cross-validation on every point) take hours. The
 * bench harness therefore defaults to scaled-down runs that keep the
 * shape of every result, and switches to paper scale when the
 * environment variable DTANN_FULL=1 is set.
 */

#ifndef DTANN_COMMON_ENV_HH
#define DTANN_COMMON_ENV_HH

#include <string>

namespace dtann {

/** True when DTANN_FULL=1 requests paper-scale experiments. */
bool fullScale();

/** Pick @p full at paper scale, @p quick otherwise. */
int scaled(int full, int quick);

/**
 * Global experiment seed; DTANN_SEED overrides the default.
 * Negative or non-numeric values are rejected with a warning and
 * the default seed is used.
 */
unsigned long experimentSeed();

/**
 * Campaign worker threads requested via DTANN_THREADS, or 0 when
 * unset (auto: use the hardware concurrency). Negative, non-numeric
 * or absurd values are rejected with a warning and fall back to
 * auto. Campaign results are bit-identical for every thread count.
 */
int threadCount();

/**
 * Directory for machine-readable JSON result exports (DTANN_JSON_OUT),
 * or empty when JSON export is disabled.
 */
std::string jsonOutDir();

/**
 * True when DTANN_NO_BATCH=1 disables the 64-lane faulty batch
 * path, forcing every vector through the scalar Evaluator. Campaign
 * results are bit-identical either way; the knob exists for
 * equivalence tests and for isolating perf regressions. Values other
 * than 0/1 are rejected with a warning.
 */
bool noBatch();

/**
 * True when DTANN_NO_CONE=1 disables fault-cone pruning, forcing
 * full-netlist sweeps. Same contract as noBatch().
 */
bool noCone();

/**
 * Requested batch lane width from DTANN_LANES: 64, 256 or 512, or
 * 0 when unset (auto: the widest plane the machine backs with
 * native SIMD — see circuit/lane_plane.hh, which resolves this).
 * Other values are rejected with a warning and fall back to auto.
 * Results are bit-identical at every width; 64 keeps the original
 * single-word path as the differential oracle.
 */
int laneConfig();

namespace env {

/**
 * Log every active DTANN_* knob (raw value and resolved meaning) at
 * inform() level, so a JSON export is reproducible from the log
 * alone. Benches call this from the banner.
 */
void dump();

} // namespace env

} // namespace dtann

#endif // DTANN_COMMON_ENV_HH
