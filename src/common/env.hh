/**
 * @file
 * Experiment scaling knobs.
 *
 * Paper-scale campaigns (1000 repetitions, full hyper-parameter
 * grids, 10-fold cross-validation on every point) take hours. The
 * bench harness therefore defaults to scaled-down runs that keep the
 * shape of every result, and switches to paper scale when the
 * environment variable DTANN_FULL=1 is set.
 */

#ifndef DTANN_COMMON_ENV_HH
#define DTANN_COMMON_ENV_HH

namespace dtann {

/** True when DTANN_FULL=1 requests paper-scale experiments. */
bool fullScale();

/** Pick @p full at paper scale, @p quick otherwise. */
int scaled(int full, int quick);

/** Global experiment seed; DTANN_SEED overrides the default. */
unsigned long experimentSeed();

} // namespace dtann

#endif // DTANN_COMMON_ENV_HH
