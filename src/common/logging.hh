/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (aborts), fatal() for user/configuration errors (exits
 * with an error code), warn()/inform() for non-fatal notices.
 */

#ifndef DTANN_COMMON_LOGGING_HH
#define DTANN_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <string>

namespace dtann {

/** Print a formatted message to stderr and abort. Internal bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message to stderr and exit(1). User error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr. Execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert-like invariant check that is active in all build types.
 * Calls panic() with the given message when the condition is false.
 */
#define dtann_assert(cond, fmt, ...)                                    \
    do {                                                                \
        if (!(cond))                                                    \
            ::dtann::panic("assertion '%s' failed: " fmt, #cond,        \
                           ##__VA_ARGS__);                              \
    } while (0)

} // namespace dtann

#endif // DTANN_COMMON_LOGGING_HH
