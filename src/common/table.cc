#include "common/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace dtann {

TextTable::TextTable(std::vector<std::string> header)
    : columns(header.size())
{
    rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    dtann_assert(cells.size() == columns,
                 "row has %zu cells, expected %zu", cells.size(), columns);
    rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(columns, 0);
    for (const auto &row : rows)
        for (size_t c = 0; c < columns; ++c)
            widths[c] = std::max(widths[c], row[c].size());

    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < columns; ++c) {
            os << rows[r][c];
            if (c + 1 < columns)
                os << std::string(widths[c] - rows[r][c].size() + 2, ' ');
        }
        os << '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < columns; ++c)
                total += widths[c] + (c + 1 < columns ? 2 : 0);
            os << std::string(total, '-') << '\n';
        }
    }
}

std::string
fmtDouble(double x, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
    return buf;
}

std::string
slugify(const std::string &title)
{
    std::string slug;
    for (char c : title) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            slug.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else if (!slug.empty() && slug.back() != '_') {
            slug.push_back('_');
        }
        if (slug.size() >= 60)
            break;
    }
    while (!slug.empty() && slug.back() == '_')
        slug.pop_back();
    return slug.empty() ? "series" : slug;
}

namespace {

/** Mirror a series to $DTANN_OUT/<slug>.csv when requested. */
void
maybeWriteCsv(const std::string &title,
              const std::vector<std::string> &columns,
              const std::vector<std::vector<double>> &points)
{
    const char *dir = std::getenv("DTANN_OUT");
    if (dir == nullptr || *dir == '\0')
        return;
    std::string path =
        std::string(dir) + "/" + slugify(title) + ".csv";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write series to '%s'", path.c_str());
        return;
    }
    for (size_t c = 0; c < columns.size(); ++c)
        out << columns[c] << (c + 1 < columns.size() ? "," : "\n");
    for (const auto &pt : points) {
        for (size_t c = 0; c < pt.size(); ++c)
            out << pt[c] << (c + 1 < pt.size() ? "," : "\n");
    }
}

} // namespace

void
printSeries(std::ostream &os, const std::string &title,
            const std::vector<std::string> &columns,
            const std::vector<std::vector<double>> &points)
{
    os << "# " << title << '\n';
    TextTable table(columns);
    for (const auto &pt : points) {
        std::vector<std::string> row;
        row.reserve(pt.size());
        for (double v : pt)
            row.push_back(fmtDouble(v));
        table.addRow(std::move(row));
    }
    table.print(os);
    os << '\n';
    maybeWriteCsv(title, columns, points);
}

} // namespace dtann
