#include "common/http.hh"

#include <algorithm>
#include <cctype>

namespace dtann {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trimOws(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** RFC 7230 token characters (header names, methods). */
bool
isTokenChar(char c)
{
    static const std::string extra = "!#$%&'*+-.^_`|~";
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
        extra.find(c) != std::string::npos;
}

bool
isToken(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!isTokenChar(c))
            return false;
    return true;
}

} // namespace

const std::string &
HttpMessage::header(const std::string &name) const
{
    static const std::string empty;
    for (const auto &h : headers)
        if (h.first == name)
            return h.second;
    return empty;
}

std::string
HttpMessage::path() const
{
    size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

std::string
HttpMessage::query() const
{
    size_t q = target.find('?');
    return q == std::string::npos ? "" : target.substr(q + 1);
}

HttpParser::HttpParser(Mode mode, size_t max_body, size_t max_headers)
    : mode(mode), maxBody(max_body), maxHeaders(max_headers)
{
}

HttpParser::State
HttpParser::fail(int status, const std::string &why)
{
    phase = Phase::Failed;
    st = State::Error;
    errStatus = status;
    errMessage = why;
    buf.clear();
    return st;
}

/**
 * Pop one line (terminated by LF, optional preceding CR stripped)
 * off the buffer. Returns false when no full line has arrived yet.
 */
bool
HttpParser::consumeLine(std::string &line)
{
    size_t lf = buf.find('\n');
    if (lf == std::string::npos)
        return false;
    size_t end = (lf > 0 && buf[lf - 1] == '\r') ? lf - 1 : lf;
    line.assign(buf, 0, end);
    buf.erase(0, lf + 1);
    return true;
}

void
HttpParser::parseStartLine(const std::string &line)
{
    if (mode == Mode::Request) {
        size_t sp1 = line.find(' ');
        size_t sp2 =
            sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
        if (sp2 == std::string::npos ||
            line.find(' ', sp2 + 1) != std::string::npos) {
            fail(400, "malformed request line '" + line + "'");
            return;
        }
        msg.method = line.substr(0, sp1);
        msg.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        msg.version = line.substr(sp2 + 1);
        if (!isToken(msg.method)) {
            fail(400, "malformed method '" + msg.method + "'");
            return;
        }
        if (msg.target.empty() || msg.target[0] != '/') {
            fail(400, "malformed request target '" + msg.target + "'");
            return;
        }
    } else {
        // Status line: HTTP/1.x SP 3DIGIT SP reason.
        size_t sp1 = line.find(' ');
        if (sp1 == std::string::npos) {
            fail(400, "malformed status line '" + line + "'");
            return;
        }
        msg.version = line.substr(0, sp1);
        size_t sp2 = line.find(' ', sp1 + 1);
        std::string code = line.substr(
            sp1 + 1,
            sp2 == std::string::npos ? std::string::npos
                                     : sp2 - sp1 - 1);
        if (code.size() != 3 ||
            !std::all_of(code.begin(), code.end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
            })) {
            fail(400, "malformed status code '" + code + "'");
            return;
        }
        msg.status = std::stoi(code);
        msg.reason =
            sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
    }
    if (msg.version.rfind("HTTP/1.", 0) != 0 ||
        msg.version.size() != 8 ||
        !std::isdigit(static_cast<unsigned char>(msg.version[7]))) {
        fail(400, "unsupported HTTP version '" + msg.version + "'");
        return;
    }
    phase = Phase::Headers;
}

void
HttpParser::parseHeaderLine(const std::string &line)
{
    if (line[0] == ' ' || line[0] == '\t') {
        // Obsolete line folding: deliberately rejected (RFC 7230
        // §3.2.4 allows refusing it) — nothing we speak with emits
        // it, and accepting it complicates value handling.
        fail(400, "folded header line");
        return;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
        fail(400, "malformed header line '" + line + "'");
        return;
    }
    std::string name = line.substr(0, colon);
    if (!isToken(name)) {
        fail(400, "malformed header name '" + name + "'");
        return;
    }
    msg.headers.emplace_back(toLower(name),
                             trimOws(line.substr(colon + 1)));
}

void
HttpParser::endOfHeaders()
{
    const std::string &te = msg.header("transfer-encoding");
    const std::string &cl = msg.header("content-length");
    if (!te.empty()) {
        if (toLower(trimOws(te)) != "chunked") {
            fail(501, "unsupported transfer encoding '" + te + "'");
            return;
        }
        phase = Phase::ChunkSize;
        return;
    }
    if (!cl.empty()) {
        // Digits only; reject duplicates that disagree (request
        // smuggling vector in real deployments, plain ambiguity
        // here).
        for (const auto &h : msg.headers)
            if (h.first == "content-length" && h.second != cl) {
                fail(400, "conflicting content-length headers");
                return;
            }
        uint64_t len = 0;
        if (cl.empty() ||
            !std::all_of(cl.begin(), cl.end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
            }) ||
            cl.size() > 18) {
            fail(400, "malformed content-length '" + cl + "'");
            return;
        }
        len = std::stoull(cl);
        if (len > maxBody) {
            fail(413, "body of " + cl + " bytes exceeds the " +
                     std::to_string(maxBody) + "-byte limit");
            return;
        }
        bodyRemaining = static_cast<size_t>(len);
        phase = bodyRemaining == 0 ? Phase::Complete : Phase::FixedBody;
        return;
    }
    // No body framing: requests have no body; responses run to
    // connection close (finish()).
    phase = mode == Mode::Request ? Phase::Complete
                                  : Phase::UntilCloseBody;
}

HttpParser::State
HttpParser::feed(const char *data, size_t len)
{
    if (phase == Phase::Complete || phase == Phase::Failed)
        return st;
    buf.append(data, len);

    while (true) {
        switch (phase) {
        case Phase::StartLine:
        case Phase::Headers:
        case Phase::Trailers: {
            std::string line;
            if (!consumeLine(line)) {
                // The unconsumed tail is all header bytes in these
                // phases; cap it so an unterminated line cannot grow
                // without bound.
                if (headerBytes + buf.size() > maxHeaders)
                    return fail(431, "header section exceeds " +
                                    std::to_string(maxHeaders) +
                                    " bytes");
                st = State::NeedMore;
                return st;
            }
            headerBytes += line.size() + 1;
            if (headerBytes > maxHeaders)
                return fail(431, "header section exceeds " +
                                std::to_string(maxHeaders) + " bytes");
            if (phase == Phase::StartLine) {
                if (line.empty())
                    continue; // tolerate leading blank lines
                parseStartLine(line);
            } else if (line.empty()) {
                if (phase == Phase::Trailers)
                    phase = Phase::Complete;
                else
                    endOfHeaders();
            } else if (phase == Phase::Headers) {
                parseHeaderLine(line);
            }
            // Trailer fields of a chunked body are ignored.
            break;
        }
        case Phase::FixedBody: {
            size_t take = std::min(bodyRemaining, buf.size());
            msg.body.append(buf, 0, take);
            buf.erase(0, take);
            bodyRemaining -= take;
            if (bodyRemaining > 0) {
                st = State::NeedMore;
                return st;
            }
            phase = Phase::Complete;
            break;
        }
        case Phase::UntilCloseBody:
            if (msg.body.size() + buf.size() > maxBody)
                return fail(413, "body exceeds the " +
                                std::to_string(maxBody) +
                                "-byte limit");
            msg.body.append(buf);
            buf.clear();
            st = State::NeedMore;
            return st;
        case Phase::ChunkSize: {
            std::string line;
            if (!consumeLine(line)) {
                st = State::NeedMore;
                return st;
            }
            // Chunk extensions (";...") are allowed and ignored.
            std::string hex = trimOws(line.substr(0, line.find(';')));
            if (hex.empty() || hex.size() > 15 ||
                !std::all_of(hex.begin(), hex.end(),
                             [](unsigned char c) {
                                 return std::isxdigit(c) != 0;
                             }))
                return fail(400,
                            "malformed chunk size '" + line + "'");
            uint64_t size = std::stoull(hex, nullptr, 16);
            if (msg.body.size() + size > maxBody)
                return fail(413, "chunked body exceeds the " +
                                std::to_string(maxBody) +
                                "-byte limit");
            if (size == 0) {
                phase = Phase::Trailers;
            } else {
                bodyRemaining = static_cast<size_t>(size);
                phase = Phase::ChunkData;
            }
            break;
        }
        case Phase::ChunkData: {
            size_t take = std::min(bodyRemaining, buf.size());
            msg.body.append(buf, 0, take);
            buf.erase(0, take);
            bodyRemaining -= take;
            if (bodyRemaining > 0) {
                st = State::NeedMore;
                return st;
            }
            phase = Phase::ChunkDataEnd;
            break;
        }
        case Phase::ChunkDataEnd: {
            std::string line;
            if (!consumeLine(line)) {
                st = State::NeedMore;
                return st;
            }
            if (!line.empty())
                return fail(400, "missing CRLF after chunk data");
            phase = Phase::ChunkSize;
            break;
        }
        case Phase::Complete:
            st = State::Done;
            return st;
        case Phase::Failed:
            return st;
        }
        if (phase == Phase::Failed)
            return st;
        if (phase == Phase::Complete) {
            st = State::Done;
            return st;
        }
    }
}

HttpParser::State
HttpParser::finish()
{
    if (phase == Phase::Complete || phase == Phase::Failed)
        return st;
    if (phase == Phase::UntilCloseBody) {
        phase = Phase::Complete;
        st = State::Done;
        return st;
    }
    return fail(400, "truncated message");
}

const char *
httpStatusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
    }
}

std::string
httpResponse(int status, const std::string &body,
             const std::string &content_type)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
        httpStatusReason(status) + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

std::string
httpRequest(const std::string &method, const std::string &target,
            const std::string &body)
{
    std::string out = method + " " + target + " HTTP/1.1\r\n";
    out += "Host: dtannd\r\n";
    if (!body.empty())
        out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace dtann
