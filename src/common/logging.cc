#include "common/logging.hh"

#include <cstdio>

namespace dtann {

namespace {

/** Shared vfprintf helper prefixing the severity tag. */
void
emit(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

} // namespace dtann
