#include "common/env.hh"

#include <cstdlib>
#include <cstring>

namespace dtann {

bool
fullScale()
{
    const char *v = std::getenv("DTANN_FULL");
    return v != nullptr && std::strcmp(v, "1") == 0;
}

int
scaled(int full, int quick)
{
    return fullScale() ? full : quick;
}

unsigned long
experimentSeed()
{
    const char *v = std::getenv("DTANN_SEED");
    if (v != nullptr)
        return std::strtoul(v, nullptr, 10);
    return 20120609UL; // ISCA 2012 conference date.
}

} // namespace dtann
