#include "common/env.hh"

#include <cstdlib>
#include <cstring>

namespace dtann {

bool
fullScale()
{
    const char *v = std::getenv("DTANN_FULL");
    return v != nullptr && std::strcmp(v, "1") == 0;
}

int
scaled(int full, int quick)
{
    return fullScale() ? full : quick;
}

unsigned long
experimentSeed()
{
    const char *v = std::getenv("DTANN_SEED");
    if (v != nullptr)
        return std::strtoul(v, nullptr, 10);
    return 20120609UL; // ISCA 2012 conference date.
}

int
threadCount()
{
    const char *v = std::getenv("DTANN_THREADS");
    if (v == nullptr || *v == '\0')
        return 0;
    long n = std::strtol(v, nullptr, 10);
    return n > 0 ? static_cast<int>(n) : 0;
}

std::string
jsonOutDir()
{
    const char *v = std::getenv("DTANN_JSON_OUT");
    return v != nullptr ? std::string(v) : std::string();
}

} // namespace dtann
