#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace dtann {

namespace {

/**
 * Parse @p v as a non-negative decimal integer. Returns false (and
 * leaves @p out untouched) on empty strings, trailing garbage,
 * negative values, or overflow — the callers fall back to their
 * defaults with a warning rather than silently misparsing.
 */
bool
parseNonNegative(const char *v, unsigned long &out)
{
    if (v == nullptr || *v == '\0')
        return false;
    const char *p = v;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '-' || *p == '+')
        return false; // signs rejected: strtoul would wrap negatives
    char *end = nullptr;
    errno = 0;
    unsigned long n = std::strtoul(p, &end, 10);
    if (end == p || *end != '\0' || errno == ERANGE)
        return false;
    out = n;
    return true;
}

} // namespace

bool
fullScale()
{
    const char *v = std::getenv("DTANN_FULL");
    return v != nullptr && std::strcmp(v, "1") == 0;
}

int
scaled(int full, int quick)
{
    return fullScale() ? full : quick;
}

unsigned long
experimentSeed()
{
    const char *v = std::getenv("DTANN_SEED");
    if (v == nullptr)
        return 20120609UL; // ISCA 2012 conference date.
    unsigned long n = 0;
    if (!parseNonNegative(v, n)) {
        warn("ignoring invalid DTANN_SEED='%s' (expected a "
             "non-negative integer); using default seed 20120609",
             v);
        return 20120609UL;
    }
    return n;
}

int
threadCount()
{
    const char *v = std::getenv("DTANN_THREADS");
    if (v == nullptr || *v == '\0')
        return 0;
    unsigned long n = 0;
    if (!parseNonNegative(v, n) || n > 4096) {
        warn("ignoring invalid DTANN_THREADS='%s' (expected an "
             "integer in [0, 4096]); using automatic thread count",
             v);
        return 0;
    }
    return static_cast<int>(n);
}

std::string
jsonOutDir()
{
    const char *v = std::getenv("DTANN_JSON_OUT");
    return v != nullptr ? std::string(v) : std::string();
}

namespace {

/** Shared parser for the 0/1 opt-out knobs. */
bool
boolKnob(const char *name)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0)
        return false;
    if (std::strcmp(v, "1") == 0)
        return true;
    warn("ignoring invalid %s='%s' (expected 0 or 1); knob off",
         name, v);
    return false;
}

} // namespace

bool
noBatch()
{
    return boolKnob("DTANN_NO_BATCH");
}

bool
noCone()
{
    return boolKnob("DTANN_NO_CONE");
}

int
laneConfig()
{
    const char *v = std::getenv("DTANN_LANES");
    if (v == nullptr || *v == '\0')
        return 0;
    unsigned long n = 0;
    if (!parseNonNegative(v, n) ||
        (n != 0 && n != 64 && n != 256 && n != 512)) {
        warn("ignoring invalid DTANN_LANES='%s' (expected 64, 256, "
             "512, or 0 for auto); using automatic lane width",
             v);
        return 0;
    }
    return static_cast<int>(n);
}

namespace env {

void
dump()
{
    auto raw = [](const char *name) {
        const char *v = std::getenv(name);
        return v != nullptr ? v : "(unset)";
    };
    inform("DTANN knobs: DTANN_FULL=%s (scale=%s) DTANN_SEED=%s "
           "(seed=%lu) DTANN_THREADS=%s (threads=%d) "
           "DTANN_JSON_OUT=%s DTANN_NO_BATCH=%s (batch=%s) "
           "DTANN_NO_CONE=%s (cone=%s) DTANN_LANES=%s (lanes=%d)",
           raw("DTANN_FULL"), fullScale() ? "full" : "quick",
           raw("DTANN_SEED"), experimentSeed(), raw("DTANN_THREADS"),
           threadCount(), raw("DTANN_JSON_OUT"),
           raw("DTANN_NO_BATCH"), noBatch() ? "off" : "on",
           raw("DTANN_NO_CONE"), noCone() ? "off" : "on",
           raw("DTANN_LANES"), laneConfig());
}

} // namespace env

} // namespace dtann
