#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dtann {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

// ---------------------------------------------------------------
// JsonValue

const char *
JsonValue::kindName() const
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace {

[[noreturn]] void
kindMismatch(const char *want, const char *got)
{
    throw JsonError(std::string("expected JSON ") + want + ", got " +
                    got);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (k != Kind::Bool)
        kindMismatch("bool", kindName());
    return b;
}

double
JsonValue::asNumber() const
{
    if (k != Kind::Number)
        kindMismatch("number", kindName());
    return num;
}

int64_t
JsonValue::asInt(int64_t lo, int64_t hi) const
{
    if (k != Kind::Number)
        kindMismatch("integer", kindName());
    double r = std::round(num);
    if (r != num)
        throw JsonError("expected JSON integer, got fraction '" + raw +
                        "'");
    if (num < static_cast<double>(lo) || num > static_cast<double>(hi))
        throw JsonError("JSON integer '" + raw + "' out of range");
    return static_cast<int64_t>(num);
}

uint64_t
JsonValue::asUint() const
{
    if (k != Kind::Number)
        kindMismatch("non-negative integer", kindName());
    // Re-parse the raw token: doubles lose integers above 2^53, and
    // seeds / gate-eval counters are full 64-bit values.
    const char *p = raw.c_str();
    if (*p == '-' || raw.find_first_of(".eE") != std::string::npos)
        throw JsonError("expected non-negative JSON integer, got '" +
                        raw + "'");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || *end != '\0' || errno == ERANGE)
        throw JsonError("non-negative JSON integer '" + raw +
                        "' out of range");
    return static_cast<uint64_t>(v);
}

const std::string &
JsonValue::asString() const
{
    if (k != Kind::String)
        kindMismatch("string", kindName());
    return str;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (k != Kind::Array)
        kindMismatch("array", kindName());
    return elems;
}

const JsonValue::Members &
JsonValue::members() const
{
    if (k != Kind::Object)
        kindMismatch("object", kindName());
    return obj;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (k != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : obj)
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        throw JsonError("missing JSON key '" + key + "'");
    return *v;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.k = Kind::Bool;
    v.b = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double num, std::string raw)
{
    JsonValue v;
    v.k = Kind::Number;
    v.num = num;
    v.raw = std::move(raw);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.k = Kind::String;
    v.str = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elems)
{
    JsonValue v;
    v.k = Kind::Array;
    v.elems = std::move(elems);
    return v;
}

JsonValue
JsonValue::makeObject(Members members)
{
    JsonValue v;
    v.k = Kind::Object;
    v.obj = std::move(members);
    return v;
}

// ---------------------------------------------------------------
// Parser

namespace {

/** Recursive-descent JSON parser with line/column error positions. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos != s.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos && i < s.size(); ++i) {
            if (s[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw JsonError("JSON parse error at line " +
                        std::to_string(line) + ", column " +
                        std::to_string(col) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + s[pos] +
                 "'");
        ++pos;
    }

    bool
    consumeWord(const char *w)
    {
        size_t n = std::char_traits<char>::length(w);
        if (s.compare(pos, n, w) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue::makeString(parseString());
          case 't':
            if (consumeWord("true"))
                return JsonValue::makeBool(true);
            fail("invalid literal");
          case 'f':
            if (consumeWord("false"))
                return JsonValue::makeBool(false);
            fail("invalid literal");
          case 'n':
            if (consumeWord("null"))
                return JsonValue::makeNull();
            fail("invalid literal");
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue::Members members;
        if (peek() == '}') {
            ++pos;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            expect(':');
            JsonValue value = parseValue();
            for (const auto &[name, unused] : members)
                if (name == key)
                    fail("duplicate object key '" + key + "'");
            members.emplace_back(std::move(key), std::move(value));
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == '}') {
                ++pos;
                return JsonValue::makeObject(std::move(members));
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> elems;
        if (peek() == ']') {
            ++pos;
            return JsonValue::makeArray(std::move(elems));
        }
        while (true) {
            elems.push_back(parseValue());
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == ']') {
                ++pos;
                return JsonValue::makeArray(std::move(elems));
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // The writers only escape control characters, so
                // decode Basic Latin directly and encode the rest
                // as UTF-8 (no surrogate-pair support needed).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("invalid escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a JSON value");
        std::string raw = s.substr(start, pos - start);
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(raw.c_str(), &end);
        if (end != raw.c_str() + raw.size()) {
            pos = start;
            fail("malformed number '" + raw + "'");
        }
        return JsonValue::makeNumber(v, std::move(raw));
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

JsonValue
jsonParse(const std::string &text)
{
    return Parser(text).parseDocument();
}

// ---------------------------------------------------------------
// Typed field readers

namespace {

/** Rethrow accessor errors with the offending key named. */
template <typename Fn>
auto
withKey(const char *key, Fn fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const JsonError &e) {
        throw JsonError(std::string("key '") + key + "': " + e.what());
    }
}

} // namespace

int
jsonGetInt(const JsonValue &obj, const char *key, int fallback, int lo,
           int hi)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] {
        return static_cast<int>(v->asInt(lo, hi));
    });
}

uint64_t
jsonGetUint(const JsonValue &obj, const char *key, uint64_t fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] { return v->asUint(); });
}

double
jsonGetDouble(const JsonValue &obj, const char *key, double fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] { return v->asNumber(); });
}

bool
jsonGetBool(const JsonValue &obj, const char *key, bool fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] { return v->asBool(); });
}

std::string
jsonGetString(const JsonValue &obj, const char *key,
              const std::string &fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] { return v->asString(); });
}

std::vector<int>
jsonGetIntArray(const JsonValue &obj, const char *key,
                std::vector<int> fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] {
        std::vector<int> out;
        for (const JsonValue &e : v->items())
            out.push_back(static_cast<int>(e.asInt(INT32_MIN,
                                                   INT32_MAX)));
        return out;
    });
}

std::vector<std::string>
jsonGetStringArray(const JsonValue &obj, const char *key,
                   std::vector<std::string> fallback)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return fallback;
    return withKey(key, [&] {
        std::vector<std::string> out;
        for (const JsonValue &e : v->items())
            out.push_back(e.asString());
        return out;
    });
}

} // namespace dtann
