#include "common/json.hh"

#include <cstdio>

namespace dtann {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace dtann
