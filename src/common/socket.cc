#include "common/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dtann {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw SocketError(what + ": " + std::strerror(errno));
}

/** Split "host:port"; returns false for Unix-socket addresses. */
bool
parseTcpAddress(const std::string &address, std::string &host,
                int &port)
{
    if (address.rfind("unix:", 0) == 0)
        return false;
    size_t colon = address.rfind(':');
    if (colon == std::string::npos)
        throw SocketError("address '" + address +
                          "' is neither host:port nor unix:<path>");
    host = address.substr(0, colon);
    try {
        size_t end = 0;
        port = std::stoi(address.substr(colon + 1), &end);
        if (end != address.size() - colon - 1 || port < 0 ||
            port > 65535)
            throw std::invalid_argument("range");
    } catch (const std::exception &) {
        throw SocketError("bad port in address '" + address + "'");
    }
    return true;
}

sockaddr_in
tcpSockaddr(const std::string &host, int port)
{
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1)
        throw SocketError("cannot parse IPv4 address '" + host + "'");
    return sa;
}

sockaddr_un
unixSockaddr(const std::string &path)
{
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path))
        throw SocketError("unix socket path too long: " + path);
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

} // namespace

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

size_t
Socket::readSome(char *buf, size_t cap)
{
    for (;;) {
        ssize_t n = ::read(fd_, buf, cap);
        if (n >= 0)
            return static_cast<size_t>(n);
        if (errno != EINTR)
            fail("read");
    }
}

void
Socket::writeAll(const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd_, data + off, len - off);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        fail("write");
    }
}

ListenSocket::ListenSocket(const std::string &address, int backlog)
{
    std::string host;
    int port = 0;
    if (parseTcpAddress(address, host, port)) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fail("socket");
        sock = Socket(fd);
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in sa = tcpSockaddr(host, port);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            fail("bind " + address);
        socklen_t len = sizeof(sa);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&sa),
                          &len) != 0)
            fail("getsockname");
        tcpPort = ntohs(sa.sin_port);
        addr = host + ":" + std::to_string(tcpPort);
    } else {
        std::string path = address.substr(5);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fail("socket");
        sock = Socket(fd);
        ::unlink(path.c_str()); // a stale socket file blocks bind
        sockaddr_un sa = unixSockaddr(path);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            fail("bind " + address);
        unixPath = path;
        addr = address;
    }
    if (::listen(sock.fd(), backlog) != 0)
        fail("listen " + address);
}

ListenSocket::~ListenSocket()
{
    if (!unixPath.empty())
        ::unlink(unixPath.c_str());
}

Socket
ListenSocket::accept()
{
    for (;;) {
        int fd = ::accept(sock.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno != EINTR)
            fail("accept");
    }
}

Socket
connectTo(const std::string &address)
{
    std::string host;
    int port = 0;
    if (parseTcpAddress(address, host, port)) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fail("socket");
        Socket s(fd);
        sockaddr_in sa = tcpSockaddr(host, port);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0)
            fail("connect " + address);
        return s;
    }
    std::string path = address.substr(5);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("socket");
    Socket s(fd);
    sockaddr_un sa = unixSockaddr(path);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0)
        fail("connect " + address);
    return s;
}

} // namespace dtann
