/**
 * @file
 * Statistics accumulators used by the experiment campaigns.
 */

#ifndef DTANN_COMMON_STATS_HH
#define DTANN_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtann {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /**
     * Fold another accumulator into this one (Chan's parallel
     * update). The result is a deterministic function of the two
     * inputs — independent of how their samples were interleaved —
     * which is what lets a backend keep order-stable per-pass
     * sub-accumulators and merge them on read.
     */
    void merge(const RunningStat &other);

    /** Number of samples so far. */
    size_t count() const { return n; }
    /** Sample mean (0 when empty). */
    double mean() const { return n ? mu : 0.0; }
    /** Unbiased sample variance (0 with fewer than 2 samples). */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest sample seen. */
    double min() const { return lo; }
    /** Largest sample seen. */
    double max() const { return hi; }

  private:
    size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Integer-valued histogram: value -> occurrence count.
 *
 * Used for the Fig 5 operator output-value distributions.
 */
class IntHistogram
{
  public:
    /** Count one occurrence of @p value. */
    void add(int64_t value) { ++counts[value]; }
    /** Count @p n occurrences of @p value. */
    void add(int64_t value, uint64_t n) { counts[value] += n; }

    /** Occurrences of @p value. */
    uint64_t at(int64_t value) const;
    /** Total number of occurrences. */
    uint64_t total() const;
    /** All (value, count) pairs in increasing value order. */
    std::vector<std::pair<int64_t, uint64_t>> items() const;

    /** Merge another histogram into this one. */
    void merge(const IntHistogram &other);

    /** JSON export: [[value, count], ...] in increasing value order. */
    std::string toJson() const;
    /** Parse a toJson() payload back; throws JsonError on mismatch. */
    static IntHistogram fromJson(const class JsonValue &v);

    /**
     * Total-variation distance to another histogram, in [0, 1].
     * Both histograms are normalized to probability distributions.
     * Returns 1 when either histogram is empty and the other is not.
     */
    double totalVariation(const IntHistogram &other) const;

  private:
    std::map<int64_t, uint64_t> counts;
};

/**
 * Logarithmically spaced bins over (0, +inf), used for the Fig 11
 * error-amplitude axis (decades from 10^lowExp to 10^highExp).
 */
class LogBins
{
  public:
    /**
     * @param low_exp exponent of the smallest bin edge (e.g. -3)
     * @param high_exp exponent of the largest bin edge (e.g. 3)
     * @param per_decade number of bins per decade
     */
    LogBins(int low_exp, int high_exp, int per_decade = 1);

    /** Number of bins (including under/overflow). */
    size_t numBins() const { return stats.size(); }
    /** Add a (amplitude, value) pair; value accumulates in the bin. */
    void add(double amplitude, double value);
    /** Geometric center of bin @p i. */
    double binCenter(size_t i) const;
    /** Accumulated statistics of bin @p i. */
    const RunningStat &binStat(size_t i) const { return stats[i]; }

  private:
    size_t binOf(double amplitude) const;

    int lowExp;
    int perDecade;
    std::vector<RunningStat> stats;
};

} // namespace dtann

#endif // DTANN_COMMON_STATS_HH
