/**
 * @file
 * Minimal JSON emission and parsing.
 *
 * The repo exports machine-readable results (DTANN_JSON_OUT) from
 * campaigns and benches by string concatenation, and — since the
 * campaign-as-a-service layer — parses scenario specs and result
 * journals back in. No external JSON dependency: the writer side is
 * a handful of escaping/formatting helpers, the reader side is a
 * small recursive-descent parser producing JsonValue trees.
 *
 * Symmetry contract: everything emitted by the toJson() exporters
 * (jsonNumber uses %.17g, so doubles round-trip exactly; integers
 * are emitted via std::to_string and re-parsed from the raw token,
 * so uint64 counters round-trip exactly too) parses back to equal
 * values. The spec/journal subsystems rely on this for bit-identical
 * checkpoint/resume.
 */

#ifndef DTANN_COMMON_JSON_HH
#define DTANN_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dtann {

// ---------------------------------------------------------------
// Emission

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &s);

/** JSON-ready representation of a double (round-trips exactly). */
std::string jsonNumber(double v);

/** Quoted, escaped JSON string literal. */
std::string jsonString(const std::string &s);

// ---------------------------------------------------------------
// Parsing

/**
 * Error raised by jsonParse() on malformed input and by the
 * JsonValue accessors on kind mismatches. what() carries a
 * line/column position for parse errors.
 */
struct JsonError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * One parsed JSON value. Object members keep insertion order, so a
 * parse -> emit round trip of canonically ordered documents is the
 * identity.
 */
class JsonValue
{
  public:
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isObject() const { return k == Kind::Object; }
    bool isArray() const { return k == Kind::Array; }

    /** @name Checked accessors (throw JsonError on kind mismatch) */
    ///@{
    bool asBool() const;
    double asNumber() const;
    /** Integer in [lo, hi]; throws on fractions and out-of-range. */
    int64_t asInt(int64_t lo = INT64_MIN, int64_t hi = INT64_MAX) const;
    /**
     * Non-negative integer re-parsed from the raw token, so 64-bit
     * counters survive even beyond double's 2^53 integer range.
     */
    uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const; ///< array elements
    const Members &members() const;              ///< object members
    ///@}

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Object member lookup; throws JsonError naming @p key when absent. */
    const JsonValue &at(const std::string &key) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    /** @p raw is the literal token (kept for exact integers). */
    static JsonValue makeNumber(double v, std::string raw);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> elems);
    static JsonValue makeObject(Members members);

  private:
    const char *kindName() const;

    Kind k = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string raw; ///< number token as written (exact integers)
    std::string str;
    std::vector<JsonValue> elems;
    Members obj;
};

/**
 * Parse one JSON document. Trailing non-whitespace, unterminated
 * strings, bad escapes etc. raise JsonError with a line/column
 * position. Supports exactly the JSON value grammar the writers
 * emit (no comments, no trailing commas).
 */
JsonValue jsonParse(const std::string &text);

// ---------------------------------------------------------------
// Typed field readers
//
// Small helpers for config fromJson() implementations: read an
// optional member of @p obj, returning @p fallback when absent and
// raising JsonError naming the key on a type mismatch.

int jsonGetInt(const JsonValue &obj, const char *key, int fallback,
               int lo = INT32_MIN, int hi = INT32_MAX);
uint64_t jsonGetUint(const JsonValue &obj, const char *key,
                     uint64_t fallback);
double jsonGetDouble(const JsonValue &obj, const char *key,
                     double fallback);
bool jsonGetBool(const JsonValue &obj, const char *key, bool fallback);
std::string jsonGetString(const JsonValue &obj, const char *key,
                          const std::string &fallback);
std::vector<int> jsonGetIntArray(const JsonValue &obj, const char *key,
                                 std::vector<int> fallback);
std::vector<std::string>
jsonGetStringArray(const JsonValue &obj, const char *key,
                   std::vector<std::string> fallback);

} // namespace dtann

#endif // DTANN_COMMON_JSON_HH
