/**
 * @file
 * Minimal JSON emission helpers.
 *
 * The repo exports machine-readable results (DTANN_JSON_OUT) from
 * campaigns and benches by string concatenation — no external JSON
 * dependency. These helpers keep escaping and number formatting
 * consistent across all exporters.
 */

#ifndef DTANN_COMMON_JSON_HH
#define DTANN_COMMON_JSON_HH

#include <string>

namespace dtann {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &s);

/** JSON-ready representation of a double (round-trips exactly). */
std::string jsonNumber(double v);

/** Quoted, escaped JSON string literal. */
std::string jsonString(const std::string &s);

} // namespace dtann

#endif // DTANN_COMMON_JSON_HH
