#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"

namespace dtann {

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    size_t total = n + other.n;
    double delta = other.mu - mu;
    mu += delta * static_cast<double>(other.n) /
        static_cast<double>(total);
    m2 += other.m2 + delta * delta * static_cast<double>(n) *
        static_cast<double>(other.n) / static_cast<double>(total);
    n = total;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

uint64_t
IntHistogram::at(int64_t value) const
{
    auto it = counts.find(value);
    return it == counts.end() ? 0 : it->second;
}

uint64_t
IntHistogram::total() const
{
    uint64_t sum = 0;
    for (const auto &[v, c] : counts)
        sum += c;
    return sum;
}

std::vector<std::pair<int64_t, uint64_t>>
IntHistogram::items() const
{
    return {counts.begin(), counts.end()};
}

void
IntHistogram::merge(const IntHistogram &other)
{
    for (const auto &[v, c] : other.counts)
        counts[v] += c;
}

std::string
IntHistogram::toJson() const
{
    std::string out = "[";
    bool first = true;
    for (const auto &[value, count] : counts) {
        if (!first)
            out += ",";
        first = false;
        out += "[" + std::to_string(value) + "," +
            std::to_string(count) + "]";
    }
    return out + "]";
}

IntHistogram
IntHistogram::fromJson(const JsonValue &v)
{
    IntHistogram h;
    for (const JsonValue &entry : v.items()) {
        const auto &pair = entry.items();
        if (pair.size() != 2)
            throw JsonError("histogram entry is not a [value, count] "
                            "pair");
        h.add(pair[0].asInt(), pair[1].asUint());
    }
    return h;
}

double
IntHistogram::totalVariation(const IntHistogram &other) const
{
    uint64_t ta = total(), tb = other.total();
    if (ta == 0 && tb == 0)
        return 0.0;
    if (ta == 0 || tb == 0)
        return 1.0;
    double tv = 0.0;
    auto ia = counts.begin();
    auto ib = other.counts.begin();
    while (ia != counts.end() || ib != other.counts.end()) {
        double pa = 0.0, pb = 0.0;
        if (ib == other.counts.end() ||
            (ia != counts.end() && ia->first < ib->first)) {
            pa = static_cast<double>(ia->second) / ta;
            ++ia;
        } else if (ia == counts.end() || ib->first < ia->first) {
            pb = static_cast<double>(ib->second) / tb;
            ++ib;
        } else {
            pa = static_cast<double>(ia->second) / ta;
            pb = static_cast<double>(ib->second) / tb;
            ++ia;
            ++ib;
        }
        tv += std::abs(pa - pb);
    }
    return 0.5 * tv;
}

LogBins::LogBins(int low_exp, int high_exp, int per_decade)
    : lowExp(low_exp), perDecade(per_decade),
      stats(static_cast<size_t>((high_exp - low_exp) * per_decade) + 2)
{
}

size_t
LogBins::binOf(double amplitude) const
{
    if (amplitude <= 0.0)
        return 0; // Underflow bin.
    double pos = (std::log10(amplitude) - lowExp) * perDecade;
    if (pos < 0.0)
        return 0;
    size_t i = static_cast<size_t>(pos) + 1;
    if (i >= stats.size())
        return stats.size() - 1; // Overflow bin.
    return i;
}

void
LogBins::add(double amplitude, double value)
{
    stats[binOf(amplitude)].add(value);
}

double
LogBins::binCenter(size_t i) const
{
    if (i == 0)
        return std::pow(10.0, lowExp);
    double lo = lowExp + static_cast<double>(i - 1) / perDecade;
    double hi = lowExp + static_cast<double>(i) / perDecade;
    return std::pow(10.0, 0.5 * (lo + hi));
}

} // namespace dtann
