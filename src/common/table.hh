/**
 * @file
 * Plain-text table and series printers for the benchmark harness.
 *
 * Benches print paper-style rows (tables) and (x, y) series
 * (figures) so that EXPERIMENTS.md can record paper-vs-measured
 * values directly from the output.
 */

#ifndef DTANN_COMMON_TABLE_HH
#define DTANN_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dtann {

/** Column-aligned text table. */
class TextTable
{
  public:
    /** @param header column names, fixing the column count */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row. @pre cells.size() == column count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::vector<std::string>> rows;
    size_t columns;
};

/** Format a double with @p digits significant decimals. */
std::string fmtDouble(double x, int digits = 4);

/**
 * Print a figure-style data series as aligned "x y1 y2 ..." lines,
 * preceded by a "# <title>" header and a column-name line.
 *
 * When the environment variable DTANN_OUT names a directory, the
 * series is additionally written there as a CSV file (named from a
 * slug of the title) so plots can be regenerated offline.
 */
void printSeries(std::ostream &os, const std::string &title,
                 const std::vector<std::string> &columns,
                 const std::vector<std::vector<double>> &points);

/** Turn a title into a safe file-name slug. */
std::string slugify(const std::string &title);

} // namespace dtann

#endif // DTANN_COMMON_TABLE_HH
