#include "common/fixed_point.hh"

#include <cmath>

namespace dtann {

Fix16
Fix16::fromDouble(double x)
{
    double scaled = std::nearbyint(x * scale);
    if (scaled > rawMax)
        return Fix16(rawMax);
    if (scaled < rawMin)
        return Fix16(rawMin);
    return Fix16(static_cast<int16_t>(scaled));
}

Fix16
Fix16::satAdd(Fix16 a, Fix16 b)
{
    int32_t s = static_cast<int32_t>(a.value) + static_cast<int32_t>(b.value);
    if (s > rawMax)
        s = rawMax;
    if (s < rawMin)
        s = rawMin;
    return Fix16(static_cast<int16_t>(s));
}

Fix16
Fix16::satMul(Fix16 a, Fix16 b)
{
    int32_t p = static_cast<int32_t>(a.value) * static_cast<int32_t>(b.value);
    int32_t s = p >> fracBits;
    if (s > rawMax)
        s = rawMax;
    if (s < rawMin)
        s = rawMin;
    return Fix16(static_cast<int16_t>(s));
}

Fix16
Acc24::toFix16Sat() const
{
    if (value > Fix16::rawMax)
        return Fix16::fromRaw(Fix16::rawMax);
    if (value < Fix16::rawMin)
        return Fix16::fromRaw(Fix16::rawMin);
    return Fix16::fromRaw(static_cast<int16_t>(value));
}

} // namespace dtann
