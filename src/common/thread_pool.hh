/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel campaign work.
 *
 * The pool runs index-based batches (parallelFor): workers pull the
 * next index from the batch until it is exhausted. The calling
 * thread participates in its own batch, so a pool of size 1
 * executes entirely on the caller with no handoff, and results are
 * bit-identical for any pool size as long as the per-index work
 * derives all of its randomness from the index (see
 * Rng::substream).
 *
 * Several threads may call parallelFor on the same pool
 * concurrently (the campaign daemon runs every admitted job's
 * batches on one shared pool): each call owns an independent batch,
 * and workers claim indices round-robin across the active batches,
 * so concurrent batches share the pool fairly instead of queueing
 * behind each other. Completion of one batch never waits on
 * another; each caller returns as soon as its own indices have
 * drained.
 */

#ifndef DTANN_COMMON_THREAD_POOL_HH
#define DTANN_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtann {

/** Fixed-size pool executing index batches across worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads total execution width including the calling
     *        thread; <= 0 resolves via resolveThreads(0)
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution width (workers + calling thread). */
    int size() const { return static_cast<int>(workers.size()) + 1; }

    /**
     * Run fn(0) .. fn(n-1), distributing indices over the pool.
     * Blocks until every index has completed. Indices are claimed
     * dynamically, so long and short items mix freely; @p fn must
     * not assume any execution order. The first exception thrown by
     * @p fn is rethrown here after the batch drains. Thread-safe:
     * concurrent calls run as independent, fairly interleaved
     * batches.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Resolve a requested thread count: a positive request wins,
     * otherwise DTANN_THREADS, otherwise the hardware concurrency.
     */
    static int resolveThreads(int requested);

  private:
    /** One parallelFor call in flight; owned by its caller's frame. */
    struct Batch
    {
        size_t size = 0;
        const std::function<void(size_t)> *fn = nullptr;
        size_t next = 0;    ///< next unclaimed index (guarded by mu)
        size_t running = 0; ///< threads currently inside fn
        std::exception_ptr firstError;
    };

    void workerLoop();
    /** Next batch with unclaimed indices, round-robin; or nullptr. */
    Batch *pickBatch();
    /** Run one claimed index of @p b; called without the lock. */
    void runIndex(Batch *b, size_t index);

    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable wake; ///< workers: claimable work exists
    std::condition_variable done; ///< callers: a batch drained
    std::vector<Batch *> batches; ///< active batches (callers' frames)
    size_t rrCursor = 0;          ///< fair-share rotation point
    bool stopping = false;
};

} // namespace dtann

#endif // DTANN_COMMON_THREAD_POOL_HH
