/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel campaign work.
 *
 * The pool runs index-based batches (parallelFor): workers pull the
 * next index from a shared atomic counter until the batch is
 * exhausted. The calling thread participates, so a pool of size 1
 * executes entirely on the caller with no handoff, and results are
 * bit-identical for any pool size as long as the per-index work
 * derives all of its randomness from the index (see
 * Rng::substream).
 */

#ifndef DTANN_COMMON_THREAD_POOL_HH
#define DTANN_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtann {

/** Fixed-size pool executing index batches across worker threads. */
class ThreadPool
{
  public:
    /**
     * @param threads total execution width including the calling
     *        thread; <= 0 resolves via resolveThreads(0)
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution width (workers + calling thread). */
    int size() const { return static_cast<int>(workers.size()) + 1; }

    /**
     * Run fn(0) .. fn(n-1), distributing indices over the pool.
     * Blocks until every index has completed. Indices are claimed
     * dynamically, so long and short items mix freely; @p fn must
     * not assume any execution order. The first exception thrown by
     * @p fn is rethrown here after the batch drains.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Resolve a requested thread count: a positive request wins,
     * otherwise DTANN_THREADS, otherwise the hardware concurrency.
     */
    static int resolveThreads(int requested);

  private:
    void workerLoop();
    /** Claim and run indices until the current batch is exhausted. */
    void drainBatch();

    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable wake; ///< workers wait for a new batch
    std::condition_variable done; ///< caller waits for batch drain
    uint64_t generation = 0;      ///< bumped per batch
    bool stopping = false;

    // Current batch (valid while running > 0 or inside parallelFor).
    size_t batchSize = 0;
    const std::function<void(size_t)> *batchFn = nullptr;
    std::atomic<size_t> nextIndex{0};
    size_t running = 0; ///< workers still draining the batch
    std::exception_ptr firstError;
};

} // namespace dtann

#endif // DTANN_COMMON_THREAD_POOL_HH
