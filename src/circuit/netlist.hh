/**
 * @file
 * Structural gate netlist.
 *
 * A Netlist is a set of nets and gates. Each net is driven by at
 * most one gate; primary inputs are undriven nets. Feedback loops
 * are allowed (cross-coupled latches); the Evaluator resolves them
 * by relaxation.
 *
 * Gates carry a "group" tag identifying the 1-bit cell they belong
 * to (e.g., full-adder cell k of an array multiplier). The paper's
 * defect-injection procedure first picks a random bit cell, then a
 * random transistor within it, so groups are the first-level
 * sampling unit.
 */

#ifndef DTANN_CIRCUIT_NETLIST_HH
#define DTANN_CIRCUIT_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace dtann {

/** Index of a net within a Netlist. */
using NetId = uint32_t;

/** Sentinel for "no net". */
constexpr NetId invalidNet = UINT32_MAX;

/** One gate instance. */
struct Gate
{
    GateKind kind;
    uint16_t group;     ///< bit-cell tag for defect sampling
    NetId in[4];
    NetId out;

    /** Number of connected inputs. */
    int arity() const { return gateArity(kind); }
};

/** Structural netlist of CMOS primitive gates. */
class Netlist
{
  public:
    /** Create a fresh undriven net. */
    NetId addNet();

    /**
     * Add a gate driving a fresh net.
     *
     * @param kind gate kind
     * @param ins input nets (size must equal the kind's arity)
     * @return the gate's output net
     */
    NetId addGate(GateKind kind, const std::vector<NetId> &ins);

    /**
     * Add a gate driving an existing net (needed for feedback
     * structures such as cross-coupled latches). @p out must not
     * already be driven.
     */
    void addGateOnto(GateKind kind, const std::vector<NetId> &ins,
                     NetId out);

    /** Shared constant net of the given value. */
    NetId constNet(bool value);

    /** Declare @p net the next primary input (bus order). */
    void markInput(NetId net);
    /** Declare @p net the next primary output (bus order). */
    void markOutput(NetId net);

    /** Set the group tag applied to subsequently added gates. */
    void setGroup(uint16_t group) { currentGroup = group; }
    /** Current group tag. */
    uint16_t group() const { return currentGroup; }
    /** Number of distinct group tags used so far (max tag + 1). */
    uint16_t numGroups() const { return maxGroup + 1; }

    /** Number of gates. */
    size_t numGates() const { return gateList.size(); }
    /** Number of nets. */
    size_t numNets() const { return netCount; }
    /** Gate accessor. */
    const Gate &gate(size_t i) const { return gateList[i]; }
    /** Primary inputs in declaration order. */
    const std::vector<NetId> &inputs() const { return inputList; }
    /** Primary outputs in declaration order. */
    const std::vector<NetId> &outputs() const { return outputList; }

    /** Total transistors over all gates. */
    size_t transistorCount() const;

    /**
     * Combinational depth in gates (longest path, feedback edges to
     * already-placed gates ignored). Used by the timing model.
     */
    int depth() const;

    /**
     * True when the netlist contains a net driven by a gate that
     * appears later in gate order than one of its consumers could
     * require, i.e. structural feedback exists.
     */
    bool hasFeedback() const;

  private:
    std::vector<Gate> gateList;
    std::vector<NetId> inputList;
    std::vector<NetId> outputList;
    size_t netCount = 0;
    NetId constNets[2] = {invalidNet, invalidNet};
    uint16_t currentGroup = 0;
    uint16_t maxGroup = 0;
};

} // namespace dtann

#endif // DTANN_CIRCUIT_NETLIST_HH
