#include "circuit/lane_plane.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace dtann {

namespace {

/** Runtime ISA probes; both false on non-x86 builds. */
bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") != 0;
#else
    return false;
#endif
}

#ifdef DTANN_HAVE_AVX512_TU
constexpr bool haveAvx512Tu = true;
#else
constexpr bool haveAvx512Tu = false;
#endif
#ifdef DTANN_HAVE_AVX2_TU
constexpr bool haveAvx2Tu = true;
#else
constexpr bool haveAvx2Tu = false;
#endif

} // namespace

size_t
batchLaneWords()
{
    switch (laneConfig()) {
      case 64: return 1;
      case 256: return 4;
      case 512: return 8;
      default: // auto: widest plane with native SIMD backing
        if (haveAvx512Tu && cpuHasAvx512())
            return 8;
        return 4;
    }
}

size_t
batchLaneWidth()
{
    return 64 * batchLaneWords();
}

const char *
batchLaneIsa()
{
    return laneSweepIsaFor(batchLaneWords());
}

LaneSweepFn
laneSweepFor(size_t words)
{
    if (words > 1) {
#ifdef DTANN_HAVE_AVX512_TU
        if (words == 8 && cpuHasAvx512())
            return laneSweepAvx512(words);
#endif
#ifdef DTANN_HAVE_AVX2_TU
        if (cpuHasAvx2())
            return laneSweepAvx2(words);
#endif
    }
    return laneSweepGeneric(words);
}

const char *
laneSweepIsaFor(size_t words)
{
    if (words > 1) {
        if (haveAvx512Tu && words == 8 && cpuHasAvx512())
            return "avx512";
        if (haveAvx2Tu && cpuHasAvx2())
            return "avx2";
        return "generic-unrolled";
    }
    return "scalar64";
}

} // namespace dtann
