/**
 * @file
 * Bit-parallel (wide-lane) evaluation of combinational netlists,
 * clean or carrying a state-free fault set.
 *
 * Each net holds a lane plane of W consecutive 64-bit words (W in
 * {1, 4, 8} -> 64/256/512 lanes; see circuit/lane_plane.hh) whose
 * bit L is the net's value in lane L, and every gate evaluates all
 * lanes with a handful of bitwise operations — vectorized into
 * ymm/zmm registers when the machine has AVX2/AVX-512. This gives a
 * ~40x speedup over the scalar sweep at 64 lanes and several-fold
 * more at the wide widths. The default width is 64 (one word, PR
 * 3's original layout, kept as the differential oracle); callers on
 * the campaign hot path pass batchLaneWidth() to get the machine's
 * best width, subject to the DTANN_LANES knob.
 *
 * Fault overrides are applied per gate through their truth table's
 * value plane: for each input combination whose table entry is One,
 * a selection mask picks the lanes presenting that combination. The
 * table's MEM plane must be empty — a MEM entry makes the gate's
 * output depend on the previous vector, which independent lanes
 * cannot represent — so eligibility is FaultSet::isStateless() on a
 * feedback-free netlist (see supports()/tryCreate()); stateful sets
 * fall back to the scalar relaxation Evaluator.
 */

#ifndef DTANN_CIRCUIT_BATCH_EVALUATOR_HH
#define DTANN_CIRCUIT_BATCH_EVALUATOR_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/fault_cone.hh"
#include "circuit/faults.hh"
#include "circuit/lane_plane.hh"
#include "circuit/netlist.hh"

namespace dtann {

/** Wide-lane evaluator for combinational netlists. */
class BatchEvaluator
{
  public:
    /**
     * True when (netlist, faults) is batchable: feedback-free and a
     * state-free fault set. When false and @p why is non-null, *why
     * points at a static string naming the blocking condition.
     */
    static bool supports(const Netlist &netlist, const FaultSet &faults,
                         const char **why = nullptr);

    /**
     * Build a batch evaluator, or nullopt when supports() is false.
     * Callers fall back to the scalar Evaluator on nullopt.
     *
     * @param netlist the circuit; must outlive the evaluator
     * @param faults fault set to apply (copied); must be state-free
     * @param clean optional native model of the defect-free
     *        operator; when given, the packed-vector paths
     *        (evaluateLanes/evaluateVectors) sweep only the fault
     *        cone and splice out-of-cone output bits from it
     * @param lanes plane width: 64 (default, the single-word
     *        oracle), 256 or 512; batchLaneWidth() resolves the
     *        machine's best width from the DTANN_LANES knob
     */
    static std::optional<BatchEvaluator> tryCreate(
        const Netlist &netlist, FaultSet faults = {}, CleanFn clean = {},
        size_t lanes = 64);

    /**
     * @param netlist the circuit; asserts supports(netlist, faults)
     *        — use tryCreate() when the answer is not known statically
     */
    explicit BatchEvaluator(const Netlist &netlist, FaultSet faults = {},
                            CleanFn clean = {}, size_t lanes = 64);

    /** Lanes evaluated per sweep (64, 256 or 512). */
    size_t laneCount() const { return 64 * words; }

    /**
     * Set primary input @p index to a 64-lane word (lanes 64 and up
     * of a wider plane are cleared — the granular API addresses the
     * first word only; the packed paths use the full width).
     */
    void setInputLanes(size_t index, uint64_t lanes);

    /**
     * Evaluate all lanes in one topological sweep over every gate.
     * (The granular lane API never prunes, so outputLanes() is valid
     * for all outputs.)
     */
    void evaluate();

    /** Read primary output @p index as a 64-lane word (first word
     *  of the plane; pairs with setInputLanes()). */
    uint64_t outputLanes(size_t index) const;

    /**
     * Evaluate up to laneCount() packed input vectors at once,
     * cone-pruned when a clean model was supplied.
     *
     * @param vectors packed input bits, one per lane
     * @param out packed output bits per lane (count entries)
     * @param count number of vectors (<= laneCount())
     */
    void evaluateLanes(const uint64_t *vectors, uint64_t *out,
                       size_t count);

    /** Convenience wrapper over evaluateLanes(). */
    std::vector<uint64_t> evaluateVectors(
        const std::vector<uint64_t> &vectors);

    /** The netlist being evaluated. */
    const Netlist &netlist() const { return nl; }

    /** The installed fault set. */
    const FaultSet &faults() const { return faultSet; }

    /** True when the packed-vector paths run cone-pruned. */
    bool conePruned() const { return cone.valid; }

    /** Batch sweeps executed so far (each covers up to laneCount()
     *  lanes). */
    uint64_t sweeps() const { return sweepCount; }

    /** Gates swept so far across all batch sweeps. */
    uint64_t gateSweeps() const { return gateSweepCount; }

  private:
    const Netlist &nl;
    FaultSet faultSet;
    CleanFn cleanFn;
    FaultCone cone;

    /** Plane width in 64-bit words (1, 4 or 8). */
    size_t words;
    /** Sweep kernel for this width, best ISA the CPU executes. */
    LaneSweepFn sweepFn;
    /** Per-net lane planes, strided [net * words + w]. */
    std::vector<uint64_t> netLanes;

    /** True when any fault table is populated. */
    bool haveFaults;
    /** Sentinel valuePlane entry: gate keeps its native function. */
    static constexpr uint32_t noOverride = kLaneNoOverride;
    /** Per-gate truth-table value plane (one bit per input combo;
     *  the MEM plane is empty by the isStateless() precondition).
     *  Entry is noOverride when the gate is clean. */
    std::vector<uint32_t> valuePlane;
    /** Per-gate, per-input stuck value (-1 = none). */
    std::vector<std::array<int8_t, 4>> inputForce;
    /** Per-gate output stuck value (-1 = none). */
    std::vector<int8_t> outputForce;

    uint64_t sweepCount = 0;
    uint64_t gateSweepCount = 0;

    /** Sweep @p active gates (all gates when null). */
    void sweepGates(const std::vector<uint32_t> *active);
};

} // namespace dtann

#endif // DTANN_CIRCUIT_BATCH_EVALUATOR_HH
