/**
 * @file
 * Bit-parallel (64-lane) evaluation of clean combinational
 * netlists.
 *
 * Each net holds a 64-bit word whose bit L is the net's value in
 * lane L, and every gate evaluates all lanes with a handful of
 * bitwise operations. This gives a ~40x speedup for exhaustive
 * equivalence checks and distribution sweeps. Restricted to
 * feedback-free netlists without faults: memory effects make
 * evaluation order-dependent across input vectors, which lanes
 * cannot represent.
 */

#ifndef DTANN_CIRCUIT_BATCH_EVALUATOR_HH
#define DTANN_CIRCUIT_BATCH_EVALUATOR_HH

#include <cstdint>
#include <vector>

#include "circuit/netlist.hh"

namespace dtann {

/** 64-lane evaluator for clean combinational netlists. */
class BatchEvaluator
{
  public:
    /**
     * @param netlist feedback-free netlist; fatal otherwise
     */
    explicit BatchEvaluator(const Netlist &netlist);

    /** Set primary input @p index to a 64-lane word. */
    void setInputLanes(size_t index, uint64_t lanes);

    /** Evaluate all lanes in one topological sweep. */
    void evaluate();

    /** Read primary output @p index as a 64-lane word. */
    uint64_t outputLanes(size_t index) const;

    /**
     * Convenience: evaluate up to 64 input vectors at once.
     *
     * @param vectors packed input bits, one per lane
     * @param count number of vectors (<= 64)
     * @return packed output bits per lane
     */
    std::vector<uint64_t> evaluateVectors(
        const std::vector<uint64_t> &vectors);

  private:
    const Netlist &nl;
    std::vector<uint64_t> netLanes;
};

} // namespace dtann

#endif // DTANN_CIRCUIT_BATCH_EVALUATOR_HH
