/**
 * @file
 * Fault descriptions applied to a netlist at evaluation time.
 *
 * Two fault models coexist, mirroring the paper's comparison:
 *
 *  - transistor-level: a gate's behaviour is replaced wholesale by a
 *    GateFunction reconstructed from its defective transistor
 *    schematic (see src/transistor); it may include MEM entries and
 *    may additionally be delayed (output lags one evaluation).
 *  - gate-level: classic stuck-at-0/1 on a gate input or output
 *    (the abstract model the paper shows to be insufficient).
 */

#ifndef DTANN_CIRCUIT_FAULTS_HH
#define DTANN_CIRCUIT_FAULTS_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "circuit/gate_function.hh"

namespace dtann {

/** Gate-level stuck-at fault. */
struct StuckAtFault
{
    uint32_t gate;  ///< gate index within the netlist
    int8_t input;   ///< input index, or -1 for the gate output
    bool value;     ///< the stuck value
};

/** The set of faults injected into one netlist. */
struct FaultSet
{
    /** Transistor-level reconstructed behaviours, by gate index. */
    std::map<uint32_t, GateFunction> overrides;
    /** Gates whose output is delayed by one evaluation. */
    std::set<uint32_t> delayed;
    /** Gate-level stuck-at faults. */
    std::vector<StuckAtFault> stuckAt;

    /** True when no fault is present. */
    bool
    empty() const
    {
        return overrides.empty() && delayed.empty() && stuckAt.empty();
    }

    /**
     * True when evaluation under this fault set is a pure function
     * of the current inputs: no delay faults (the output lags one
     * evaluation) and no MEM truth-table entries (a floating output
     * retains its previous value). Stuck-at faults and non-MEM
     * overrides are stateless. State-free fault sets on
     * feedback-free netlists are eligible for the 64-lane batch
     * evaluator; stateful ones must go through the scalar relaxation
     * Evaluator, whose net values persist across calls.
     */
    bool
    isStateless() const
    {
        if (!delayed.empty())
            return false;
        for (const auto &[gate, fn] : overrides)
            if (fn.hasMem())
                return false;
        return true;
    }

    /** Merge another fault set into this one. */
    void
    merge(const FaultSet &other)
    {
        for (const auto &[g, f] : other.overrides)
            overrides[g] = f;
        delayed.insert(other.delayed.begin(), other.delayed.end());
        stuckAt.insert(stuckAt.end(), other.stuckAt.begin(),
                       other.stuckAt.end());
    }
};

} // namespace dtann

#endif // DTANN_CIRCUIT_FAULTS_HH
