#include "circuit/sim_counters.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace dtann {

double
SimCounters::laneOccupancy() const
{
    if (batchLaneSlots == 0)
        return 0.0;
    return static_cast<double>(batchVectors) /
        static_cast<double>(batchLaneSlots);
}

double
SimCounters::scalarFallbackRate() const
{
    uint64_t total = vectors();
    if (total == 0)
        return 0.0;
    return static_cast<double>(scalarVectors) /
        static_cast<double>(total);
}

std::string
SimCounters::toJson() const
{
    std::string out = "{\"scalar_vectors\":" +
        std::to_string(scalarVectors);
    out += ",\"batch_vectors\":" + std::to_string(batchVectors);
    out += ",\"batch_sweeps\":" + std::to_string(batchSweeps);
    out += ",\"batch_lane_slots\":" + std::to_string(batchLaneSlots);
    out += ",\"gate_evals\":" + std::to_string(gateEvals);
    out += ",\"batch_gate_sweeps\":" + std::to_string(batchGateSweeps);
    out += ",\"lane_occupancy\":" + jsonNumber(laneOccupancy());
    out += ",\"scalar_fallback_rate\":" +
        jsonNumber(scalarFallbackRate());
    out += "}";
    return out;
}

SimCounters
SimCounters::fromJson(const JsonValue &v)
{
    SimCounters c;
    c.scalarVectors = jsonGetUint(v, "scalar_vectors", 0);
    c.batchVectors = jsonGetUint(v, "batch_vectors", 0);
    c.batchSweeps = jsonGetUint(v, "batch_sweeps", 0);
    // Pre-wide-lane payloads lack the slot count; those sweeps were
    // all 64 lanes wide.
    c.batchLaneSlots =
        jsonGetUint(v, "batch_lane_slots", 64 * c.batchSweeps);
    c.gateEvals = jsonGetUint(v, "gate_evals", 0);
    c.batchGateSweeps = jsonGetUint(v, "batch_gate_sweeps", 0);
    return c;
}

void
logSimCounters(const char *what, const SimCounters &c)
{
    if (c.vectors() == 0)
        return;
    inform("%s sim counters: %llu vectors (%llu batch / %llu scalar), "
           "lane occupancy %.2f, scalar fallback %.1f%%, "
           "%llu scalar gate evals, %llu batch gate sweeps",
           what,
           static_cast<unsigned long long>(c.vectors()),
           static_cast<unsigned long long>(c.batchVectors),
           static_cast<unsigned long long>(c.scalarVectors),
           c.laneOccupancy(), 100.0 * c.scalarFallbackRate(),
           static_cast<unsigned long long>(c.gateEvals),
           static_cast<unsigned long long>(c.batchGateSweeps));
}

} // namespace dtann
