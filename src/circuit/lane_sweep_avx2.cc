/**
 * @file
 * AVX2 lane-sweep kernels. This translation unit is compiled with
 * -mavx2 (see circuit/CMakeLists.txt), so the W-word inner loops in
 * laneSweepGates<4/8> vectorize into 256-bit ymm operations. Only
 * reached through laneSweepFor() after a __builtin_cpu_supports
 * check, so linking it into a generic binary is safe.
 */

#include "circuit/lane_sweep_impl.hh"

namespace dtann {

LaneSweepFn
laneSweepAvx2(size_t words)
{
    switch (words) {
      case 4: return &laneSweepGates<4>;
      case 8: return &laneSweepGates<8>;
      default:
        panic("avx2 lane sweep: unsupported width %zu words", words);
    }
}

} // namespace dtann
