#include "circuit/netlist.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

NetId
Netlist::addNet()
{
    return static_cast<NetId>(netCount++);
}

NetId
Netlist::addGate(GateKind kind, const std::vector<NetId> &ins)
{
    NetId out = addNet();
    addGateOnto(kind, ins, out);
    return out;
}

void
Netlist::addGateOnto(GateKind kind, const std::vector<NetId> &ins,
                     NetId out)
{
    int arity = gateArity(kind);
    dtann_assert(static_cast<int>(ins.size()) == arity,
                 "%s expects %d inputs, got %zu",
                 gateName(kind), arity, ins.size());
    dtann_assert(out < netCount, "gate output uses unknown net");
    Gate g;
    g.kind = kind;
    g.group = currentGroup;
    maxGroup = std::max(maxGroup, currentGroup);
    for (int i = 0; i < 4; ++i)
        g.in[i] = i < arity ? ins[static_cast<size_t>(i)] : invalidNet;
    for (int i = 0; i < arity; ++i)
        dtann_assert(g.in[i] < netCount, "gate input uses unknown net");
    g.out = out;
    gateList.push_back(g);
}

NetId
Netlist::constNet(bool value)
{
    NetId &cached = constNets[value ? 1 : 0];
    if (cached == invalidNet)
        cached = addGate(value ? GateKind::Const1 : GateKind::Const0, {});
    return cached;
}

void
Netlist::markInput(NetId net)
{
    dtann_assert(net < netCount, "unknown net");
    inputList.push_back(net);
}

void
Netlist::markOutput(NetId net)
{
    dtann_assert(net < netCount, "unknown net");
    outputList.push_back(net);
}

size_t
Netlist::transistorCount() const
{
    size_t total = 0;
    for (const Gate &g : gateList)
        total += static_cast<size_t>(gateTransistorCount(g.kind));
    return total;
}

int
Netlist::depth() const
{
    // Net depth: inputs are 0; a gate's output depth is
    // 1 + max(input depths), where a not-yet-driven input net (a
    // feedback edge) contributes 0.
    std::vector<int> net_depth(netCount, 0);
    int max_depth = 0;
    for (const Gate &g : gateList) {
        int d = 0;
        for (int i = 0; i < g.arity(); ++i)
            d = std::max(d, net_depth[g.in[i]]);
        net_depth[g.out] = d + 1;
        max_depth = std::max(max_depth, d + 1);
    }
    return max_depth;
}

bool
Netlist::hasFeedback() const
{
    // A gate reads a net that is driven by a gate appearing later in
    // construction order (builders emit gates topologically except
    // for genuine feedback).
    std::vector<bool> driven(netCount, false);
    for (NetId in : inputList)
        driven[in] = true;
    // Constants and gate outputs become driven as we walk.
    for (const Gate &g : gateList) {
        for (int i = 0; i < g.arity(); ++i)
            if (!driven[g.in[i]])
                return true;
        driven[g.out] = true;
    }
    return false;
}

} // namespace dtann
