#include "circuit/batch_evaluator.hh"

#include "common/logging.hh"

namespace dtann {

BatchEvaluator::BatchEvaluator(const Netlist &netlist)
    : nl(netlist), netLanes(netlist.numNets(), 0)
{
    if (nl.hasFeedback())
        fatal("BatchEvaluator requires a feedback-free netlist");
}

void
BatchEvaluator::setInputLanes(size_t index, uint64_t lanes)
{
    dtann_assert(index < nl.inputs().size(), "input index out of range");
    netLanes[nl.inputs()[index]] = lanes;
}

void
BatchEvaluator::evaluate()
{
    for (size_t gi = 0; gi < nl.numGates(); ++gi) {
        const Gate &g = nl.gate(gi);
        uint64_t a = g.arity() > 0 ? netLanes[g.in[0]] : 0;
        uint64_t b = g.arity() > 1 ? netLanes[g.in[1]] : 0;
        uint64_t c = g.arity() > 2 ? netLanes[g.in[2]] : 0;
        uint64_t d = g.arity() > 3 ? netLanes[g.in[3]] : 0;
        uint64_t out;
        switch (g.kind) {
          case GateKind::Const0: out = 0; break;
          case GateKind::Const1: out = ~0ull; break;
          case GateKind::Not: out = ~a; break;
          case GateKind::Nand2: out = ~(a & b); break;
          case GateKind::Nand3: out = ~(a & b & c); break;
          case GateKind::Nor2: out = ~(a | b); break;
          case GateKind::Nor3: out = ~(a | b | c); break;
          case GateKind::Aoi21: out = ~((a & b) | c); break;
          case GateKind::Aoi22: out = ~((a & b) | (c & d)); break;
          case GateKind::Oai21: out = ~((a | b) & c); break;
          case GateKind::Oai22: out = ~((a | b) & (c | d)); break;
          case GateKind::CarryN:
            out = ~((a & b) | (c & (a | b)));
            break;
          case GateKind::MirrorSumN:
            out = ~((a & b & c) | (d & (a | b | c)));
            break;
          default:
            panic("batch eval: bad gate kind");
        }
        netLanes[g.out] = out;
    }
}

uint64_t
BatchEvaluator::outputLanes(size_t index) const
{
    dtann_assert(index < nl.outputs().size(),
                 "output index out of range");
    return netLanes[nl.outputs()[index]];
}

std::vector<uint64_t>
BatchEvaluator::evaluateVectors(const std::vector<uint64_t> &vectors)
{
    dtann_assert(vectors.size() <= 64, "at most 64 lanes");
    size_t n_in = nl.inputs().size();
    dtann_assert(n_in <= 64, "at most 64 primary inputs");
    for (size_t i = 0; i < n_in; ++i) {
        uint64_t lanes = 0;
        for (size_t l = 0; l < vectors.size(); ++l)
            lanes |= ((vectors[l] >> i) & 1) << l;
        setInputLanes(i, lanes);
    }
    evaluate();
    size_t n_out = nl.outputs().size();
    dtann_assert(n_out <= 64, "at most 64 primary outputs");
    std::vector<uint64_t> result(vectors.size(), 0);
    for (size_t o = 0; o < n_out; ++o) {
        uint64_t lanes = outputLanes(o);
        for (size_t l = 0; l < vectors.size(); ++l)
            result[l] |= ((lanes >> l) & 1) << o;
    }
    return result;
}

} // namespace dtann
