#include "circuit/batch_evaluator.hh"

#include "common/logging.hh"

namespace dtann {

bool
BatchEvaluator::supports(const Netlist &netlist, const FaultSet &faults,
                         const char **why)
{
    if (netlist.hasFeedback()) {
        if (why)
            *why = "netlist has feedback (needs relaxation)";
        return false;
    }
    if (!faults.isStateless()) {
        if (why)
            *why = "fault set is stateful (MEM or delay faults)";
        return false;
    }
    if (why)
        *why = nullptr;
    return true;
}

std::optional<BatchEvaluator>
BatchEvaluator::tryCreate(const Netlist &netlist, FaultSet faults,
                          CleanFn clean, size_t lanes)
{
    if (!supports(netlist, faults))
        return std::nullopt;
    return std::optional<BatchEvaluator>(BatchEvaluator(
        netlist, std::move(faults), std::move(clean), lanes));
}

BatchEvaluator::BatchEvaluator(const Netlist &netlist, FaultSet faults,
                               CleanFn clean, size_t lanes)
    : nl(netlist), faultSet(std::move(faults)),
      cleanFn(std::move(clean)),
      words(lanes / 64),
      sweepFn(laneSweepFor(lanes / 64)),
      netLanes(netlist.numNets() * (lanes / 64), 0),
      haveFaults(!this->faultSet.empty())
{
    dtann_assert(lanes == 64 || lanes == 256 || lanes == 512,
                 "BatchEvaluator: bad lane width %zu", lanes);
    const char *why = nullptr;
    bool ok = supports(nl, faultSet, &why);
    dtann_assert(ok, "BatchEvaluator: %s", why ? why : "unsupported");
    if (haveFaults) {
        size_t n = nl.numGates();
        valuePlane.assign(n, noOverride);
        inputForce.assign(n, {-1, -1, -1, -1});
        outputForce.assign(n, -1);
        for (const auto &[gi, fn] : faultSet.overrides) {
            dtann_assert(gi < n, "override on unknown gate %u", gi);
            int arity = nl.gate(gi).arity();
            dtann_assert(fn.numInputs() == arity,
                         "override arity mismatch on gate %u", gi);
            // Materialise the table's value plane; the MEM plane is
            // empty (isStateless() checked above).
            uint32_t plane = 0;
            for (uint32_t combo = 0; combo < (1u << arity); ++combo) {
                if (fn.eval(combo) == LogicValue::One)
                    plane |= 1u << combo;
            }
            valuePlane[gi] = plane;
        }
        for (const StuckAtFault &f : faultSet.stuckAt) {
            dtann_assert(f.gate < n, "stuck-at on unknown gate %u",
                         f.gate);
            if (f.input < 0) {
                outputForce[f.gate] = f.value ? 1 : 0;
            } else {
                dtann_assert(f.input < nl.gate(f.gate).arity(),
                             "stuck-at input index out of range");
                inputForce[f.gate][static_cast<size_t>(f.input)] =
                    f.value ? 1 : 0;
            }
        }
        if (cleanFn)
            cone = computeFaultCone(nl, faultSet);
    }
}

void
BatchEvaluator::setInputLanes(size_t index, uint64_t lanes)
{
    dtann_assert(index < nl.inputs().size(), "input index out of range");
    uint64_t *plane = &netLanes[nl.inputs()[index] * words];
    plane[0] = lanes;
    for (size_t w = 1; w < words; ++w)
        plane[w] = 0;
}

void
BatchEvaluator::evaluate()
{
    sweepGates(nullptr);
}

void
BatchEvaluator::sweepGates(const std::vector<uint32_t> *active)
{
    size_t n = active ? active->size() : nl.numGates();
    ++sweepCount;
    gateSweepCount += n;
    if (n == 0)
        return;
    // The sweep itself lives in a width-templated kernel picked at
    // construction (see circuit/lane_plane.hh): the W-word loops
    // vectorize in the per-ISA translation units, and W == 1 is PR
    // 3's original single-word sweep.
    LaneSweepCtx ctx;
    ctx.gates = &nl.gate(0);
    ctx.active = active ? active->data() : nullptr;
    ctx.count = n;
    ctx.haveFaults = haveFaults;
    ctx.valuePlane = haveFaults ? valuePlane.data() : nullptr;
    ctx.inputForce =
        haveFaults ? inputForce.data()->data() : nullptr;
    ctx.outputForce = haveFaults ? outputForce.data() : nullptr;
    ctx.netLanes = netLanes.data();
    sweepFn(ctx);
}

uint64_t
BatchEvaluator::outputLanes(size_t index) const
{
    dtann_assert(index < nl.outputs().size(),
                 "output index out of range");
    return netLanes[nl.outputs()[index] * words];
}

void
BatchEvaluator::evaluateLanes(const uint64_t *vectors, uint64_t *out,
                              size_t count)
{
    dtann_assert(count <= laneCount(), "at most laneCount() lanes");
    size_t n_in = nl.inputs().size();
    dtann_assert(n_in <= 64, "at most 64 primary inputs");
    for (size_t i = 0; i < n_in; ++i) {
        uint64_t *plane = &netLanes[nl.inputs()[i] * words];
        for (size_t w = 0; w < words; ++w)
            plane[w] = 0;
        for (size_t l = 0; l < count; ++l)
            plane[l >> 6] |= ((vectors[l] >> i) & 1) << (l & 63);
    }
    sweepGates(cone.valid ? &cone.activeGates : nullptr);
    size_t n_out = nl.outputs().size();
    dtann_assert(n_out <= 64, "at most 64 primary outputs");
    for (size_t l = 0; l < count; ++l)
        out[l] = 0;
    if (cone.valid) {
        // Pruned sweep: only in-cone outputs were simulated; the
        // rest come from the clean native model, per lane.
        for (size_t o = 0; o < n_out; ++o) {
            if (!(cone.outputMask >> o & 1))
                continue;
            const uint64_t *plane =
                &netLanes[nl.outputs()[o] * words];
            for (size_t l = 0; l < count; ++l)
                out[l] |= ((plane[l >> 6] >> (l & 63)) & 1) << o;
        }
        for (size_t l = 0; l < count; ++l) {
            uint64_t clean = cleanFn(vectors[l]);
            out[l] |= clean & ~cone.outputMask;
        }
        return;
    }
    for (size_t o = 0; o < n_out; ++o) {
        const uint64_t *plane = &netLanes[nl.outputs()[o] * words];
        for (size_t l = 0; l < count; ++l)
            out[l] |= ((plane[l >> 6] >> (l & 63)) & 1) << o;
    }
}

std::vector<uint64_t>
BatchEvaluator::evaluateVectors(const std::vector<uint64_t> &vectors)
{
    std::vector<uint64_t> result(vectors.size(), 0);
    if (!vectors.empty())
        evaluateLanes(vectors.data(), result.data(), vectors.size());
    return result;
}

} // namespace dtann
