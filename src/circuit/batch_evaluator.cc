#include "circuit/batch_evaluator.hh"

#include "common/logging.hh"

namespace dtann {

bool
BatchEvaluator::supports(const Netlist &netlist, const FaultSet &faults,
                         const char **why)
{
    if (netlist.hasFeedback()) {
        if (why)
            *why = "netlist has feedback (needs relaxation)";
        return false;
    }
    if (!faults.isStateless()) {
        if (why)
            *why = "fault set is stateful (MEM or delay faults)";
        return false;
    }
    if (why)
        *why = nullptr;
    return true;
}

std::optional<BatchEvaluator>
BatchEvaluator::tryCreate(const Netlist &netlist, FaultSet faults,
                          CleanFn clean)
{
    if (!supports(netlist, faults))
        return std::nullopt;
    return std::optional<BatchEvaluator>(
        BatchEvaluator(netlist, std::move(faults), std::move(clean)));
}

BatchEvaluator::BatchEvaluator(const Netlist &netlist, FaultSet faults,
                               CleanFn clean)
    : nl(netlist), faultSet(std::move(faults)),
      cleanFn(std::move(clean)),
      netLanes(netlist.numNets(), 0),
      haveFaults(!this->faultSet.empty())
{
    const char *why = nullptr;
    bool ok = supports(nl, faultSet, &why);
    dtann_assert(ok, "BatchEvaluator: %s", why ? why : "unsupported");
    if (haveFaults) {
        size_t n = nl.numGates();
        valuePlane.assign(n, noOverride);
        inputForce.assign(n, {-1, -1, -1, -1});
        outputForce.assign(n, -1);
        for (const auto &[gi, fn] : faultSet.overrides) {
            dtann_assert(gi < n, "override on unknown gate %u", gi);
            int arity = nl.gate(gi).arity();
            dtann_assert(fn.numInputs() == arity,
                         "override arity mismatch on gate %u", gi);
            // Materialise the table's value plane; the MEM plane is
            // empty (isStateless() checked above).
            uint32_t plane = 0;
            for (uint32_t combo = 0; combo < (1u << arity); ++combo) {
                if (fn.eval(combo) == LogicValue::One)
                    plane |= 1u << combo;
            }
            valuePlane[gi] = plane;
        }
        for (const StuckAtFault &f : faultSet.stuckAt) {
            dtann_assert(f.gate < n, "stuck-at on unknown gate %u",
                         f.gate);
            if (f.input < 0) {
                outputForce[f.gate] = f.value ? 1 : 0;
            } else {
                dtann_assert(f.input < nl.gate(f.gate).arity(),
                             "stuck-at input index out of range");
                inputForce[f.gate][static_cast<size_t>(f.input)] =
                    f.value ? 1 : 0;
            }
        }
        if (cleanFn)
            cone = computeFaultCone(nl, faultSet);
    }
}

void
BatchEvaluator::setInputLanes(size_t index, uint64_t lanes)
{
    dtann_assert(index < nl.inputs().size(), "input index out of range");
    netLanes[nl.inputs()[index]] = lanes;
}

void
BatchEvaluator::evaluate()
{
    sweepGates(nullptr);
}

void
BatchEvaluator::sweepGates(const std::vector<uint32_t> *active)
{
    size_t n = active ? active->size() : nl.numGates();
    ++sweepCount;
    gateSweepCount += n;
    for (size_t idx = 0; idx < n; ++idx) {
        size_t gi = active ? (*active)[idx] : idx;
        const Gate &g = nl.gate(gi);
        int arity = g.arity();
        uint64_t in[4] = {};
        for (int i = 0; i < arity; ++i)
            in[i] = netLanes[g.in[i]];
        if (haveFaults) {
            const auto &force = inputForce[gi];
            for (int i = 0; i < arity; ++i) {
                if (force[static_cast<size_t>(i)] >= 0)
                    in[i] = force[static_cast<size_t>(i)] ? ~0ull : 0;
            }
        }
        uint64_t out;
        if (haveFaults && valuePlane[gi] != noOverride) {
            // Truth-table mux: for each combination whose table
            // entry is One, select the lanes presenting it.
            uint32_t plane = valuePlane[gi];
            out = 0;
            for (uint32_t combo = 0; combo < (1u << arity); ++combo) {
                if (!(plane >> combo & 1))
                    continue;
                uint64_t sel = ~0ull;
                for (int i = 0; i < arity; ++i)
                    sel &= (combo >> i & 1) ? in[i] : ~in[i];
                out |= sel;
            }
        } else {
            uint64_t a = in[0], b = in[1], c = in[2], d = in[3];
            switch (g.kind) {
              case GateKind::Const0: out = 0; break;
              case GateKind::Const1: out = ~0ull; break;
              case GateKind::Not: out = ~a; break;
              case GateKind::Nand2: out = ~(a & b); break;
              case GateKind::Nand3: out = ~(a & b & c); break;
              case GateKind::Nor2: out = ~(a | b); break;
              case GateKind::Nor3: out = ~(a | b | c); break;
              case GateKind::Aoi21: out = ~((a & b) | c); break;
              case GateKind::Aoi22: out = ~((a & b) | (c & d)); break;
              case GateKind::Oai21: out = ~((a | b) & c); break;
              case GateKind::Oai22: out = ~((a | b) & (c | d)); break;
              case GateKind::CarryN:
                out = ~((a & b) | (c & (a | b)));
                break;
              case GateKind::MirrorSumN:
                out = ~((a & b & c) | (d & (a | b | c)));
                break;
              default:
                panic("batch eval: bad gate kind");
            }
        }
        if (haveFaults && outputForce[gi] >= 0)
            out = outputForce[gi] ? ~0ull : 0;
        netLanes[g.out] = out;
    }
}

uint64_t
BatchEvaluator::outputLanes(size_t index) const
{
    dtann_assert(index < nl.outputs().size(),
                 "output index out of range");
    return netLanes[nl.outputs()[index]];
}

void
BatchEvaluator::evaluateLanes(const uint64_t *vectors, uint64_t *out,
                              size_t count)
{
    dtann_assert(count <= 64, "at most 64 lanes");
    size_t n_in = nl.inputs().size();
    dtann_assert(n_in <= 64, "at most 64 primary inputs");
    for (size_t i = 0; i < n_in; ++i) {
        uint64_t lanes = 0;
        for (size_t l = 0; l < count; ++l)
            lanes |= ((vectors[l] >> i) & 1) << l;
        netLanes[nl.inputs()[i]] = lanes;
    }
    sweepGates(cone.valid ? &cone.activeGates : nullptr);
    size_t n_out = nl.outputs().size();
    dtann_assert(n_out <= 64, "at most 64 primary outputs");
    for (size_t l = 0; l < count; ++l)
        out[l] = 0;
    if (cone.valid) {
        // Pruned sweep: only in-cone outputs were simulated; the
        // rest come from the clean native model, per lane.
        for (size_t o = 0; o < n_out; ++o) {
            if (!(cone.outputMask >> o & 1))
                continue;
            uint64_t lanes = netLanes[nl.outputs()[o]];
            for (size_t l = 0; l < count; ++l)
                out[l] |= ((lanes >> l) & 1) << o;
        }
        for (size_t l = 0; l < count; ++l) {
            uint64_t clean = cleanFn(vectors[l]);
            out[l] |= clean & ~cone.outputMask;
        }
        return;
    }
    for (size_t o = 0; o < n_out; ++o) {
        uint64_t lanes = netLanes[nl.outputs()[o]];
        for (size_t l = 0; l < count; ++l)
            out[l] |= ((lanes >> l) & 1) << o;
    }
}

std::vector<uint64_t>
BatchEvaluator::evaluateVectors(const std::vector<uint64_t> &vectors)
{
    std::vector<uint64_t> result(vectors.size(), 0);
    if (!vectors.empty())
        evaluateLanes(vectors.data(), result.data(), vectors.size());
    return result;
}

} // namespace dtann
