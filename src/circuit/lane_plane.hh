/**
 * @file
 * Wide lane planes: the bit-parallel evaluation width abstraction.
 *
 * PR 3's BatchEvaluator packed 64 lanes into one uint64_t per net.
 * A LanePlane widens that to W consecutive uint64_t words per net
 * (W in {1, 4, 8} -> 64/256/512 lanes), stored strided as
 * netLanes[net * W + w]. The gate sweep is pure bitwise logic, so
 * the same templated kernel serves every width; the W-word inner
 * loops auto-vectorize into ymm/zmm operations when the translation
 * unit is compiled for AVX2/AVX-512.
 *
 * Width and ISA are picked at runtime: DTANN_LANES=64|256|512
 * forces a width (64 keeps the original single-word path as the
 * differential oracle), unset means auto (512 when the CPU and
 * compiler support AVX-512, else 256). The kernel for a width is
 * picked from the best translation unit the CPU can execute
 * (AVX-512 > AVX2 > generic unrolled), checked via
 * __builtin_cpu_supports, so one binary serves every machine.
 * Results are bit-identical across all widths and ISAs: the sweep
 * is word-wise bitwise logic with no cross-lane interaction.
 */

#ifndef DTANN_CIRCUIT_LANE_PLANE_HH
#define DTANN_CIRCUIT_LANE_PLANE_HH

#include <cstddef>
#include <cstdint>

#include "circuit/netlist.hh"

namespace dtann {

/** Widest supported plane: 8 words = 512 lanes (one zmm register). */
inline constexpr size_t kMaxLaneWords = 8;
inline constexpr size_t kMaxLanes = 64 * kMaxLaneWords;

/** valuePlane entry meaning "gate keeps its native function". */
inline constexpr uint32_t kLaneNoOverride = UINT32_MAX;

/**
 * Everything a gate sweep needs, as raw pointers so the kernel can
 * live in per-ISA translation units without seeing BatchEvaluator.
 * The fault pointers are null when haveFaults is false.
 */
struct LaneSweepCtx {
    const Gate *gates;        ///< contiguous gate array
    const uint32_t *active;   ///< active gate indices, or null = all
    size_t count;             ///< gates to sweep
    bool haveFaults;          ///< any fault override installed
    const uint32_t *valuePlane;  ///< per-gate truth-table plane
    const int8_t *inputForce;    ///< per-gate [4] stuck inputs
    const int8_t *outputForce;   ///< per-gate stuck output
    uint64_t *netLanes;       ///< per-net planes, [net * W + w]
};

/** A sweep kernel instantiated for one plane width. */
using LaneSweepFn = void (*)(const LaneSweepCtx &);

/**
 * Lane words resolved from DTANN_LANES and the machine: 1, 4 or 8.
 * Unset/auto picks the widest plane with native SIMD backing (8
 * with AVX-512, else 4). Read live from the environment so tests
 * can sweep widths with setenv().
 */
size_t batchLaneWords();

/** batchLaneWords() in lanes: 64, 256 or 512. */
size_t batchLaneWidth();

/** ISA label backing batchLaneWords() ("avx512", "avx2", ...). */
const char *batchLaneIsa();

/**
 * The sweep kernel for @p words (1, 4 or 8): the widest-ISA
 * translation unit this CPU can execute. words == 1 always uses the
 * generic kernel (a single word gains nothing from SIMD).
 */
LaneSweepFn laneSweepFor(size_t words);

/** ISA label of the kernel laneSweepFor(@p words) returns. */
const char *laneSweepIsaFor(size_t words);

/** Generic (auto-unrolled, no ISA flags) kernels, always present. */
LaneSweepFn laneSweepGeneric(size_t words);

#ifdef DTANN_HAVE_AVX2_TU
/** Kernels compiled with -mavx2; call only when the CPU has AVX2. */
LaneSweepFn laneSweepAvx2(size_t words);
#endif
#ifdef DTANN_HAVE_AVX512_TU
/** Kernels compiled with -mavx512f; requires AVX-512F at runtime. */
LaneSweepFn laneSweepAvx512(size_t words);
#endif

} // namespace dtann

#endif // DTANN_CIRCUIT_LANE_PLANE_HH
