/**
 * @file
 * Throughput accounting for faulty-operator simulation.
 *
 * Campaigns funnel their retraining epochs and test sweeps through
 * gate-level simulation of the defective operators; these counters
 * record how much of that work went down each path (wide-lane batch
 * vs scalar relaxation) and how many gate evaluations it cost, so a
 * campaign can report its effective speedup alongside its results.
 * All fields are plain sums, so merging is order-independent and
 * campaign totals stay bit-identical for any thread count. Sweep
 * and lane-slot counts depend on the configured lane width
 * (DTANN_LANES); the scientific results they ride along with do
 * not.
 */

#ifndef DTANN_CIRCUIT_SIM_COUNTERS_HH
#define DTANN_CIRCUIT_SIM_COUNTERS_HH

#include <cstdint>
#include <string>

namespace dtann {

/** Work counters of one or more simulated faulty operators. */
struct SimCounters
{
    /** Input vectors evaluated one at a time (relaxation path). */
    uint64_t scalarVectors = 0;
    /** Input vectors evaluated through the wide-lane batch path. */
    uint64_t batchVectors = 0;
    /** Batch sweeps executed (one kernel pass, any lane width). */
    uint64_t batchSweeps = 0;
    /** Lane slots provisioned across batch sweeps (sum of each
     *  sweep's lane width; occupancy = batchVectors / this). */
    uint64_t batchLaneSlots = 0;
    /** Scalar gate evaluations executed (gates x sweeps). */
    uint64_t gateEvals = 0;
    /** Gates swept by batch calls (whole planes per gate). */
    uint64_t batchGateSweeps = 0;

    /** Accumulate another counter set. */
    void
    merge(const SimCounters &o)
    {
        scalarVectors += o.scalarVectors;
        batchVectors += o.batchVectors;
        batchSweeps += o.batchSweeps;
        batchLaneSlots += o.batchLaneSlots;
        gateEvals += o.gateEvals;
        batchGateSweeps += o.batchGateSweeps;
    }

    /** Total vectors pushed through faulty operators. */
    uint64_t vectors() const { return scalarVectors + batchVectors; }

    /** Mean occupied lanes per batch sweep, in [0, 1]. */
    double laneOccupancy() const;

    /** Fraction of vectors that fell back to the scalar path. */
    double scalarFallbackRate() const;

    /** Single JSON object (embedded in campaign exports). */
    std::string toJson() const;

    /**
     * Parse a toJson() payload back (derived rates are recomputed,
     * not read). Counters round-trip exactly; the result journal
     * relies on this for bit-identical campaign resume.
     */
    static SimCounters fromJson(const class JsonValue &v);
};

/**
 * Log one env::dump()-style banner line summarising @p c, tagged
 * with @p what (e.g. the campaign name). No-op when no vectors were
 * simulated.
 */
void logSimCounters(const char *what, const SimCounters &c);

} // namespace dtann

#endif // DTANN_CIRCUIT_SIM_COUNTERS_HH
