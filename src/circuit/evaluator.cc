#include "circuit/evaluator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

namespace {

/** Relaxation sweep cap; oscillating faulty feedback stops here. */
constexpr int maxSweeps = 64;

} // namespace

Evaluator::Evaluator(const Netlist &netlist, FaultSet faults,
                     CleanFn clean)
    : nl(netlist), faultSet(std::move(faults)),
      cleanFn(std::move(clean)),
      netVal(netlist.numNets(), 0),
      haveFaults(!this->faultSet.empty()),
      needsRelaxation(netlist.hasFeedback())
{
    if (cleanFn && haveFaults)
        cone = computeFaultCone(nl, faultSet);
    size_t n = nl.numGates();
    if (haveFaults) {
        overridePtr.assign(n, nullptr);
        delayedFlag.assign(n, 0);
        delayStore.assign(n, 0);
        inputForce.assign(n, {-1, -1, -1, -1});
        outputForce.assign(n, -1);
        for (const auto &[gi, fn] : faultSet.overrides) {
            dtann_assert(gi < n, "override on unknown gate %u", gi);
            dtann_assert(fn.numInputs() == nl.gate(gi).arity(),
                         "override arity mismatch on gate %u", gi);
            overridePtr[gi] = &fn;
        }
        for (uint32_t gi : faultSet.delayed) {
            dtann_assert(gi < n, "delay fault on unknown gate %u", gi);
            delayedFlag[gi] = 1;
        }
        for (const StuckAtFault &f : faultSet.stuckAt) {
            dtann_assert(f.gate < n, "stuck-at on unknown gate %u", f.gate);
            if (f.input < 0) {
                outputForce[f.gate] = f.value ? 1 : 0;
            } else {
                dtann_assert(f.input < nl.gate(f.gate).arity(),
                             "stuck-at input index out of range");
                inputForce[f.gate][static_cast<size_t>(f.input)] =
                    f.value ? 1 : 0;
            }
        }
    }
}

void
Evaluator::reset()
{
    std::fill(netVal.begin(), netVal.end(), 0);
    std::fill(delayStore.begin(), delayStore.end(), 0);
}

void
Evaluator::setInput(size_t index, bool value)
{
    dtann_assert(index < nl.inputs().size(), "input index out of range");
    netVal[nl.inputs()[index]] = value ? 1 : 0;
}

void
Evaluator::setInputBits(uint64_t bits, size_t count)
{
    setInputRange(0, count, bits);
}

void
Evaluator::setInputRange(size_t offset, size_t width, uint64_t bits)
{
    dtann_assert(offset + width <= nl.inputs().size(),
                 "input range out of bounds");
    for (size_t i = 0; i < width; ++i)
        netVal[nl.inputs()[offset + i]] = (bits >> i) & 1;
}

uint32_t
Evaluator::gateInputs(size_t gi) const
{
    const Gate &g = nl.gate(gi);
    uint32_t in = 0;
    int arity = g.arity();
    for (int i = 0; i < arity; ++i)
        in |= static_cast<uint32_t>(netVal[g.in[i]]) << i;
    if (haveFaults) {
        const auto &force = inputForce[gi];
        for (int i = 0; i < arity; ++i) {
            if (force[static_cast<size_t>(i)] >= 0) {
                in &= ~(1u << i);
                in |= static_cast<uint32_t>(
                    force[static_cast<size_t>(i)]) << i;
            }
        }
    }
    return in;
}

void
Evaluator::evaluate()
{
    runSweeps(nullptr);
    latchDelayed();
}

void
Evaluator::runSweeps(const std::vector<uint32_t> *active)
{
    size_t n = active ? active->size() : nl.numGates();
    oscillated = false;
    // Feedback-free netlists settle in a single topological sweep
    // (builders emit gates in dependency order); MEM entries read
    // the previous evaluation's value, which is exactly what the
    // floating node held.
    int sweep_cap = needsRelaxation ? maxSweeps : 1;
    for (sweeps = 0; sweeps < sweep_cap; ++sweeps) {
        bool changed = false;
        gateEvalCount += n;
        for (size_t idx = 0; idx < n; ++idx) {
            size_t gi = active ? (*active)[idx] : idx;
            const Gate &g = nl.gate(gi);
            uint8_t v;
            if (haveFaults && delayedFlag[gi]) {
                // Output lags: drive the stored value this round.
                v = delayStore[gi];
            } else if (haveFaults && overridePtr[gi]) {
                LogicValue lv = overridePtr[gi]->eval(gateInputs(gi));
                if (lv == LogicValue::Mem)
                    continue; // Floating output: keep previous value.
                v = (lv == LogicValue::One) ? 1 : 0;
            } else {
                v = gateEval(g.kind, gateInputs(gi)) ? 1 : 0;
            }
            if (haveFaults && outputForce[gi] >= 0)
                v = static_cast<uint8_t>(outputForce[gi]);
            if (netVal[g.out] != v) {
                netVal[g.out] = v;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    if (needsRelaxation && sweeps == maxSweeps)
        oscillated = true;
}

void
Evaluator::latchDelayed()
{
    // Latch new pending values of delayed gates for the next round.
    if (haveFaults) {
        for (uint32_t gi : faultSet.delayed) {
            uint8_t pending;
            if (overridePtr[gi]) {
                LogicValue lv = overridePtr[gi]->eval(gateInputs(gi));
                if (lv == LogicValue::Mem)
                    continue; // Keep the old stored value.
                pending = (lv == LogicValue::One) ? 1 : 0;
            } else {
                pending =
                    gateEval(nl.gate(gi).kind, gateInputs(gi)) ? 1 : 0;
            }
            delayStore[gi] = pending;
        }
    }
}

bool
Evaluator::output(size_t index) const
{
    dtann_assert(index < nl.outputs().size(), "output index out of range");
    return netVal[nl.outputs()[index]] != 0;
}

uint64_t
Evaluator::outputBits(size_t count) const
{
    return outputRange(0, count);
}

uint64_t
Evaluator::outputRange(size_t offset, size_t width) const
{
    dtann_assert(offset + width <= nl.outputs().size(),
                 "output range out of bounds");
    dtann_assert(width <= 64, "at most 64 bits per read");
    uint64_t bits = 0;
    for (size_t i = 0; i < width; ++i)
        bits |= static_cast<uint64_t>(netVal[nl.outputs()[offset + i]]) << i;
    return bits;
}

uint64_t
Evaluator::evaluateBits(uint64_t input_bits)
{
    setInputBits(input_bits, nl.inputs().size());
    size_t n_out = std::min<size_t>(nl.outputs().size(), 64);
    if (!cone.valid) {
        evaluate();
        return outputBits(n_out);
    }

    // Pruned path: only the fault cone (plus its fan-in support) is
    // simulated; every output outside the cone is bit-identical to
    // the clean operator, so those bits come from the native model.
    // The cone is only valid for feedback-free netlists, where all
    // fault semantics (MEM retention, delayed outputs, stuck-ats)
    // depend solely on the active gates' nets, which persist across
    // calls exactly as in the full sweep.
    runSweeps(&cone.activeGates);
    latchDelayed();
    uint64_t sim = outputBits(n_out);
    uint64_t clean = cleanFn(input_bits);
    uint64_t bits = (clean & ~cone.outputMask) | (sim & cone.outputMask);
    // Keep granular output() reads consistent: write the clean bits
    // back into the output nets the pruned sweep never touched.
    for (size_t o = 0; o < n_out; ++o) {
        if (!(cone.outputMask >> o & 1))
            netVal[nl.outputs()[o]] = (bits >> o) & 1;
    }
    return bits;
}

} // namespace dtann
