#include "circuit/gate_function.hh"

#include "common/logging.hh"

namespace dtann {

GateFunction::GateFunction(int num_inputs, uint32_t value_mask,
                           uint32_t mem_mask)
    : nIn(num_inputs), valueMask(value_mask), memMask(mem_mask)
{
    dtann_assert(num_inputs >= 0 && num_inputs <= maxInputs,
                 "GateFunction supports up to %d inputs", maxInputs);
    uint32_t legal = (num_inputs == 32) ? ~0u
        : ((1u << (1u << num_inputs)) - 1u);
    dtann_assert((value_mask & ~legal) == 0 && (mem_mask & ~legal) == 0,
                 "mask bits beyond truth table size");
}

GateFunction
GateFunction::fromGateKind(GateKind kind)
{
    int arity = gateArity(kind);
    uint32_t value = 0;
    for (uint32_t in = 0; in < (1u << arity); ++in)
        if (gateEval(kind, in))
            value |= 1u << in;
    return GateFunction(arity, value, 0);
}

bool
GateFunction::matchesKind(GateKind kind) const
{
    return *this == fromGateKind(kind);
}

} // namespace dtann
