/**
 * @file
 * AVX-512 lane-sweep kernels. Compiled with -mavx512f (see
 * circuit/CMakeLists.txt): laneSweepGates<8> becomes one 512-bit
 * zmm operation per logic op. Only reached through laneSweepFor()
 * after a __builtin_cpu_supports("avx512f") check.
 */

#include "circuit/lane_sweep_impl.hh"

namespace dtann {

LaneSweepFn
laneSweepAvx512(size_t words)
{
    switch (words) {
      case 8: return &laneSweepGates<8>;
      default:
        panic("avx512 lane sweep: unsupported width %zu words",
              words);
    }
}

} // namespace dtann
