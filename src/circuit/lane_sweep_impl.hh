/**
 * @file
 * The width-templated gate-sweep kernel behind every LanePlane
 * width. Included by the per-ISA translation units
 * (lane_sweep_generic/avx2/avx512.cc), each of which instantiates
 * laneSweepGates<1/4/8> under its own -m flags so the fixed-trip
 * inner loops over W words vectorize into the widest registers that
 * TU targets. W == 1 reduces exactly to PR 3's single-word sweep —
 * that instantiation (via the generic TU) is the differential
 * oracle the wide paths are tested against.
 */

#ifndef DTANN_CIRCUIT_LANE_SWEEP_IMPL_HH
#define DTANN_CIRCUIT_LANE_SWEEP_IMPL_HH

#include "circuit/lane_plane.hh"
#include "common/logging.hh"

namespace dtann {

template <size_t W>
void
laneSweepGates(const LaneSweepCtx &ctx)
{
    for (size_t idx = 0; idx < ctx.count; ++idx) {
        size_t gi = ctx.active ? ctx.active[idx] : idx;
        const Gate &g = ctx.gates[gi];
        int arity = g.arity();
        // Inputs are read in place: every gate kind is element-wise
        // per lane, so out[w] depends only on in*[w] and even an
        // output net aliasing an input net stays correct. Copying
        // the planes to the stack here would roughly double the
        // kernel's memory traffic at W == 8; only a forced (stuck)
        // input needs a private plane.
        const uint64_t *src[4] = {};
        for (int i = 0; i < arity; ++i)
            src[i] = ctx.netLanes + static_cast<size_t>(g.in[i]) * W;
        uint64_t forced[4][W];
        if (ctx.haveFaults) {
            const int8_t *force = ctx.inputForce + gi * 4;
            for (int i = 0; i < arity; ++i) {
                if (force[i] >= 0) {
                    uint64_t v = force[i] ? ~0ull : 0;
                    for (size_t w = 0; w < W; ++w)
                        forced[i][w] = v;
                    src[i] = forced[i];
                }
            }
        }
        const uint64_t *a = src[0], *b = src[1], *c = src[2],
                       *d = src[3];
        uint64_t out[W];
        if (ctx.haveFaults && ctx.valuePlane[gi] != kLaneNoOverride) {
            // Truth-table mux: for each combination whose table
            // entry is One, select the lanes presenting it.
            uint32_t plane = ctx.valuePlane[gi];
            for (size_t w = 0; w < W; ++w)
                out[w] = 0;
            for (uint32_t combo = 0; combo < (1u << arity); ++combo) {
                if (!(plane >> combo & 1))
                    continue;
                uint64_t sel[W];
                for (size_t w = 0; w < W; ++w)
                    sel[w] = ~0ull;
                for (int i = 0; i < arity; ++i) {
                    const uint64_t *v = src[i];
                    if (combo >> i & 1) {
                        for (size_t w = 0; w < W; ++w)
                            sel[w] &= v[w];
                    } else {
                        for (size_t w = 0; w < W; ++w)
                            sel[w] &= ~v[w];
                    }
                }
                for (size_t w = 0; w < W; ++w)
                    out[w] |= sel[w];
            }
        } else {
            switch (g.kind) {
              case GateKind::Const0:
                for (size_t w = 0; w < W; ++w)
                    out[w] = 0;
                break;
              case GateKind::Const1:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~0ull;
                break;
              case GateKind::Not:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~a[w];
                break;
              case GateKind::Nand2:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~(a[w] & b[w]);
                break;
              case GateKind::Nand3:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~(a[w] & b[w] & c[w]);
                break;
              case GateKind::Nor2:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~(a[w] | b[w]);
                break;
              case GateKind::Nor3:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~(a[w] | b[w] | c[w]);
                break;
              case GateKind::Aoi21:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~((a[w] & b[w]) | c[w]);
                break;
              case GateKind::Aoi22:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~((a[w] & b[w]) | (c[w] & d[w]));
                break;
              case GateKind::Oai21:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~((a[w] | b[w]) & c[w]);
                break;
              case GateKind::Oai22:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~((a[w] | b[w]) & (c[w] | d[w]));
                break;
              case GateKind::CarryN:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~((a[w] & b[w]) | (c[w] & (a[w] | b[w])));
                break;
              case GateKind::MirrorSumN:
                for (size_t w = 0; w < W; ++w)
                    out[w] = ~((a[w] & b[w] & c[w]) |
                               (d[w] & (a[w] | b[w] | c[w])));
                break;
              default:
                panic("lane sweep: bad gate kind");
            }
        }
        if (ctx.haveFaults && ctx.outputForce[gi] >= 0) {
            uint64_t v = ctx.outputForce[gi] ? ~0ull : 0;
            for (size_t w = 0; w < W; ++w)
                out[w] = v;
        }
        uint64_t *dst =
            ctx.netLanes + static_cast<size_t>(g.out) * W;
        for (size_t w = 0; w < W; ++w)
            dst[w] = out[w];
    }
}

} // namespace dtann

#endif // DTANN_CIRCUIT_LANE_SWEEP_IMPL_HH
