/**
 * @file
 * Reconstructed gate behaviour under defects.
 *
 * A defective CMOS gate can stop being a pure boolean function: when
 * both channel networks are simultaneously conducting the ground
 * path dominates (output 0), and when neither conducts the output
 * node floats and retains its previous value (memory effect). The
 * B-block model of Jain & Agrawal captures this with a third logic
 * value, MEM. A GateFunction is a truth table over {0, 1, MEM}.
 */

#ifndef DTANN_CIRCUIT_GATE_FUNCTION_HH
#define DTANN_CIRCUIT_GATE_FUNCTION_HH

#include <cstdint>

#include "circuit/gate.hh"

namespace dtann {

/** Three-valued output of a possibly defective gate. */
enum class LogicValue : uint8_t {
    Zero = 0,
    One = 1,
    Mem = 2, ///< output floats; retain the previous value
};

/**
 * Truth table of a (possibly defective) gate over up to 5 inputs.
 *
 * Encoded as two bit masks indexed by the packed input combination:
 * a set memMask bit means MEM; otherwise the valueMask bit is the
 * output.
 */
class GateFunction
{
  public:
    /** Maximum supported inputs. */
    static constexpr int maxInputs = 5;

    GateFunction() : nIn(0), valueMask(0), memMask(0) {}

    /**
     * Direct construction from masks.
     *
     * @param num_inputs number of gate inputs (<= maxInputs)
     * @param value_mask output bit per input combination
     * @param mem_mask MEM flag per input combination
     */
    GateFunction(int num_inputs, uint32_t value_mask, uint32_t mem_mask);

    /** The defect-free truth table of a gate kind. */
    static GateFunction fromGateKind(GateKind kind);

    /** Evaluate for a packed input combination. */
    LogicValue
    eval(uint32_t inputs) const
    {
        uint32_t bit = 1u << inputs;
        if (memMask & bit)
            return LogicValue::Mem;
        return (valueMask & bit) ? LogicValue::One : LogicValue::Zero;
    }

    /** Number of inputs. */
    int numInputs() const { return nIn; }

    /** True when some input combination floats the output. */
    bool hasMem() const { return memMask != 0; }

    /** True when this equals the defect-free function of @p kind. */
    bool matchesKind(GateKind kind) const;

    bool operator==(const GateFunction &o) const = default;

  private:
    int nIn;
    uint32_t valueMask;
    uint32_t memMask;
};

} // namespace dtann

#endif // DTANN_CIRCUIT_GATE_FUNCTION_HH
