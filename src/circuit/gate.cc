#include "circuit/gate.hh"

#include "common/logging.hh"

namespace dtann {

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::Const0:
      case GateKind::Const1:
        return 0;
      case GateKind::Not:
        return 1;
      case GateKind::Nand2:
      case GateKind::Nor2:
        return 2;
      case GateKind::Nand3:
      case GateKind::Nor3:
      case GateKind::Aoi21:
      case GateKind::Oai21:
      case GateKind::CarryN:
        return 3;
      case GateKind::Aoi22:
      case GateKind::Oai22:
      case GateKind::MirrorSumN:
        return 4;
      default:
        panic("gateArity: bad gate kind %d", static_cast<int>(kind));
    }
}

const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::Const0: return "CONST0";
      case GateKind::Const1: return "CONST1";
      case GateKind::Not: return "NOT";
      case GateKind::Nand2: return "NAND2";
      case GateKind::Nand3: return "NAND3";
      case GateKind::Nor2: return "NOR2";
      case GateKind::Nor3: return "NOR3";
      case GateKind::Aoi21: return "AOI21";
      case GateKind::Aoi22: return "AOI22";
      case GateKind::Oai21: return "OAI21";
      case GateKind::Oai22: return "OAI22";
      case GateKind::CarryN: return "CARRYN";
      case GateKind::MirrorSumN: return "MSUMN";
      default: return "?";
    }
}

bool
gateEval(GateKind kind, uint32_t in)
{
    const bool a = in & 1, b = in & 2, c = in & 4, d = in & 8;
    switch (kind) {
      case GateKind::Const0: return false;
      case GateKind::Const1: return true;
      case GateKind::Not: return !a;
      case GateKind::Nand2: return !(a && b);
      case GateKind::Nand3: return !(a && b && c);
      case GateKind::Nor2: return !(a || b);
      case GateKind::Nor3: return !(a || b || c);
      case GateKind::Aoi21: return !((a && b) || c);
      case GateKind::Aoi22: return !((a && b) || (c && d));
      case GateKind::Oai21: return !((a || b) && c);
      case GateKind::Oai22: return !((a || b) && (c || d));
      case GateKind::CarryN: return !((a && b) || (c && (a || b)));
      case GateKind::MirrorSumN:
        return !((a && b && c) || (d && (a || b || c)));
      default:
        panic("gateEval: bad gate kind %d", static_cast<int>(kind));
    }
}

int
gateTransistorCount(GateKind kind)
{
    switch (kind) {
      case GateKind::Const0:
      case GateKind::Const1:
        return 0;
      case GateKind::CarryN:
        return 10; // 5 NMOS + 5 PMOS mirror networks.
      case GateKind::MirrorSumN:
        return 14; // 7 NMOS + 7 PMOS mirror networks.
      default:
        return 2 * gateArity(kind);
    }
}

} // namespace dtann
