/**
 * @file
 * CMOS logic gate primitives.
 *
 * Netlists are restricted to gates that exist as single static CMOS
 * stages (one P pull-up network, one N pull-down network), so every
 * gate has a concrete transistor schematic for defect injection.
 * Composite functions (AND, OR, XOR, adders, latches) are built from
 * these primitives by the RTL builders.
 *
 * CarryN and MirrorSumN are the complex gates of the classic 28T
 * "mirror" full adder; the paper stresses that transistor faults in
 * such complex gates are poorly captured by gate-level stuck-at
 * models.
 */

#ifndef DTANN_CIRCUIT_GATE_HH
#define DTANN_CIRCUIT_GATE_HH

#include <cstdint>

namespace dtann {

/** Supported gate kinds. */
enum class GateKind : uint8_t {
    Const0,     ///< constant 0 (no transistors, not a fault site)
    Const1,     ///< constant 1
    Not,        ///< inverter
    Nand2,
    Nand3,
    Nor2,
    Nor3,
    Aoi21,      ///< !((a & b) | c)
    Aoi22,      ///< !((a & b) | (c & d))
    Oai21,      ///< !((a | b) & c)
    Oai22,      ///< !((a | b) & (c | d))
    CarryN,     ///< mirror-adder carry: !((a & b) | (c & (a | b)))
    MirrorSumN, ///< mirror-adder sum: !((a&b&c) | (d & (a|b|c)))
    NumKinds,
};

/** Number of inputs of a gate kind. */
int gateArity(GateKind kind);

/** Human-readable gate name. */
const char *gateName(GateKind kind);

/**
 * Defect-free combinational evaluation.
 *
 * @param inputs input bits packed LSB-first (input 0 is bit 0)
 * @return the gate output bit
 */
bool gateEval(GateKind kind, uint32_t inputs);

/**
 * Transistor count of the static CMOS implementation (2 per input
 * for fully complementary gates; 0 for constants).
 */
int gateTransistorCount(GateKind kind);

} // namespace dtann

#endif // DTANN_CIRCUIT_GATE_HH
