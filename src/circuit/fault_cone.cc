#include "circuit/fault_cone.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

FaultCone
computeFaultCone(const Netlist &nl, const FaultSet &faults)
{
    FaultCone cone;
    if (faults.empty() || nl.hasFeedback() ||
        nl.inputs().size() > 64 || nl.outputs().size() > 64)
        return cone;

    size_t n_gates = nl.numGates();
    size_t n_nets = nl.numNets();

    // driver[net]: index of the gate driving the net (or none).
    constexpr uint32_t noDriver = UINT32_MAX;
    std::vector<uint32_t> driver(n_nets, noDriver);
    for (size_t gi = 0; gi < n_gates; ++gi)
        driver[nl.gate(gi).out] = static_cast<uint32_t>(gi);

    // consumers[net]: gates reading the net.
    std::vector<std::vector<uint32_t>> consumers(n_nets);
    for (size_t gi = 0; gi < n_gates; ++gi) {
        const Gate &g = nl.gate(gi);
        for (int i = 0; i < g.arity(); ++i)
            consumers[g.in[i]].push_back(static_cast<uint32_t>(gi));
    }

    // Seed: every gate whose behaviour a fault can alter.
    std::vector<uint8_t> inCone(n_gates, 0);
    std::vector<uint32_t> work;
    auto seed = [&](uint32_t gi) {
        dtann_assert(gi < n_gates, "fault on unknown gate %u", gi);
        if (!inCone[gi]) {
            inCone[gi] = 1;
            work.push_back(gi);
        }
    };
    for (const auto &[gi, fn] : faults.overrides)
        seed(gi);
    for (uint32_t gi : faults.delayed)
        seed(gi);
    for (const StuckAtFault &f : faults.stuckAt)
        seed(f.gate);

    // Forward closure: anything reading a cone net joins the cone.
    while (!work.empty()) {
        uint32_t gi = work.back();
        work.pop_back();
        for (uint32_t consumer : consumers[nl.gate(gi).out]) {
            if (!inCone[consumer]) {
                inCone[consumer] = 1;
                work.push_back(consumer);
            }
        }
    }

    // Backward closure: cone gates read clean support nets whose
    // drivers must still be simulated to have a value at all.
    std::vector<uint8_t> active = inCone;
    for (size_t gi = 0; gi < n_gates; ++gi)
        if (inCone[gi])
            work.push_back(static_cast<uint32_t>(gi));
    while (!work.empty()) {
        uint32_t gi = work.back();
        work.pop_back();
        const Gate &g = nl.gate(gi);
        for (int i = 0; i < g.arity(); ++i) {
            uint32_t d = driver[g.in[i]];
            if (d != noDriver && !active[d]) {
                active[d] = 1;
                work.push_back(d);
            }
        }
    }

    cone.valid = true;
    for (size_t gi = 0; gi < n_gates; ++gi) {
        if (active[gi])
            cone.activeGates.push_back(static_cast<uint32_t>(gi));
        if (inCone[gi])
            ++cone.coneSize;
    }
    for (size_t o = 0; o < nl.outputs().size(); ++o) {
        uint32_t d = driver[nl.outputs()[o]];
        if (d != noDriver && inCone[d])
            cone.outputMask |= 1ull << o;
    }
    return cone;
}

} // namespace dtann
