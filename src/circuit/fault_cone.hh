/**
 * @file
 * Fault-cone analysis for pruned faulty-netlist evaluation.
 *
 * Only the fanout cone of the faulty gates can differ from the
 * clean circuit; every other net is bit-identical to the defect-free
 * evaluation. A pruned evaluator therefore needs to simulate just
 * the cone plus its transitive fan-in support (the clean gates whose
 * values the cone reads), and can splice the remaining output bits
 * from a native (fixed-point) model of the clean operator. For the
 * 1-5 defect counts the campaigns inject, the support set is a small
 * fraction of a ~2k-gate operator netlist.
 */

#ifndef DTANN_CIRCUIT_FAULT_CONE_HH
#define DTANN_CIRCUIT_FAULT_CONE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/faults.hh"
#include "circuit/netlist.hh"

namespace dtann {

/**
 * Native model of a clean operator: maps packed primary-input bits
 * to packed primary-output bits, bit-identical to evaluating the
 * defect-free netlist (e.g. a fixed-point multiply for a multiplier
 * netlist). Pruned evaluators splice the output bits outside the
 * fault cone from this function instead of simulating the gates
 * that produce them.
 */
using CleanFn = std::function<uint64_t(uint64_t)>;

/** Result of the cone analysis over one (netlist, fault set). */
struct FaultCone
{
    /**
     * True when pruned evaluation is applicable: the netlist is
     * feedback-free (gate order is topological, one sweep settles),
     * has at most 64 primary outputs (so the affected set packs into
     * an output mask) and at least one fault was given.
     */
    bool valid = false;

    /**
     * Gates that must be simulated, ascending (= topological)
     * order: the fanout cone of the faulty gates plus the cone's
     * transitive fan-in support.
     */
    std::vector<uint32_t> activeGates;

    /** Bit o set when primary output o lies inside the fanout cone
     *  (only these bits may differ from the clean operator). */
    uint64_t outputMask = 0;

    /** Number of gates in the fanout cone proper (subset of
     *  activeGates; for diagnostics). */
    size_t coneSize = 0;
};

/**
 * Compute the fault cone of @p faults over @p nl.
 *
 * Returns an invalid cone (valid == false) when the fault set is
 * empty, the netlist has feedback, or it has more than 64 primary
 * outputs; callers then evaluate the full netlist.
 */
FaultCone computeFaultCone(const Netlist &nl, const FaultSet &faults);

} // namespace dtann

#endif // DTANN_CIRCUIT_FAULT_CONE_HH
