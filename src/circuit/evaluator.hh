/**
 * @file
 * Stateful netlist evaluation.
 *
 * The evaluator resolves a netlist by relaxation: it sweeps gates in
 * construction order until no net changes. Builders emit gates
 * topologically, so defect-free combinational netlists converge in
 * one sweep; feedback structures (cross-coupled NAND latches) and
 * faulty gates with MEM entries converge in a few. Net values
 * persist across evaluations, which is what gives faulty gates their
 * memory behaviour.
 */

#ifndef DTANN_CIRCUIT_EVALUATOR_HH
#define DTANN_CIRCUIT_EVALUATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/fault_cone.hh"
#include "circuit/faults.hh"
#include "circuit/netlist.hh"

namespace dtann {

/** Evaluates a Netlist, optionally with injected faults. */
class Evaluator
{
  public:
    /**
     * @param netlist the circuit; must outlive the evaluator
     * @param faults faults to apply (copied)
     * @param clean optional native model of the defect-free operator
     *        (packed inputs -> packed outputs). When given and the
     *        netlist is feedback-free, evaluateBits() simulates only
     *        the fault cone and splices all other output bits from
     *        this model instead of sweeping every gate.
     */
    explicit Evaluator(const Netlist &netlist, FaultSet faults = {},
                       CleanFn clean = {});

    // Internal tables point into the owned fault set; keep the
    // evaluator pinned in place.
    Evaluator(const Evaluator &) = delete;
    Evaluator &operator=(const Evaluator &) = delete;

    /** Clear all state (nets and delayed-gate stores) to 0. */
    void reset();

    /** Set primary input @p index (bus order) to @p value. */
    void setInput(size_t index, bool value);

    /** Set the first @p count primary inputs from packed bits. */
    void setInputBits(uint64_t bits, size_t count);

    /** Set @p width inputs starting at @p offset from packed bits. */
    void setInputRange(size_t offset, size_t width, uint64_t bits);

    /** Propagate values until stable (or the sweep cap). */
    void evaluate();

    /** Read primary output @p index (bus order). */
    bool output(size_t index) const;

    /** Read the first @p count primary outputs as packed bits. */
    uint64_t outputBits(size_t count) const;

    /** Read @p width outputs starting at @p offset as packed bits. */
    uint64_t outputRange(size_t offset, size_t width) const;

    /** Convenience: set all inputs, evaluate, return all outputs. */
    uint64_t evaluateBits(uint64_t input_bits);

    /** Number of sweeps used by the last evaluate(). */
    int lastSweeps() const { return sweeps; }

    /** True when the last evaluate() hit the sweep cap. */
    bool lastOscillated() const { return oscillated; }

    /** The netlist being evaluated. */
    const Netlist &netlist() const { return nl; }

    /** The installed fault set. */
    const FaultSet &faults() const { return faultSet; }

    /** True when evaluateBits() runs the cone-pruned path. */
    bool conePruned() const { return cone.valid; }

    /** The fault-cone analysis (valid only when conePruned()). */
    const FaultCone &faultCone() const { return cone; }

    /** Total scalar gate evaluations (gates x sweeps) so far. */
    uint64_t gateEvals() const { return gateEvalCount; }

  private:
    const Netlist &nl;
    FaultSet faultSet;
    CleanFn cleanFn;
    FaultCone cone;

    /** Per-net current value. */
    std::vector<uint8_t> netVal;
    /** Per-gate stored output for delayed gates (index aligned). */
    std::vector<uint8_t> delayStore;
    /** Per-gate override pointer (null when clean), by gate index. */
    std::vector<const GateFunction *> overridePtr;
    /** Per-gate delayed flag. */
    std::vector<uint8_t> delayedFlag;
    /** Per-gate, per-input stuck value (-1 = none). */
    std::vector<std::array<int8_t, 4>> inputForce;
    /** Per-gate output stuck value (-1 = none). */
    std::vector<int8_t> outputForce;
    /** True when any fault table is populated. */
    bool haveFaults;
    /** True when the netlist has feedback and needs relaxation. */
    bool needsRelaxation;

    int sweeps = 0;
    bool oscillated = false;
    uint64_t gateEvalCount = 0;

    /** Compute the (fault-adjusted) packed inputs of gate @p gi. */
    uint32_t gateInputs(size_t gi) const;

    /** Sweep @p active gates (all gates when null) until stable. */
    void runSweeps(const std::vector<uint32_t> *active);

    /** Latch pending values of delayed gates for the next round. */
    void latchDelayed();
};

} // namespace dtann

#endif // DTANN_CIRCUIT_EVALUATOR_HH
