/**
 * @file
 * Baseline lane-sweep kernels: no ISA flags beyond the project
 * default, so they run on any machine. The W > 1 widths still win
 * over W == 1 by amortizing per-gate decode over W words (an
 * unrolled uint64_t[4] plane), and the compiler may vectorize them
 * with whatever the default -m flags allow.
 */

#include "circuit/lane_sweep_impl.hh"

namespace dtann {

LaneSweepFn
laneSweepGeneric(size_t words)
{
    switch (words) {
      case 1: return &laneSweepGates<1>;
      case 4: return &laneSweepGates<4>;
      case 8: return &laneSweepGates<8>;
      default:
        panic("lane sweep: unsupported width %zu words", words);
    }
}

} // namespace dtann
