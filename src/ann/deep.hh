/**
 * @file
 * Deep (multi-hidden-layer) feed-forward networks.
 *
 * The paper's future work targets Deep Networks ("ANNs made of a
 * large number of wide layers ... recently shown to outperform
 * SVMs") mapped onto the array via time-multiplexing. This module
 * holds the float reference for an arbitrary stack of sigmoid
 * layers on the unified ForwardModel hierarchy; layer stacks are
 * described by DeepTopology/DeepWeights (ann/mlp.hh) and trained by
 * the one staged Trainer (ann/trainer.hh). The accelerator-backed
 * counterpart lives in core/deep_mux.hh.
 */

#ifndef DTANN_ANN_DEEP_HH
#define DTANN_ANN_DEEP_HH

#include "ann/mlp.hh"

namespace dtann {

/** Double-precision reference deep network (exact sigmoid). */
class FloatDeepMlp : public ForwardModel
{
  public:
    explicit FloatDeepMlp(DeepTopology topo)
        : topo(std::move(topo)), weights(this->topo)
    {
    }

    /** 2-layer view: {inputs, last hidden width, outputs}. */
    MlpTopology topology() const override;
    DeepTopology layerTopology() const override { return topo; }
    void setLayerWeights(const DeepWeights &w) override;
    Activations forward(std::span<const double> input) override;
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override
    {
        return rowLoopBatch(inputs); // native arithmetic: a row loop
                                     // is already the fastest path
    }

  private:
    DeepTopology topo;
    DeepWeights weights;
};

} // namespace dtann

#endif // DTANN_ANN_DEEP_HH
