/**
 * @file
 * Deep (multi-hidden-layer) feed-forward networks.
 *
 * The paper's future work targets Deep Networks ("ANNs made of a
 * large number of wide layers ... recently shown to outperform
 * SVMs") mapped onto the array via time-multiplexing. This module
 * generalizes the 2-layer MLP: an arbitrary stack of sigmoid
 * layers, its float reference model, and back-propagation through
 * all layers. The accelerator-backed counterpart lives in
 * core/deep_mux.hh.
 */

#ifndef DTANN_ANN_DEEP_HH
#define DTANN_ANN_DEEP_HH

#include <span>
#include <vector>

#include "common/rng.hh"
#include "data/dataset.hh"

namespace dtann {

/** Layer widths, input first, output last (>= 3 entries). */
struct DeepTopology
{
    std::vector<int> layers;

    int inputs() const { return layers.front(); }
    int outputs() const { return layers.back(); }
    /** Number of weight matrices (= layers.size() - 1). */
    size_t stages() const { return layers.size() - 1; }

    bool operator==(const DeepTopology &o) const = default;
};

/** Dense weights: stage s maps layer s to layer s+1, bias last. */
class DeepWeights
{
  public:
    DeepWeights() = default;
    explicit DeepWeights(DeepTopology topo);

    const DeepTopology &topology() const { return topo; }

    /** Weight from unit @p i of layer @p s (bias when i equals
     *  that layer's width) to unit @p j of layer s+1. @{ */
    double &at(size_t s, int j, int i);
    double at(size_t s, int j, int i) const;
    /** @} */

    void initRandom(Rng &rng, double range = 0.5);

    size_t count() const;

  private:
    DeepTopology topo;
    std::vector<std::vector<double>> stages_;
};

/** Forward path of a deep network. */
class DeepForwardModel
{
  public:
    virtual ~DeepForwardModel() = default;

    virtual DeepTopology topology() const = 0;
    virtual void setWeights(const DeepWeights &w) = 0;

    /**
     * Run one row; returns post-activation values of every layer
     * after the input (activations[s] is layer s+1's output).
     */
    virtual std::vector<std::vector<double>> forwardAll(
        std::span<const double> input) = 0;
};

/** Double-precision reference (exact sigmoid). */
class FloatDeepMlp : public DeepForwardModel
{
  public:
    explicit FloatDeepMlp(DeepTopology topo)
        : topo(std::move(topo)), weights(this->topo)
    {
    }

    DeepTopology topology() const override { return topo; }
    void setWeights(const DeepWeights &w) override;
    std::vector<std::vector<double>> forwardAll(
        std::span<const double> input) override;

  private:
    DeepTopology topo;
    DeepWeights weights;
};

/** Back-propagation through an arbitrary layer stack. */
class DeepTrainer
{
  public:
    /**
     * @param epochs training epochs
     * @param learning_rate step size
     * @param momentum per-weight momentum factor
     */
    DeepTrainer(int epochs, double learning_rate, double momentum)
        : epochs(epochs), learningRate(learning_rate),
          momentum(momentum)
    {
    }

    /** Train @p model on @p train_set (MSE, one-hot targets). */
    DeepWeights train(DeepForwardModel &model, const Dataset &train_set,
                      Rng &rng, const DeepWeights *init = nullptr) const;

    /** Classification accuracy (argmax over the task's classes). */
    static double accuracy(DeepForwardModel &model,
                           const Dataset &test_set);

  private:
    int epochs;
    double learningRate;
    double momentum;
};

} // namespace dtann

#endif // DTANN_ANN_DEEP_HH
