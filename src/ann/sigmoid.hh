/**
 * @file
 * Activation functions: exact logistic sigmoid and its 16-segment
 * piecewise-linear approximation (the hardware's Fig 4 unit).
 */

#ifndef DTANN_ANN_SIGMOID_HH
#define DTANN_ANN_SIGMOID_HH

#include "common/fixed_point.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {

/** Exact logistic sigmoid 1 / (1 + e^-x). */
double logistic(double x);

/** Derivative of the logistic expressed via its output y. */
inline double logisticDerivFromY(double y) { return y * (1.0 - y); }

/**
 * The hardware's 16-segment PWL coefficient table over [-8, 8),
 * segment i interpolating the logistic between integer breakpoints.
 */
const PwlTable &logisticPwlTable();

/** Evaluate the PWL approximation in double precision. */
double logisticPwl(double x);

/**
 * Evaluate the PWL approximation with the hardware's exact Q6.10
 * semantics (what a clean activation unit computes).
 */
Fix16 logisticPwlFix(Fix16 x);

} // namespace dtann

#endif // DTANN_ANN_SIGMOID_HH
