#include "ann/fixed_mlp.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

FixedMlp::FixedMlp(MlpTopology t)
    : topo(t),
      hiddenW(static_cast<size_t>(t.hidden) *
              static_cast<size_t>(t.inputs + 1)),
      outputW(static_cast<size_t>(t.outputs) *
              static_cast<size_t>(t.hidden + 1)),
      hiddenAct(static_cast<size_t>(t.hidden))
{
}

void
FixedMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            hiddenW[static_cast<size_t>(j) *
                        static_cast<size_t>(topo.inputs + 1) +
                    static_cast<size_t>(i)] =
                Fix16::fromDouble(w.hid(j, i));
    for (int k = 0; k < topo.outputs; ++k)
        for (int j = 0; j <= topo.hidden; ++j)
            outputW[static_cast<size_t>(k) *
                        static_cast<size_t>(topo.hidden + 1) +
                    static_cast<size_t>(j)] =
                Fix16::fromDouble(w.out(k, j));
}

Fix16
FixedMlp::hidWeight(int j, int i) const
{
    return hiddenW[static_cast<size_t>(j) *
                       static_cast<size_t>(topo.inputs + 1) +
                   static_cast<size_t>(i)];
}

Fix16
FixedMlp::outWeight(int k, int j) const
{
    return outputW[static_cast<size_t>(k) *
                       static_cast<size_t>(topo.hidden + 1) +
                   static_cast<size_t>(j)];
}

std::vector<Fix16>
FixedMlp::forwardFix(std::span<const Fix16> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs,
                 "input arity mismatch");
    const Fix16 one = Fix16::fromDouble(1.0);

    for (int j = 0; j < topo.hidden; ++j) {
        Acc24 acc;
        for (int i = 0; i < topo.inputs; ++i)
            acc = Acc24::hwAdd(
                acc, Acc24::fromFix16(Fix16::hwMul(
                         hidWeight(j, i), input[static_cast<size_t>(i)])));
        acc = Acc24::hwAdd(
            acc,
            Acc24::fromFix16(Fix16::hwMul(hidWeight(j, topo.inputs), one)));
        hiddenAct[static_cast<size_t>(j)] =
            logisticPwlFix(acc.toFix16Sat());
    }

    std::vector<Fix16> out(static_cast<size_t>(topo.outputs));
    for (int k = 0; k < topo.outputs; ++k) {
        Acc24 acc;
        for (int j = 0; j < topo.hidden; ++j)
            acc = Acc24::hwAdd(
                acc, Acc24::fromFix16(Fix16::hwMul(
                         outWeight(k, j), hiddenAct[static_cast<size_t>(j)])));
        acc = Acc24::hwAdd(
            acc,
            Acc24::fromFix16(Fix16::hwMul(outWeight(k, topo.hidden), one)));
        out[static_cast<size_t>(k)] = logisticPwlFix(acc.toFix16Sat());
    }
    return out;
}

Activations
FixedMlp::forward(std::span<const double> input)
{
    std::vector<Fix16> fix_in(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        fix_in[i] = Fix16::fromDouble(input[i]);
    std::vector<Fix16> out = forwardFix(fix_in);

    Activations act(hiddenAct.size(), out.size());
    for (size_t j = 0; j < hiddenAct.size(); ++j)
        act.hidden()[j] = hiddenAct[j].toDouble();
    for (size_t k = 0; k < out.size(); ++k)
        act.output()[k] = out[k].toDouble();
    return act;
}

} // namespace dtann
