/**
 * @file
 * k-fold cross-validation (the paper uses 10-fold everywhere).
 */

#ifndef DTANN_ANN_CROSSVAL_HH
#define DTANN_ANN_CROSSVAL_HH

#include "ann/trainer.hh"
#include "common/stats.hh"

namespace dtann {

/** Cross-validation outcome. */
struct CrossValResult
{
    double meanAccuracy = 0.0;
    double stddev = 0.0;
    int folds = 0;
};

/**
 * k-fold cross-validate @p model on @p ds.
 *
 * The model is retrained per fold (its injected defects, if any,
 * persist across folds, matching the paper's protocol where "the N
 * defects of a network remain the same while the network is
 * re-trained and tested").
 *
 * @param model the forward path (re-trained in place per fold)
 * @param ds full dataset (will be used fold-wise)
 * @param k number of folds
 * @param trainer training configuration
 * @param rng randomness for shuffling/initialization
 * @param init warm-start weights per fold (retraining scenario)
 */
CrossValResult crossValidate(ForwardModel &model, const Dataset &ds,
                             int k, const Trainer &trainer, Rng &rng,
                             const MlpWeights *init = nullptr);

} // namespace dtann

#endif // DTANN_ANN_CROSSVAL_HH
