#include "ann/trainer.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

DeepWeights
Trainer::trainLayers(ForwardModel &model, const Dataset &train_set,
                     Rng &rng, const DeepWeights *init) const
{
    DeepTopology topo = model.layerTopology();
    dtann_assert(topo.inputs() == train_set.numAttributes,
                 "dataset arity mismatch");
    dtann_assert(topo.outputs() >= train_set.numClasses,
                 "too few outputs for dataset classes");

    DeepWeights w(topo);
    if (init) {
        dtann_assert(init->topology() == topo,
                     "init weight topology mismatch");
        w = *init;
    } else {
        w.initRandom(rng);
    }
    DeepWeights delta(topo); // momentum memory, zero-initialized

    // Pruned synapses stay at exactly zero: cleared out of the
    // warm start, and re-cleared after every update so neither the
    // gradient step nor the momentum memory can revive them.
    auto applyPruneMask = [&] {
        for (const PrunedSynapse &p : prune) {
            dtann_assert(p.stage < topo.stages() && p.neuron >= 0 &&
                             p.neuron < topo.layers[p.stage + 1] &&
                             p.input >= 0 &&
                             p.input <= topo.layers[p.stage],
                         "prune mask out of topology range");
            w.at(p.stage, p.neuron, p.input) = 0.0;
            delta.at(p.stage, p.neuron, p.input) = 0.0;
        }
    };
    applyPruneMask();
    model.setLayerWeights(w);

    // Per-layer gradient buffers.
    std::vector<std::vector<double>> grad(topo.stages());
    for (size_t s = 0; s < topo.stages(); ++s)
        grad[s].resize(static_cast<size_t>(topo.layers[s + 1]));

    runTrainingEpochs(
        model, train_set, rng, hyper.epochs, [&](size_t n) {
            const auto &x = train_set.rows[n];
            Activations act = model.forward(x);
            const auto &acts = act.layers;

            // Output-layer gradients from post-activation values.
            size_t last = topo.stages() - 1;
            for (int k = 0; k < topo.outputs(); ++k) {
                double y = acts[last][static_cast<size_t>(k)];
                double t = k == train_set.labels[n] ? 1.0 : 0.0;
                grad[last][static_cast<size_t>(k)] =
                    logisticDerivFromY(y) * (t - y);
            }
            // Back-propagate through the hidden stages.
            for (size_t s = last; s-- > 0;) {
                int width = topo.layers[s + 1];
                int above = topo.layers[s + 2];
                for (int j = 0; j < width; ++j) {
                    double back = 0.0;
                    for (int k = 0; k < above; ++k)
                        back += grad[s + 1][static_cast<size_t>(k)] *
                            w.at(s + 1, k, j);
                    grad[s][static_cast<size_t>(j)] =
                        logisticDerivFromY(
                            acts[s][static_cast<size_t>(j)]) *
                        back;
                }
            }
            // Updates with momentum; layer s's input is acts[s-1]
            // (or the row itself for s = 0).
            for (size_t s = 0; s < topo.stages(); ++s) {
                int fanin = topo.layers[s];
                int width = topo.layers[s + 1];
                for (int j = 0; j < width; ++j) {
                    double g = grad[s][static_cast<size_t>(j)];
                    for (int i = 0; i < fanin; ++i) {
                        double in_val = s == 0
                            ? x[static_cast<size_t>(i)]
                            : acts[s - 1][static_cast<size_t>(i)];
                        double d = hyper.learningRate * g * in_val +
                            hyper.momentum * delta.at(s, j, i);
                        delta.at(s, j, i) = d;
                        w.at(s, j, i) += d;
                    }
                    double db = hyper.learningRate * g +
                        hyper.momentum * delta.at(s, j, fanin);
                    delta.at(s, j, fanin) = db;
                    w.at(s, j, fanin) += db;
                }
            }
            applyPruneMask();
            model.setLayerWeights(w);
        });
    return w;
}

MlpWeights
Trainer::train(ForwardModel &model, const Dataset &train_set,
               Rng &rng, const MlpWeights *init) const
{
    if (init) {
        DeepWeights init_layers = toLayerWeights(*init);
        return toMlpWeights(
            trainLayers(model, train_set, rng, &init_layers));
    }
    return toMlpWeights(trainLayers(model, train_set, rng));
}

} // namespace dtann
