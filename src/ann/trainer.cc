#include "ann/trainer.hh"

#include <numeric>

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

int
argmax(std::span<const double> values)
{
    dtann_assert(!values.empty(), "argmax of empty span");
    size_t best = 0;
    for (size_t i = 1; i < values.size(); ++i)
        if (values[i] > values[best])
            best = i;
    return static_cast<int>(best);
}

MlpWeights
Trainer::train(ForwardModel &model, const Dataset &train_set,
               Rng &rng, const MlpWeights *init) const
{
    MlpTopology topo = model.topology();
    dtann_assert(topo.inputs == train_set.numAttributes,
                 "dataset arity mismatch");
    dtann_assert(topo.outputs >= train_set.numClasses,
                 "too few outputs for dataset classes");

    MlpWeights w(topo);
    if (init) {
        dtann_assert(init->topology() == topo,
                     "init weight topology mismatch");
        w = *init;
    } else {
        w.initRandom(rng);
    }
    MlpWeights delta(topo); // momentum memory, zero-initialized
    model.setWeights(w);

    std::vector<size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<double> target(static_cast<size_t>(topo.outputs));
    std::vector<double> delta_out(static_cast<size_t>(topo.outputs));
    std::vector<double> delta_hid(static_cast<size_t>(topo.hidden));

    for (int epoch = 0; epoch < hyper.epochs; ++epoch) {
        rng.shuffle(order);
        for (size_t n : order) {
            const auto &x = train_set.rows[n];
            Activations act = model.forward(x);

            std::fill(target.begin(), target.end(), 0.0);
            target[static_cast<size_t>(train_set.labels[n])] = 1.0;

            // Output-layer gradients from post-activation values.
            for (int k = 0; k < topo.outputs; ++k) {
                double y = act.output[static_cast<size_t>(k)];
                delta_out[static_cast<size_t>(k)] =
                    logisticDerivFromY(y) *
                    (target[static_cast<size_t>(k)] - y);
            }
            // Hidden-layer gradients.
            for (int j = 0; j < topo.hidden; ++j) {
                double back = 0.0;
                for (int k = 0; k < topo.outputs; ++k)
                    back += delta_out[static_cast<size_t>(k)] * w.out(k, j);
                delta_hid[static_cast<size_t>(j)] =
                    logisticDerivFromY(act.hidden[static_cast<size_t>(j)]) *
                    back;
            }
            // Weight updates with momentum.
            for (int k = 0; k < topo.outputs; ++k) {
                double dk = delta_out[static_cast<size_t>(k)];
                for (int j = 0; j < topo.hidden; ++j) {
                    double d = hyper.learningRate * dk *
                            act.hidden[static_cast<size_t>(j)] +
                        hyper.momentum * delta.out(k, j);
                    delta.out(k, j) = d;
                    w.out(k, j) += d;
                }
                double db = hyper.learningRate * dk +
                    hyper.momentum * delta.out(k, topo.hidden);
                delta.out(k, topo.hidden) = db;
                w.out(k, topo.hidden) += db;
            }
            for (int j = 0; j < topo.hidden; ++j) {
                double dj = delta_hid[static_cast<size_t>(j)];
                for (int i = 0; i < topo.inputs; ++i) {
                    double d = hyper.learningRate * dj *
                            x[static_cast<size_t>(i)] +
                        hyper.momentum * delta.hid(j, i);
                    delta.hid(j, i) = d;
                    w.hid(j, i) += d;
                }
                double db = hyper.learningRate * dj +
                    hyper.momentum * delta.hid(j, topo.inputs);
                delta.hid(j, topo.inputs) = db;
                w.hid(j, topo.inputs) += db;
            }
            model.setWeights(w);
        }
    }
    return w;
}

double
Trainer::accuracy(ForwardModel &model, const Dataset &test_set)
{
    if (test_set.size() == 0)
        return 0.0;
    size_t correct = 0;
    // Test sweeps have no feedback into the weights, so rows go
    // through the batched forward path (64 rows per gate-level
    // sweep on faulty hardware); training cannot do this, as it
    // updates weights after every sample.
    std::span<const std::vector<double>> rows(test_set.rows);
    std::vector<Activations> acts = model.forwardBatch(rows);
    for (size_t n = 0; n < acts.size(); ++n) {
        // Restrict the prediction to the classes the task uses (the
        // physical network may have spare outputs).
        std::span<const double> outs(
            acts[n].output.data(),
            static_cast<size_t>(test_set.numClasses));
        if (argmax(outs) == test_set.labels[n])
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(test_set.size());
}

double
Trainer::mse(ForwardModel &model, const Dataset &test_set)
{
    if (test_set.size() == 0)
        return 0.0;
    double total = 0.0;
    int outputs = model.topology().outputs;
    std::span<const std::vector<double>> rows(test_set.rows);
    std::vector<Activations> acts = model.forwardBatch(rows);
    for (size_t n = 0; n < acts.size(); ++n) {
        for (int k = 0; k < outputs; ++k) {
            double t =
                k == test_set.labels[n] ? 1.0 : 0.0;
            double e = t - acts[n].output[static_cast<size_t>(k)];
            total += e * e;
        }
    }
    return total / (static_cast<double>(test_set.size()) * outputs);
}

} // namespace dtann
