/**
 * @file
 * Fully fixed-point on-line training (paper Section IV scenarios).
 *
 * The paper's accelerator targets the off-line scenario (training
 * on a companion core in floating point) but notes that "the
 * accelerator can also be extended to include training hardware for
 * tackling both the on-line and off-line scenarios". This trainer
 * models that extension: gradients, deltas and weight updates are
 * all computed in Q6.10 with hardware semantics, so the entire
 * learning loop could live next to the array (smart sensors,
 * industrial control — the paper's on-line use cases). It trains
 * through an arbitrary layer stack, sharing the epoch core in
 * ann/train_core.hh with the float Trainer.
 *
 * Q6.10 weight updates underflow for very small gradients, so
 * on-line training prefers somewhat larger learning rates; the
 * trainer exposes the same Hyper knobs as the float Trainer.
 */

#ifndef DTANN_ANN_FIXED_TRAINER_HH
#define DTANN_ANN_FIXED_TRAINER_HH

#include "ann/trainer.hh"
#include "common/fixed_point.hh"

namespace dtann {

/** On-line back-propagation with Q6.10 arithmetic throughout. */
class FixedTrainer
{
  public:
    explicit FixedTrainer(Hyper hyper) : hyper(hyper) {}

    /**
     * Train @p model on @p train_set with fixed-point updates
     * (2-layer convenience wrapper around trainLayers()).
     *
     * The shadow weights are Q6.10; every arithmetic step uses
     * saturating fixed-point operations (a training datapath would
     * saturate rather than wrap to keep learning stable).
     *
     * @return final weights (converted to double storage)
     */
    MlpWeights train(ForwardModel &model, const Dataset &train_set,
                     Rng &rng, const MlpWeights *init = nullptr) const;

    /** Train through the model's full layer stack (the canonical
     *  entry point — train() is defined in terms of it). */
    DeepWeights trainLayers(ForwardModel &model,
                            const Dataset &train_set, Rng &rng,
                            const DeepWeights *init = nullptr) const;

    const Hyper &hyperParams() const { return hyper; }

  private:
    Hyper hyper;
};

} // namespace dtann

#endif // DTANN_ANN_FIXED_TRAINER_HH
