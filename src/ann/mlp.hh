/**
 * @file
 * Multi-layer perceptron: topology, weight storage, and the
 * double-precision reference forward model.
 *
 * The paper's network is a 2-layer MLP (one hidden layer, sigmoid
 * activations); the Section VII extensions stack more layers. Each
 * neuron has a bias, modelled as one extra synapse whose input is
 * the constant 1. One model hierarchy serves both shapes: every
 * ForwardModel produces the full layer stack of activations, and
 * batched evaluation is the canonical entry point.
 */

#ifndef DTANN_ANN_MLP_HH
#define DTANN_ANN_MLP_HH

#include <span>
#include <vector>

#include "circuit/sim_counters.hh"
#include "common/rng.hh"

namespace dtann {

/** Layer sizes of a 2-layer MLP. */
struct MlpTopology
{
    int inputs;
    int hidden;
    int outputs;

    bool operator==(const MlpTopology &o) const = default;
};

/** Layer widths, input first, output last (>= 3 entries). */
struct DeepTopology
{
    std::vector<int> layers;

    int inputs() const { return layers.front(); }
    int outputs() const { return layers.back(); }
    /** Number of weight matrices (= layers.size() - 1). */
    size_t stages() const { return layers.size() - 1; }

    bool operator==(const DeepTopology &o) const = default;
};

/** View a 2-layer topology as a layer stack. */
DeepTopology toLayerTopology(MlpTopology t);

/**
 * Dense weight storage: hidden weights are [hidden][inputs + 1]
 * (bias last), output weights are [outputs][hidden + 1].
 */
class MlpWeights
{
  public:
    MlpWeights() = default;
    explicit MlpWeights(MlpTopology topo);

    const MlpTopology &topology() const { return topo; }

    /** Hidden-layer weight from input @p i (or bias when i ==
     *  inputs) to hidden neuron @p j. @{ */
    double &hid(int j, int i);
    double hid(int j, int i) const;
    /** @} */

    /** Output-layer weight from hidden @p j (bias when j ==
     *  hidden) to output neuron @p k. @{ */
    double &out(int k, int j);
    double out(int k, int j) const;
    /** @} */

    /** Uniform random initialization in [-range, range]. */
    void initRandom(Rng &rng, double range = 0.5);

    /** Total number of weights (including biases). */
    size_t count() const { return hiddenW.size() + outputW.size(); }

  private:
    MlpTopology topo{0, 0, 0};
    std::vector<double> hiddenW;
    std::vector<double> outputW;
};

/** Dense weights: stage s maps layer s to layer s+1, bias last. */
class DeepWeights
{
  public:
    DeepWeights() = default;
    explicit DeepWeights(DeepTopology topo);

    const DeepTopology &topology() const { return topo; }

    /** Weight from unit @p i of layer @p s (bias when i equals
     *  that layer's width) to unit @p j of layer s+1. @{ */
    double &at(size_t s, int j, int i);
    double at(size_t s, int j, int i) const;
    /** @} */

    void initRandom(Rng &rng, double range = 0.5);

    size_t count() const;

  private:
    DeepTopology topo;
    std::vector<std::vector<double>> stages_;
};

/** View 2-layer weights as a 2-stage stack (exact value copy). */
DeepWeights toLayerWeights(const MlpWeights &w);

/** Collapse a 2-stage stack to 2-layer weights (exact value copy). */
MlpWeights toMlpWeights(const DeepWeights &w);

/**
 * Post-activation values of every layer after the input:
 * layers.front() is the first hidden layer, layers.back() the
 * output layer. 2-layer models produce exactly two entries.
 */
struct Activations
{
    std::vector<std::vector<double>> layers;

    Activations() = default;

    /** Allocate a 2-layer record (hidden + output). */
    Activations(size_t hidden_size, size_t output_size)
        : layers{std::vector<double>(hidden_size),
                 std::vector<double>(output_size)}
    {
    }

    /** Output-layer values. @{ */
    std::vector<double> &output() { return layers.back(); }
    const std::vector<double> &output() const { return layers.back(); }
    /** @} */

    /** The hidden layer feeding the output (the only hidden layer
     *  of a 2-layer model). @{ */
    std::vector<double> &hidden() { return layers[layers.size() - 2]; }
    const std::vector<double> &hidden() const
    {
        return layers[layers.size() - 2];
    }
    /** @} */
};

/**
 * Abstract forward path.
 *
 * Training runs on a companion core holding float weights (the
 * Trainer); the forward activations may come from the float
 * reference, the fixed-point model, or the (possibly defective)
 * hardware accelerator model. This is how retraining "factors in
 * the faulty elements".
 *
 * forwardBatch() is the canonical evaluation entry point: campaign
 * test sweeps hand whole datasets to the model so faulty operators
 * can be evaluated up to 64 rows per gate-level sweep. The scalar
 * forward() is defined in terms of it; models with a cheaper native
 * scalar path (training updates weights per sample) override
 * forward() and may implement forwardBatch() with rowLoopBatch().
 * A concrete model must override at least one of the two.
 */
class ForwardModel
{
  public:
    virtual ~ForwardModel() = default;

    /** Network dimensions, collapsed to the 2-layer view
     *  {inputs, width of the layer feeding the output, outputs}
     *  (exact for 2-layer models). */
    virtual MlpTopology topology() const = 0;

    /** Full layer stack; the default is the 2-layer topology(). */
    virtual DeepTopology layerTopology() const;

    /** Install 2-layer weights (hardware models quantize/write
     *  latches). The default wraps them into a 2-stage stack and
     *  calls setLayerWeights(). */
    virtual void setWeights(const MlpWeights &w);

    /** Install a full weight stack. The default requires a 2-stage
     *  stack and calls setWeights(). */
    virtual void setLayerWeights(const DeepWeights &w);

    /** Run one input row; the default evaluates a 1-row batch. */
    virtual Activations forward(std::span<const double> input);

    /**
     * Run a batch of input rows — the canonical entry point.
     * Results are semantically identical to calling forward() on
     * each row in order; hardware models push rows through their
     * faulty operators 64 lanes per gate-level sweep.
     */
    virtual std::vector<Activations>
    forwardBatch(std::span<const std::vector<double>> inputs) = 0;

    /** Gate-evaluation work of any underlying faulty-operator
     *  simulations (zero for native models). Wrapper models report
     *  their backing Accelerator's counters. */
    virtual SimCounters simCounters() const { return {}; }

  protected:
    /** Row-at-a-time batch fallback: exact per-row semantics for
     *  models without (or temporarily denied) a lane-batched path. */
    std::vector<Activations>
    rowLoopBatch(std::span<const std::vector<double>> inputs);
};

/** Double-precision reference MLP (exact sigmoid). */
class FloatMlp : public ForwardModel
{
  public:
    explicit FloatMlp(MlpTopology topo) : topo(topo), weights(topo) {}

    MlpTopology topology() const override { return topo; }
    void setWeights(const MlpWeights &w) override;
    Activations forward(std::span<const double> input) override;
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override
    {
        return rowLoopBatch(inputs); // native arithmetic: a row loop
                                     // is already the fastest path
    }

  private:
    MlpTopology topo;
    MlpWeights weights;
};

} // namespace dtann

#endif // DTANN_ANN_MLP_HH
