/**
 * @file
 * Multi-layer perceptron: topology, weight storage, and the
 * double-precision reference forward model.
 *
 * The paper's network is a 2-layer MLP (one hidden layer, sigmoid
 * activations). Each neuron has a bias, modelled as one extra
 * synapse whose input is the constant 1.
 */

#ifndef DTANN_ANN_MLP_HH
#define DTANN_ANN_MLP_HH

#include <span>
#include <vector>

#include "common/rng.hh"

namespace dtann {

/** Layer sizes of a 2-layer MLP. */
struct MlpTopology
{
    int inputs;
    int hidden;
    int outputs;

    bool operator==(const MlpTopology &o) const = default;
};

/**
 * Dense weight storage: hidden weights are [hidden][inputs + 1]
 * (bias last), output weights are [outputs][hidden + 1].
 */
class MlpWeights
{
  public:
    MlpWeights() = default;
    explicit MlpWeights(MlpTopology topo);

    const MlpTopology &topology() const { return topo; }

    /** Hidden-layer weight from input @p i (or bias when i ==
     *  inputs) to hidden neuron @p j. @{ */
    double &hid(int j, int i);
    double hid(int j, int i) const;
    /** @} */

    /** Output-layer weight from hidden @p j (bias when j ==
     *  hidden) to output neuron @p k. @{ */
    double &out(int k, int j);
    double out(int k, int j) const;
    /** @} */

    /** Uniform random initialization in [-range, range]. */
    void initRandom(Rng &rng, double range = 0.5);

    /** Total number of weights (including biases). */
    size_t count() const { return hiddenW.size() + outputW.size(); }

  private:
    MlpTopology topo{0, 0, 0};
    std::vector<double> hiddenW;
    std::vector<double> outputW;
};

/** Post-activation values produced by one forward pass. */
struct Activations
{
    std::vector<double> hidden;
    std::vector<double> output;
};

/**
 * Abstract forward path.
 *
 * Training runs on a companion core holding float weights (the
 * Trainer); the forward activations may come from the float
 * reference, the fixed-point model, or the (possibly defective)
 * hardware accelerator model. This is how retraining "factors in
 * the faulty elements".
 */
class ForwardModel
{
  public:
    virtual ~ForwardModel() = default;

    /** Network dimensions. */
    virtual MlpTopology topology() const = 0;

    /** Install weights (hardware models quantize/write latches). */
    virtual void setWeights(const MlpWeights &w) = 0;

    /** Run one input row through the network. */
    virtual Activations forward(std::span<const double> input) = 0;

    /**
     * Run a batch of input rows. Semantically identical to calling
     * forward() on each row in order — the default does exactly
     * that, which is already optimal for native models. Hardware
     * models override it to push rows through their faulty
     * operators 64 lanes per gate-level sweep; results stay
     * bit-identical to the per-row path.
     */
    virtual std::vector<Activations>
    forwardBatch(std::span<const std::vector<double>> inputs)
    {
        std::vector<Activations> out;
        out.reserve(inputs.size());
        for (const auto &row : inputs)
            out.push_back(forward(row));
        return out;
    }
};

/** Double-precision reference MLP (exact sigmoid). */
class FloatMlp : public ForwardModel
{
  public:
    explicit FloatMlp(MlpTopology topo) : topo(topo), weights(topo) {}

    MlpTopology topology() const override { return topo; }
    void setWeights(const MlpWeights &w) override;
    Activations forward(std::span<const double> input) override;

  private:
    MlpTopology topo;
    MlpWeights weights;
};

} // namespace dtann

#endif // DTANN_ANN_MLP_HH
