#include "ann/mlp.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

MlpWeights::MlpWeights(MlpTopology t)
    : topo(t),
      hiddenW(static_cast<size_t>(t.hidden) *
              static_cast<size_t>(t.inputs + 1)),
      outputW(static_cast<size_t>(t.outputs) *
              static_cast<size_t>(t.hidden + 1))
{
    dtann_assert(t.inputs >= 1 && t.hidden >= 1 && t.outputs >= 1,
                 "degenerate topology");
}

double &
MlpWeights::hid(int j, int i)
{
    dtann_assert(j >= 0 && j < topo.hidden && i >= 0 && i <= topo.inputs,
                 "hid(%d, %d) out of range", j, i);
    return hiddenW[static_cast<size_t>(j) *
                       static_cast<size_t>(topo.inputs + 1) +
                   static_cast<size_t>(i)];
}

double
MlpWeights::hid(int j, int i) const
{
    return const_cast<MlpWeights *>(this)->hid(j, i);
}

double &
MlpWeights::out(int k, int j)
{
    dtann_assert(k >= 0 && k < topo.outputs && j >= 0 && j <= topo.hidden,
                 "out(%d, %d) out of range", k, j);
    return outputW[static_cast<size_t>(k) *
                       static_cast<size_t>(topo.hidden + 1) +
                   static_cast<size_t>(j)];
}

double
MlpWeights::out(int k, int j) const
{
    return const_cast<MlpWeights *>(this)->out(k, j);
}

void
MlpWeights::initRandom(Rng &rng, double range)
{
    for (double &w : hiddenW)
        w = rng.nextDouble(-range, range);
    for (double &w : outputW)
        w = rng.nextDouble(-range, range);
}

void
FloatMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    weights = w;
}

Activations
FloatMlp::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs,
                 "input arity mismatch");
    Activations act;
    act.hidden.resize(static_cast<size_t>(topo.hidden));
    act.output.resize(static_cast<size_t>(topo.outputs));
    for (int j = 0; j < topo.hidden; ++j) {
        double o = weights.hid(j, topo.inputs); // bias
        for (int i = 0; i < topo.inputs; ++i)
            o += weights.hid(j, i) * input[static_cast<size_t>(i)];
        act.hidden[static_cast<size_t>(j)] = logistic(o);
    }
    for (int k = 0; k < topo.outputs; ++k) {
        double o = weights.out(k, topo.hidden); // bias
        for (int j = 0; j < topo.hidden; ++j)
            o += weights.out(k, j) * act.hidden[static_cast<size_t>(j)];
        act.output[static_cast<size_t>(k)] = logistic(o);
    }
    return act;
}

} // namespace dtann
