#include "ann/mlp.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

DeepTopology
toLayerTopology(MlpTopology t)
{
    return DeepTopology{{t.inputs, t.hidden, t.outputs}};
}

MlpWeights::MlpWeights(MlpTopology t)
    : topo(t),
      hiddenW(static_cast<size_t>(t.hidden) *
              static_cast<size_t>(t.inputs + 1)),
      outputW(static_cast<size_t>(t.outputs) *
              static_cast<size_t>(t.hidden + 1))
{
    dtann_assert(t.inputs >= 1 && t.hidden >= 1 && t.outputs >= 1,
                 "degenerate topology");
}

double &
MlpWeights::hid(int j, int i)
{
    dtann_assert(j >= 0 && j < topo.hidden && i >= 0 && i <= topo.inputs,
                 "hid(%d, %d) out of range", j, i);
    return hiddenW[static_cast<size_t>(j) *
                       static_cast<size_t>(topo.inputs + 1) +
                   static_cast<size_t>(i)];
}

double
MlpWeights::hid(int j, int i) const
{
    return const_cast<MlpWeights *>(this)->hid(j, i);
}

double &
MlpWeights::out(int k, int j)
{
    dtann_assert(k >= 0 && k < topo.outputs && j >= 0 && j <= topo.hidden,
                 "out(%d, %d) out of range", k, j);
    return outputW[static_cast<size_t>(k) *
                       static_cast<size_t>(topo.hidden + 1) +
                   static_cast<size_t>(j)];
}

double
MlpWeights::out(int k, int j) const
{
    return const_cast<MlpWeights *>(this)->out(k, j);
}

void
MlpWeights::initRandom(Rng &rng, double range)
{
    for (double &w : hiddenW)
        w = rng.nextDouble(-range, range);
    for (double &w : outputW)
        w = rng.nextDouble(-range, range);
}

DeepWeights::DeepWeights(DeepTopology t) : topo(std::move(t))
{
    dtann_assert(topo.layers.size() >= 3,
                 "deep topology needs input, >=1 hidden, output");
    for (int width : topo.layers)
        dtann_assert(width >= 1, "degenerate layer");
    stages_.resize(topo.stages());
    for (size_t s = 0; s < topo.stages(); ++s)
        stages_[s].assign(
            static_cast<size_t>(topo.layers[s + 1]) *
                static_cast<size_t>(topo.layers[s] + 1),
            0.0);
}

double &
DeepWeights::at(size_t s, int j, int i)
{
    dtann_assert(s < topo.stages(), "stage out of range");
    dtann_assert(j >= 0 && j < topo.layers[s + 1] && i >= 0 &&
                     i <= topo.layers[s],
                 "weight index out of range");
    return stages_[s][static_cast<size_t>(j) *
                          static_cast<size_t>(topo.layers[s] + 1) +
                      static_cast<size_t>(i)];
}

double
DeepWeights::at(size_t s, int j, int i) const
{
    return const_cast<DeepWeights *>(this)->at(s, j, i);
}

void
DeepWeights::initRandom(Rng &rng, double range)
{
    for (auto &stage : stages_)
        for (double &w : stage)
            w = rng.nextDouble(-range, range);
}

size_t
DeepWeights::count() const
{
    size_t total = 0;
    for (const auto &stage : stages_)
        total += stage.size();
    return total;
}

DeepWeights
toLayerWeights(const MlpWeights &w)
{
    const MlpTopology &t = w.topology();
    DeepWeights layered(toLayerTopology(t));
    for (int j = 0; j < t.hidden; ++j)
        for (int i = 0; i <= t.inputs; ++i)
            layered.at(0, j, i) = w.hid(j, i);
    for (int k = 0; k < t.outputs; ++k)
        for (int j = 0; j <= t.hidden; ++j)
            layered.at(1, k, j) = w.out(k, j);
    return layered;
}

MlpWeights
toMlpWeights(const DeepWeights &w)
{
    const DeepTopology &t = w.topology();
    dtann_assert(t.stages() == 2,
                 "only a 2-stage stack collapses to MlpWeights");
    MlpTopology topo{t.layers[0], t.layers[1], t.layers[2]};
    MlpWeights flat(topo);
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            flat.hid(j, i) = w.at(0, j, i);
    for (int k = 0; k < topo.outputs; ++k)
        for (int j = 0; j <= topo.hidden; ++j)
            flat.out(k, j) = w.at(1, k, j);
    return flat;
}

DeepTopology
ForwardModel::layerTopology() const
{
    return toLayerTopology(topology());
}

void
ForwardModel::setWeights(const MlpWeights &w)
{
    setLayerWeights(toLayerWeights(w));
}

void
ForwardModel::setLayerWeights(const DeepWeights &w)
{
    setWeights(toMlpWeights(w));
}

Activations
ForwardModel::forward(std::span<const double> input)
{
    std::vector<std::vector<double>> one(
        1, std::vector<double>(input.begin(), input.end()));
    std::vector<Activations> acts = forwardBatch(one);
    return std::move(acts.front());
}

std::vector<Activations>
ForwardModel::rowLoopBatch(std::span<const std::vector<double>> inputs)
{
    std::vector<Activations> out;
    out.reserve(inputs.size());
    for (const auto &row : inputs)
        out.push_back(forward(row));
    return out;
}

void
FloatMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    weights = w;
}

Activations
FloatMlp::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs,
                 "input arity mismatch");
    Activations act(static_cast<size_t>(topo.hidden),
                    static_cast<size_t>(topo.outputs));
    for (int j = 0; j < topo.hidden; ++j) {
        double o = weights.hid(j, topo.inputs); // bias
        for (int i = 0; i < topo.inputs; ++i)
            o += weights.hid(j, i) * input[static_cast<size_t>(i)];
        act.hidden()[static_cast<size_t>(j)] = logistic(o);
    }
    for (int k = 0; k < topo.outputs; ++k) {
        double o = weights.out(k, topo.hidden); // bias
        for (int j = 0; j < topo.hidden; ++j)
            o += weights.out(k, j) * act.hidden()[static_cast<size_t>(j)];
        act.output()[static_cast<size_t>(k)] = logistic(o);
    }
    return act;
}

} // namespace dtann
