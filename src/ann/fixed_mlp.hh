/**
 * @file
 * Fixed-point MLP forward model with hardware-exact semantics.
 *
 * Weights and activations are Q6.10; per-synapse products use
 * hwMul (truncating), neuron accumulation uses the 24-bit adder
 * tree (Acc24) with saturation into the activation unit, and the
 * activation is the 16-segment PWL sigmoid. A clean FixedMlp is
 * bit-identical to the accelerator model with zero defects.
 */

#ifndef DTANN_ANN_FIXED_MLP_HH
#define DTANN_ANN_FIXED_MLP_HH

#include "ann/mlp.hh"
#include "common/fixed_point.hh"

namespace dtann {

/** Fixed-point forward model (paper Section IV semantics). */
class FixedMlp : public ForwardModel
{
  public:
    explicit FixedMlp(MlpTopology topo);

    MlpTopology topology() const override { return topo; }

    /** Quantize and install weights. */
    void setWeights(const MlpWeights &w) override;

    Activations forward(std::span<const double> input) override;

    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override
    {
        return rowLoopBatch(inputs); // native arithmetic: a row loop
                                     // is already the fastest path
    }

    /** Forward on already-quantized inputs (used by tests). */
    std::vector<Fix16> forwardFix(std::span<const Fix16> input);

    /** The quantized hidden-layer weight matrix. @{ */
    Fix16 hidWeight(int j, int i) const;
    Fix16 outWeight(int k, int j) const;
    /** @} */

  private:
    MlpTopology topo;
    std::vector<Fix16> hiddenW; // [hidden][inputs+1], bias last
    std::vector<Fix16> outputW; // [outputs][hidden+1], bias last
    std::vector<Fix16> hiddenAct;
};

} // namespace dtann

#endif // DTANN_ANN_FIXED_MLP_HH
