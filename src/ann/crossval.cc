#include "ann/crossval.hh"

#include "common/logging.hh"

namespace dtann {

CrossValResult
crossValidate(ForwardModel &model, const Dataset &ds, int k,
              const Trainer &trainer, Rng &rng, const MlpWeights *init)
{
    dtann_assert(k >= 2, "need at least 2 folds");
    auto folds = kFoldIndices(ds.size(), k);

    RunningStat stat;
    for (size_t f = 0; f < folds.size(); ++f) {
        Dataset train_set = complementSubset(ds, folds, f);
        Dataset test_set = subset(ds, folds[f]);
        trainer.train(model, train_set, rng, init);
        stat.add(evalAccuracy(model, test_set));
    }
    return {stat.mean(), stat.stddev(), k};
}

} // namespace dtann
