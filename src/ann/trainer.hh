/**
 * @file
 * Back-propagation trainer (companion-core training).
 *
 * The trainer owns double-precision shadow weights and updates them
 * with classic online back-propagation (learning rate + momentum,
 * MSE objective) through an arbitrary stack of sigmoid layers — the
 * 2-layer paper networks and the Section VII deep stacks share this
 * one implementation. Forward activations come from a ForwardModel
 * — the float reference, the fixed-point model, or the (possibly
 * defective) accelerator — so retraining silences faulty elements
 * exactly as the paper describes. Evaluation helpers (accuracy,
 * MSE) live in ann/train_core.hh and run batch-first.
 */

#ifndef DTANN_ANN_TRAINER_HH
#define DTANN_ANN_TRAINER_HH

#include "ann/train_core.hh"

namespace dtann {

/** Training hyper-parameters (paper Table I axes). */
struct Hyper
{
    int hidden = 10;
    int epochs = 100;
    double learningRate = 0.1;
    double momentum = 0.1;
};

/**
 * One synapse frozen at zero for a whole training run (fault-aware
 * pruning, Zhang et al. arXiv:1802.04657): stage @p stage maps
 * layer stage to stage+1, @p neuron is the target unit, @p input
 * the source unit (the layer width addresses the bias synapse).
 */
struct PrunedSynapse
{
    size_t stage;
    int neuron;
    int input;

    bool operator==(const PrunedSynapse &o) const = default;
};

/** Online back-propagation over an abstract forward path. */
class Trainer
{
  public:
    /**
     * @param hyper training hyper-parameters (hidden count must
     *        match the model's topology)
     */
    explicit Trainer(Hyper hyper) : hyper(hyper) {}

    /**
     * Train @p model on @p train_set (2-layer convenience wrapper
     * around trainLayers()).
     *
     * @param model forward path; receives weight updates each step
     * @param train_set training examples (normalized to [0, 1])
     * @param rng order shuffling and weight initialization
     * @param init warm-start weights (retraining), or null for
     *        random initialization
     * @return the final shadow weights
     */
    MlpWeights train(ForwardModel &model, const Dataset &train_set,
                     Rng &rng, const MlpWeights *init = nullptr) const;

    /**
     * Train @p model through its full layer stack
     * (model.layerTopology()); the canonical entry point — the
     * 2-layer train() is defined in terms of it.
     */
    DeepWeights trainLayers(ForwardModel &model,
                            const Dataset &train_set, Rng &rng,
                            const DeepWeights *init = nullptr) const;

    const Hyper &hyperParams() const { return hyper; }

    /**
     * Freeze the given synapses at zero weight (and zero momentum)
     * for every training step. This keeps the shadow weights
     * consistent with hardware whose corresponding multiplier or
     * adder input has been pruned away: without it, back-propagation
     * through non-zero shadow weights steers gradients through
     * connections the forward path no longer has.
     */
    void setPruneMask(std::vector<PrunedSynapse> mask)
    {
        prune = std::move(mask);
    }

    const std::vector<PrunedSynapse> &pruneMask() const
    {
        return prune;
    }

  private:
    Hyper hyper;
    std::vector<PrunedSynapse> prune;
};

} // namespace dtann

#endif // DTANN_ANN_TRAINER_HH
