#include "ann/deep.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

MlpTopology
FloatDeepMlp::topology() const
{
    return {topo.inputs(), topo.layers[topo.layers.size() - 2],
            topo.outputs()};
}

void
FloatDeepMlp::setLayerWeights(const DeepWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    weights = w;
}

Activations
FloatDeepMlp::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs(),
                 "input arity mismatch");
    Activations act;
    std::vector<double> current(input.begin(), input.end());
    for (size_t s = 0; s < topo.stages(); ++s) {
        int fanin = topo.layers[s];
        int width = topo.layers[s + 1];
        std::vector<double> next(static_cast<size_t>(width));
        for (int j = 0; j < width; ++j) {
            double o = weights.at(s, j, fanin); // bias
            for (int i = 0; i < fanin; ++i)
                o += weights.at(s, j, i) * current[static_cast<size_t>(i)];
            next[static_cast<size_t>(j)] = logistic(o);
        }
        act.layers.push_back(next);
        current = std::move(next);
    }
    return act;
}

} // namespace dtann
