#include "ann/deep.hh"

#include <numeric>

#include "ann/sigmoid.hh"
#include "ann/trainer.hh"
#include "common/logging.hh"

namespace dtann {

DeepWeights::DeepWeights(DeepTopology t) : topo(std::move(t))
{
    dtann_assert(topo.layers.size() >= 3,
                 "deep topology needs input, >=1 hidden, output");
    for (int width : topo.layers)
        dtann_assert(width >= 1, "degenerate layer");
    stages_.resize(topo.stages());
    for (size_t s = 0; s < topo.stages(); ++s)
        stages_[s].assign(
            static_cast<size_t>(topo.layers[s + 1]) *
                static_cast<size_t>(topo.layers[s] + 1),
            0.0);
}

double &
DeepWeights::at(size_t s, int j, int i)
{
    dtann_assert(s < topo.stages(), "stage out of range");
    dtann_assert(j >= 0 && j < topo.layers[s + 1] && i >= 0 &&
                     i <= topo.layers[s],
                 "weight index out of range");
    return stages_[s][static_cast<size_t>(j) *
                          static_cast<size_t>(topo.layers[s] + 1) +
                      static_cast<size_t>(i)];
}

double
DeepWeights::at(size_t s, int j, int i) const
{
    return const_cast<DeepWeights *>(this)->at(s, j, i);
}

void
DeepWeights::initRandom(Rng &rng, double range)
{
    for (auto &stage : stages_)
        for (double &w : stage)
            w = rng.nextDouble(-range, range);
}

size_t
DeepWeights::count() const
{
    size_t total = 0;
    for (const auto &stage : stages_)
        total += stage.size();
    return total;
}

void
FloatDeepMlp::setWeights(const DeepWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    weights = w;
}

std::vector<std::vector<double>>
FloatDeepMlp::forwardAll(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs(),
                 "input arity mismatch");
    std::vector<std::vector<double>> acts;
    std::vector<double> current(input.begin(), input.end());
    for (size_t s = 0; s < topo.stages(); ++s) {
        int fanin = topo.layers[s];
        int width = topo.layers[s + 1];
        std::vector<double> next(static_cast<size_t>(width));
        for (int j = 0; j < width; ++j) {
            double o = weights.at(s, j, fanin); // bias
            for (int i = 0; i < fanin; ++i)
                o += weights.at(s, j, i) * current[static_cast<size_t>(i)];
            next[static_cast<size_t>(j)] = logistic(o);
        }
        acts.push_back(next);
        current = std::move(next);
    }
    return acts;
}

DeepWeights
DeepTrainer::train(DeepForwardModel &model, const Dataset &train_set,
                   Rng &rng, const DeepWeights *init) const
{
    DeepTopology topo = model.topology();
    dtann_assert(topo.inputs() == train_set.numAttributes,
                 "dataset arity mismatch");
    dtann_assert(topo.outputs() >= train_set.numClasses,
                 "too few outputs for dataset classes");

    DeepWeights w(topo);
    if (init) {
        dtann_assert(init->topology() == topo,
                     "init weight topology mismatch");
        w = *init;
    } else {
        w.initRandom(rng);
    }
    DeepWeights delta(topo);
    model.setWeights(w);

    std::vector<size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    // Per-layer gradient buffers.
    std::vector<std::vector<double>> grad(topo.stages());
    for (size_t s = 0; s < topo.stages(); ++s)
        grad[s].resize(static_cast<size_t>(topo.layers[s + 1]));

    for (int epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(order);
        for (size_t n : order) {
            const auto &x = train_set.rows[n];
            auto acts = model.forwardAll(x);

            // Output layer gradient.
            size_t last = topo.stages() - 1;
            for (int k = 0; k < topo.outputs(); ++k) {
                double y = acts[last][static_cast<size_t>(k)];
                double t = k == train_set.labels[n] ? 1.0 : 0.0;
                grad[last][static_cast<size_t>(k)] =
                    logisticDerivFromY(y) * (t - y);
            }
            // Back-propagate through the hidden stages.
            for (size_t s = last; s-- > 0;) {
                int width = topo.layers[s + 1];
                int above = topo.layers[s + 2];
                for (int j = 0; j < width; ++j) {
                    double back = 0.0;
                    for (int k = 0; k < above; ++k)
                        back += grad[s + 1][static_cast<size_t>(k)] *
                            w.at(s + 1, k, j);
                    grad[s][static_cast<size_t>(j)] =
                        logisticDerivFromY(
                            acts[s][static_cast<size_t>(j)]) *
                        back;
                }
            }
            // Updates with momentum; layer s's input is acts[s-1]
            // (or the row itself for s = 0).
            for (size_t s = 0; s < topo.stages(); ++s) {
                int fanin = topo.layers[s];
                int width = topo.layers[s + 1];
                for (int j = 0; j < width; ++j) {
                    double g = grad[s][static_cast<size_t>(j)];
                    for (int i = 0; i < fanin; ++i) {
                        double in_val = s == 0
                            ? x[static_cast<size_t>(i)]
                            : acts[s - 1][static_cast<size_t>(i)];
                        double d = learningRate * g * in_val +
                            momentum * delta.at(s, j, i);
                        delta.at(s, j, i) = d;
                        w.at(s, j, i) += d;
                    }
                    double db = learningRate * g +
                        momentum * delta.at(s, j, fanin);
                    delta.at(s, j, fanin) = db;
                    w.at(s, j, fanin) += db;
                }
            }
            model.setWeights(w);
        }
    }
    return w;
}

double
DeepTrainer::accuracy(DeepForwardModel &model, const Dataset &test_set)
{
    if (test_set.size() == 0)
        return 0.0;
    size_t correct = 0;
    for (size_t n = 0; n < test_set.size(); ++n) {
        auto acts = model.forwardAll(test_set.rows[n]);
        std::span<const double> outs(
            acts.back().data(),
            static_cast<size_t>(test_set.numClasses));
        if (argmax(outs) == test_set.labels[n])
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(test_set.size());
}

} // namespace dtann
