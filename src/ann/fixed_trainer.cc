#include "ann/fixed_trainer.hh"

#include <numeric>
#include <vector>

#include "common/logging.hh"

namespace dtann {

namespace {

/** Saturating multiply-accumulate helper. */
Fix16
mac(Fix16 acc, Fix16 a, Fix16 b)
{
    return Fix16::satAdd(acc, Fix16::satMul(a, b));
}

} // namespace

MlpWeights
FixedTrainer::train(ForwardModel &model, const Dataset &train_set,
                    Rng &rng, const MlpWeights *init) const
{
    MlpTopology topo = model.topology();
    dtann_assert(topo.inputs == train_set.numAttributes,
                 "dataset arity mismatch");
    dtann_assert(topo.outputs >= train_set.numClasses,
                 "too few outputs for dataset classes");

    // Q6.10 shadow weights.
    size_t n_hid = static_cast<size_t>(topo.hidden) *
        static_cast<size_t>(topo.inputs + 1);
    size_t n_out = static_cast<size_t>(topo.outputs) *
        static_cast<size_t>(topo.hidden + 1);
    std::vector<Fix16> hid_w(n_hid), out_w(n_out);
    auto hid_at = [&](int j, int i) -> Fix16 & {
        return hid_w[static_cast<size_t>(j) *
                         static_cast<size_t>(topo.inputs + 1) +
                     static_cast<size_t>(i)];
    };
    auto out_at = [&](int k, int j) -> Fix16 & {
        return out_w[static_cast<size_t>(k) *
                         static_cast<size_t>(topo.hidden + 1) +
                     static_cast<size_t>(j)];
    };

    MlpWeights w(topo);
    if (init) {
        dtann_assert(init->topology() == topo,
                     "init weight topology mismatch");
        w = *init;
    } else {
        w.initRandom(rng);
    }
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            hid_at(j, i) = Fix16::fromDouble(w.hid(j, i));
    for (int k = 0; k < topo.outputs; ++k)
        for (int j = 0; j <= topo.hidden; ++j)
            out_at(k, j) = Fix16::fromDouble(w.out(k, j));

    auto push = [&]() {
        for (int j = 0; j < topo.hidden; ++j)
            for (int i = 0; i <= topo.inputs; ++i)
                w.hid(j, i) = hid_at(j, i).toDouble();
        for (int k = 0; k < topo.outputs; ++k)
            for (int j = 0; j <= topo.hidden; ++j)
                w.out(k, j) = out_at(k, j).toDouble();
        model.setWeights(w);
    };
    push();

    const Fix16 lr = Fix16::fromDouble(hyper.learningRate);
    const Fix16 one = Fix16::fromDouble(1.0);

    std::vector<size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<Fix16> delta_out(static_cast<size_t>(topo.outputs));
    std::vector<Fix16> delta_hid(static_cast<size_t>(topo.hidden));
    std::vector<Fix16> x(static_cast<size_t>(topo.inputs));
    std::vector<Fix16> hid_act(static_cast<size_t>(topo.hidden));

    for (int epoch = 0; epoch < hyper.epochs; ++epoch) {
        rng.shuffle(order);
        for (size_t n : order) {
            for (int i = 0; i < topo.inputs; ++i)
                x[static_cast<size_t>(i)] = Fix16::fromDouble(
                    train_set.rows[n][static_cast<size_t>(i)]);
            Activations act = model.forward(train_set.rows[n]);
            for (int j = 0; j < topo.hidden; ++j)
                hid_act[static_cast<size_t>(j)] = Fix16::fromDouble(
                    act.hidden[static_cast<size_t>(j)]);

            // Output gradients: (t - y) * y * (1 - y), all Q6.10.
            for (int k = 0; k < topo.outputs; ++k) {
                Fix16 y = Fix16::fromDouble(
                    act.output[static_cast<size_t>(k)]);
                Fix16 t = Fix16::fromDouble(
                    k == train_set.labels[n] ? 1.0 : 0.0);
                Fix16 err = Fix16::satAdd(
                    t, Fix16::fromDouble(-y.toDouble()));
                Fix16 deriv = Fix16::satMul(
                    y, Fix16::satAdd(one,
                                     Fix16::fromDouble(-y.toDouble())));
                delta_out[static_cast<size_t>(k)] =
                    Fix16::satMul(deriv, err);
            }
            // Hidden gradients.
            for (int j = 0; j < topo.hidden; ++j) {
                Fix16 back;
                for (int k = 0; k < topo.outputs; ++k)
                    back = mac(back, delta_out[static_cast<size_t>(k)],
                               out_at(k, j));
                Fix16 h = hid_act[static_cast<size_t>(j)];
                Fix16 deriv = Fix16::satMul(
                    h, Fix16::satAdd(one,
                                     Fix16::fromDouble(-h.toDouble())));
                delta_hid[static_cast<size_t>(j)] =
                    Fix16::satMul(deriv, back);
            }
            // Updates: w += lr * delta * activation (no momentum in
            // the on-line datapath; Q6.10 momentum memory would
            // underflow immediately).
            for (int k = 0; k < topo.outputs; ++k) {
                Fix16 scaled =
                    Fix16::satMul(lr, delta_out[static_cast<size_t>(k)]);
                for (int j = 0; j < topo.hidden; ++j)
                    out_at(k, j) =
                        mac(out_at(k, j), scaled,
                            hid_act[static_cast<size_t>(j)]);
                out_at(k, topo.hidden) =
                    Fix16::satAdd(out_at(k, topo.hidden), scaled);
            }
            for (int j = 0; j < topo.hidden; ++j) {
                Fix16 scaled =
                    Fix16::satMul(lr, delta_hid[static_cast<size_t>(j)]);
                for (int i = 0; i < topo.inputs; ++i)
                    hid_at(j, i) = mac(hid_at(j, i), scaled,
                                       x[static_cast<size_t>(i)]);
                hid_at(j, topo.inputs) =
                    Fix16::satAdd(hid_at(j, topo.inputs), scaled);
            }
            push();
        }
    }
    return w;
}

} // namespace dtann
