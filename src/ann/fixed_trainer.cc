#include "ann/fixed_trainer.hh"

#include <vector>

#include "common/logging.hh"

namespace dtann {

namespace {

/** Saturating multiply-accumulate helper. */
Fix16
mac(Fix16 acc, Fix16 a, Fix16 b)
{
    return Fix16::satAdd(acc, Fix16::satMul(a, b));
}

} // namespace

DeepWeights
FixedTrainer::trainLayers(ForwardModel &model, const Dataset &train_set,
                          Rng &rng, const DeepWeights *init) const
{
    DeepTopology topo = model.layerTopology();
    dtann_assert(topo.inputs() == train_set.numAttributes,
                 "dataset arity mismatch");
    dtann_assert(topo.outputs() >= train_set.numClasses,
                 "too few outputs for dataset classes");

    // Q6.10 shadow weights, one flat array per stage (bias last).
    std::vector<std::vector<Fix16>> sw(topo.stages());
    for (size_t s = 0; s < topo.stages(); ++s)
        sw[s].resize(static_cast<size_t>(topo.layers[s + 1]) *
                     static_cast<size_t>(topo.layers[s] + 1));
    auto at = [&](size_t s, int j, int i) -> Fix16 & {
        return sw[s][static_cast<size_t>(j) *
                         static_cast<size_t>(topo.layers[s] + 1) +
                     static_cast<size_t>(i)];
    };

    DeepWeights w(topo);
    if (init) {
        dtann_assert(init->topology() == topo,
                     "init weight topology mismatch");
        w = *init;
    } else {
        w.initRandom(rng);
    }
    for (size_t s = 0; s < topo.stages(); ++s)
        for (int j = 0; j < topo.layers[s + 1]; ++j)
            for (int i = 0; i <= topo.layers[s]; ++i)
                at(s, j, i) = Fix16::fromDouble(w.at(s, j, i));

    auto push = [&]() {
        for (size_t s = 0; s < topo.stages(); ++s)
            for (int j = 0; j < topo.layers[s + 1]; ++j)
                for (int i = 0; i <= topo.layers[s]; ++i)
                    w.at(s, j, i) = at(s, j, i).toDouble();
        model.setLayerWeights(w);
    };
    push();

    const Fix16 lr = Fix16::fromDouble(hyper.learningRate);
    const Fix16 one = Fix16::fromDouble(1.0);

    std::vector<Fix16> x(static_cast<size_t>(topo.inputs()));
    std::vector<std::vector<Fix16>> act_fx(topo.stages());
    std::vector<std::vector<Fix16>> grad(topo.stages());
    for (size_t s = 0; s < topo.stages(); ++s) {
        act_fx[s].resize(static_cast<size_t>(topo.layers[s + 1]));
        grad[s].resize(static_cast<size_t>(topo.layers[s + 1]));
    }

    runTrainingEpochs(
        model, train_set, rng, hyper.epochs, [&](size_t n) {
            for (int i = 0; i < topo.inputs(); ++i)
                x[static_cast<size_t>(i)] = Fix16::fromDouble(
                    train_set.rows[n][static_cast<size_t>(i)]);
            Activations act = model.forward(train_set.rows[n]);
            for (size_t s = 0; s < topo.stages(); ++s)
                for (int j = 0; j < topo.layers[s + 1]; ++j)
                    act_fx[s][static_cast<size_t>(j)] =
                        Fix16::fromDouble(
                            act.layers[s][static_cast<size_t>(j)]);

            // Output gradients: (t - y) * y * (1 - y), all Q6.10.
            size_t last = topo.stages() - 1;
            for (int k = 0; k < topo.outputs(); ++k) {
                Fix16 y = act_fx[last][static_cast<size_t>(k)];
                Fix16 t = Fix16::fromDouble(
                    k == train_set.labels[n] ? 1.0 : 0.0);
                Fix16 err = Fix16::satAdd(
                    t, Fix16::fromDouble(-y.toDouble()));
                Fix16 deriv = Fix16::satMul(
                    y, Fix16::satAdd(one,
                                     Fix16::fromDouble(-y.toDouble())));
                grad[last][static_cast<size_t>(k)] =
                    Fix16::satMul(deriv, err);
            }
            // Hidden-stage gradients.
            for (size_t s = last; s-- > 0;) {
                int width = topo.layers[s + 1];
                int above = topo.layers[s + 2];
                for (int j = 0; j < width; ++j) {
                    Fix16 back;
                    for (int k = 0; k < above; ++k)
                        back = mac(back,
                                   grad[s + 1][static_cast<size_t>(k)],
                                   at(s + 1, k, j));
                    Fix16 h = act_fx[s][static_cast<size_t>(j)];
                    Fix16 deriv = Fix16::satMul(
                        h,
                        Fix16::satAdd(
                            one, Fix16::fromDouble(-h.toDouble())));
                    grad[s][static_cast<size_t>(j)] =
                        Fix16::satMul(deriv, back);
                }
            }
            // Updates: w += lr * grad * activation (no momentum in
            // the on-line datapath; Q6.10 momentum memory would
            // underflow immediately).
            for (size_t s = 0; s < topo.stages(); ++s) {
                int fanin = topo.layers[s];
                int width = topo.layers[s + 1];
                const std::vector<Fix16> &in_fx =
                    s == 0 ? x : act_fx[s - 1];
                for (int j = 0; j < width; ++j) {
                    Fix16 scaled = Fix16::satMul(
                        lr, grad[s][static_cast<size_t>(j)]);
                    for (int i = 0; i < fanin; ++i)
                        at(s, j, i) = mac(at(s, j, i), scaled,
                                          in_fx[static_cast<size_t>(i)]);
                    at(s, j, fanin) =
                        Fix16::satAdd(at(s, j, fanin), scaled);
                }
            }
            push();
        });
    return w;
}

MlpWeights
FixedTrainer::train(ForwardModel &model, const Dataset &train_set,
                    Rng &rng, const MlpWeights *init) const
{
    if (init) {
        DeepWeights init_layers = toLayerWeights(*init);
        return toMlpWeights(
            trainLayers(model, train_set, rng, &init_layers));
    }
    return toMlpWeights(trainLayers(model, train_set, rng));
}

} // namespace dtann
