/**
 * @file
 * The one batch-first evaluation/training core shared by every
 * trainer (float, fixed-point) and every campaign (Fig 5/10/11,
 * ablations, mitigation).
 *
 * Evaluation hands the whole dataset to ForwardModel::forwardBatch
 * so faulty operators run up to 64 rows per gate-level sweep;
 * training cannot batch (weights change after every sample), so the
 * epoch loop dispatches one sample at a time and each trainer
 * supplies only its per-sample forward/backward/install step.
 */

#ifndef DTANN_ANN_TRAIN_CORE_HH
#define DTANN_ANN_TRAIN_CORE_HH

#include <functional>

#include "ann/mlp.hh"
#include "data/dataset.hh"

namespace dtann {

/** Index of the largest output (class prediction). */
int argmax(std::span<const double> values);

/** Classification accuracy of @p model on @p test_set (batched
 *  forward sweep; predictions restricted to the task's classes). */
double evalAccuracy(ForwardModel &model, const Dataset &test_set);

/** Mean squared error of @p model on @p test_set (batched forward
 *  sweep, one-hot targets). */
double evalMse(ForwardModel &model, const Dataset &test_set);

/**
 * The shared epoch loop: asserts @p model fits @p train_set,
 * re-shuffles the visit order with @p rng every epoch, and calls
 * @p step(row_index) once per sample. The step closure runs the
 * sample forward, back-propagates, and installs updated weights.
 */
void runTrainingEpochs(ForwardModel &model, const Dataset &train_set,
                       Rng &rng, int epochs,
                       const std::function<void(size_t)> &step);

} // namespace dtann

#endif // DTANN_ANN_TRAIN_CORE_HH
