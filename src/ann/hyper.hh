/**
 * @file
 * Hyper-parameter grid search over the paper's Table I space.
 */

#ifndef DTANN_ANN_HYPER_HH
#define DTANN_ANN_HYPER_HH

#include <vector>

#include "ann/crossval.hh"

namespace dtann {

/** Axes of the search grid. */
struct HyperSpace
{
    std::vector<int> hidden;
    std::vector<int> epochs;
    std::vector<double> learningRate;
    std::vector<double> momentum;

    /** The paper's full Table I space (1920 points). */
    static HyperSpace paperTableI();

    /** A reduced space for quick runs (same extremes). */
    static HyperSpace reduced();

    size_t size() const
    {
        return hidden.size() * epochs.size() * learningRate.size() *
            momentum.size();
    }
};

/** Grid-search outcome. */
struct HyperResult
{
    Hyper best;
    double accuracy = 0.0;
    size_t evaluated = 0;
};

/**
 * Search the grid with k-fold cross-validated FloatMlp training
 * (the paper searches hyper-parameters in software).
 */
HyperResult gridSearch(const Dataset &ds, const HyperSpace &space,
                       int folds, Rng &rng);

} // namespace dtann

#endif // DTANN_ANN_HYPER_HH
