#include "ann/hyper.hh"

#include "common/logging.hh"

namespace dtann {

HyperSpace
HyperSpace::paperTableI()
{
    HyperSpace s;
    for (int h = 2; h <= 16; h += 2)
        s.hidden.push_back(h);
    for (int e = 100; e <= 3200; e *= 2)
        s.epochs.push_back(e);
    for (int i = 1; i <= 9; ++i) {
        s.learningRate.push_back(0.1 * i);
        s.momentum.push_back(0.1 * i);
    }
    return s;
}

HyperSpace
HyperSpace::reduced()
{
    HyperSpace s;
    s.hidden = {4, 10, 16};
    s.epochs = {80, 250};
    s.learningRate = {0.1, 0.3, 0.9};
    s.momentum = {0.1, 0.5};
    return s;
}

HyperResult
gridSearch(const Dataset &ds, const HyperSpace &space, int folds,
           Rng &rng)
{
    dtann_assert(space.size() > 0, "empty hyper-parameter space");
    HyperResult result;
    for (int h : space.hidden) {
        for (int e : space.epochs) {
            for (double lr : space.learningRate) {
                for (double mom : space.momentum) {
                    Hyper hp{h, e, lr, mom};
                    FloatMlp model(
                        {ds.numAttributes, h, ds.numClasses});
                    Rng fold_rng = rng.split();
                    CrossValResult cv = crossValidate(
                        model, ds, folds, Trainer(hp), fold_rng);
                    ++result.evaluated;
                    if (cv.meanAccuracy > result.accuracy) {
                        result.accuracy = cv.meanAccuracy;
                        result.best = hp;
                    }
                }
            }
        }
    }
    return result;
}

} // namespace dtann
