#include "ann/sigmoid.hh"

#include <cmath>

namespace dtann {

double
logistic(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

const PwlTable &
logisticPwlTable()
{
    static const PwlTable table = [] {
        PwlTable t;
        for (int i = 0; i < 16; ++i) {
            double x0 = -8.0 + i;
            double x1 = x0 + 1.0;
            double y0 = logistic(x0);
            double y1 = logistic(x1);
            double a = y1 - y0;
            double b = y0 - a * x0;
            t[static_cast<size_t>(i)] = {Fix16::fromDouble(a),
                                         Fix16::fromDouble(b)};
        }
        return t;
    }();
    return table;
}

double
logisticPwl(double x)
{
    return logisticPwlFix(Fix16::fromDouble(x)).toDouble();
}

Fix16
logisticPwlFix(Fix16 x)
{
    return sigmoidUnitRef(logisticPwlTable(), x);
}

} // namespace dtann
