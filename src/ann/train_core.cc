#include "ann/train_core.hh"

#include <numeric>

#include "common/logging.hh"

namespace dtann {

int
argmax(std::span<const double> values)
{
    dtann_assert(!values.empty(), "argmax of empty span");
    size_t best = 0;
    for (size_t i = 1; i < values.size(); ++i)
        if (values[i] > values[best])
            best = i;
    return static_cast<int>(best);
}

double
evalAccuracy(ForwardModel &model, const Dataset &test_set)
{
    if (test_set.size() == 0)
        return 0.0;
    size_t correct = 0;
    // Test sweeps have no feedback into the weights, so rows go
    // through the batched forward path (64 rows per gate-level
    // sweep on faulty hardware); training cannot do this, as it
    // updates weights after every sample.
    std::span<const std::vector<double>> rows(test_set.rows);
    std::vector<Activations> acts = model.forwardBatch(rows);
    for (size_t n = 0; n < acts.size(); ++n) {
        // Restrict the prediction to the classes the task uses (the
        // physical network may have spare outputs).
        std::span<const double> outs(
            acts[n].output().data(),
            static_cast<size_t>(test_set.numClasses));
        if (argmax(outs) == test_set.labels[n])
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(test_set.size());
}

double
evalMse(ForwardModel &model, const Dataset &test_set)
{
    if (test_set.size() == 0)
        return 0.0;
    double total = 0.0;
    int outputs = model.topology().outputs;
    std::span<const std::vector<double>> rows(test_set.rows);
    std::vector<Activations> acts = model.forwardBatch(rows);
    for (size_t n = 0; n < acts.size(); ++n) {
        for (int k = 0; k < outputs; ++k) {
            double t =
                k == test_set.labels[n] ? 1.0 : 0.0;
            double e = t - acts[n].output()[static_cast<size_t>(k)];
            total += e * e;
        }
    }
    return total / (static_cast<double>(test_set.size()) * outputs);
}

void
runTrainingEpochs(ForwardModel &model, const Dataset &train_set,
                  Rng &rng, int epochs,
                  const std::function<void(size_t)> &step)
{
    DeepTopology topo = model.layerTopology();
    dtann_assert(topo.inputs() == train_set.numAttributes,
                 "dataset arity mismatch");
    dtann_assert(topo.outputs() >= train_set.numClasses,
                 "too few outputs for dataset classes");

    std::vector<size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(order);
        for (size_t n : order)
            step(n);
    }
}

} // namespace dtann
