#include "data/uci_meta.hh"

namespace dtann {

const std::vector<UciDatasetInfo> &
uciCensus()
{
    // 135 data sets; attribute counts are the catalogued values of
    // the corresponding UCI entries (2007-era repository).
    static const std::vector<UciDatasetInfo> census = {
        {"abalone", 8}, {"adult", 14}, {"annealing", 38},
        {"arrhythmia", 279},
        {"artificial-characters", 7}, {"audiology", 69},
        {"auto-mpg", 8}, {"automobile", 25}, {"badges", 11},
        {"balance-scale", 4}, {"balloons", 4}, {"breast-cancer", 9},
        {"breast-cancer-wisconsin", 30}, {"bridges", 13},
        {"car-evaluation", 6}, {"census-income", 41},
        {"chess-kr-vs-k", 6}, {"chess-kr-vs-kp", 36}, {"cmc", 9},
        {"connect-4", 42}, {"connectionist-vowel", 10},
        {"covertype", 54}, {"credit-approval", 15},
        {"credit-german", 20}, {"cylinder-bands", 39},
        {"dermatology", 34}, {"diabetes-pima", 8}, {"dgp2", 7},
        {"echocardiogram", 12}, {"ecoli", 7}, {"el-nino", 12},
        {"flags", 30}, {"forest-fires", 12}, {"function-finding", 5},
        {"glass", 9}, {"haberman", 3}, {"hayes-roth", 4},
        {"heart-cleveland", 13}, {"heart-hungarian", 13},
        {"heart-statlog", 13}, {"heart-switzerland", 13},
        {"heart-va", 13}, {"hepatitis", 19}, {"horse-colic", 27},
        {"housing", 13}, {"image-segmentation", 19},
        {"internet-ads", 1558}, {"ionosphere", 34}, {"iris", 4},
        {"isolet", 617}, {"kddcup99", 41},
        {"kinship", 12}, {"labor-relations", 16},
        {"landsat-statlog", 36}, {"lenses", 4},
        {"letter-recognition", 16}, {"liver-bupa", 6},
        {"lung-cancer", 56}, {"lymphography", 18},
        {"magic-telescope", 10}, {"mammographic-mass", 5},
        {"mechanical-analysis", 8}, {"meta-data", 21},
        {"mfeat-fourier", 76},
        {"mfeat-karhunen", 64}, {"mfeat-morphological", 6},
        {"mfeat-pixel", 240}, {"mfeat-zernike", 47},
        {"molecular-promoters", 57}, {"molecular-splice", 60},
        {"monks-1", 6}, {"monks-2", 6}, {"monks-3", 6},
        {"moral-reasoner", 23}, {"mushroom", 22}, {"musk-1", 166},
        {"musk-2", 166}, {"nursery", 8}, {"optdigits", 64},
        {"ozone", 72}, {"page-blocks", 10}, {"parkinsons", 22},
        {"pendigits", 16}, {"phoneme", 5}, {"pittsburgh-bridges", 11},
        {"poker-hand", 10}, {"post-operative", 8},
        {"primary-tumor", 17}, {"quadruped-mammals", 72},
        {"dexter", 20000}, {"robot-failures-lp1", 90},
        {"robot-failures-lp2", 90}, {"robot-failures-lp3", 90},
        {"robot-failures-lp4", 90}, {"robot-failures-lp5", 90},
        {"secom", 591}, {"seeds", 7}, {"semeion", 256},
        {"servo", 4}, {"shuttle-landing", 6}, {"shuttle-statlog", 9},
        {"sick", 29}, {"solar-flare", 12}, {"sonar", 60},
        {"soybean-large", 35}, {"soybean-small", 35},
        {"spambase", 57}, {"spect", 22}, {"spectf", 44},
        {"sponge", 45}, {"steel-plates", 27},
        {"synthetic-control", 60}, {"teaching-assistant", 5},
        {"thyroid-allbp", 26}, {"thyroid-ann", 21},
        {"thyroid-new", 5}, {"tic-tac-toe", 9}, {"trains", 32},
        {"transfusion", 4}, {"university", 17}, {"us-census-1990", 68},
        {"vehicle-statlog", 18}, {"vertebral", 6},
        {"volcanoes", 3}, {"voting-records", 16}, {"vowel", 10},
        {"water-treatment", 38}, {"waveform", 21},
        {"waveform-noise", 40}, {"wine", 13}, {"wine-quality-red", 11},
        {"wine-quality-white", 11}, {"yeast", 8}, {"zoo", 16}, {"acute-inflammations", 6},
    };
    return census;
}

double
censusCumulativeFraction(int attributes)
{
    const auto &census = uciCensus();
    size_t below = 0;
    for (const auto &e : census)
        if (e.attributes <= attributes)
            ++below;
    return static_cast<double>(below) /
        static_cast<double>(census.size());
}

} // namespace dtann
