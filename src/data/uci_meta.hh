/**
 * @file
 * Attribute census of the UCI machine-learning repository.
 *
 * The paper's Fig 2 plots the cumulative fraction of the 135 UCI
 * data sets (2007 snapshot) as a function of their number of
 * attributes, motivating the 90-input design point (>92 % of data
 * sets have fewer than 100 attributes). This table is an embedded
 * approximation of that census built from the well-known data-set
 * catalogue; see DESIGN.md for the substitution note.
 */

#ifndef DTANN_DATA_UCI_META_HH
#define DTANN_DATA_UCI_META_HH

#include <string>
#include <vector>

namespace dtann {

/** One repository entry. */
struct UciDatasetInfo
{
    std::string name;
    int attributes;
};

/** The embedded 135-entry census. */
const std::vector<UciDatasetInfo> &uciCensus();

/**
 * Fraction of census data sets with at most @p attributes inputs
 * (the Fig 2 CDF).
 */
double censusCumulativeFraction(int attributes);

} // namespace dtann

#endif // DTANN_DATA_UCI_META_HH
