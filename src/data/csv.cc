#include "data/csv.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace dtann {

Dataset
loadCsv(std::istream &in, const std::string &name)
{
    Dataset ds;
    ds.name = name;
    std::string line;
    size_t lineno = 0;
    int max_label = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Trim trailing CR and surrounding whitespace.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<double> fields;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ',')) {
            try {
                fields.push_back(std::stod(cell));
            } catch (const std::exception &) {
                fatal("%s:%zu: non-numeric cell '%s'", name.c_str(),
                      lineno, cell.c_str());
            }
        }
        if (fields.size() < 2)
            fatal("%s:%zu: need at least 1 attribute and a label",
                  name.c_str(), lineno);
        int label = static_cast<int>(fields.back());
        if (label < 0 ||
            static_cast<double>(label) != fields.back())
            fatal("%s:%zu: label must be a non-negative integer",
                  name.c_str(), lineno);
        fields.pop_back();
        if (ds.rows.empty()) {
            ds.numAttributes = static_cast<int>(fields.size());
        } else if (static_cast<int>(fields.size()) != ds.numAttributes) {
            fatal("%s:%zu: inconsistent attribute count", name.c_str(),
                  lineno);
        }
        max_label = std::max(max_label, label);
        ds.rows.push_back(std::move(fields));
        ds.labels.push_back(label);
    }
    if (ds.rows.empty())
        fatal("%s: empty dataset", name.c_str());
    ds.numClasses = max_label + 1;
    if (ds.numClasses < 2)
        fatal("%s: need at least 2 classes", name.c_str());
    ds.validate();
    return ds;
}

Dataset
loadCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    return loadCsv(in, path);
}

void
saveCsv(std::ostream &out, const Dataset &ds)
{
    out << "# " << ds.name << ": " << ds.numAttributes
        << " attributes, " << ds.numClasses << " classes\n";
    for (size_t i = 0; i < ds.size(); ++i) {
        for (double v : ds.rows[i])
            out << v << ',';
        out << ds.labels[i] << '\n';
    }
}

} // namespace dtann
