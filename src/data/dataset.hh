/**
 * @file
 * Classification dataset container and utilities.
 */

#ifndef DTANN_DATA_DATASET_HH
#define DTANN_DATA_DATASET_HH

#include <string>
#include <vector>

#include "common/rng.hh"

namespace dtann {

/** An in-memory classification dataset. */
struct Dataset
{
    std::string name;
    int numAttributes = 0;
    int numClasses = 0;
    /** One row of attribute values per example. */
    std::vector<std::vector<double>> rows;
    /** Class label per example, in [0, numClasses). */
    std::vector<int> labels;

    /** Number of examples. */
    size_t size() const { return rows.size(); }

    /** Check structural invariants; panics on violation. */
    void validate() const;
};

/**
 * Min-max normalize every attribute to [0, 1] in place (constant
 * attributes map to 0). The accelerator feeds inputs as Q6.10
 * values in [0, 1].
 */
void normalizeMinMax(Dataset &ds);

/** Shuffle examples (rows and labels together). */
void shuffleDataset(Dataset &ds, Rng &rng);

/**
 * Split indices into @p k cross-validation folds of near-equal
 * size, preserving example order (shuffle first for random folds).
 */
std::vector<std::vector<size_t>> kFoldIndices(size_t n, int k);

/** Build the subset of @p ds given by @p indices. */
Dataset subset(const Dataset &ds, const std::vector<size_t> &indices);

/** Build the complement subset (all examples NOT in fold @p f). */
Dataset complementSubset(const Dataset &ds,
                         const std::vector<std::vector<size_t>> &folds,
                         size_t f);

} // namespace dtann

#endif // DTANN_DATA_DATASET_HH
