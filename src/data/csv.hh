/**
 * @file
 * Minimal CSV I/O so real UCI files can replace the synthetic
 * generators.
 *
 * Format: one example per line, comma-separated numeric attributes,
 * last column is an integer class label. Lines starting with '#'
 * are comments.
 */

#ifndef DTANN_DATA_CSV_HH
#define DTANN_DATA_CSV_HH

#include <iosfwd>
#include <string>

#include "data/dataset.hh"

namespace dtann {

/** Parse a dataset from a stream. Fatal on malformed content. */
Dataset loadCsv(std::istream &in, const std::string &name);

/** Load a dataset from a file path. Fatal when unreadable. */
Dataset loadCsvFile(const std::string &path);

/** Write a dataset in the same format. */
void saveCsv(std::ostream &out, const Dataset &ds);

} // namespace dtann

#endif // DTANN_DATA_CSV_HH
