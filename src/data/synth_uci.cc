#include "data/synth_uci.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dtann {

const std::vector<UciTaskSpec> &
uciTasks()
{
    // Dimensions, class counts, original sizes and best
    // hyper-parameters are the paper's Table II. The difficulty
    // knob is ours (see header).
    static const std::vector<UciTaskSpec> tasks = {
        {"breast", 30, 2, 569, 0.60, 0.1, 200, 14},
        {"glass", 9, 6, 214, 0.65, 0.1, 800, 10},
        {"ionosphere", 34, 2, 351, 0.60, 0.3, 100, 6},
        {"iris", 4, 3, 150, 0.30, 0.2, 100, 8},
        {"optdigits", 64, 10, 5620, 0.25, 0.1, 200, 14},
        {"robot", 90, 5, 463, 0.40, 0.2, 1600, 6},
        {"sonar", 60, 2, 208, 0.70, 0.1, 100, 10},
        {"spam", 57, 2, 4601, 0.70, 0.1, 800, 6},
        {"vehicle", 18, 4, 846, 0.68, 0.1, 400, 6},
        {"wine", 13, 3, 178, 0.50, 0.2, 1600, 4},
    };
    return tasks;
}

const UciTaskSpec &
uciTask(const std::string &name)
{
    for (const UciTaskSpec &t : uciTasks())
        if (t.name == name)
            return t;
    fatal("unknown UCI task '%s'", name.c_str());
}

Dataset
makeSyntheticTask(const UciTaskSpec &spec, Rng &rng, size_t rows)
{
    if (rows == 0)
        rows = static_cast<size_t>(spec.rows);

    size_t d = static_cast<size_t>(spec.attributes);
    // Only a subset of attributes is informative (as in real UCI
    // data); the rest is uniform noise.
    size_t informative = std::min<size_t>(d, 10);
    // Many-class tasks get unimodal classes so a 10-hidden-neuron
    // MLP can represent the decision surface.
    const int centersPerClass = spec.classes >= 5 ? 1 : 2;

    // Per-class cluster centers over the informative dimensions.
    // Sample several candidate center sets and keep the one with
    // the largest minimum inter-class distance, so the difficulty
    // knob scales noise against a known separation.
    using CenterSet = std::vector<std::vector<std::vector<double>>>;
    CenterSet centers;
    double best_sep = -1.0;
    for (int attempt = 0; attempt < 60; ++attempt) {
        CenterSet cand(static_cast<size_t>(spec.classes));
        for (auto &cls : cand) {
            cls.resize(centersPerClass);
            for (auto &c : cls) {
                c.resize(informative);
                for (double &v : c)
                    v = rng.nextDouble(0.15, 0.85);
            }
        }
        double min_sep = 1e9;
        for (size_t a = 0; a < cand.size(); ++a)
            for (size_t b = a + 1; b < cand.size(); ++b)
                for (const auto &ca : cand[a])
                    for (const auto &cb : cand[b]) {
                        double dist2 = 0.0;
                        for (size_t j = 0; j < informative; ++j)
                            dist2 += (ca[j] - cb[j]) * (ca[j] - cb[j]);
                        min_sep = std::min(min_sep, std::sqrt(dist2));
                    }
        if (min_sep > best_sep) {
            best_sep = min_sep;
            centers = std::move(cand);
        }
    }

    // Per-dimension noise scaled to the achieved separation: the
    // one-dimensional Bayes error between the two closest clusters
    // is roughly Phi(-1.25 / difficulty).
    double sigma = spec.difficulty * best_sep / 2.5;

    Dataset ds;
    ds.name = spec.name;
    ds.numAttributes = spec.attributes;
    ds.numClasses = spec.classes;
    ds.rows.reserve(rows);
    ds.labels.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
        int label = static_cast<int>(
            i % static_cast<size_t>(spec.classes)); // balanced classes
        const auto &c =
            centers[static_cast<size_t>(label)]
                   [rng.nextUint(static_cast<uint64_t>(centersPerClass))];
        std::vector<double> row(d);
        for (size_t j = 0; j < d; ++j) {
            if (j < informative) {
                row[j] = std::clamp(rng.nextGauss(c[j], sigma), 0.0, 1.0);
            } else {
                row[j] = rng.nextDouble();
            }
        }
        ds.rows.push_back(std::move(row));
        ds.labels.push_back(label);
    }
    shuffleDataset(ds, rng);
    ds.validate();
    return ds;
}

} // namespace dtann
