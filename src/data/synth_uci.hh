/**
 * @file
 * Synthetic stand-ins for the paper's 10 UCI benchmark tasks.
 *
 * The original UCI data files are not bundled; instead each task is
 * generated as a Gaussian mixture with exactly the paper's number
 * of attributes and classes (Table II) and a per-task difficulty
 * chosen so the trained-network accuracy spread resembles the
 * paper's Fig 10 baseline (roughly 0.75-0.97). Defect-tolerance
 * behaviour depends on the network topology and input
 * dimensionality, which match the paper exactly; see DESIGN.md for
 * the substitution rationale. Real UCI CSV files can be loaded with
 * data/csv.hh instead.
 */

#ifndef DTANN_DATA_SYNTH_UCI_HH
#define DTANN_DATA_SYNTH_UCI_HH

#include <string>
#include <vector>

#include "data/dataset.hh"

namespace dtann {

/** Description of one benchmark task (paper Table II). */
struct UciTaskSpec
{
    std::string name;
    int attributes;     ///< # inputs
    int classes;        ///< # outputs
    int rows;           ///< examples in the original dataset
    double difficulty;  ///< cluster overlap, 0 = separable
    // Paper's best hyper-parameters (Table II), for reference and
    // as defaults when skipping the grid search.
    double learningRate;
    int epochs;
    int hidden;
};

/** The paper's 10-task benchmark suite. */
const std::vector<UciTaskSpec> &uciTasks();

/** Find a task spec by name; fatal when unknown. */
const UciTaskSpec &uciTask(const std::string &name);

/**
 * Generate the synthetic dataset for @p spec.
 *
 * @param spec task description
 * @param rng randomness source (generation is deterministic per
 *        seed)
 * @param rows number of examples, or 0 for the original size
 */
Dataset makeSyntheticTask(const UciTaskSpec &spec, Rng &rng,
                          size_t rows = 0);

} // namespace dtann

#endif // DTANN_DATA_SYNTH_UCI_HH
