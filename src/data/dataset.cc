#include "data/dataset.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

void
Dataset::validate() const
{
    dtann_assert(rows.size() == labels.size(),
                 "rows/labels size mismatch in %s", name.c_str());
    dtann_assert(numClasses >= 2, "%s needs at least 2 classes",
                 name.c_str());
    for (size_t i = 0; i < rows.size(); ++i) {
        dtann_assert(static_cast<int>(rows[i].size()) == numAttributes,
                     "%s row %zu has wrong arity", name.c_str(), i);
        dtann_assert(labels[i] >= 0 && labels[i] < numClasses,
                     "%s row %zu label out of range", name.c_str(), i);
    }
}

void
normalizeMinMax(Dataset &ds)
{
    if (ds.rows.empty())
        return;
    size_t d = static_cast<size_t>(ds.numAttributes);
    std::vector<double> lo(d, 0.0), hi(d, 0.0);
    for (size_t j = 0; j < d; ++j) {
        lo[j] = hi[j] = ds.rows[0][j];
        for (const auto &row : ds.rows) {
            lo[j] = std::min(lo[j], row[j]);
            hi[j] = std::max(hi[j], row[j]);
        }
    }
    for (auto &row : ds.rows) {
        for (size_t j = 0; j < d; ++j) {
            double span = hi[j] - lo[j];
            row[j] = span > 0.0 ? (row[j] - lo[j]) / span : 0.0;
        }
    }
}

void
shuffleDataset(Dataset &ds, Rng &rng)
{
    for (size_t i = ds.size(); i > 1; --i) {
        size_t j = rng.nextUint(i);
        std::swap(ds.rows[i - 1], ds.rows[j]);
        std::swap(ds.labels[i - 1], ds.labels[j]);
    }
}

std::vector<std::vector<size_t>>
kFoldIndices(size_t n, int k)
{
    dtann_assert(k >= 2, "need at least 2 folds");
    std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
    for (size_t i = 0; i < n; ++i)
        folds[i % static_cast<size_t>(k)].push_back(i);
    return folds;
}

Dataset
subset(const Dataset &ds, const std::vector<size_t> &indices)
{
    Dataset out;
    out.name = ds.name;
    out.numAttributes = ds.numAttributes;
    out.numClasses = ds.numClasses;
    out.rows.reserve(indices.size());
    out.labels.reserve(indices.size());
    for (size_t i : indices) {
        dtann_assert(i < ds.size(), "subset index out of range");
        out.rows.push_back(ds.rows[i]);
        out.labels.push_back(ds.labels[i]);
    }
    return out;
}

Dataset
complementSubset(const Dataset &ds,
                 const std::vector<std::vector<size_t>> &folds, size_t f)
{
    std::vector<size_t> keep;
    for (size_t g = 0; g < folds.size(); ++g)
        if (g != f)
            keep.insert(keep.end(), folds[g].begin(), folds[g].end());
    std::sort(keep.begin(), keep.end());
    return subset(ds, keep);
}

} // namespace dtann
