/**
 * @file
 * Key-logic vulnerability: the weight-write decoder.
 *
 * The paper's Section II argument for spatial expansion: "a faulty
 * transistor within this control logic would wreck the
 * accelerator". The spatially expanded array has almost no control
 * logic — but the weight-write path still needs a per-neuron select
 * decoder, which is therefore classified as key logic that must be
 * defect-free (and kept small / implemented with larger
 * transistors).
 *
 * This module builds that decoder as a real netlist so a single
 * transistor defect can be injected into it, and routes weight
 * writes through it: a defective decoder silently misdirects whole
 * weight rows, which retraining cannot compensate because every
 * subsequent write is misdirected too.
 */

#ifndef DTANN_CORE_KEYLOGIC_HH
#define DTANN_CORE_KEYLOGIC_HH

#include <memory>

#include "ann/mlp.hh"
#include "core/accelerator.hh"

namespace dtann {

/**
 * Build the neuron-select decoder netlist.
 *
 * Primary inputs: address bits (ceil(log2(lines))), then a write
 * enable. Primary outputs: @p lines one-hot select lines. Each
 * line is one cell group.
 */
Netlist buildWriteDecoder(int lines);

/** A (possibly defective) weight-write decoder instance. */
class WriteDecoder
{
  public:
    explicit WriteDecoder(int lines);

    /** Number of select lines. */
    int lines() const { return numLines; }

    /** Address width in bits. */
    int addressBits() const { return addrBits; }

    /** Inject transistor-level defects into the decoder. */
    std::vector<InjectionRecord> inject(int count, Rng &rng);

    /**
     * Drive the decoder: which select lines assert for
     * @p address with write enable high? A clean decoder returns
     * exactly one line.
     */
    std::vector<bool> select(int address);

  private:
    int numLines;
    int addrBits;
    std::shared_ptr<const Netlist> nl;
    std::unique_ptr<OperatorSim> sim;
};

/**
 * Write a full network's weight rows through the decoder: hidden
 * rows use addresses [0, hidden), output rows
 * [hidden, hidden + outputs). Rows whose select line asserts are
 * (re)written, misrouted or skipped exactly as the decoder
 * dictates.
 *
 * @param accel the array (weights quantized to its physical shape)
 * @param w logical weights mapped like Accelerator::setWeights
 * @param decoder the write decoder (needs hidden + outputs lines)
 */
void writeWeightsThroughDecoder(Accelerator &accel, const MlpWeights &w,
                                WriteDecoder &decoder);

} // namespace dtann

#endif // DTANN_CORE_KEYLOGIC_HH
