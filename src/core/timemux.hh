/**
 * @file
 * Partial time-multiplexing of larger networks (paper Section II
 * and the "Time-Multiplexing add-ons" of Fig 3).
 *
 * Networks that do not fit the physical array are executed by
 * treating every logical neuron as part of one large layer and
 * mapping it, pass by pass, onto the physical hidden-layer
 * neurons:
 *
 *  - up to `hidden` logical neurons run per pass;
 *  - a neuron whose fan-in exceeds the physical input count is
 *    split into input chunks; the pre-activation chunk sums are
 *    collected through the added output latches and accumulated in
 *    key logic, and the final sum is fed back through the array
 *    (weight 1.0 is exact in Q6.10) so the physical activation unit
 *    produces the neuron output;
 *  - weight rows are reloaded through the DMA write path before
 *    every pass.
 *
 * A defect in a physical neuron therefore affects every logical
 * neuron mapped onto it — the paper's point that time-multiplexing
 * "effectively multiplies the number of defects by the
 * multiplexing factor". Pass and weight-reload counters feed the
 * cost model.
 */

#ifndef DTANN_CORE_TIMEMUX_HH
#define DTANN_CORE_TIMEMUX_HH

#include "core/accelerator.hh"

namespace dtann {

/**
 * Run one logical layer (neurons sharing a fan-in) on the physical
 * array, batching neurons over the physical hidden row and chunking
 * oversized fan-ins through the key-logic accumulator. This is the
 * engine shared by the 2-layer TimeMuxedMlp and the deep-network
 * wrapper.
 *
 * @param accel physical array
 * @param rows quantized weight rows, [neuron][fanin + 1], bias last
 * @param input the layer's input activations (size = fanin)
 * @return one activation per row
 */
std::vector<Fix16> muxRunLayer(
    Accelerator &accel, const std::vector<std::vector<Fix16>> &rows,
    std::span<const Fix16> input);

/**
 * Batched muxRunLayer: run the same logical layer for up to 64
 * input rows per weight load. Each (neuron batch, chunk) weight
 * reload is hoisted out of the per-row loop and the loaded rows are
 * evaluated over all lanes through the accelerator's lane-batched
 * hidden layer, so faulty operators see 64 rows per gate-level
 * sweep instead of one.
 *
 * Caller must check accel.batchPure(): outputs are then
 * bit-identical per row to muxRunLayer() (every faulty operator is
 * a pure function, and clean latch stores are idempotent), though
 * per-unit deviation probes accumulate the same deviations in lane
 * order rather than row-major order. With stateful faulty units the
 * hoisted reload sequence would diverge — callers fall back to the
 * per-row engine instead.
 *
 * @param accel physical array
 * @param rows quantized weight rows, [neuron][fanin + 1], bias last
 * @param inputs one input activation vector per row (size = fanin)
 * @return [row][neuron] activations
 */
std::vector<std::vector<Fix16>> muxRunLayerBatch(
    Accelerator &accel, const std::vector<std::vector<Fix16>> &rows,
    const std::vector<std::vector<Fix16>> &inputs);

/** Array passes needed by muxRunLayer for this geometry. */
size_t muxLayerPasses(const AcceleratorConfig &cfg, int neurons,
                      int fanin);

/** ForwardModel running an oversized MLP on a physical array. */
class TimeMuxedMlp : public ForwardModel
{
  public:
    /**
     * @param accel physical array (defects may be injected into it)
     * @param logical network dimensions; may exceed the array's
     */
    TimeMuxedMlp(Accelerator &accel, MlpTopology logical);

    MlpTopology topology() const override { return logical; }

    /** Store and quantize weights; rows are reloaded per pass. */
    void setWeights(const MlpWeights &w) override;

    Activations forward(std::span<const double> input) override;

    /**
     * Batched forward: when every faulty unit is lane-batchable
     * (accel.batchPure()) the weight reloads of each pass are
     * hoisted across up to 64 input rows via muxRunLayerBatch();
     * otherwise falls back to the exact per-row loop. Outputs are
     * bit-identical to forward() per row either way.
     */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Work counters of the backing accelerator's faulty units. */
    SimCounters simCounters() const override
    {
        return accel.simCounters();
    }

    /** Array passes needed per input row. */
    size_t passesPerRow() const;

    /** Weight words written per input row (reload traffic). */
    size_t weightWordsPerRow() const;

    /** Logical neurons mapped to the busiest physical neuron. */
    int muxFactor() const;

  private:
    Accelerator &accel;
    MlpTopology logical;

    /** Quantized weight rows: [neuron][fanin + 1], bias last. */
    std::vector<std::vector<Fix16>> hidRows;
    std::vector<std::vector<Fix16>> outRows;

};

} // namespace dtann

#endif // DTANN_CORE_TIMEMUX_HH
