/**
 * @file
 * Weight-stationary systolic hardware backend.
 *
 * The dominant post-2012 accelerator organization (1802.04657,
 * 2006.03616): a grid of processing elements, each holding one
 * stationary weight in its own latch, multiplying the input
 * streaming through it and folding the product into the partial
 * sum flowing down its column. One activation unit sits at each
 * column foot.
 *
 * Mapping of the paper's 2-layer MLP: the grid has
 * max(inputs, hidden) + 1 rows (one per synapse, bias row last)
 * and max(hidden, outputs) columns (one per neuron). The *hidden
 * pass* streams the input row through columns 0..hidden-1 using
 * rows 0..inputs; the stationary weights are then reloaded and the
 * *output pass* streams the hidden activations through columns
 * 0..outputs-1 using rows 0..hidden. Both passes therefore
 * time-multiplex the same physical PEs — the defect model's key
 * difference from the spatial array: a faulty PE at grid (r, c)
 * corrupts synapse r of hidden neuron c AND synapse r of output
 * neuron c, and a faulty column-foot activation unit corrupts a
 * hidden neuron and an output neuron at once.
 *
 * Clean arithmetic is schedule-for-schedule identical to the
 * spatial array (same multiply/add chain per neuron, same
 * quantization), so a defect-free systolic forward pass is
 * bit-identical to the spatial backend — the property the
 * cross-backend differential suite pins. Defective behaviour
 * diverges exactly where the microarchitectures differ.
 */

#ifndef DTANN_CORE_SYSTOLIC_HH
#define DTANN_CORE_SYSTOLIC_HH

#include "core/backend.hh"
#include "rtl/pe_cell.hh"

namespace dtann {

/**
 * Weight-stationary PE-grid backend.
 *
 * Physical unit addressing is Layer::Hidden-canonical: grid PE
 * (row r, column c) is site {kind, Hidden, neuron = c, index = r}.
 * physicalSite() folds both passes onto those shared addresses;
 * deviation probes stay pass-keyed and probe() merges the per-pass
 * accumulators deterministically (Chan's update), so scalar and
 * lane-batched evaluation remain bit-identical.
 */
class SystolicBackend : public HardwareBackend
{
  public:
    SystolicBackend(const AcceleratorConfig &config, MlpTopology logical);

    BackendKind backendKind() const override
    {
        return BackendKind::Systolic;
    }

    /** Grid height: one row per synapse of the widest pass (bias
     *  row last). */
    int gridRows() const { return rows; }
    /** Grid width: one column per neuron of the widest pass. */
    int gridCols() const { return cols; }

    /** PE cell description (netlists + transistor census) for the
     *  cost model. */
    const PeCell &peCell() const { return cell; }

    void setWeights(const MlpWeights &w) override;
    Activations forward(std::span<const double> input) override;
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    int unitCount(UnitKind kind) const override;

    /**
     * Physical PE-grid sites in fixed column-major order. A site is
     * eligible when any pass the pool admits uses it: the hidden
     * pass flag covers the PEs the input->hidden schedule touches,
     * the output pass flag those of the hidden->output schedule
     * (shared PEs are eligible under either flag, listed once).
     */
    std::vector<UnitSite>
    enumerateSites(const SitePool &pool) const override;

    /**
     * Merged deviation statistics of a shared unit: both passes'
     * probe streams folded together (order-independent merge).
     */
    const DeviationProbe &probe(const UnitSite &site) const override;

  protected:
    /** Fold a pass address onto the shared PE grid. */
    UnitSite physicalSite(const UnitSite &pass_site) const override
    {
        return {pass_site.kind, Layer::Hidden, pass_site.neuron,
                pass_site.index};
    }

  private:
    int rows;
    int cols;
    PeCell cell;

    /** Per-pass stationary weights (post-latch values): the latch
     *  at PE (r, c) is reloaded between passes. */
    std::vector<Fix16> hidW; // [hidden][inputs+1]
    std::vector<Fix16> outW; // [outputs][hidden+1]

    std::vector<Fix16> hiddenAct;
    std::vector<Acc24> hidSums;

    mutable DeviationProbe mergedProbe; // probe() scratch

    Fix16 &hidWAt(int j, int i);
    Fix16 &outWAt(int k, int j);

    /** Does either eligible pass use this grid unit? */
    bool usedBy(const SitePool &pool, UnitKind kind, int r,
                int c) const;

    /** Stream one pass through the grid (scalar schedule). */
    void forwardPass(Layer pass, std::span<const Fix16> in,
                     std::span<Fix16> out);

    /** Stream one pass, <= kMaxLanes rows per PE sweep. */
    void forwardPassLanes(Layer pass,
                          const std::vector<const Fix16 *> &in,
                          const std::vector<Fix16 *> &out,
                          size_t lanes);
};

} // namespace dtann

#endif // DTANN_CORE_SYSTOLIC_HH
