/**
 * @file
 * The hardware-backend boundary of the defect-tolerance study.
 *
 * The paper measures defect tolerance on one microarchitecture —
 * the spatially expanded 90-10-10 array — but the question is
 * architecture-relative: the same transistor defect corrupts a
 * different slice of the computation on a different dataflow. A
 * HardwareBackend is everything the campaign stack needs from a
 * microarchitecture:
 *
 *  - a ForwardModel for the mapped logical task (so the companion
 *    core retrains through the faulty hardware),
 *  - a defect-injection surface (unit sites, netlists, injection),
 *  - BIST scan hooks for the diagnosis harness,
 *  - bypass/clamp mitigation hooks, and
 *  - deviation probes + simulation work counters.
 *
 * The fault-hosting machinery (shared operator netlists, per-site
 * gate-level simulations, bypass muxes, clamp windows, deviation
 * probes) is identical across backends and lives here concretely;
 * a backend contributes its *dataflow* — which physical unit
 * executes which (pass, neuron, operand) operation — via
 * physicalSite() and its forward paths. SpatialBackend
 * (core/accelerator.hh) keeps the paper's per-layer dedicated
 * units; SystolicBackend (core/systolic.hh) time-multiplexes a
 * weight-stationary PE grid across both layers.
 */

#ifndef DTANN_CORE_BACKEND_HH
#define DTANN_CORE_BACKEND_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ann/mlp.hh"
#include "circuit/sim_counters.hh"
#include "common/fixed_point.hh"
#include "common/stats.hh"
#include "rtl/builder.hh"
#include "rtl/operator_sim.hh"

namespace dtann {

/** Physical dimensions and implementation style of the array. */
struct AcceleratorConfig
{
    int inputs = 90;
    int hidden = 10;
    int outputs = 10;
    FaStyle faStyle = FaStyle::Nand9;

    /** JSON object (embedded in campaign specs and exports). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static AcceleratorConfig fromJson(const class JsonValue &v);

    bool operator==(const AcceleratorConfig &o) const = default;
};

/** Unit kinds that can host defects (paper Section VI-C). */
enum class UnitKind : uint8_t {
    WeightLatch, ///< 16-bit distributed weight storage
    Multiplier,  ///< per-synapse 16x16 Q6.10 multiplier
    AdderStage,  ///< one 24-bit stage of a neuron's adder chain
    Activation,  ///< per-neuron PWL sigmoid unit
};

/**
 * Layers of the array. For the spatial backend this addresses
 * physically distinct unit banks; for pass-multiplexed backends it
 * doubles as the *pass* coordinate (which layer's computation is
 * flowing through a shared unit).
 */
enum class Layer : uint8_t { Hidden, Output };

/** Address of one hardware unit instance. */
struct UnitSite
{
    UnitKind kind;
    Layer layer;
    int neuron;  ///< neuron index within the layer (grid column)
    int index;   ///< synapse index (latch/mult) or stage index (row)

    bool operator<(const UnitSite &o) const;
    bool operator==(const UnitSite &o) const = default;

    /** Human-readable site description. */
    std::string describe() const;
};

/** Observed |faulty - clean| deviations at one faulty unit. */
struct DeviationProbe
{
    RunningStat amplitude; ///< absolute deviation, in value units
};

/**
 * A per-layer activation clamp window (mitigation hook): a pair of
 * comparators after every activation unit of the layer saturates
 * the datapath value into [lo, hi], filtering the exceptional
 * outputs a defective sigmoid unit can emit (the full ±32 Q6.10
 * range) before they reach the next layer. The clean PWL sigmoid
 * lands in [0, 1], so a profiled window never alters a healthy
 * unit.
 */
struct ActivationClamp
{
    bool enabled = false;
    Fix16 lo;
    Fix16 hi;
};

/** Which unit instances are eligible for defects. */
struct SitePool
{
    bool hiddenLayer = true;   ///< synapses into + neurons of hidden
    bool outputLayer = false;
    bool latches = true;
    bool multipliers = true;
    bool adders = true;
    bool activations = true;

    /** Fig 10 pool: everything in the input and hidden layers. */
    static SitePool inputAndHidden();
    /** Fig 11 pool: output-layer adders and activation functions. */
    static SitePool outputCritical();
    /** Every unit in the array. */
    static SitePool all();

    /** JSON object of the six eligibility flags. */
    std::string toJson() const;
    /**
     * Symmetric counterpart of toJson(). Also accepts the named
     * shorthands "all", "input_hidden" and "output_critical" as a
     * JSON string. Throws JsonError on anything else.
     */
    static SitePool fromJson(const class JsonValue &v);

    bool operator==(const SitePool &o) const = default;
};

/** The implemented hardware backends. */
enum class BackendKind : uint8_t {
    Spatial,  ///< paper Fig 3: per-layer dedicated units
    Systolic, ///< weight-stationary PE grid, pass-multiplexed
};

/** Stable lower-case backend name, used in JSON specs. */
const char *backendName(BackendKind kind);

/** Parse a backendName(); returns false on unknown names. */
bool backendFromName(const std::string &name, BackendKind &out);

/** Comma-separated list of valid names, for error messages. */
std::string backendNameList();

/**
 * Functional + defect model of one hardware target.
 *
 * Owns the shared unit netlists and every piece of fault state:
 * gate-level simulations of faulty units, mitigation bypass muxes,
 * activation clamp windows, and deviation probes. Concrete
 * backends implement the dataflow (setWeights/forward/forwardBatch)
 * on top of the protected pass-addressed unit operations, and
 * describe their physical unit population via unitCount() /
 * enumerateSites() / physicalSite().
 */
class HardwareBackend : public ForwardModel
{
  public:
    /**
     * @param config physical array dimensions
     * @param logical task network mapped onto the array (must fit)
     */
    HardwareBackend(const AcceleratorConfig &config,
                    MlpTopology logical);
    ~HardwareBackend() override;

    /** Which microarchitecture this is. */
    virtual BackendKind backendKind() const = 0;

    /** The mapped logical topology. */
    MlpTopology topology() const override { return logical; }

    /** Physical configuration. */
    const AcceleratorConfig &config() const { return cfg; }

    /** Aggregate simulation work counters over all faulty units. */
    SimCounters simCounters() const override;

    /**
     * True when every faulty unit's simulation is a pure function
     * (lane-batchable: state-free faults on feedback-free
     * netlists; vacuously true on a clean array). Wrapper models
     * that hoist weight reloads across input rows (time-mux) may
     * only do so under this predicate — stateful simulations and
     * faulty weight latches depend on the exact per-row operation
     * order. DTANN_NO_BATCH clears it, forcing the per-row paths.
     */
    bool batchPure() const;

    /**
     * Inject @p count transistor-level defects into one unit
     * instance chosen by the campaign (the unit becomes gate-level
     * simulated). The site folds through physicalSite(), so a pass
     * address of a shared unit hits the same silicon as its
     * canonical address; isFaulty()/bypassUnit()/isBypassed() fold
     * the same way.
     *
     * @return descriptions of the injected faults
     */
    std::vector<InjectionRecord> injectDefects(const UnitSite &site,
                                               int count, Rng &rng);

    /** Remove all injected defects and probes. */
    void clearDefects();

    /** Sites that currently host defects. */
    std::vector<UnitSite> faultySites() const;

    /**
     * Ground-truth query: does @p site currently host injected
     * defects? Diagnosis code (src/mitigate) scores its inferred
     * defect maps against this.
     */
    bool isFaulty(const UnitSite &site) const;

    /** Number of hardware units of @p kind (for site sampling). */
    virtual int unitCount(UnitKind kind) const = 0;

    /**
     * Enumerate every unit instance this backend exposes that
     * @p pool makes eligible, in a fixed deterministic order.
     * Shared by the defect injector (sampling) and the BIST
     * diagnosis harness (exhaustive per-unit probing).
     */
    virtual std::vector<UnitSite>
    enumerateSites(const SitePool &pool) const = 0;

    /** @name BIST scan access (src/mitigate diagnosis harness)
     *
     * Drive a test vector through one unit instance and observe its
     * raw response, modelling a scan-path that isolates the unit
     * from the array datapath. Faulty units respond through their
     * gate-level simulation (including defect-induced memory), clean
     * units respond with native fixed-point arithmetic. Probing
     * updates the unit's deviation probe like any other use.
     * @{ */
    Fix16 bistMul(Layer layer, int neuron, int synapse, Fix16 w,
                  Fix16 x);
    Acc24 bistAdd(Layer layer, int neuron, int stage, Acc24 a, Acc24 b);
    Fix16 bistAct(Layer layer, int neuron, Fix16 x);
    Fix16 bistLatchStore(Layer layer, int neuron, int synapse, Fix16 d);
    /** @} */

    /** @name Defect bypass (src/mitigate mitigation strategies)
     *
     * A bypassed unit is disconnected from the datapath by a small
     * output mux (fault-aware pruning): a bypassed multiplier or
     * weight latch contributes a zero product, a bypassed adder
     * stage passes its accumulator input through unchanged (dropping
     * that stage's product), and a bypassed activation unit emits a
     * constant zero (silencing the neuron). The bypass takes
     * precedence over any injected defect at the unit.
     * @{ */
    void bypassUnit(const UnitSite &site);
    void clearBypasses();
    bool isBypassed(const UnitSite &site) const;
    std::vector<UnitSite> bypassedSites() const;
    /** @} */

    /** @name Activation clamping (src/mitigate ClampActivations)
     *
     * The clamp applies on the *datapath* only — after the
     * activation unit's output, before the value feeds the next
     * layer or leaves the array — so the BIST scan path still
     * observes raw (unclamped) unit responses and diagnosis stays
     * honest. Scalar and lane-batched forwards clamp identically,
     * preserving bit-identity at every lane width.
     * @{ */
    void setActivationClamp(Layer layer, Fix16 lo, Fix16 hi);
    void clearActivationClamps();
    const ActivationClamp &activationClamp(Layer layer) const;
    /** Datapath values saturated by the clamps since the last
     *  clearActivationClamps(). */
    uint64_t clampHits() const { return clampHitCount; }
    /** @} */

    /**
     * Deviation probe of a faulty unit (empty stats when clean).
     * Backends whose units serve several passes merge the per-pass
     * accumulators deterministically.
     */
    virtual const DeviationProbe &probe(const UnitSite &site) const;

    /** Reset all deviation probes. */
    void clearProbes();

    /** Shared netlists (also used by the cost model). @{ */
    const Netlist &multiplierNetlist() const { return *multNl; }
    const Netlist &adderNetlist() const { return *addNl; }
    const Netlist &latchNetlist() const { return *latchNl; }
    const Netlist &activationNetlist() const { return *actNl; }
    /** The netlist instantiated per unit of @p kind. */
    const Netlist &unitNetlist(UnitKind kind) const;
    /** @} */

  protected:
    /**
     * Map a pass-addressed operation (kind, pass layer, neuron,
     * operand index) to the physical unit that executes it. The
     * default is the identity — one dedicated unit per (layer,
     * neuron, index), the spatial dataflow. Pass-multiplexed
     * backends collapse both passes onto shared units. Faulty-sim,
     * bypass and injection state is keyed by the *physical* site;
     * deviation probes stay keyed by the pass address so their
     * order-dependent Welford streams remain per-pass row-ordered
     * (and therefore identical between the scalar and lane-batched
     * paths at any lane width).
     */
    virtual UnitSite physicalSite(const UnitSite &pass_site) const
    {
        return pass_site;
    }

    /** Faulty-unit lookup; null when the site is clean. */
    OperatorSim *simFor(const UnitSite &site);

    /** Apply @p layer's clamp window to one datapath value. */
    Fix16 clampValue(Layer layer, Fix16 x);

    /** Per-unit operations (route through sim when faulty). @{ */
    Fix16 unitMul(Layer layer, int neuron, int synapse, Fix16 w, Fix16 x);
    Acc24 unitAdd(Layer layer, int neuron, int stage, Acc24 a, Acc24 b);
    Fix16 unitAct(Layer layer, int neuron, Fix16 x);
    Fix16 unitLatchStore(Layer layer, int neuron, int synapse, Fix16 d);
    /** @} */

    /** Lane-wise unit operations (<= kMaxLanes rows at a time). @{ */
    void unitMulLanes(Layer layer, int neuron, int synapse, Fix16 w,
                      const Fix16 *x, Fix16 *out, size_t lanes);
    void unitAddLanes(Layer layer, int neuron, int stage, Acc24 *acc,
                      const Acc24 *b, size_t lanes);
    void unitActLanes(Layer layer, int neuron, const Fix16 *x,
                      Fix16 *out, size_t lanes);
    /** @} */

    AcceleratorConfig cfg;
    MlpTopology logical;

    /** Shared unit netlists. */
    std::shared_ptr<const Netlist> multNl;
    std::shared_ptr<const Netlist> addNl;
    std::shared_ptr<const Netlist> latchNl;
    std::shared_ptr<const Netlist> actNl;

    /** Gate-level sims of faulty units (physical-site keyed). */
    std::map<UnitSite, std::unique_ptr<OperatorSim>> faulty;
    /** Units disconnected by the mitigation bypass muxes. */
    std::set<UnitSite> bypassed;
    /** Per-layer activation clamp windows (Hidden, Output). */
    ActivationClamp clamps[2];
    uint64_t clampHitCount = 0;
    /** Deviation probes (pass-address keyed; see physicalSite()). */
    std::map<UnitSite, DeviationProbe> probes;
    DeviationProbe cleanProbe; // returned for clean sites
};

/**
 * Construct the backend for @p kind with the given physical
 * configuration and mapped task. The campaign layer funnels every
 * backend construction through here so a config's `backend` field
 * is honored uniformly.
 */
std::unique_ptr<HardwareBackend>
makeBackend(BackendKind kind, const AcceleratorConfig &config,
            MlpTopology logical);

} // namespace dtann

#endif // DTANN_CORE_BACKEND_HH
