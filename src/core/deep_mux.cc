#include "core/deep_mux.hh"

#include "common/logging.hh"

namespace dtann {

DeepMuxedNetwork::DeepMuxedNetwork(Accelerator &a, DeepTopology t)
    : accel(a), topo(std::move(t))
{
    dtann_assert(topo.layers.size() >= 3,
                 "deep topology needs input, >=1 hidden, output");
}

void
DeepMuxedNetwork::setWeights(const DeepWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    stageRows.assign(topo.stages(), {});
    for (size_t s = 0; s < topo.stages(); ++s) {
        int fanin = topo.layers[s];
        int width = topo.layers[s + 1];
        auto &rows = stageRows[s];
        rows.assign(static_cast<size_t>(width), {});
        for (int j = 0; j < width; ++j) {
            auto &row = rows[static_cast<size_t>(j)];
            row.resize(static_cast<size_t>(fanin + 1));
            for (int i = 0; i <= fanin; ++i)
                row[static_cast<size_t>(i)] =
                    Fix16::fromDouble(w.at(s, j, i));
        }
    }
}

std::vector<std::vector<double>>
DeepMuxedNetwork::forwardAll(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs(),
                 "input arity mismatch");
    dtann_assert(!stageRows.empty(), "setWeights() before forward()");

    std::vector<Fix16> current(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        current[i] = Fix16::fromDouble(input[i]);

    std::vector<std::vector<double>> acts;
    for (size_t s = 0; s < topo.stages(); ++s) {
        std::vector<Fix16> next =
            muxRunLayer(accel, stageRows[s], current);
        std::vector<double> as_double(next.size());
        for (size_t j = 0; j < next.size(); ++j)
            as_double[j] = next[j].toDouble();
        acts.push_back(std::move(as_double));
        current = std::move(next);
    }
    return acts;
}

size_t
DeepMuxedNetwork::passesPerRow() const
{
    size_t passes = 0;
    for (size_t s = 0; s < topo.stages(); ++s)
        passes += muxLayerPasses(accel.config(), topo.layers[s + 1],
                                 topo.layers[s]);
    return passes;
}

} // namespace dtann
