#include "core/deep_mux.hh"

#include "common/logging.hh"

namespace dtann {

DeepMuxedNetwork::DeepMuxedNetwork(Accelerator &a, DeepTopology t)
    : accel(a), topo(std::move(t))
{
    dtann_assert(topo.layers.size() >= 3,
                 "deep topology needs input, >=1 hidden, output");
}

MlpTopology
DeepMuxedNetwork::topology() const
{
    return {topo.inputs(), topo.layers[topo.layers.size() - 2],
            topo.outputs()};
}

void
DeepMuxedNetwork::setLayerWeights(const DeepWeights &w)
{
    dtann_assert(w.topology() == topo, "weight topology mismatch");
    stageRows.assign(topo.stages(), {});
    for (size_t s = 0; s < topo.stages(); ++s) {
        int fanin = topo.layers[s];
        int width = topo.layers[s + 1];
        auto &rows = stageRows[s];
        rows.assign(static_cast<size_t>(width), {});
        for (int j = 0; j < width; ++j) {
            auto &row = rows[static_cast<size_t>(j)];
            row.resize(static_cast<size_t>(fanin + 1));
            for (int i = 0; i <= fanin; ++i)
                row[static_cast<size_t>(i)] =
                    Fix16::fromDouble(w.at(s, j, i));
        }
    }
}

Activations
DeepMuxedNetwork::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == topo.inputs(),
                 "input arity mismatch");
    dtann_assert(!stageRows.empty(), "setWeights() before forward()");

    std::vector<Fix16> current(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        current[i] = Fix16::fromDouble(input[i]);

    Activations act;
    for (size_t s = 0; s < topo.stages(); ++s) {
        std::vector<Fix16> next =
            muxRunLayer(accel, stageRows[s], current);
        std::vector<double> as_double(next.size());
        for (size_t j = 0; j < next.size(); ++j)
            as_double[j] = next[j].toDouble();
        act.layers.push_back(std::move(as_double));
        current = std::move(next);
    }
    return act;
}

std::vector<Activations>
DeepMuxedNetwork::forwardBatch(std::span<const std::vector<double>> inputs)
{
    dtann_assert(!stageRows.empty(), "setWeights() before forward()");
    if (!accel.batchPure())
        return rowLoopBatch(inputs); // stateful faulty units need
                                     // the exact per-row sequence
    size_t N = inputs.size();
    std::vector<std::vector<Fix16>> current(N);
    for (size_t r = 0; r < N; ++r) {
        dtann_assert(static_cast<int>(inputs[r].size()) ==
                         topo.inputs(),
                     "input arity mismatch");
        current[r].resize(inputs[r].size());
        for (size_t i = 0; i < inputs[r].size(); ++i)
            current[r][i] = Fix16::fromDouble(inputs[r][i]);
    }

    std::vector<Activations> acts(N);
    for (size_t s = 0; s < topo.stages(); ++s) {
        std::vector<std::vector<Fix16>> next =
            muxRunLayerBatch(accel, stageRows[s], current);
        for (size_t r = 0; r < N; ++r) {
            std::vector<double> as_double(next[r].size());
            for (size_t j = 0; j < next[r].size(); ++j)
                as_double[j] = next[r][j].toDouble();
            acts[r].layers.push_back(std::move(as_double));
        }
        current = std::move(next);
    }
    return acts;
}

size_t
DeepMuxedNetwork::passesPerRow() const
{
    size_t passes = 0;
    for (size_t s = 0; s < topo.stages(); ++s)
        passes += muxLayerPasses(accel.config(), topo.layers[s + 1],
                                 topo.layers[s]);
    return passes;
}

} // namespace dtann
