#include "core/engine.hh"

namespace dtann {

CampaignEngine::CampaignEngine(const CampaignConfig &config)
    : pool(config.threads), onCellDone(config.onCellDone)
{
}

CampaignEngine::CampaignEngine(int threads, ProgressCallback on_cell_done)
    : pool(threads), onCellDone(std::move(on_cell_done))
{
}

void
CampaignEngine::beginCampaign(size_t total_cells)
{
    std::lock_guard<std::mutex> lk(mu);
    done = 0;
    total = total_cells;
}

void
CampaignEngine::reportCell(const std::string &task, int defects, int rep,
                           double accuracy)
{
    std::lock_guard<std::mutex> lk(mu);
    ++done;
    if (onCellDone)
        onCellDone({task, defects, rep, accuracy, done, total});
}

} // namespace dtann
