#include "core/engine.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace dtann {

std::string
CellKey::toString() const
{
    return campaign + "/" + task + "/" + variant + "/" +
        std::to_string(rep);
}

bool
journalLookup(CellCache *journal, const CellKey &key,
              const std::function<void(const JsonValue &)> &decode)
{
    if (journal == nullptr)
        return false;
    std::string payload;
    if (!journal->lookup(key, payload))
        return false;
    try {
        decode(jsonParse(payload));
        return true;
    } catch (const JsonError &e) {
        warn("journaled cell %s is corrupt (%s); recomputing",
             key.toString().c_str(), e.what());
        return false;
    }
}

std::string
CampaignRunConfig::jsonRunFields() const
{
    std::string out = "\"repetitions\":" + std::to_string(repetitions);
    out += ",\"seed\":" + std::to_string(seed);
    out += ",\"threads\":" + std::to_string(threads);
    return out;
}

void
CampaignRunConfig::readRunFields(const JsonValue &v)
{
    repetitions = jsonGetInt(v, "repetitions", repetitions, 1,
                             1 << 30);
    seed = jsonGetUint(v, "seed", seed);
    threads = jsonGetInt(v, "threads", threads, 0, 4096);
}

std::string
CampaignConfig::jsonCampaignFields() const
{
    std::string out = jsonRunFields();
    out += ",\"tasks\":[";
    for (size_t i = 0; i < tasks.size(); ++i) {
        if (i > 0)
            out += ",";
        out += jsonString(tasks[i]);
    }
    out += "],\"folds\":" + std::to_string(folds);
    out += ",\"rows\":" + std::to_string(rows);
    out += ",\"epoch_scale\":" + jsonNumber(epochScale);
    out += ",\"retrain_scale\":" + jsonNumber(retrainScale);
    out += ",\"array\":" + array.toJson();
    out += ",\"weighting\":" + jsonString(siteWeightingName(weighting));
    out += ",\"backend\":" + jsonString(backendName(backend));
    return out;
}

void
CampaignConfig::readCampaignFields(const JsonValue &v)
{
    readRunFields(v);
    tasks = jsonGetStringArray(v, "tasks", tasks);
    folds = jsonGetInt(v, "folds", folds, 2, 1 << 20);
    rows = static_cast<size_t>(
        jsonGetInt(v, "rows", static_cast<int>(rows), 0, 1 << 30));
    epochScale = jsonGetDouble(v, "epoch_scale", epochScale);
    retrainScale = jsonGetDouble(v, "retrain_scale", retrainScale);
    if (const JsonValue *a = v.find("array"))
        array = AcceleratorConfig::fromJson(*a);
    std::string w =
        jsonGetString(v, "weighting", siteWeightingName(weighting));
    if (!siteWeightingFromName(w, weighting))
        throw JsonError("unknown weighting '" + w +
                        "' (expected uniform or transistor)");
    std::string b = jsonGetString(v, "backend", backendName(backend));
    if (!backendFromName(b, backend))
        throw JsonError("unknown backend '" + b + "' (expected one "
                        "of: " + backendNameList() + ")");
}

CampaignEngine::CampaignEngine(const CampaignRunConfig &config)
    : owned(config.sharedPool != nullptr
                ? nullptr
                : std::make_unique<ThreadPool>(config.threads)),
      pool(config.sharedPool != nullptr ? config.sharedPool
                                        : owned.get()),
      cancel(config.cancel), onCellDone(config.onCellDone)
{
}

CampaignEngine::CampaignEngine(int threads, ProgressCallback on_cell_done)
    : owned(std::make_unique<ThreadPool>(threads)), pool(owned.get()),
      onCellDone(std::move(on_cell_done))
{
}

void
CampaignEngine::parallelFor(size_t n,
                            const std::function<void(size_t)> &fn)
{
    if (cancel == nullptr) {
        pool->parallelFor(n, fn);
        return;
    }
    // Cooperative cancellation: raised mid-batch, the remaining
    // indices become no-ops, the batch drains quickly, and the
    // campaign unwinds here instead of producing a partial result.
    pool->parallelFor(n, [&](size_t i) {
        if (cancel->load(std::memory_order_relaxed))
            return;
        fn(i);
    });
    if (cancel->load(std::memory_order_relaxed))
        throw CampaignCancelled();
}

void
CampaignEngine::beginCampaign(size_t total_cells)
{
    std::lock_guard<std::mutex> lk(mu);
    done = 0;
    total = total_cells;
}

void
CampaignEngine::reportCell(const std::string &task, int defects, int rep,
                           double accuracy)
{
    std::lock_guard<std::mutex> lk(mu);
    ++done;
    if (onCellDone)
        onCellDone({task, defects, rep, accuracy, done, total});
}

} // namespace dtann
