/**
 * @file
 * Accelerator-level defect injection (paper Section VI-C).
 *
 * "We randomly pick one of the logic operators or latches within
 * the input and hidden layers, and one 1-bit operator or wire
 * within the target operator or latch." A site pool selects which
 * layers/unit kinds are eligible (Fig 10 uses the input+hidden
 * layers; Fig 11 targets the output-layer adders and activation
 * functions); the backend maps the pool onto its physical unit
 * population via HardwareBackend::enumerateSites(). Unit instances
 * can be drawn uniformly or weighted by their transistor count
 * (area-proportional, the physical default).
 */

#ifndef DTANN_CORE_INJECTOR_HH
#define DTANN_CORE_INJECTOR_HH

#include "core/backend.hh"

namespace dtann {

/** How unit instances are drawn. */
enum class SiteWeighting : uint8_t {
    Uniform,    ///< each eligible instance equally likely
    Transistor, ///< probability proportional to transistor count
};

/** Stable lower-case weighting name, used in JSON specs. */
const char *siteWeightingName(SiteWeighting w);

/** Parse a siteWeightingName(); returns false on unknown names. */
bool siteWeightingFromName(const std::string &name, SiteWeighting &out);

/**
 * Enumerate every unit instance of a spatial array @p cfg that
 * @p pool makes eligible, in a fixed (layer, neuron, unit) order.
 * This is the SpatialBackend site population; backends expose
 * theirs via HardwareBackend::enumerateSites().
 */
std::vector<UnitSite> enumerateSites(const AcceleratorConfig &cfg,
                                     const SitePool &pool);

/** Draws defect sites and injects transistor-level defects. */
class DefectInjector
{
  public:
    /**
     * @param accel target backend (defects are installed into it)
     * @param pool eligible sites
     * @param weighting instance-draw weighting
     */
    DefectInjector(HardwareBackend &accel, const SitePool &pool,
                   SiteWeighting weighting = SiteWeighting::Transistor);

    /** Draw one random eligible site. */
    UnitSite randomSite(Rng &rng) const;

    /**
     * Inject @p count defects, each at an independently drawn site
     * (several defects may share a unit).
     *
     * @return one record per defect
     */
    std::vector<InjectionRecord> inject(int count, Rng &rng);

    /** Number of eligible unit instances. */
    size_t eligibleUnits() const { return sites.size(); }

    /** Every eligible unit instance (the sampling population). */
    const std::vector<UnitSite> &eligibleSites() const { return sites; }

  private:
    HardwareBackend &accel;
    std::vector<UnitSite> sites;
    std::vector<double> cumulativeWeight;
};

} // namespace dtann

#endif // DTANN_CORE_INJECTOR_HH
