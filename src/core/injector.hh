/**
 * @file
 * Accelerator-level defect injection (paper Section VI-C).
 *
 * "We randomly pick one of the logic operators or latches within
 * the input and hidden layers, and one 1-bit operator or wire
 * within the target operator or latch." A site pool selects which
 * layers/unit kinds are eligible (Fig 10 uses the input+hidden
 * layers; Fig 11 targets the output-layer adders and activation
 * functions). Unit instances can be drawn uniformly or weighted by
 * their transistor count (area-proportional, the physical default).
 */

#ifndef DTANN_CORE_INJECTOR_HH
#define DTANN_CORE_INJECTOR_HH

#include "core/accelerator.hh"

namespace dtann {

/** Which unit instances are eligible for defects. */
struct SitePool
{
    bool hiddenLayer = true;   ///< synapses into + neurons of hidden
    bool outputLayer = false;
    bool latches = true;
    bool multipliers = true;
    bool adders = true;
    bool activations = true;

    /** Fig 10 pool: everything in the input and hidden layers. */
    static SitePool inputAndHidden();
    /** Fig 11 pool: output-layer adders and activation functions. */
    static SitePool outputCritical();
    /** Every unit in the array. */
    static SitePool all();

    /** JSON object of the six eligibility flags. */
    std::string toJson() const;
    /**
     * Symmetric counterpart of toJson(). Also accepts the named
     * shorthands "all", "input_hidden" and "output_critical" as a
     * JSON string. Throws JsonError on anything else.
     */
    static SitePool fromJson(const class JsonValue &v);

    bool operator==(const SitePool &o) const = default;
};

/** How unit instances are drawn. */
enum class SiteWeighting : uint8_t {
    Uniform,    ///< each eligible instance equally likely
    Transistor, ///< probability proportional to transistor count
};

/** Stable lower-case weighting name, used in JSON specs. */
const char *siteWeightingName(SiteWeighting w);

/** Parse a siteWeightingName(); returns false on unknown names. */
bool siteWeightingFromName(const std::string &name, SiteWeighting &out);

/**
 * Enumerate every unit instance of @p cfg that @p pool makes
 * eligible, in a fixed (layer, neuron, unit) order. Shared by the
 * defect injector (sampling) and the BIST diagnosis harness
 * (exhaustive per-unit probing, src/mitigate).
 */
std::vector<UnitSite> enumerateSites(const AcceleratorConfig &cfg,
                                     const SitePool &pool);

/** Draws defect sites and injects transistor-level defects. */
class DefectInjector
{
  public:
    /**
     * @param accel target array (defects are installed into it)
     * @param pool eligible sites
     * @param weighting instance-draw weighting
     */
    DefectInjector(Accelerator &accel, const SitePool &pool,
                   SiteWeighting weighting = SiteWeighting::Transistor);

    /** Draw one random eligible site. */
    UnitSite randomSite(Rng &rng) const;

    /**
     * Inject @p count defects, each at an independently drawn site
     * (several defects may share a unit).
     *
     * @return one record per defect
     */
    std::vector<InjectionRecord> inject(int count, Rng &rng);

    /** Number of eligible unit instances. */
    size_t eligibleUnits() const { return sites.size(); }

    /** Every eligible unit instance (the sampling population). */
    const std::vector<UnitSite> &eligibleSites() const { return sites; }

  private:
    Accelerator &accel;
    std::vector<UnitSite> sites;
    std::vector<double> cumulativeWeight;
};

} // namespace dtann

#endif // DTANN_CORE_INJECTOR_HH
