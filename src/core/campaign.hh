/**
 * @file
 * Experiment campaigns reproducing the paper's figures.
 *
 * Fig 5: output-value distributions of small operators under
 * transistor-level vs gate-level defects.
 * Fig 10: classification accuracy vs number of defects in the
 * input and hidden layers, after retraining.
 * Fig 11: accuracy vs error amplitude for single defects in the
 * output layer's adders/activation functions.
 */

#ifndef DTANN_CORE_CAMPAIGN_HH
#define DTANN_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "ann/trainer.hh"
#include "common/stats.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"
#include "data/synth_uci.hh"
#include "rtl/builder.hh"

namespace dtann {

// ---------------------------------------------------------------
// Fig 5

/** Operator targeted by the Fig 5 experiment. */
enum class Fig5Operator : uint8_t { Adder4, Multiplier4 };

/** Result histograms of one Fig 5 configuration. */
struct Fig5Result
{
    Fig5Operator op;
    int defects;
    int repetitions;
    IntHistogram none;  ///< defect-free output distribution
    IntHistogram gate;  ///< gate-level stuck-at injections
    IntHistogram trans; ///< transistor-level injections
};

/**
 * Run one Fig 5 configuration: @p repetitions random injections,
 * each evaluated on all 256 input pairs in random order.
 */
Fig5Result runFig5(Fig5Operator op, int defects, int repetitions,
                   Rng &rng, FaStyle style = FaStyle::Nand9);

// ---------------------------------------------------------------
// Fig 10

/** Scaling knobs of the defect-tolerance campaign. */
struct Fig10Config
{
    std::vector<std::string> tasks;  ///< empty = all 10
    std::vector<int> defectCounts = {0, 3, 6, 9, 12, 15, 18, 21, 24, 27};
    int repetitions = 100; ///< faulty networks per defect count
    int folds = 10;        ///< cross-validation folds
    size_t rows = 0;       ///< dataset size (0 = original)
    double epochScale = 1.0;   ///< scales baseline training epochs
    double retrainScale = 0.25; ///< retraining epochs vs baseline
    uint64_t seed = 1;
    AcceleratorConfig array;
    /** Unit-instance draw: the paper picks operators/latches
     *  uniformly ("randomly pick one of the logic operators or
     *  latches"). */
    SiteWeighting weighting = SiteWeighting::Uniform;
    /**
     * When false, the faulty network is tested with the clean
     * baseline weights instead of being retrained — the ablation
     * that isolates the contribution of retraining ("the network
     * capacity to silence out defects").
     */
    bool retrain = true;
};

/** One (defect count, accuracy) point. */
struct Fig10Point
{
    int defects;
    double accuracy;
    double stddev;
};

/** Accuracy curve of one task. */
struct Fig10Curve
{
    std::string task;
    std::vector<Fig10Point> points;
};

/** Run the Fig 10 campaign. */
std::vector<Fig10Curve> runFig10(const Fig10Config &config);

// ---------------------------------------------------------------
// Fig 11

/** Scaling knobs of the output-layer amplitude campaign. */
struct Fig11Config
{
    std::vector<std::string> tasks; ///< empty = all 10
    int repetitions = 100;          ///< faulty networks per task
    int folds = 10;
    size_t rows = 0;
    double epochScale = 1.0;
    double retrainScale = 0.25;
    uint64_t seed = 1;
    AcceleratorConfig array;
    SiteWeighting weighting = SiteWeighting::Uniform;
};

/** One faulty network's (amplitude, accuracy) observation. */
struct Fig11Sample
{
    std::string task;
    double amplitude; ///< mean |faulty - clean| at the faulty unit
    double accuracy;
    std::string site;
};

/** Accuracy-vs-amplitude series of one task (log-binned). */
struct Fig11Curve
{
    std::string task;
    std::vector<std::pair<double, double>> binAccuracy; ///< (amp, acc)
    std::vector<Fig11Sample> samples;
};

/** Run the Fig 11 campaign. */
std::vector<Fig11Curve> runFig11(const Fig11Config &config);

// ---------------------------------------------------------------
// Shared helpers

/** Hyper-parameters used on the hardware for @p spec. */
Hyper hardwareHyper(const UciTaskSpec &spec, const AcceleratorConfig &a,
                    double epoch_scale);

} // namespace dtann

#endif // DTANN_CORE_CAMPAIGN_HH
