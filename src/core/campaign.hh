/**
 * @file
 * Experiment campaigns reproducing the paper's figures.
 *
 * Fig 5: output-value distributions of small operators under
 * transistor-level vs gate-level defects.
 * Fig 10: classification accuracy vs number of defects in the
 * input and hidden layers, after retraining.
 * Fig 11: accuracy vs error amplitude for single defects in the
 * output layer's adders/activation functions.
 *
 * All campaigns run on the CampaignEngine (core/engine.hh): every
 * (task, defect count, repetition) cell is an independent work unit
 * with a counter-derived RNG stream, so results are bit-identical
 * for any thread count. Curves carry toJson() exporters; benches
 * mirror them to $DTANN_JSON_OUT for the perf-trajectory tooling.
 */

#ifndef DTANN_CORE_CAMPAIGN_HH
#define DTANN_CORE_CAMPAIGN_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ann/trainer.hh"
#include "circuit/sim_counters.hh"
#include "common/stats.hh"
#include "core/engine.hh"
#include "data/synth_uci.hh"
#include "rtl/builder.hh"

namespace dtann {

// ---------------------------------------------------------------
// Fig 5

/** Operator targeted by the Fig 5 experiment. */
enum class Fig5Operator : uint8_t { Adder4, Multiplier4 };

/** Stable operator name ("adder4"/"multiplier4"), used in JSON. */
const char *fig5OperatorName(Fig5Operator op);

/** Parse a fig5OperatorName(); returns false on unknown names. */
bool fig5OperatorFromName(const std::string &name, Fig5Operator &out);

/**
 * Scaling knobs of the small-operator defect campaign. Execution
 * fields (repetitions/seed/threads/progress/journal) come from the
 * shared CampaignRunConfig base, so every campaign config presents
 * one API shape to the scenario-spec parser.
 */
struct Fig5Config : CampaignRunConfig
{
    Fig5Config() { repetitions = 1000; }

    Fig5Operator op = Fig5Operator::Adder4;
    int defects = 1;
    FaStyle style = FaStyle::Nand9;

    /** JSON object (spec echo). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static Fig5Config fromJson(const JsonValue &v);
};

/** Result histograms of one Fig 5 configuration. */
struct Fig5Result
{
    Fig5Operator op;
    int defects;
    int repetitions;
    FaStyle style = FaStyle::Nand9;
    uint64_t seed = 0;  ///< the variant's derived seed
    IntHistogram none;  ///< defect-free output distribution
    IntHistogram gate;  ///< gate-level stuck-at injections
    IntHistogram trans; ///< transistor-level injections
    SimCounters sim;    ///< gate-simulation work accounting

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/**
 * Run one Fig 5 configuration: @p config.repetitions random
 * injections, each evaluated on all 256 input pairs in random order.
 */
Fig5Result runFig5(const Fig5Config &config);

// ---------------------------------------------------------------
// Fig 10

/** Scaling knobs of the defect-tolerance campaign. */
struct Fig10Config : CampaignConfig
{
    std::vector<int> defectCounts = {0, 3, 6, 9, 12, 15, 18, 21, 24, 27};
    /**
     * When false, the faulty network is tested with the clean
     * baseline weights instead of being retrained — the ablation
     * that isolates the contribution of retraining ("the network
     * capacity to silence out defects").
     */
    bool retrain = true;

    /** JSON object (spec echo). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static Fig10Config fromJson(const JsonValue &v);
};

/** One (defect count, accuracy) point. */
struct Fig10Point
{
    int defects;
    double accuracy;
    double stddev;
};

/** Accuracy curve of one task. */
struct Fig10Curve
{
    std::string task;
    std::vector<Fig10Point> points;
    SimCounters sim; ///< gate-simulation work over this task's cells

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/** Run the Fig 10 campaign. */
std::vector<Fig10Curve> runFig10(const Fig10Config &config);

// ---------------------------------------------------------------
// Fig 11

/** Scaling knobs of the output-layer amplitude campaign. */
struct Fig11Config : CampaignConfig
{
    /** JSON object (spec echo). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static Fig11Config fromJson(const JsonValue &v);
};

/** One faulty network's (amplitude, accuracy) observation. */
struct Fig11Sample
{
    std::string task;
    double amplitude; ///< mean |faulty - clean| at the faulty unit
    double accuracy;
    std::string site;
};

/** Accuracy-vs-amplitude series of one task (log-binned). */
struct Fig11Curve
{
    std::string task;
    std::vector<std::pair<double, double>> binAccuracy; ///< (amp, acc)
    std::vector<Fig11Sample> samples;
    SimCounters sim; ///< gate-simulation work over this task's cells

    /** Machine-readable export (single JSON object). */
    std::string toJson() const;
};

/** Run the Fig 11 campaign. */
std::vector<Fig11Curve> runFig11(const Fig11Config &config);

// ---------------------------------------------------------------
// Shared helpers (public so benches/tests don't re-implement them)

/** Task specs selected by a campaign config (empty = all 10). */
std::vector<UciTaskSpec> selectTasks(const std::vector<std::string> &names);

/**
 * Per-task state shared (read-only) by every cell of that task:
 * the dataset, the topology, and the clean baseline weights that
 * warm-start each retraining run. Building one is the expensive
 * pre-cell phase of the network-level campaigns (dataset synthesis
 * plus a full clean-accelerator training run), and it is a pure
 * function of the campaign's (seed, rows, epoch scale, array) plus
 * the task spec and its index — which is what makes it cacheable
 * across concurrent campaigns (see SharedContextCache).
 */
struct TaskContext
{
    UciTaskSpec spec;
    Dataset ds;
    Hyper hyper;
    MlpTopology logical;
    MlpWeights baseline;
};

/**
 * Cross-campaign cache for the expensive deterministic state the
 * campaigns otherwise rebuild per run: prepared task contexts
 * (dataset + clean baseline) and operator netlists. Implementations
 * must be thread-safe and must return the build() result for a key
 * exactly once — concurrent requests for the same key share one
 * build. Keys canonically encode every input of the build (see
 * taskContextKey()), so a cache hit is bit-identical to a rebuild.
 *
 * The campaign daemon installs one of these per process
 * (CampaignRunConfig::contextCache); offline runs leave the pointer
 * null and build directly.
 */
class SharedContextCache
{
  public:
    virtual ~SharedContextCache() = default;

    /** Cached TaskContext for @p key, building via @p build on miss. */
    virtual std::shared_ptr<const TaskContext>
    task(const std::string &key,
         const std::function<TaskContext()> &build) = 0;

    /** Cached operator netlist for @p key (e.g. "adder4/nand9"). */
    virtual std::shared_ptr<const Netlist>
    netlist(const std::string &key,
            const std::function<Netlist()> &build) = 0;
};

/**
 * Canonical cache key of the TaskContext prepareCampaignTasks()
 * builds for task @p index of @p config: every config field the
 * build depends on (seed, rows, epoch scale, array) plus the task
 * name and its index (the RNG substreams are index-addressed).
 * Deliberately campaign-kind-agnostic: Fig 10, Fig 11 and the
 * mitigation campaign derive identical contexts from identical
 * (seed, scale) configs and therefore share cache entries.
 */
std::string taskContextKey(const CampaignConfig &config,
                           const UciTaskSpec &spec, size_t index);

/**
 * Prepare the per-task contexts of @p specs in parallel on
 * @p engine, consulting @p config.contextCache when set. Shared by
 * every network-level campaign (Fig 10/11, mitigation).
 */
std::vector<std::shared_ptr<const TaskContext>>
prepareCampaignTasks(CampaignEngine &engine,
                     const CampaignConfig &config,
                     const std::vector<UciTaskSpec> &specs);

/** Hyper-parameters used on the hardware for @p spec. */
Hyper hardwareHyper(const UciTaskSpec &spec, const AcceleratorConfig &a,
                    double epoch_scale);

/** Retraining variant of @p hyper with scaled-down epochs. */
Hyper retrainHyper(const Hyper &hyper, double retrain_scale);

/** JSON array over per-curve toJson(). */
template <typename Curve>
std::string
toJson(const std::vector<Curve> &curves)
{
    std::string out = "[";
    for (size_t i = 0; i < curves.size(); ++i) {
        if (i > 0)
            out += ",";
        out += curves[i].toJson();
    }
    out += "]";
    return out;
}

/**
 * The shared export envelope: every campaign/bench JSON export is
 * one object of the form
 *
 *   {"kind": <campaign kind>, "config": <config echo>,
 *    "seed": <campaign seed>, "sim": <SimCounters>,
 *    "results": <kind-specific payload>}
 *
 * so downstream tooling can dispatch on "kind" and reproduce any
 * result from its embedded config echo and seed alone.
 */
std::string campaignEnvelope(const std::string &kind,
                             const std::string &configJson,
                             uint64_t seed, const SimCounters &sim,
                             const std::string &resultsJson);

/**
 * Mirror a JSON payload to $DTANN_JSON_OUT/<name>.json when that
 * environment variable names a directory. All benches and the
 * dtann_campaign driver export through this one path; payloads are
 * campaignEnvelope() objects.
 *
 * @return true when a file was written
 */
bool maybeWriteJson(const std::string &name, const std::string &json);

} // namespace dtann

#endif // DTANN_CORE_CAMPAIGN_HH
