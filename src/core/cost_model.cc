#include "core/cost_model.hh"

#include <cmath>

#include "ann/sigmoid.hh"
#include "rtl/adder.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {

namespace {

/** Paper calibration targets (Table III, 90-10-10 at 90 nm). */
constexpr double paperAreaMm2 = 9.02;
constexpr double paperEnergyPerRowNj = 70.16;
constexpr double paperLatencyNs = 14.92;

/**
 * Latch arrays toggle far less than datapath logic; a reduced
 * activity factor models their lower power density (the paper's
 * interface power share is ~5x below its area share).
 */
constexpr double interfaceActivity = 0.2;

/** Gate levels of a balanced reduction over @p fanin operands. */
int
treeLevels(int fanin)
{
    int levels = 0;
    while ((1 << levels) < fanin)
        ++levels;
    return levels;
}

} // namespace

CostModel::CostModel(const AcceleratorConfig &config,
                     const DmaConfig &dma_config)
    : cfg(config), dma(dma_config)
{
    Netlist mult = buildMultiplierSigned(16, cfg.faStyle);
    Netlist add = buildRippleAdder(24, cfg.faStyle, false);
    Netlist latch = buildLatchRegister(16);
    Netlist act = buildSigmoidUnit(logisticPwlTable(), cfg.faStyle);
    multT = mult.transistorCount();
    addT = add.transistorCount();
    latchT = latch.transistorCount();
    actT = act.transistorCount();
    multDepth = mult.depth();
    addDepth = add.depth();
    actDepth = act.depth();

    // Calibrate against the fixed reference point: the paper's
    // 90-10-10 array in NAND9 cells. Other configurations then
    // scale by their real transistor counts and depths.
    if (cfg.faStyle == FaStyle::Nand9 && cfg.inputs == 90 &&
        cfg.hidden == 10 && cfg.outputs == 10) {
        areaPerTransistorMm2 =
            paperAreaMm2 / static_cast<double>(arrayTransistors());
        energyPerTransistorNj =
            paperEnergyPerRowNj /
            static_cast<double>(arrayTransistors());
        delayPerLevelNs =
            paperLatencyNs / static_cast<double>(criticalPathDepth());
    } else {
        static const CostModel reference((AcceleratorConfig()));
        areaPerTransistorMm2 = reference.areaPerTransistorMm2;
        energyPerTransistorNj = reference.energyPerTransistorNj;
        delayPerLevelNs = reference.delayPerLevelNs;
    }
}

size_t
CostModel::arrayTransistors() const
{
    size_t syn = static_cast<size_t>(cfg.hidden) *
            static_cast<size_t>(cfg.inputs + 1) +
        static_cast<size_t>(cfg.outputs) *
            static_cast<size_t>(cfg.hidden + 1);
    size_t stages = static_cast<size_t>(cfg.hidden) *
            static_cast<size_t>(cfg.inputs) +
        static_cast<size_t>(cfg.outputs) *
            static_cast<size_t>(cfg.hidden);
    size_t acts =
        static_cast<size_t>(cfg.hidden) + static_cast<size_t>(cfg.outputs);
    return syn * (multT + latchT) + stages * addT + acts * actT;
}

size_t
CostModel::outputRowTransistors() const
{
    size_t syn = static_cast<size_t>(cfg.hidden + 1);
    size_t stages = static_cast<size_t>(cfg.hidden);
    return syn * (multT + latchT) + stages * addT + actT;
}

double
CostModel::areaOf(size_t transistors) const
{
    return static_cast<double>(transistors) * areaPerTransistorMm2;
}

double
CostModel::energyPerRowOf(size_t transistors) const
{
    return static_cast<double>(transistors) * energyPerTransistorNj;
}

size_t
CostModel::interfaceTransistors() const
{
    // Per-bit cost of one gated D latch (NOT + 4x NAND2).
    constexpr size_t latchBitT = 18;
    // 2-deep input and output row buffers, plus the partial
    // time-multiplexing add-ons (hidden-output collection latches
    // and output-layer feed latches), all 16-bit.
    size_t buffered_words =
        2 * static_cast<size_t>(cfg.inputs) +
        2 * static_cast<size_t>(cfg.outputs) +
        2 * static_cast<size_t>(cfg.hidden);
    size_t buffers = buffered_words * 16 * latchBitT;
    // Weight-write decode: one write-enable line per neuron.
    size_t decode =
        static_cast<size_t>(cfg.hidden + cfg.outputs) * 30;
    // DMA control FSM + handshake.
    constexpr size_t control = 3000;
    return buffers + decode + control;
}

int
CostModel::criticalPathDepth() const
{
    // Hidden stage: multiplier, balanced adder tree (each level is
    // one 24-bit ripple adder), activation; then the output stage.
    int hidden = multDepth + treeLevels(cfg.inputs + 1) * addDepth +
        actDepth;
    int output = multDepth + treeLevels(cfg.hidden + 1) * addDepth +
        actDepth;
    return hidden + output;
}

BlockCost
CostModel::accelerator() const
{
    BlockCost c;
    double t = static_cast<double>(arrayTransistors());
    c.areaMm2 = t * areaPerTransistorMm2;
    c.latencyNs =
        static_cast<double>(criticalPathDepth()) * delayPerLevelNs;
    c.energyPerRowNj = t * energyPerTransistorNj;
    c.powerW = c.energyPerRowNj / c.latencyNs;
    return c;
}

BlockCost
CostModel::activation() const
{
    BlockCost c;
    double t = static_cast<double>(actT);
    c.areaMm2 = t * areaPerTransistorMm2;
    c.latencyNs = static_cast<double>(actDepth) * delayPerLevelNs;
    c.energyPerRowNj = t * energyPerTransistorNj;
    c.powerW = c.energyPerRowNj / accelerator().latencyNs;
    return c;
}

BlockCost
CostModel::interface() const
{
    BlockCost c;
    double t = static_cast<double>(interfaceTransistors());
    c.areaMm2 = t * areaPerTransistorMm2;
    // One row transfer: inputs x 16 bits over the links.
    c.latencyNs = dma.transferNs(cfg.inputs * 16);
    c.energyPerRowNj = t * energyPerTransistorNj * interfaceActivity;
    c.powerW = c.energyPerRowNj / accelerator().latencyNs;
    return c;
}

double
CostModel::keyLogicFraction(int generations) const
{
    double array = static_cast<double>(arrayTransistors()) *
        areaPerTransistorMm2 / std::pow(2.0, generations);
    double key = static_cast<double>(interfaceTransistors()) *
        areaPerTransistorMm2;
    return key / (key + array);
}

double
CostModel::hardenedKeyLogicOverhead(double factor, int generations) const
{
    dtann_assert(factor >= 1.0, "hardening factor must be >= 1");
    double array = static_cast<double>(arrayTransistors()) *
        areaPerTransistorMm2 / std::pow(2.0, generations);
    double key = static_cast<double>(interfaceTransistors()) *
        areaPerTransistorMm2;
    return key * (factor - 1.0) / (key + array);
}

double
CostModel::outputCriticalAreaFraction() const
{
    double critical = static_cast<double>(
        static_cast<size_t>(cfg.outputs) *
            static_cast<size_t>(cfg.hidden) * addT +
        static_cast<size_t>(cfg.outputs) * actT);
    return critical / static_cast<double>(arrayTransistors());
}

double
CostModel::outputCriticalShareOfOutputLayer() const
{
    size_t syn = static_cast<size_t>(cfg.outputs) *
        static_cast<size_t>(cfg.hidden + 1);
    size_t stages = static_cast<size_t>(cfg.outputs) *
        static_cast<size_t>(cfg.hidden);
    size_t acts = static_cast<size_t>(cfg.outputs);
    double layer = static_cast<double>(syn * (multT + latchT) +
                                       stages * addT + acts * actT);
    double critical = static_cast<double>(stages * addT + acts * actT);
    return critical / layer;
}

} // namespace dtann
