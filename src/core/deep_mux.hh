/**
 * @file
 * Deep networks on the physical array (paper future work: "we want
 * to increase the size of the neural networks that can be mapped
 * ... in order to efficiently tackle very large networks, such as
 * Deep Networks").
 *
 * Every layer of the stack is executed by the shared
 * muxRunLayer engine: neurons batched over the physical hidden
 * row, oversized fan-ins chunked through the key-logic
 * accumulator. Defects injected into the physical array therefore
 * touch every logical layer mapped across it.
 */

#ifndef DTANN_CORE_DEEP_MUX_HH
#define DTANN_CORE_DEEP_MUX_HH

#include "core/timemux.hh"

namespace dtann {

/** Accelerator-backed deep-network ForwardModel. */
class DeepMuxedNetwork : public ForwardModel
{
  public:
    /**
     * @param accel physical array (any logical mapping)
     * @param topo layer stack to execute
     */
    DeepMuxedNetwork(Accelerator &accel, DeepTopology topo);

    /** 2-layer view: {inputs, last hidden width, outputs}. */
    MlpTopology topology() const override;
    DeepTopology layerTopology() const override { return topo; }

    /** Quantize all stages; rows reload per pass. */
    void setLayerWeights(const DeepWeights &w) override;

    Activations forward(std::span<const double> input) override;

    /**
     * Batched forward: when every faulty unit is lane-batchable
     * (accel.batchPure()) each stage runs through
     * muxRunLayerBatch() — weight reloads hoisted across up to 64
     * rows — otherwise the exact per-row loop. Outputs are
     * bit-identical to forward() per row either way.
     */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Work counters of the backing accelerator's faulty units. */
    SimCounters simCounters() const override
    {
        return accel.simCounters();
    }

    /** Array passes per input row over the whole stack. */
    size_t passesPerRow() const;

  private:
    Accelerator &accel;
    DeepTopology topo;
    /** Quantized rows per stage: [stage][neuron][fanin + 1]. */
    std::vector<std::vector<std::vector<Fix16>>> stageRows;
};

} // namespace dtann

#endif // DTANN_CORE_DEEP_MUX_HH
