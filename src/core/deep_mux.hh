/**
 * @file
 * Deep networks on the physical array (paper future work: "we want
 * to increase the size of the neural networks that can be mapped
 * ... in order to efficiently tackle very large networks, such as
 * Deep Networks").
 *
 * Every layer of the stack is executed by the shared
 * muxRunLayer engine: neurons batched over the physical hidden
 * row, oversized fan-ins chunked through the key-logic
 * accumulator. Defects injected into the physical array therefore
 * touch every logical layer mapped across it.
 */

#ifndef DTANN_CORE_DEEP_MUX_HH
#define DTANN_CORE_DEEP_MUX_HH

#include "ann/deep.hh"
#include "core/timemux.hh"

namespace dtann {

/** Accelerator-backed DeepForwardModel. */
class DeepMuxedNetwork : public DeepForwardModel
{
  public:
    /**
     * @param accel physical array (any logical mapping)
     * @param topo layer stack to execute
     */
    DeepMuxedNetwork(Accelerator &accel, DeepTopology topo);

    DeepTopology topology() const override { return topo; }

    /** Quantize all stages; rows reload per pass. */
    void setWeights(const DeepWeights &w) override;

    std::vector<std::vector<double>> forwardAll(
        std::span<const double> input) override;

    /** Array passes per input row over the whole stack. */
    size_t passesPerRow() const;

  private:
    Accelerator &accel;
    DeepTopology topo;
    /** Quantized rows per stage: [stage][neuron][fanin + 1]. */
    std::vector<std::vector<std::vector<Fix16>>> stageRows;
};

} // namespace dtann

#endif // DTANN_CORE_DEEP_MUX_HH
