/**
 * @file
 * DMA memory interface (paper Section IV, "Input/Output").
 *
 * The accelerator and the DMA communicate through a 2-signal
 * ready/accept handshake; each input and output uses a 2-latch
 * buffer so the array processes one row while the next is fetched.
 * The same interface writes synaptic weights during training,
 * reloading each neuron's weights one by one under a per-neuron
 * write signal.
 *
 * The bandwidth model reproduces the paper's sizing: 90 inputs x
 * 16 bits = 1440 bits per row every 14.92 ns = 11.23 GB/s, carried
 * by two 64-bit links clocked at 800 MHz.
 */

#ifndef DTANN_CORE_DMA_HH
#define DTANN_CORE_DMA_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "common/fixed_point.hh"

namespace dtann {

/** Interface sizing parameters. */
struct DmaConfig
{
    int links = 2;         ///< parallel memory links
    int bitsPerLink = 64;  ///< payload bits per link per cycle
    double clockMhz = 800; ///< interface clock
};

/**
 * Double-buffered channel with ready/accept handshaking.
 *
 * The producer calls offer() (ready); the consumer calls accept().
 * A 2-entry buffer decouples them, as in the paper's design.
 */
template <typename Row>
class HandshakeChannel
{
  public:
    /** Producer: is a buffer slot free? */
    bool ready() const { return buffer.size() < 2; }

    /**
     * Producer: present a row. @return false when both latches are
     * full (the producer must retry).
     */
    bool
    offer(Row row)
    {
        if (!ready())
            return false;
        buffer.push_back(std::move(row));
        return true;
    }

    /** Consumer: is a row available? */
    bool available() const { return !buffer.empty(); }

    /** Consumer: accept the oldest row. @pre available(). */
    Row
    accept()
    {
        Row row = std::move(buffer.front());
        buffer.pop_front();
        return row;
    }

    /** Rows currently buffered (0..2). */
    size_t occupancy() const { return buffer.size(); }

  private:
    std::deque<Row> buffer;
};

/** One input row as transferred by the DMA. */
using DmaRow = std::vector<Fix16>;

/** Bandwidth/latency accounting for the memory interface. */
class DmaModel
{
  public:
    explicit DmaModel(const DmaConfig &config = DmaConfig())
        : cfg(config)
    {
    }

    const DmaConfig &config() const { return cfg; }

    /** Peak interface bandwidth in GB/s. */
    double peakBandwidthGBs() const;

    /** Interface cycles to transfer @p bits. */
    int cyclesForBits(int bits) const;

    /** Time to transfer @p bits, in ns. */
    double transferNs(int bits) const;

    /**
     * Bandwidth demanded by the accelerator: @p bits_per_row every
     * @p row_latency_ns, in GB/s (the paper's 11.23 GB/s check).
     */
    static double demandGBs(int bits_per_row, double row_latency_ns);

    /**
     * Minimum interface clock (MHz) able to sustain the demand
     * (the paper's 754 MHz result, rounded up to 800).
     */
    double requiredClockMhz(int bits_per_row,
                            double row_latency_ns) const;

  private:
    DmaConfig cfg;
};

} // namespace dtann

#endif // DTANN_CORE_DMA_HH
