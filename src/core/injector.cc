#include "core/injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

const char *
siteWeightingName(SiteWeighting w)
{
    return w == SiteWeighting::Uniform ? "uniform" : "transistor";
}

bool
siteWeightingFromName(const std::string &name, SiteWeighting &out)
{
    if (name == "uniform") {
        out = SiteWeighting::Uniform;
        return true;
    }
    if (name == "transistor") {
        out = SiteWeighting::Transistor;
        return true;
    }
    return false;
}

std::vector<UnitSite>
enumerateSites(const AcceleratorConfig &cfg, const SitePool &pool)
{
    std::vector<UnitSite> sites;
    auto add_layer = [&](Layer layer, int neurons, int fanin) {
        for (int n = 0; n < neurons; ++n) {
            if (pool.latches || pool.multipliers) {
                for (int i = 0; i <= fanin; ++i) {
                    if (pool.latches)
                        sites.push_back(
                            {UnitKind::WeightLatch, layer, n, i});
                    if (pool.multipliers)
                        sites.push_back(
                            {UnitKind::Multiplier, layer, n, i});
                }
            }
            if (pool.adders)
                for (int s = 0; s < fanin; ++s)
                    sites.push_back({UnitKind::AdderStage, layer, n, s});
            if (pool.activations)
                sites.push_back({UnitKind::Activation, layer, n, 0});
        }
    };
    if (pool.hiddenLayer)
        add_layer(Layer::Hidden, cfg.hidden, cfg.inputs);
    if (pool.outputLayer)
        add_layer(Layer::Output, cfg.outputs, cfg.hidden);
    return sites;
}

DefectInjector::DefectInjector(HardwareBackend &a, const SitePool &pool,
                               SiteWeighting weighting)
    : accel(a), sites(a.enumerateSites(pool))
{
    dtann_assert(!sites.empty(), "empty site pool");

    cumulativeWeight.reserve(sites.size());
    double total = 0.0;
    for (const UnitSite &s : sites) {
        double w = 1.0;
        if (weighting == SiteWeighting::Transistor)
            w = static_cast<double>(
                accel.unitNetlist(s.kind).transistorCount());
        total += w;
        cumulativeWeight.push_back(total);
    }
}

UnitSite
DefectInjector::randomSite(Rng &rng) const
{
    double draw = rng.nextDouble() * cumulativeWeight.back();
    auto it = std::lower_bound(cumulativeWeight.begin(),
                               cumulativeWeight.end(), draw);
    size_t idx = static_cast<size_t>(it - cumulativeWeight.begin());
    if (idx >= sites.size())
        idx = sites.size() - 1;
    return sites[idx];
}

std::vector<InjectionRecord>
DefectInjector::inject(int count, Rng &rng)
{
    std::vector<InjectionRecord> records;
    for (int k = 0; k < count; ++k) {
        UnitSite site = randomSite(rng);
        auto recs = accel.injectDefects(site, 1, rng);
        for (auto &r : recs)
            r.what = site.describe() + " " + r.what;
        records.insert(records.end(), recs.begin(), recs.end());
    }
    return records;
}

} // namespace dtann
