#include "core/injector.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/logging.hh"

namespace dtann {

SitePool
SitePool::inputAndHidden()
{
    SitePool p;
    p.hiddenLayer = true;
    p.outputLayer = false;
    return p;
}

SitePool
SitePool::outputCritical()
{
    SitePool p;
    p.hiddenLayer = false;
    p.outputLayer = true;
    p.latches = false;
    p.multipliers = false;
    p.adders = true;
    p.activations = true;
    return p;
}

SitePool
SitePool::all()
{
    SitePool p;
    p.hiddenLayer = p.outputLayer = true;
    return p;
}

std::string
SitePool::toJson() const
{
    auto flag = [](bool b) { return b ? "true" : "false"; };
    std::string out = "{\"hidden_layer\":";
    out += flag(hiddenLayer);
    out += ",\"output_layer\":";
    out += flag(outputLayer);
    out += ",\"latches\":";
    out += flag(latches);
    out += ",\"multipliers\":";
    out += flag(multipliers);
    out += ",\"adders\":";
    out += flag(adders);
    out += ",\"activations\":";
    out += flag(activations);
    out += "}";
    return out;
}

SitePool
SitePool::fromJson(const JsonValue &v)
{
    if (v.kind() == JsonValue::Kind::String) {
        const std::string &name = v.asString();
        if (name == "all")
            return all();
        if (name == "input_hidden")
            return inputAndHidden();
        if (name == "output_critical")
            return outputCritical();
        throw JsonError("unknown site pool '" + name +
                        "' (expected all, input_hidden or "
                        "output_critical)");
    }
    if (!v.isObject())
        throw JsonError("site pool must be a name string or an "
                        "object of eligibility flags");
    SitePool p;
    p.hiddenLayer = jsonGetBool(v, "hidden_layer", p.hiddenLayer);
    p.outputLayer = jsonGetBool(v, "output_layer", p.outputLayer);
    p.latches = jsonGetBool(v, "latches", p.latches);
    p.multipliers = jsonGetBool(v, "multipliers", p.multipliers);
    p.adders = jsonGetBool(v, "adders", p.adders);
    p.activations = jsonGetBool(v, "activations", p.activations);
    return p;
}

const char *
siteWeightingName(SiteWeighting w)
{
    return w == SiteWeighting::Uniform ? "uniform" : "transistor";
}

bool
siteWeightingFromName(const std::string &name, SiteWeighting &out)
{
    if (name == "uniform") {
        out = SiteWeighting::Uniform;
        return true;
    }
    if (name == "transistor") {
        out = SiteWeighting::Transistor;
        return true;
    }
    return false;
}

std::vector<UnitSite>
enumerateSites(const AcceleratorConfig &cfg, const SitePool &pool)
{
    std::vector<UnitSite> sites;
    auto add_layer = [&](Layer layer, int neurons, int fanin) {
        for (int n = 0; n < neurons; ++n) {
            if (pool.latches || pool.multipliers) {
                for (int i = 0; i <= fanin; ++i) {
                    if (pool.latches)
                        sites.push_back(
                            {UnitKind::WeightLatch, layer, n, i});
                    if (pool.multipliers)
                        sites.push_back(
                            {UnitKind::Multiplier, layer, n, i});
                }
            }
            if (pool.adders)
                for (int s = 0; s < fanin; ++s)
                    sites.push_back({UnitKind::AdderStage, layer, n, s});
            if (pool.activations)
                sites.push_back({UnitKind::Activation, layer, n, 0});
        }
    };
    if (pool.hiddenLayer)
        add_layer(Layer::Hidden, cfg.hidden, cfg.inputs);
    if (pool.outputLayer)
        add_layer(Layer::Output, cfg.outputs, cfg.hidden);
    return sites;
}

DefectInjector::DefectInjector(Accelerator &a, const SitePool &pool,
                               SiteWeighting weighting)
    : accel(a), sites(enumerateSites(a.config(), pool))
{
    dtann_assert(!sites.empty(), "empty site pool");

    cumulativeWeight.reserve(sites.size());
    double total = 0.0;
    for (const UnitSite &s : sites) {
        double w = 1.0;
        if (weighting == SiteWeighting::Transistor) {
            switch (s.kind) {
              case UnitKind::WeightLatch:
                w = static_cast<double>(
                    accel.latchNetlist().transistorCount());
                break;
              case UnitKind::Multiplier:
                w = static_cast<double>(
                    accel.multiplierNetlist().transistorCount());
                break;
              case UnitKind::AdderStage:
                w = static_cast<double>(
                    accel.adderNetlist().transistorCount());
                break;
              case UnitKind::Activation:
                w = static_cast<double>(
                    accel.activationNetlist().transistorCount());
                break;
            }
        }
        total += w;
        cumulativeWeight.push_back(total);
    }
}

UnitSite
DefectInjector::randomSite(Rng &rng) const
{
    double draw = rng.nextDouble() * cumulativeWeight.back();
    auto it = std::lower_bound(cumulativeWeight.begin(),
                               cumulativeWeight.end(), draw);
    size_t idx = static_cast<size_t>(it - cumulativeWeight.begin());
    if (idx >= sites.size())
        idx = sites.size() - 1;
    return sites[idx];
}

std::vector<InjectionRecord>
DefectInjector::inject(int count, Rng &rng)
{
    std::vector<InjectionRecord> records;
    for (int k = 0; k < count; ++k) {
        UnitSite site = randomSite(rng);
        auto recs = accel.injectDefects(site, 1, rng);
        for (auto &r : recs)
            r.what = site.describe() + " " + r.what;
        records.insert(records.end(), recs.begin(), recs.end());
    }
    return records;
}

} // namespace dtann
