/**
 * @file
 * Area / power / latency / energy model at 90 nm (paper Table III).
 *
 * The *structure* of the model comes from the library's own
 * netlists: per-unit transistor counts and critical-path gate
 * depths are measured on the same circuits the defect injector
 * uses. Only two absolute constants are calibrated against the
 * paper's Synopsys numbers for the 90-10-10 array at TSMC 90 nm:
 *
 *   - area per transistor, fixed so the total is 9.02 mm^2;
 *   - switching energy per transistor per row, fixed so the energy
 *     per row is 70.16 nJ (power then follows as energy/latency =
 *     4.70 W);
 *   - delay per gate level, fixed so one row takes 14.92 ns.
 *
 * Every other number (activation-unit and interface shares, other
 * array sizes, technology scaling, FA-style ablations) is derived.
 */

#ifndef DTANN_CORE_COST_MODEL_HH
#define DTANN_CORE_COST_MODEL_HH

#include "core/accelerator.hh"
#include "core/dma.hh"

namespace dtann {

/** Area/power/latency/energy of one block (a Table III row). */
struct BlockCost
{
    double areaMm2 = 0.0;
    double powerW = 0.0;
    double latencyNs = 0.0;
    double energyPerRowNj = 0.0;
};

/** Cost model of an accelerator configuration at 90 nm. */
class CostModel
{
  public:
    explicit CostModel(const AcceleratorConfig &config,
                       const DmaConfig &dma = DmaConfig());

    /** Whole-array characteristics (Table III column 1). */
    BlockCost accelerator() const;
    /** One activation unit (Table III column 2). */
    BlockCost activation() const;
    /** Memory interface + key logic (Table III column 3). */
    BlockCost interface() const;

    /** Total transistors in the array. */
    size_t arrayTransistors() const;
    /** Transistors in the interface and key logic. */
    size_t interfaceTransistors() const;

    /** Per-unit netlist transistor counts (this config's FA style)
     *  — the building blocks mitigation hardware budgets are
     *  costed from. @{ */
    size_t multiplierTransistors() const { return multT; }
    size_t adderTransistors() const { return addT; }
    size_t latchTransistors() const { return latchT; }
    size_t activationTransistors() const { return actT; }
    /** One full physical output row (synapse latches + multipliers,
     *  adder chain, activation unit) — the increment a provisioned
     *  spare row costs. */
    size_t outputRowTransistors() const;
    /** @} */

    /** Area/energy for @p transistors at this model's calibration
     *  (area in mm^2; energy in nJ per row at datapath activity). @{ */
    double areaOf(size_t transistors) const;
    double energyPerRowOf(size_t transistors) const;
    /** @} */

    /** Critical-path depth in gate levels (one row). */
    int criticalPathDepth() const;

    /**
     * Fraction of total area taken by the (non-scalable) interface
     * and key logic after @p generations technology steps, assuming
     * array area halves per generation while key logic does not
     * scale (paper Section VI-A: <10 % at 22 nm, 25 % at 11 nm).
     */
    double keyLogicFraction(int generations) const;

    /**
     * Area share of the output-layer adders + activation functions
     * (the defect-sensitive part; paper: 25.9 % of the output
     * layer, 2.3 % of total area).
     */
    double outputCriticalAreaFraction() const;
    double outputCriticalShareOfOutputLayer() const;

    /**
     * Area overhead (fraction of total) of hardening the
     * interface/key logic with transistors enlarged by @p factor
     * after @p generations of array scaling — the paper's "control
     * logic should be implemented with larger transistors as the
     * technology node scales down".
     */
    double hardenedKeyLogicOverhead(double factor,
                                    int generations = 0) const;

  private:
    AcceleratorConfig cfg;
    DmaModel dma;

    // Per-unit netlist measurements (this config's style).
    size_t multT, addT, latchT, actT;
    int multDepth, addDepth, actDepth;

    // Calibration constants, fixed against the paper's synthesis
    // point (90-10-10, NAND9 cells) so non-reference
    // configurations report honest relative costs.
    double areaPerTransistorMm2;
    double energyPerTransistorNj;
    double delayPerLevelNs;
};

} // namespace dtann

#endif // DTANN_CORE_COST_MODEL_HH
