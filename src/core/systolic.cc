#include "core/systolic.hh"

#include <algorithm>
#include <array>

#include "circuit/lane_plane.hh"
#include "common/logging.hh"

namespace dtann {

SystolicBackend::SystolicBackend(const AcceleratorConfig &config,
                                 MlpTopology logical_topo)
    : HardwareBackend(config, logical_topo),
      rows(std::max(config.inputs, config.hidden) + 1),
      cols(std::max(config.hidden, config.outputs)),
      cell(config.faStyle),
      hidW(static_cast<size_t>(config.hidden) *
           static_cast<size_t>(config.inputs + 1)),
      outW(static_cast<size_t>(config.outputs) *
           static_cast<size_t>(config.hidden + 1)),
      hiddenAct(static_cast<size_t>(config.hidden)),
      hidSums(static_cast<size_t>(config.hidden))
{
}

Fix16 &
SystolicBackend::hidWAt(int j, int i)
{
    return hidW[static_cast<size_t>(j) *
                    static_cast<size_t>(cfg.inputs + 1) +
                static_cast<size_t>(i)];
}

Fix16 &
SystolicBackend::outWAt(int k, int j)
{
    return outW[static_cast<size_t>(k) *
                    static_cast<size_t>(cfg.hidden + 1) +
                static_cast<size_t>(j)];
}

int
SystolicBackend::unitCount(UnitKind kind) const
{
    switch (kind) {
      case UnitKind::WeightLatch:
      case UnitKind::Multiplier:
        return rows * cols;
      case UnitKind::AdderStage:
        // A chain of N stages per column for N+1 products.
        return (rows - 1) * cols;
      case UnitKind::Activation:
        return cols; // one unit per column foot
      default:
        panic("bad unit kind");
    }
}

bool
SystolicBackend::usedBy(const SitePool &pool, UnitKind kind, int r,
                        int c) const
{
    auto used = [&](int fanin, int neurons) {
        if (c >= neurons)
            return false;
        switch (kind) {
          case UnitKind::WeightLatch:
          case UnitKind::Multiplier:
            return r <= fanin; // bias row last
          case UnitKind::AdderStage:
            return r < fanin;
          case UnitKind::Activation:
            return true;
          default:
            panic("bad unit kind");
        }
    };
    return (pool.hiddenLayer && used(cfg.inputs, cfg.hidden)) ||
        (pool.outputLayer && used(cfg.hidden, cfg.outputs));
}

std::vector<UnitSite>
SystolicBackend::enumerateSites(const SitePool &pool) const
{
    std::vector<UnitSite> sites;
    for (int c = 0; c < cols; ++c) {
        if (pool.latches || pool.multipliers) {
            for (int r = 0; r < rows; ++r) {
                if (pool.latches &&
                    usedBy(pool, UnitKind::WeightLatch, r, c))
                    sites.push_back(
                        {UnitKind::WeightLatch, Layer::Hidden, c, r});
                if (pool.multipliers &&
                    usedBy(pool, UnitKind::Multiplier, r, c))
                    sites.push_back(
                        {UnitKind::Multiplier, Layer::Hidden, c, r});
            }
        }
        if (pool.adders)
            for (int s = 0; s < rows - 1; ++s)
                if (usedBy(pool, UnitKind::AdderStage, s, c))
                    sites.push_back(
                        {UnitKind::AdderStage, Layer::Hidden, c, s});
        if (pool.activations &&
            usedBy(pool, UnitKind::Activation, 0, c))
            sites.push_back(
                {UnitKind::Activation, Layer::Hidden, c, 0});
    }
    return sites;
}

const DeviationProbe &
SystolicBackend::probe(const UnitSite &site) const
{
    // A physical unit serves both passes; its observable deviation
    // record is the two pass-keyed streams folded together. The
    // merge is order-independent, so the result does not depend on
    // how the passes interleaved.
    mergedProbe = DeviationProbe();
    for (Layer pass : {Layer::Hidden, Layer::Output}) {
        auto it = probes.find(
            {site.kind, pass, site.neuron, site.index});
        if (it != probes.end())
            mergedProbe.amplitude.merge(it->second.amplitude);
    }
    return mergedProbe;
}

void
SystolicBackend::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    // Hidden-pass stationary weights: logical weights into the
    // top-left of the grid, bias row last; everything else 0. Each
    // store goes through the PE's (possibly faulty) latch.
    for (int j = 0; j < cfg.hidden; ++j) {
        for (int i = 0; i <= cfg.inputs; ++i) {
            double v = 0.0;
            if (j < logical.hidden) {
                if (i < logical.inputs)
                    v = w.hid(j, i);
                else if (i == cfg.inputs)
                    v = w.hid(j, logical.inputs); // bias synapse
            }
            Fix16 q = Fix16::fromDouble(v);
            hidWAt(j, i) = unitLatchStore(Layer::Hidden, j, i, q);
        }
    }
    // Output-pass stationary weights: the same latches, reloaded.
    for (int k = 0; k < cfg.outputs; ++k) {
        for (int j = 0; j <= cfg.hidden; ++j) {
            double v = 0.0;
            if (k < logical.outputs) {
                if (j < logical.hidden)
                    v = w.out(k, j);
                else if (j == cfg.hidden)
                    v = w.out(k, logical.hidden); // bias synapse
            }
            Fix16 q = Fix16::fromDouble(v);
            outWAt(k, j) = unitLatchStore(Layer::Output, k, j, q);
        }
    }
}

void
SystolicBackend::forwardPass(Layer pass, std::span<const Fix16> in,
                             std::span<Fix16> out)
{
    const Fix16 one = Fix16::fromDouble(1.0);
    int fanin = pass == Layer::Hidden ? cfg.inputs : cfg.hidden;
    int neurons = pass == Layer::Hidden ? cfg.hidden : cfg.outputs;
    for (int n = 0; n < neurons; ++n) {
        // Column n: the input streams down the rows, each PE
        // multiplying by its stationary weight and folding the
        // product into the partial sum — the same multiply/add
        // chain as a spatial neuron, executed on shared silicon.
        Fix16 *weights = pass == Layer::Hidden
            ? &hidWAt(n, 0) : &outWAt(n, 0);
        Acc24 acc = Acc24::fromFix16(
            unitMul(pass, n, 0, weights[0], in[0]));
        for (int i = 1; i <= fanin; ++i) {
            Fix16 x = i < fanin ? in[static_cast<size_t>(i)] : one;
            Fix16 p = unitMul(pass, n, i, weights[i], x);
            acc = unitAdd(pass, n, i - 1, acc, Acc24::fromFix16(p));
        }
        if (pass == Layer::Hidden)
            hidSums[static_cast<size_t>(n)] = acc;
        out[static_cast<size_t>(n)] =
            clampValue(pass, unitAct(pass, n, acc.toFix16Sat()));
    }
}

void
SystolicBackend::forwardPassLanes(Layer pass,
                                  const std::vector<const Fix16 *> &in,
                                  const std::vector<Fix16 *> &out,
                                  size_t lanes)
{
    dtann_assert(lanes >= 1 && lanes <= kMaxLanes,
                 "lane count out of range");
    const Fix16 one = Fix16::fromDouble(1.0);
    int fanin = pass == Layer::Hidden ? cfg.inputs : cfg.hidden;
    int neurons = pass == Layer::Hidden ? cfg.hidden : cfg.outputs;
    std::array<Fix16, kMaxLanes> x, p;
    std::array<Acc24, kMaxLanes> acc, addend;
    for (int n = 0; n < neurons; ++n) {
        Fix16 *weights = pass == Layer::Hidden
            ? &hidWAt(n, 0) : &outWAt(n, 0);
        for (size_t l = 0; l < lanes; ++l)
            x[l] = in[l][0];
        unitMulLanes(pass, n, 0, weights[0], x.data(), p.data(), lanes);
        for (size_t l = 0; l < lanes; ++l)
            acc[l] = Acc24::fromFix16(p[l]);
        for (int i = 1; i <= fanin; ++i) {
            for (size_t l = 0; l < lanes; ++l)
                x[l] = i < fanin ? in[l][i] : one;
            unitMulLanes(pass, n, i, weights[i], x.data(), p.data(),
                         lanes);
            for (size_t l = 0; l < lanes; ++l)
                addend[l] = Acc24::fromFix16(p[l]);
            unitAddLanes(pass, n, i - 1, acc.data(), addend.data(),
                         lanes);
        }
        if (pass == Layer::Hidden)
            hidSums[static_cast<size_t>(n)] = acc[lanes - 1];
        for (size_t l = 0; l < lanes; ++l)
            x[l] = acc[l].toFix16Sat();
        unitActLanes(pass, n, x.data(), p.data(), lanes);
        for (size_t l = 0; l < lanes; ++l)
            out[l][n] = clampValue(pass, p[l]);
    }
}

Activations
SystolicBackend::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == logical.inputs,
                 "logical input arity mismatch");
    std::vector<Fix16> phys(static_cast<size_t>(cfg.inputs));
    for (size_t i = 0; i < input.size(); ++i)
        phys[i] = Fix16::fromDouble(input[i]);

    forwardPass(Layer::Hidden, phys, hiddenAct);
    std::vector<Fix16> out(static_cast<size_t>(cfg.outputs));
    forwardPass(Layer::Output, hiddenAct, out);

    Activations act(static_cast<size_t>(logical.hidden),
                    static_cast<size_t>(logical.outputs));
    for (int j = 0; j < logical.hidden; ++j)
        act.hidden()[static_cast<size_t>(j)] =
            hiddenAct[static_cast<size_t>(j)].toDouble();
    for (int k = 0; k < logical.outputs; ++k)
        act.output()[static_cast<size_t>(k)] =
            out[static_cast<size_t>(k)].toDouble();
    return act;
}

std::vector<Activations>
SystolicBackend::forwardBatch(std::span<const std::vector<double>> inputs)
{
    // A stateful faulty PE observes a different operation order
    // when the two passes are chunked (all hidden sweeps, then all
    // output sweeps) than when rows run one at a time (passes
    // interleaved per row) — the PE is shared between the passes,
    // unlike the spatial array's dedicated units. Batch only when
    // every faulty simulation is a pure function; otherwise keep
    // the exact per-row schedule.
    if (!batchPure())
        return rowLoopBatch(inputs);

    size_t nrows = inputs.size();
    std::vector<std::vector<Fix16>> phys(
        nrows, std::vector<Fix16>(static_cast<size_t>(cfg.inputs)));
    for (size_t r = 0; r < nrows; ++r) {
        dtann_assert(static_cast<int>(inputs[r].size()) ==
                         logical.inputs,
                     "logical input arity mismatch");
        for (size_t i = 0; i < inputs[r].size(); ++i)
            phys[r][i] = Fix16::fromDouble(inputs[r][i]);
    }

    std::vector<std::vector<Fix16>> hid(
        nrows, std::vector<Fix16>(static_cast<size_t>(cfg.hidden)));
    std::vector<std::vector<Fix16>> outv(
        nrows, std::vector<Fix16>(static_cast<size_t>(cfg.outputs)));
    size_t width = batchLaneWidth();
    for (size_t pos = 0; pos < nrows; pos += width) {
        size_t lanes = std::min(width, nrows - pos);
        std::vector<const Fix16 *> inPtr(lanes);
        std::vector<const Fix16 *> hidIn(lanes);
        std::vector<Fix16 *> hidPtr(lanes), outPtr(lanes);
        for (size_t l = 0; l < lanes; ++l) {
            inPtr[l] = phys[pos + l].data();
            hidIn[l] = hid[pos + l].data();
            hidPtr[l] = hid[pos + l].data();
            outPtr[l] = outv[pos + l].data();
        }
        forwardPassLanes(Layer::Hidden, inPtr, hidPtr, lanes);
        forwardPassLanes(Layer::Output, hidIn, outPtr, lanes);
    }

    std::vector<Activations> acts(nrows);
    for (size_t r = 0; r < nrows; ++r) {
        Activations &act = acts[r];
        act = Activations(static_cast<size_t>(logical.hidden),
                          static_cast<size_t>(logical.outputs));
        for (int j = 0; j < logical.hidden; ++j)
            act.hidden()[static_cast<size_t>(j)] =
                hid[r][static_cast<size_t>(j)].toDouble();
        for (int k = 0; k < logical.outputs; ++k)
            act.output()[static_cast<size_t>(k)] =
                outv[r][static_cast<size_t>(k)].toDouble();
    }
    // Mirror per-row forward(): the activation scratch holds the
    // last processed row.
    if (nrows > 0)
        hiddenAct = hid[nrows - 1];
    return acts;
}

} // namespace dtann
