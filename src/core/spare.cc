#include "core/spare.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dtann {

MlpTopology
sparedTopology(MlpTopology logical, int copies)
{
    dtann_assert(copies >= 2 && copies <= 4, "2 to 4 copies supported");
    return {logical.inputs, logical.hidden, copies * logical.outputs};
}

SparedOutputMlp::SparedOutputMlp(Accelerator &a, MlpTopology logical_topo,
                                 int copy_count)
    : accel(a), logical(logical_topo),
      replicated(sparedTopology(logical_topo, copy_count)),
      copies(copy_count)
{
    dtann_assert(accel.topology() == replicated,
                 "accelerator must be mapped with the replicated "
                 "topology (use sparedTopology())");
    dtann_assert(replicated.outputs <= accel.config().outputs,
                 "not enough physical output neurons for spares");
}

void
SparedOutputMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    MlpWeights dup(replicated);
    for (int j = 0; j < logical.hidden; ++j)
        for (int i = 0; i <= logical.inputs; ++i)
            dup.hid(j, i) = w.hid(j, i);
    for (int k = 0; k < logical.outputs; ++k)
        for (int j = 0; j <= logical.hidden; ++j)
            for (int c = 0; c < copies; ++c)
                dup.out(k + c * logical.outputs, j) = w.out(k, j);
    accel.setWeights(dup);
}

double
medianVote(std::vector<double> &copy_vals)
{
    size_t n = copy_vals.size();
    dtann_assert(n >= 1, "vote needs at least one copy");
    std::sort(copy_vals.begin(), copy_vals.end());
    if (n % 2 == 1) {
        // Odd copy count: exact median rejects any single outlier
        // copy.
        return copy_vals[n / 2];
    }
    // Even: mean of the middle pair (average for 2 copies).
    return 0.5 * (copy_vals[n / 2 - 1] + copy_vals[n / 2]);
}

namespace {

/** Merge the replicated physical outputs of one row into the
 *  logical outputs via the shared vote rule. */
Activations
combineCopies(const Activations &phys, MlpTopology logical, int copies)
{
    Activations act;
    act.layers.resize(2);
    act.hidden() = phys.hidden();
    act.output().resize(static_cast<size_t>(logical.outputs));
    std::vector<double> copy_vals(static_cast<size_t>(copies));
    for (int k = 0; k < logical.outputs; ++k) {
        for (int c = 0; c < copies; ++c)
            copy_vals[static_cast<size_t>(c)] =
                phys.output()[static_cast<size_t>(
                    k + c * logical.outputs)];
        act.output()[static_cast<size_t>(k)] =
            medianVote(copy_vals);
    }
    return act;
}

} // namespace

Activations
SparedOutputMlp::forward(std::span<const double> input)
{
    return combineCopies(accel.forward(input), logical, copies);
}

std::vector<Activations>
SparedOutputMlp::forwardBatch(std::span<const std::vector<double>> inputs)
{
    std::vector<Activations> phys = accel.forwardBatch(inputs);
    std::vector<Activations> acts;
    acts.reserve(phys.size());
    for (const Activations &p : phys)
        acts.push_back(combineCopies(p, logical, copies));
    return acts;
}

} // namespace dtann
