/**
 * @file
 * Parallel campaign engine.
 *
 * The paper's defect-injection campaigns (Figs 10/11 and the
 * ablations) are embarrassingly parallel: tasks x defect counts x
 * ~100 faulty-network repetitions, each an independent
 * inject -> retrain -> cross-validate run. The engine schedules each
 * such (task, variant, repetition) cell as one work unit on a
 * fixed-size worker pool.
 *
 * Determinism: every cell derives all of its randomness with
 * Rng::substream(seed, {stream, task, variant, rep}) — counter-based
 * splitting, a pure function of the cell coordinates — and results
 * are accumulated in cell-index order after the parallel phase.
 * Campaign output is therefore bit-identical for any thread count,
 * including 1 (covered by EngineDeterminism tests).
 */

#ifndef DTANN_CORE_ENGINE_HH
#define DTANN_CORE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"

namespace dtann {

class SharedContextCache; // core/campaign.hh

/**
 * Thrown by CampaignEngine::parallelFor when the campaign's cancel
 * flag (CampaignRunConfig::cancel) is raised: remaining cells are
 * skipped, the batch drains, and the campaign unwinds through the
 * runner without producing a result. Journaled cells survive, so a
 * cancelled campaign resubmitted against the same journal resumes
 * where it stopped.
 */
struct CampaignCancelled : std::runtime_error
{
    CampaignCancelled() : std::runtime_error("campaign cancelled") {}
};

/** Progress report for one finished campaign cell. */
struct CellReport
{
    std::string task;  ///< task name
    int defects;       ///< defect count of the cell
    int rep;           ///< repetition index within (task, defects)
    double accuracy;   ///< cell outcome
    size_t cellsDone;  ///< cells finished so far (including this one)
    size_t cellsTotal; ///< total cells in the campaign
};

/**
 * Per-cell progress callback. Invoked from worker threads but
 * serialized by the engine, so implementations need no locking.
 * Completion *order* is scheduling-dependent; the campaign results
 * themselves are not.
 */
using ProgressCallback = std::function<void(const CellReport &)>;

/**
 * Stable address of one campaign cell in a results journal.
 *
 * Cells are independent, deterministic work units: all of a cell's
 * randomness derives from Rng::substream(seed, {root, task, variant,
 * rep}), so a journaled cell result keyed by these coordinates can
 * be replayed into a resumed campaign bit-identically. The variant
 * component is a self-describing string (e.g. "v2:d6", or
 * "v1:d4:bypass" for mitigation cells) because different campaign
 * kinds sweep different axes.
 */
struct CellKey
{
    std::string campaign; ///< campaign kind ("fig5", "fig10", ...)
    std::string task;     ///< task or operator name
    std::string variant;  ///< swept-axis coordinates within the task
    uint64_t rep = 0;     ///< repetition index within the variant

    /** Canonical "campaign/task/variant/rep" form (map key). */
    std::string toString() const;
};

/**
 * Checkpoint store consulted by the campaign runners: before a cell
 * is computed, lookup() may produce the journaled payload of a
 * previous run (the cell is then skipped); after a cell is
 * computed, store() persists its payload. Payloads are JSON
 * produced and parsed by the campaign that owns the cell, and
 * round-trip exactly, so a resumed campaign is bit-identical to an
 * uninterrupted one. Both methods are called from worker threads
 * and must be thread-safe.
 */
class CellCache
{
  public:
    virtual ~CellCache() = default;

    /** @return true and the payload when @p key is journaled. */
    virtual bool lookup(const CellKey &key, std::string &payload) = 0;

    /** Persist a freshly computed cell result. */
    virtual void store(const CellKey &key,
                       const std::string &payload) = 0;
};

/**
 * Look @p key up in @p journal (nullptr = no journal) and hand the
 * parsed payload to @p decode. Returns true when the cell was
 * replayed from the journal and must be skipped; returns false —
 * the cell must be computed — when the journal has no such key or
 * the payload fails to parse (corrupt journals degrade to
 * recomputation, never to a crash; a warning is logged).
 */
bool journalLookup(
    CellCache *journal, const CellKey &key,
    const std::function<void(const class JsonValue &)> &decode);

/**
 * Execution knobs shared by *every* campaign config, including
 * Fig5Config (hoisted from the former per-config duplication so
 * the spec parser sees one API shape everywhere).
 */
struct CampaignRunConfig
{
    int repetitions = 100; ///< faulty networks per campaign point
    uint64_t seed = 1;
    /** Worker threads; 0 = auto (DTANN_THREADS, else hardware). */
    int threads = 0;
    /** Optional per-cell progress callback. */
    ProgressCallback onCellDone;
    /** Optional checkpoint/resume store (owned by the caller). */
    CellCache *journal = nullptr;
    /**
     * Optional cooperative cancellation flag (owned by the caller).
     * Once it reads true, the engine stops starting cells and the
     * runner unwinds with CampaignCancelled.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Optional externally owned worker pool. When set, the engine
     * schedules its batches there instead of creating a pool of its
     * own — the campaign daemon points every admitted job here, so
     * concurrent jobs share one pool fair-share (`threads` is then
     * ignored). Results are bit-identical either way.
     */
    ThreadPool *sharedPool = nullptr;
    /**
     * Optional cross-campaign cache for the expensive read-only
     * state (netlist, dataset + clean baseline weights) campaigns
     * prepare before their cells run; see core/campaign.hh. Shared
     * by concurrent daemon jobs so the same circuit is built once.
     */
    SharedContextCache *contextCache = nullptr;
    /**
     * Deterministic multi-process sharding: with shardCount > 1
     * this run computes only the cells whose flat index i within
     * each campaign cell list satisfies i % shardCount ==
     * shardIndex; the rest stay empty (journaled cells replay
     * regardless of the filter). Cells are placement-independent —
     * all their randomness is Rng::substream of the cell
     * coordinates — so merging the shards' journals and replaying
     * them through an unsharded run reproduces the single-process
     * result byte for byte. Execution knobs only: never serialized
     * into specs or journal echoes.
     */
    int shardCount = 1;
    /** This worker's shard in [0, shardCount). */
    int shardIndex = 0;

    /** True when flat cell index @p i belongs to this shard. */
    bool inShard(size_t i) const
    {
        return shardCount <= 1 ||
               i % static_cast<size_t>(shardCount) ==
                   static_cast<size_t>(shardIndex);
    }

    /** Shared-field JSON fragment (no surrounding braces). */
    std::string jsonRunFields() const;
    /** Populate the shared fields present in JSON object @p v. */
    void readRunFields(const class JsonValue &v);
};

/**
 * Knobs shared by the network-level campaigns (Fig 10/11, the
 * mitigation sweep). Figure-specific configs derive from this.
 */
struct CampaignConfig : CampaignRunConfig
{
    std::vector<std::string> tasks; ///< empty = all 10
    int folds = 10;        ///< cross-validation folds
    size_t rows = 0;       ///< dataset size (0 = original)
    double epochScale = 1.0;    ///< scales baseline training epochs
    double retrainScale = 0.25; ///< retraining epochs vs baseline
    AcceleratorConfig array;
    /** Unit-instance draw: the paper picks operators/latches
     *  uniformly ("randomly pick one of the logic operators or
     *  latches"). */
    SiteWeighting weighting = SiteWeighting::Uniform;
    /** Hardware target the campaign cells instantiate. */
    BackendKind backend = BackendKind::Spatial;

    /** Shared-field JSON fragment (run fields + campaign fields). */
    std::string jsonCampaignFields() const;
    /** Populate the shared fields present in JSON object @p v. */
    void readCampaignFields(const class JsonValue &v);
};

/**
 * Fixed-size worker pool plus campaign progress accounting.
 *
 * Campaign code uses it in two phases: parallelFor over tasks to
 * prepare shared per-task state (dataset, baseline weights), then
 * parallelFor over the flattened cell list. Cells report through
 * reportCell() so long campaigns surface progress.
 */
class CampaignEngine
{
  public:
    /** Engine for @p config (thread count and progress callback). */
    explicit CampaignEngine(const CampaignRunConfig &config);

    /** Standalone engine (benches, non-figure campaigns). */
    explicit CampaignEngine(int threads,
                            ProgressCallback on_cell_done = {});

    /** Resolved execution width (>= 1). */
    int threads() const { return pool->size(); }

    /**
     * Run fn(0) .. fn(n-1) on the pool; blocks until done. @p fn
     * must derive randomness only from its index (Rng::substream)
     * and write only to its own result slot. When the config's
     * cancel flag is raised, unstarted indices are skipped and
     * CampaignCancelled is thrown once the batch drains.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** Arm progress accounting for a campaign of @p total cells. */
    void beginCampaign(size_t total);

    /**
     * Record one finished cell: bumps the done counter and invokes
     * the progress callback (if any). Thread-safe.
     */
    void reportCell(const std::string &task, int defects, int rep,
                    double accuracy);

  private:
    std::unique_ptr<ThreadPool> owned; ///< empty with a shared pool
    ThreadPool *pool;                  ///< owned.get() or borrowed
    const std::atomic<bool> *cancel = nullptr;
    ProgressCallback onCellDone;
    std::mutex mu;
    size_t done = 0;
    size_t total = 0;
};

} // namespace dtann

#endif // DTANN_CORE_ENGINE_HH
