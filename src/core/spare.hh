/**
 * @file
 * Spare (redundant) output neurons — the paper's second mitigation
 * for the defect-sensitive output layer (Section VI-C: "simply add
 * spare (redundant) output neurons ... as technology scales down,
 * the latter method will become more area efficient").
 *
 * Each logical output class is computed by N physical output
 * neurons carrying identical weights; a small key-logic combiner
 * merges the copies. Two copies average (halving a defect's
 * reach); three copies take the median, which completely rejects a
 * single broken copy — including stuck-high activations that an
 * averager cannot outvote.
 */

#ifndef DTANN_CORE_SPARE_HH
#define DTANN_CORE_SPARE_HH

#include "core/accelerator.hh"

namespace dtann {

/**
 * The key-logic copy-combine rule shared by every redundant-output
 * path (blind spares here, diagnosed replication in
 * mitigate/replicate): odd copy counts take the exact median —
 * rejecting any single broken copy, including stuck-high outputs an
 * averager cannot outvote — and even counts take the mean of the
 * middle pair (a plain average for 2 copies). Sorts @p copy_vals in
 * place.
 */
double medianVote(std::vector<double> &copy_vals);

/** ForwardModel replicating every logical output N times. */
class SparedOutputMlp : public ForwardModel
{
  public:
    /**
     * @param accel physical array; must provide at least
     *        copies x logical.outputs physical output neurons
     * @param logical the task network (its outputs get spares)
     * @param copies physical copies per logical output (2 =
     *        average, 3 = median)
     */
    SparedOutputMlp(Accelerator &accel, MlpTopology logical,
                    int copies = 2);

    MlpTopology topology() const override { return logical; }

    /** Duplicate output rows onto the spares and install. */
    void setWeights(const MlpWeights &w) override;

    /** Forward with the copy combiner (average or median). */
    Activations forward(std::span<const double> input) override;

    /** Batched forward through the accelerator's 64-lane path; the
     *  copy combiner runs per row, so results are bit-identical to
     *  forward() (probes and counters included). */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Work counters of the backing accelerator's faulty units. */
    SimCounters simCounters() const override
    {
        return accel.simCounters();
    }

    /** The replicated-output topology the array actually runs. */
    MlpTopology physicalTopology() const { return replicated; }

    /** Copies per logical output. */
    int copyCount() const { return copies; }

  private:
    Accelerator &accel;
    MlpTopology logical;
    MlpTopology replicated;
    int copies;
};

/**
 * Build the accelerator-side logical topology for a spared
 * network: outputs replicated @p copies times.
 */
MlpTopology sparedTopology(MlpTopology logical, int copies = 2);

} // namespace dtann

#endif // DTANN_CORE_SPARE_HH
