#include "core/dma.hh"

#include <cmath>

namespace dtann {

double
DmaModel::peakBandwidthGBs() const
{
    double bytes_per_cycle =
        static_cast<double>(cfg.links * cfg.bitsPerLink) / 8.0;
    // MHz * bytes = 1e6 bytes/s; express in GB/s (1e9).
    return bytes_per_cycle * cfg.clockMhz * 1e6 / 1e9;
}

int
DmaModel::cyclesForBits(int bits) const
{
    int per_cycle = cfg.links * cfg.bitsPerLink;
    return (bits + per_cycle - 1) / per_cycle;
}

double
DmaModel::transferNs(int bits) const
{
    return static_cast<double>(cyclesForBits(bits)) * 1e3 /
        cfg.clockMhz;
}

double
DmaModel::demandGBs(int bits_per_row, double row_latency_ns)
{
    // The paper expresses the demand in binary gigabytes:
    // 1440 bits / 14.92 ns = 11.23 GiB/s.
    double bytes_per_s =
        static_cast<double>(bits_per_row) / 8.0 / row_latency_ns * 1e9;
    return bytes_per_s / (1024.0 * 1024.0 * 1024.0);
}

double
DmaModel::requiredClockMhz(int bits_per_row,
                           double row_latency_ns) const
{
    // Fractional link cycles per row, amortized over streaming rows
    // (the paper's 1440 / 128 = 11.25 cycles -> 754 MHz).
    double cycles = static_cast<double>(bits_per_row) /
        static_cast<double>(cfg.links * cfg.bitsPerLink);
    return cycles / row_latency_ns * 1e3;
}

} // namespace dtann
