#include "core/yield.hh"

#include <cmath>

#include "common/logging.hh"

namespace dtann {

double
poissonPmf(int k, double lambda)
{
    if (lambda <= 0.0)
        return k == 0 ? 1.0 : 0.0;
    // exp(k ln lambda - lambda - ln k!)
    double log_p = k * std::log(lambda) - lambda - std::lgamma(k + 1.0);
    return std::exp(log_p);
}

double
interpolateAccuracy(const Fig10Curve &curve, double defects)
{
    dtann_assert(!curve.points.empty(), "empty accuracy curve");
    const auto &pts = curve.points;
    if (defects <= pts.front().defects)
        return pts.front().accuracy;
    for (size_t i = 1; i < pts.size(); ++i) {
        if (defects <= pts[i].defects) {
            double x0 = pts[i - 1].defects, x1 = pts[i].defects;
            double y0 = pts[i - 1].accuracy, y1 = pts[i].accuracy;
            double t = (defects - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    return pts.back().accuracy; // clamp beyond measurements
}

YieldPoint
effectiveYield(const Fig10Curve &curve, double area_mm2,
               double defects_per_cm2, double accuracy_threshold)
{
    YieldPoint y;
    y.defectsPerCm2 = defects_per_cm2;
    y.meanDefects = defects_per_cm2 * area_mm2 / 100.0; // mm^2 -> cm^2
    y.classicYield = poissonPmf(0, y.meanDefects);

    // Sum the Poisson mass until it is numerically exhausted.
    double functional = 0.0, expected = 0.0, mass = 0.0;
    int k_max = static_cast<int>(y.meanDefects + 12 *
                                 std::sqrt(y.meanDefects + 1.0)) + 8;
    for (int k = 0; k <= k_max; ++k) {
        double p = poissonPmf(k, y.meanDefects);
        double acc = interpolateAccuracy(curve, k);
        mass += p;
        expected += p * acc;
        if (acc >= accuracy_threshold)
            functional += p;
    }
    // Normalize the tiny truncated tail.
    if (mass > 0.0) {
        functional /= mass;
        expected /= mass;
    }
    y.effectiveYield = functional;
    y.expectedAccuracy = expected;
    return y;
}

} // namespace dtann
