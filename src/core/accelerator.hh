/**
 * @file
 * The spatially expanded hardware ANN accelerator (paper Fig 3).
 *
 * Physical structure: a fully connected 90-10-10 array (config-
 * urable). Every synapse has its own 16-bit weight latch and its
 * own Q6.10 multiplier; every neuron has a 24-bit ripple adder
 * chain and a PWL activation unit. There is no central weight
 * memory and no read decoding logic — the paper's key design point.
 *
 * Defects are injected per unit instance: the faulty unit is
 * replaced by a gate-level simulation of its netlist with
 * reconstructed transistor-level fault behaviour, while all clean
 * units execute native fixed-point arithmetic (bit-identical to the
 * netlists). This mirrors the paper's software methodology
 * ("a software function is called to perform that operator in
 * place of the native operator").
 *
 * A logical task network (e.g. 30-10-2 for breast) is mapped onto
 * the top-left corner of the physical array; unused physical
 * synapses hold weight 0. Defects are sampled over the *physical*
 * structure, so they may land in unused regions — as on real
 * silicon.
 *
 * The fault-hosting machinery (shared netlists, injection, bypass,
 * clamps, probes, BIST scan) lives in HardwareBackend
 * (core/backend.hh); this file contributes the spatial dataflow:
 * one dedicated unit per (layer, neuron, synapse) operation.
 */

#ifndef DTANN_CORE_ACCELERATOR_HH
#define DTANN_CORE_ACCELERATOR_HH

#include "core/backend.hh"

namespace dtann {

/**
 * The paper's spatially expanded array: every pass-addressed
 * operation has its own dedicated hardware unit (physicalSite() is
 * the identity), so a defect corrupts exactly one (layer, neuron,
 * operand) slot of the computation.
 */
class SpatialBackend : public HardwareBackend
{
  public:
    /**
     * @param config physical array dimensions
     * @param logical task network mapped onto the array (must fit)
     */
    SpatialBackend(const AcceleratorConfig &config, MlpTopology logical);

    BackendKind backendKind() const override
    {
        return BackendKind::Spatial;
    }

    /**
     * Quantize logical weights and store them through the (possibly
     * faulty) weight latches — the DMA write path.
     */
    void setWeights(const MlpWeights &w) override;

    /** Forward one logical input row through the array. */
    Activations forward(std::span<const double> input) override;

    /**
     * Forward a batch of logical input rows, evaluating each faulty
     * unit up to batchLaneWidth() rows per gate-level sweep
     * (state-free fault sets; 64/256/512 lanes per the DTANN_LANES
     * knob) or in row order through its scalar simulation
     * otherwise. Bit-identical to calling forward() per row at
     * every lane width, including the per-unit deviation-probe
     * update order.
     */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Fixed-point forward on the physical array (padded input). */
    std::vector<Fix16> forwardFix(std::span<const Fix16> physical_input);

    /** @name Raw physical access (partial time-multiplexing) @{ */

    /**
     * Write a full weight row of physical hidden neuron
     * @p phys_neuron through the latch path (inputs + 1 values,
     * bias last).
     */
    void loadPhysicalHiddenRow(int phys_neuron,
                               std::span<const Fix16> weights);

    /**
     * Write a full weight row of physical output neuron
     * @p phys_neuron through the latch path (hidden + 1 values,
     * bias last).
     */
    void loadPhysicalOutputRow(int phys_neuron,
                               std::span<const Fix16> weights);

    /**
     * Run only the physical hidden layer; activations are
     * returned, pre-activation adder-tree sums are kept readable
     * via hiddenSums() (the time-multiplexing output latches).
     */
    std::vector<Fix16> runHiddenLayer(std::span<const Fix16>
                                          physical_input);

    /** Pre-activation sums of the last hidden-layer run. */
    const std::vector<Acc24> &hiddenSums() const { return hidSums; }

    /**
     * Run only the physical hidden layer over <= kMaxLanes input
     * rows with the currently loaded weights (one weight load serves every
     * lane — the time-multiplexed batch path). Activations land in
     * @p out (one pointer per lane, cfg.hidden values each);
     * per-lane pre-activation sums stay readable via
     * hiddenSumsLanes(). Bit-identical per lane to runHiddenLayer()
     * when batchPure() holds.
     */
    void runHiddenLayerLanes(const std::vector<const Fix16 *> &in,
                             const std::vector<Fix16 *> &out,
                             size_t lanes);

    /** Per-lane pre-activation sums of the last lane-batched
     *  hidden-layer run: lane l, neuron n at [l * hidden + n]. */
    const std::vector<Acc24> &hiddenSumsLanes() const
    {
        return hidSumsLanes;
    }

    /** @} */

    /** Number of hardware units of @p kind (for site sampling). */
    int unitCount(UnitKind kind) const override;

    /** Eligible units in a fixed (layer, neuron, unit) order. */
    std::vector<UnitSite>
    enumerateSites(const SitePool &pool) const override;

  private:
    /** Stored physical weights (post-latch values). */
    std::vector<Fix16> hidW; // [hidden][inputs+1]
    std::vector<Fix16> outW; // [outputs][hidden+1]
    /** Values presented on the latch D inputs (pre-latch). */
    std::vector<Fix16> hidWIn;
    std::vector<Fix16> outWIn;

    std::vector<Fix16> hiddenAct;
    std::vector<Acc24> hidSums;
    /** [lane * hidden + neuron] sums of the last lanes run. */
    std::vector<Acc24> hidSumsLanes;

    Fix16 &hidWAt(int j, int i);
    Fix16 &outWAt(int k, int j);

    /** Run one physical layer. */
    void forwardLayer(Layer layer, std::span<const Fix16> in,
                      std::span<Fix16> out);

    /** Run one physical layer over <= kMaxLanes rows (one pointer
     *  each). */
    void forwardLayerLanes(Layer layer,
                           const std::vector<const Fix16 *> &in,
                           const std::vector<Fix16 *> &out,
                           size_t lanes);
};

/**
 * The paper's array is the default hardware target; most of the
 * codebase (wrappers, trainers, benches) predates the backend
 * split and keeps addressing it by this name.
 */
using Accelerator = SpatialBackend;

} // namespace dtann

#endif // DTANN_CORE_ACCELERATOR_HH
