/**
 * @file
 * The spatially expanded hardware ANN accelerator (paper Fig 3).
 *
 * Physical structure: a fully connected 90-10-10 array (config-
 * urable). Every synapse has its own 16-bit weight latch and its
 * own Q6.10 multiplier; every neuron has a 24-bit ripple adder
 * chain and a PWL activation unit. There is no central weight
 * memory and no read decoding logic — the paper's key design point.
 *
 * Defects are injected per unit instance: the faulty unit is
 * replaced by a gate-level simulation of its netlist with
 * reconstructed transistor-level fault behaviour, while all clean
 * units execute native fixed-point arithmetic (bit-identical to the
 * netlists). This mirrors the paper's software methodology
 * ("a software function is called to perform that operator in
 * place of the native operator").
 *
 * A logical task network (e.g. 30-10-2 for breast) is mapped onto
 * the top-left corner of the physical array; unused physical
 * synapses hold weight 0. Defects are sampled over the *physical*
 * structure, so they may land in unused regions — as on real
 * silicon.
 */

#ifndef DTANN_CORE_ACCELERATOR_HH
#define DTANN_CORE_ACCELERATOR_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ann/mlp.hh"
#include "circuit/sim_counters.hh"
#include "common/fixed_point.hh"
#include "common/stats.hh"
#include "rtl/builder.hh"
#include "rtl/operator_sim.hh"

namespace dtann {

/** Physical dimensions and implementation style of the array. */
struct AcceleratorConfig
{
    int inputs = 90;
    int hidden = 10;
    int outputs = 10;
    FaStyle faStyle = FaStyle::Nand9;

    /** JSON object (embedded in campaign specs and exports). */
    std::string toJson() const;
    /** Symmetric counterpart of toJson(); throws JsonError. */
    static AcceleratorConfig fromJson(const class JsonValue &v);

    bool operator==(const AcceleratorConfig &o) const = default;
};

/** Unit kinds that can host defects (paper Section VI-C). */
enum class UnitKind : uint8_t {
    WeightLatch, ///< 16-bit distributed weight storage
    Multiplier,  ///< per-synapse 16x16 Q6.10 multiplier
    AdderStage,  ///< one 24-bit stage of a neuron's adder chain
    Activation,  ///< per-neuron PWL sigmoid unit
};

/** Layers of the physical array. */
enum class Layer : uint8_t { Hidden, Output };

/** Address of one hardware unit instance. */
struct UnitSite
{
    UnitKind kind;
    Layer layer;
    int neuron;  ///< neuron index within the layer
    int index;   ///< synapse index (latch/mult) or stage index

    bool operator<(const UnitSite &o) const;
    bool operator==(const UnitSite &o) const = default;

    /** Human-readable site description. */
    std::string describe() const;
};

/** Observed |faulty - clean| deviations at one faulty unit. */
struct DeviationProbe
{
    RunningStat amplitude; ///< absolute deviation, in value units
};

/**
 * A per-layer activation clamp window (mitigation hook): a pair of
 * comparators after every activation unit of the layer saturates
 * the datapath value into [lo, hi], filtering the exceptional
 * outputs a defective sigmoid unit can emit (the full ±32 Q6.10
 * range) before they reach the next layer. The clean PWL sigmoid
 * lands in [0, 1], so a profiled window never alters a healthy
 * unit.
 */
struct ActivationClamp
{
    bool enabled = false;
    Fix16 lo;
    Fix16 hi;
};

/**
 * Functional + defect model of the accelerator array.
 *
 * Implements ForwardModel for the mapped logical task so the
 * companion-core Trainer can retrain through the faulty hardware.
 */
class Accelerator : public ForwardModel
{
  public:
    /**
     * @param config physical array dimensions
     * @param logical task network mapped onto the array (must fit)
     */
    Accelerator(const AcceleratorConfig &config, MlpTopology logical);

    /** The mapped logical topology. */
    MlpTopology topology() const override { return logical; }

    /** Physical configuration. */
    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Quantize logical weights and store them through the (possibly
     * faulty) weight latches — the DMA write path.
     */
    void setWeights(const MlpWeights &w) override;

    /** Forward one logical input row through the array. */
    Activations forward(std::span<const double> input) override;

    /**
     * Forward a batch of logical input rows, evaluating each faulty
     * unit up to batchLaneWidth() rows per gate-level sweep
     * (state-free fault sets; 64/256/512 lanes per the DTANN_LANES
     * knob) or in row order through its scalar simulation
     * otherwise. Bit-identical to calling forward() per row at
     * every lane width, including the per-unit deviation-probe
     * update order.
     */
    std::vector<Activations> forwardBatch(
        std::span<const std::vector<double>> inputs) override;

    /** Aggregate simulation work counters over all faulty units. */
    SimCounters simCounters() const override;

    /**
     * True when every faulty unit's simulation is a pure function
     * (lane-batchable: state-free faults on feedback-free
     * netlists; vacuously true on a clean array). Wrapper models
     * that hoist weight reloads across input rows (time-mux) may
     * only do so under this predicate — stateful simulations and
     * faulty weight latches depend on the exact per-row operation
     * order. DTANN_NO_BATCH clears it, forcing the per-row paths.
     */
    bool batchPure() const;

    /** Fixed-point forward on the physical array (padded input). */
    std::vector<Fix16> forwardFix(std::span<const Fix16> physical_input);

    /** @name Raw physical access (partial time-multiplexing) @{ */

    /**
     * Write a full weight row of physical hidden neuron
     * @p phys_neuron through the latch path (inputs + 1 values,
     * bias last).
     */
    void loadPhysicalHiddenRow(int phys_neuron,
                               std::span<const Fix16> weights);

    /**
     * Write a full weight row of physical output neuron
     * @p phys_neuron through the latch path (hidden + 1 values,
     * bias last).
     */
    void loadPhysicalOutputRow(int phys_neuron,
                               std::span<const Fix16> weights);

    /**
     * Run only the physical hidden layer; activations are
     * returned, pre-activation adder-tree sums are kept readable
     * via hiddenSums() (the time-multiplexing output latches).
     */
    std::vector<Fix16> runHiddenLayer(std::span<const Fix16>
                                          physical_input);

    /** Pre-activation sums of the last hidden-layer run. */
    const std::vector<Acc24> &hiddenSums() const { return hidSums; }

    /**
     * Run only the physical hidden layer over <= kMaxLanes input
     * rows with the currently loaded weights (one weight load serves every
     * lane — the time-multiplexed batch path). Activations land in
     * @p out (one pointer per lane, cfg.hidden values each);
     * per-lane pre-activation sums stay readable via
     * hiddenSumsLanes(). Bit-identical per lane to runHiddenLayer()
     * when batchPure() holds.
     */
    void runHiddenLayerLanes(const std::vector<const Fix16 *> &in,
                             const std::vector<Fix16 *> &out,
                             size_t lanes);

    /** Per-lane pre-activation sums of the last lane-batched
     *  hidden-layer run: lane l, neuron n at [l * hidden + n]. */
    const std::vector<Acc24> &hiddenSumsLanes() const
    {
        return hidSumsLanes;
    }

    /** @} */

    /**
     * Inject @p count transistor-level defects into one unit
     * instance chosen by the campaign (the unit becomes gate-level
     * simulated).
     *
     * @return descriptions of the injected faults
     */
    std::vector<InjectionRecord> injectDefects(const UnitSite &site,
                                               int count, Rng &rng);

    /** Remove all injected defects and probes. */
    void clearDefects();

    /** Sites that currently host defects. */
    std::vector<UnitSite> faultySites() const;

    /**
     * Ground-truth query: does @p site currently host injected
     * defects? Diagnosis code (src/mitigate) scores its inferred
     * defect maps against this.
     */
    bool isFaulty(const UnitSite &site) const;

    /** @name BIST scan access (src/mitigate diagnosis harness)
     *
     * Drive a test vector through one unit instance and observe its
     * raw response, modelling a scan-path that isolates the unit
     * from the array datapath. Faulty units respond through their
     * gate-level simulation (including defect-induced memory), clean
     * units respond with native fixed-point arithmetic. Probing
     * updates the unit's deviation probe like any other use.
     * @{ */
    Fix16 bistMul(Layer layer, int neuron, int synapse, Fix16 w,
                  Fix16 x);
    Acc24 bistAdd(Layer layer, int neuron, int stage, Acc24 a, Acc24 b);
    Fix16 bistAct(Layer layer, int neuron, Fix16 x);
    Fix16 bistLatchStore(Layer layer, int neuron, int synapse, Fix16 d);
    /** @} */

    /** @name Defect bypass (src/mitigate mitigation strategies)
     *
     * A bypassed unit is disconnected from the datapath by a small
     * output mux (fault-aware pruning): a bypassed multiplier or
     * weight latch contributes a zero product, a bypassed adder
     * stage passes its accumulator input through unchanged (dropping
     * that stage's product), and a bypassed activation unit emits a
     * constant zero (silencing the neuron). The bypass takes
     * precedence over any injected defect at the unit.
     * @{ */
    void bypassUnit(const UnitSite &site);
    void clearBypasses();
    bool isBypassed(const UnitSite &site) const;
    std::vector<UnitSite> bypassedSites() const;
    /** @} */

    /** @name Activation clamping (src/mitigate ClampActivations)
     *
     * The clamp applies on the *datapath* only — after the
     * activation unit's output, before the value feeds the next
     * layer or leaves the array — so the BIST scan path still
     * observes raw (unclamped) unit responses and diagnosis stays
     * honest. Scalar and lane-batched forwards clamp identically,
     * preserving bit-identity at every lane width.
     * @{ */
    void setActivationClamp(Layer layer, Fix16 lo, Fix16 hi);
    void clearActivationClamps();
    const ActivationClamp &activationClamp(Layer layer) const;
    /** Datapath values saturated by the clamps since the last
     *  clearActivationClamps(). */
    uint64_t clampHits() const { return clampHitCount; }
    /** @} */

    /** Deviation probe of a faulty unit (empty stats when clean). */
    const DeviationProbe &probe(const UnitSite &site) const;

    /** Reset all deviation probes. */
    void clearProbes();

    /** Number of hardware units of @p kind (for site sampling). */
    int unitCount(UnitKind kind) const;

    /** Shared netlists (also used by the cost model). @{ */
    const Netlist &multiplierNetlist() const { return *multNl; }
    const Netlist &adderNetlist() const { return *addNl; }
    const Netlist &latchNetlist() const { return *latchNl; }
    const Netlist &activationNetlist() const { return *actNl; }
    /** @} */

  private:
    AcceleratorConfig cfg;
    MlpTopology logical;

    /** Shared unit netlists. */
    std::shared_ptr<const Netlist> multNl;
    std::shared_ptr<const Netlist> addNl;
    std::shared_ptr<const Netlist> latchNl;
    std::shared_ptr<const Netlist> actNl;

    /** Stored physical weights (post-latch values). */
    std::vector<Fix16> hidW; // [hidden][inputs+1]
    std::vector<Fix16> outW; // [outputs][hidden+1]
    /** Values presented on the latch D inputs (pre-latch). */
    std::vector<Fix16> hidWIn;
    std::vector<Fix16> outWIn;

    /** Gate-level sims of faulty units. */
    std::map<UnitSite, std::unique_ptr<OperatorSim>> faulty;
    /** Units disconnected by the mitigation bypass muxes. */
    std::set<UnitSite> bypassed;
    /** Per-layer activation clamp windows (Hidden, Output). */
    ActivationClamp clamps[2];
    uint64_t clampHitCount = 0;
    /** Deviation probes per faulty unit. */
    std::map<UnitSite, DeviationProbe> probes;
    DeviationProbe cleanProbe; // returned for clean sites

    std::vector<Fix16> hiddenAct;
    std::vector<Acc24> hidSums;
    /** [lane * hidden + neuron] sums of the last lanes run. */
    std::vector<Acc24> hidSumsLanes;

    Fix16 &hidWAt(int j, int i);
    Fix16 &outWAt(int k, int j);

    /** Faulty-unit lookup; null when the site is clean. */
    OperatorSim *simFor(const UnitSite &site);

    /** Apply @p layer's clamp window to one datapath value. */
    Fix16 clampValue(Layer layer, Fix16 x);

    /** Per-unit operations (route through sim when faulty). @{ */
    Fix16 unitMul(Layer layer, int neuron, int synapse, Fix16 w, Fix16 x);
    Acc24 unitAdd(Layer layer, int neuron, int stage, Acc24 a, Acc24 b);
    Fix16 unitAct(Layer layer, int neuron, Fix16 x);
    Fix16 unitLatchStore(Layer layer, int neuron, int synapse, Fix16 d);
    /** @} */

    /** Lane-wise unit operations (<= kMaxLanes rows at a time). @{ */
    void unitMulLanes(Layer layer, int neuron, int synapse, Fix16 w,
                      const Fix16 *x, Fix16 *out, size_t lanes);
    void unitAddLanes(Layer layer, int neuron, int stage, Acc24 *acc,
                      const Acc24 *b, size_t lanes);
    void unitActLanes(Layer layer, int neuron, const Fix16 *x,
                      Fix16 *out, size_t lanes);
    /** @} */

    /** Run one physical layer. */
    void forwardLayer(Layer layer, std::span<const Fix16> in,
                      std::span<Fix16> out);

    /** Run one physical layer over <= kMaxLanes rows (one pointer
     *  each). */
    void forwardLayerLanes(Layer layer,
                           const std::vector<const Fix16 *> &in,
                           const std::vector<Fix16 *> &out,
                           size_t lanes);
};

} // namespace dtann

#endif // DTANN_CORE_ACCELERATOR_HH
