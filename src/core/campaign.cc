#include "core/campaign.hh"

#include <algorithm>
#include <memory>

#include "ann/crossval.hh"
#include "common/logging.hh"
#include "core/injector.hh"
#include "rtl/adder.hh"
#include "rtl/multiplier.hh"
#include "rtl/operator_sim.hh"

namespace dtann {

// ---------------------------------------------------------------
// Fig 5

Fig5Result
runFig5(Fig5Operator op, int defects, int repetitions, Rng &rng,
        FaStyle style)
{
    auto nl = std::make_shared<Netlist>(
        op == Fig5Operator::Adder4
            ? buildRippleAdder(4, style, true)
            : buildMultiplierUnsigned(4, style));
    size_t out_bits = nl->outputs().size();

    Fig5Result result;
    result.op = op;
    result.defects = defects;
    result.repetitions = repetitions;

    // All 256 input pairs, presented in random order each time to
    // avoid special behaviour from defect-induced memory (paper
    // Section III-A).
    std::vector<uint64_t> pairs(256);
    for (uint64_t i = 0; i < 256; ++i)
        pairs[i] = i;

    for (int rep = 0; rep < repetitions; ++rep) {
        Injection trans_inj = injectTransistorDefects(*nl, defects, rng);
        Injection gate_inj = injectGateLevelFaults(*nl, defects, rng);
        OperatorSim trans_sim(nl, std::move(trans_inj));
        OperatorSim gate_sim(nl, std::move(gate_inj));

        rng.shuffle(pairs);
        for (uint64_t in : pairs) {
            uint64_t a = in & 0xf, b = in >> 4;
            int64_t clean = op == Fig5Operator::Adder4
                ? static_cast<int64_t>(a + b)
                : static_cast<int64_t>(a * b);
            result.none.add(clean);
            result.trans.add(static_cast<int64_t>(
                trans_sim.apply(in) & ((1ull << out_bits) - 1)));
            result.gate.add(static_cast<int64_t>(
                gate_sim.apply(in) & ((1ull << out_bits) - 1)));
        }
    }
    return result;
}

// ---------------------------------------------------------------
// Shared helpers

Hyper
hardwareHyper(const UciTaskSpec &spec, const AcceleratorConfig &a,
              double epoch_scale)
{
    Hyper h;
    // The physical array caps the hidden-layer size (the paper's
    // hardware uses 10 hidden neurons even when the software
    // optimum is larger).
    h.hidden = std::min(spec.hidden, a.hidden);
    h.epochs = std::max(
        1, static_cast<int>(spec.epochs * epoch_scale + 0.5));
    h.learningRate = spec.learningRate;
    h.momentum = 0.1;
    return h;
}

namespace {

/** Tasks selected by a config (empty = all). */
std::vector<UciTaskSpec>
selectTasks(const std::vector<std::string> &names)
{
    if (names.empty())
        return uciTasks();
    std::vector<UciTaskSpec> out;
    for (const auto &n : names)
        out.push_back(uciTask(n));
    return out;
}

/** Retraining variant of @p hyper with scaled-down epochs. */
Hyper
retrainHyper(const Hyper &hyper, double retrain_scale)
{
    Hyper h = hyper;
    h.epochs =
        std::max(1, static_cast<int>(hyper.epochs * retrain_scale + 0.5));
    return h;
}

} // namespace

// ---------------------------------------------------------------
// Fig 10

std::vector<Fig10Curve>
runFig10(const Fig10Config &config)
{
    std::vector<Fig10Curve> curves;
    Rng master(config.seed);

    for (const UciTaskSpec &spec : selectTasks(config.tasks)) {
        Rng task_rng = master.split();
        Dataset ds = makeSyntheticTask(spec, task_rng, config.rows);
        Hyper hyper = hardwareHyper(spec, config.array, config.epochScale);
        MlpTopology logical{spec.attributes, hyper.hidden, spec.classes};

        Fig10Curve curve;
        curve.task = spec.name;

        // Baseline: train the clean accelerator once; its weights
        // warm-start every retraining run.
        Accelerator accel(config.array, logical);
        Rng train_rng = task_rng.split();
        MlpWeights baseline =
            Trainer(hyper).train(accel, ds, train_rng);

        Trainer retrainer(retrainHyper(hyper, config.retrainScale));
        auto evaluate = [&](Rng &cv_rng) {
            if (config.retrain) {
                CrossValResult cv =
                    crossValidate(accel, ds, config.folds, retrainer,
                                  cv_rng, &baseline);
                return cv.meanAccuracy;
            }
            // Ablation: no retraining, test the baseline weights
            // through the faulty hardware.
            accel.setWeights(baseline);
            return Trainer::accuracy(accel, ds);
        };
        for (int defects : config.defectCounts) {
            RunningStat stat;
            if (defects == 0) {
                accel.clearDefects();
                Rng cv_rng = task_rng.split();
                stat.add(evaluate(cv_rng));
            } else {
                for (int rep = 0; rep < config.repetitions; ++rep) {
                    accel.clearDefects();
                    DefectInjector injector(accel,
                                            SitePool::inputAndHidden(),
                                            config.weighting);
                    Rng inj_rng = task_rng.split();
                    injector.inject(defects, inj_rng);
                    Rng cv_rng = task_rng.split();
                    stat.add(evaluate(cv_rng));
                }
            }
            curve.points.push_back(
                {defects, stat.mean(), stat.stddev()});
        }
        curves.push_back(std::move(curve));
    }
    return curves;
}

// ---------------------------------------------------------------
// Fig 11

std::vector<Fig11Curve>
runFig11(const Fig11Config &config)
{
    std::vector<Fig11Curve> curves;
    Rng master(config.seed);

    for (const UciTaskSpec &spec : selectTasks(config.tasks)) {
        Rng task_rng = master.split();
        Dataset ds = makeSyntheticTask(spec, task_rng, config.rows);
        Hyper hyper = hardwareHyper(spec, config.array, config.epochScale);
        MlpTopology logical{spec.attributes, hyper.hidden, spec.classes};

        Accelerator accel(config.array, logical);
        Rng train_rng = task_rng.split();
        MlpWeights baseline =
            Trainer(hyper).train(accel, ds, train_rng);
        Trainer retrainer(retrainHyper(hyper, config.retrainScale));

        Fig11Curve curve;
        curve.task = spec.name;
        LogBins bins(-3, 3, 1);

        for (int rep = 0; rep < config.repetitions; ++rep) {
            accel.clearDefects();
            DefectInjector injector(accel, SitePool::outputCritical(),
                                    config.weighting);
            Rng inj_rng = task_rng.split();
            auto records = injector.inject(1, inj_rng);
            UnitSite site = accel.faultySites().front();

            // Retrain with the faulty output stage, then measure
            // accuracy and the error amplitude at the faulty unit
            // during the test phase only.
            Rng cv_rng = task_rng.split();
            auto folds = kFoldIndices(ds.size(), config.folds);
            RunningStat acc_stat;
            RunningStat amp_stat;
            for (size_t f = 0; f < folds.size(); ++f) {
                Dataset train_set = complementSubset(ds, folds, f);
                Dataset test_set = subset(ds, folds[f]);
                retrainer.train(accel, train_set, cv_rng, &baseline);
                accel.clearProbes();
                acc_stat.add(Trainer::accuracy(accel, test_set));
                const DeviationProbe &p = accel.probe(site);
                if (p.amplitude.count() > 0)
                    amp_stat.add(p.amplitude.mean());
            }
            Fig11Sample sample;
            sample.task = spec.name;
            sample.accuracy = acc_stat.mean();
            sample.amplitude = amp_stat.mean();
            sample.site = records.empty() ? site.describe()
                                          : records.front().what;
            bins.add(sample.amplitude, sample.accuracy);
            curve.samples.push_back(std::move(sample));
        }

        for (size_t b = 0; b < bins.numBins(); ++b)
            if (bins.binStat(b).count() > 0)
                curve.binAccuracy.push_back(
                    {bins.binCenter(b), bins.binStat(b).mean()});
        curves.push_back(std::move(curve));
    }
    return curves;
}

} // namespace dtann
