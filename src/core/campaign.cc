#include "core/campaign.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>

#include "ann/crossval.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "rtl/adder.hh"
#include "rtl/clean_model.hh"
#include "rtl/multiplier.hh"
#include "rtl/operator_sim.hh"

namespace dtann {

namespace {

/**
 * Roots of the counter-based RNG streams (Rng::substream paths).
 * Every stream a campaign uses is substream(seed, {root, ...cell
 * coordinates...}), so streams never depend on scheduling order.
 */
enum StreamRoot : uint64_t {
    kStreamData = 1,  ///< {kStreamData, task}: dataset generation
    kStreamTrain = 2, ///< {kStreamTrain, task}: baseline training
    kStreamCell = 3,  ///< {kStreamCell, task, variant, rep}: one cell
};

} // namespace

// ---------------------------------------------------------------
// Config JSON (symmetric with the scenario-spec parser)

const char *
fig5OperatorName(Fig5Operator op)
{
    return op == Fig5Operator::Adder4 ? "adder4" : "multiplier4";
}

bool
fig5OperatorFromName(const std::string &name, Fig5Operator &out)
{
    if (name == "adder4") {
        out = Fig5Operator::Adder4;
        return true;
    }
    if (name == "multiplier4") {
        out = Fig5Operator::Multiplier4;
        return true;
    }
    return false;
}

std::string
Fig5Config::toJson() const
{
    std::string out = "{" + jsonRunFields();
    out += ",\"operator\":" + jsonString(fig5OperatorName(op));
    out += ",\"defects\":" + std::to_string(defects);
    out += ",\"fa_style\":" + jsonString(faStyleName(style));
    out += "}";
    return out;
}

Fig5Config
Fig5Config::fromJson(const JsonValue &v)
{
    Fig5Config c;
    c.readRunFields(v);
    std::string op_name =
        jsonGetString(v, "operator", fig5OperatorName(c.op));
    if (!fig5OperatorFromName(op_name, c.op))
        throw JsonError("unknown operator '" + op_name +
                        "' (expected adder4 or multiplier4)");
    c.defects = jsonGetInt(v, "defects", c.defects, 0, 1 << 20);
    std::string style =
        jsonGetString(v, "fa_style", faStyleName(c.style));
    if (!faStyleFromName(style, c.style))
        throw JsonError("unknown fa_style '" + style +
                        "' (expected nand9 or mirror)");
    return c;
}

std::string
Fig10Config::toJson() const
{
    std::string out = "{" + jsonCampaignFields();
    out += ",\"defect_counts\":[";
    for (size_t i = 0; i < defectCounts.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(defectCounts[i]);
    }
    out += "],\"retrain\":";
    out += retrain ? "true" : "false";
    out += "}";
    return out;
}

Fig10Config
Fig10Config::fromJson(const JsonValue &v)
{
    Fig10Config c;
    c.readCampaignFields(v);
    c.defectCounts = jsonGetIntArray(v, "defect_counts", c.defectCounts);
    c.retrain = jsonGetBool(v, "retrain", c.retrain);
    return c;
}

std::string
Fig11Config::toJson() const
{
    return "{" + jsonCampaignFields() + "}";
}

Fig11Config
Fig11Config::fromJson(const JsonValue &v)
{
    Fig11Config c;
    c.readCampaignFields(v);
    return c;
}

std::string
campaignEnvelope(const std::string &kind, const std::string &configJson,
                 uint64_t seed, const SimCounters &sim,
                 const std::string &resultsJson)
{
    std::string out = "{\"kind\":" + jsonString(kind);
    out += ",\"config\":" + configJson;
    out += ",\"seed\":" + std::to_string(seed);
    out += ",\"sim\":" + sim.toJson();
    out += ",\"results\":" + resultsJson;
    out += "}";
    return out;
}

// ---------------------------------------------------------------
// Fig 5

Fig5Result
runFig5(const Fig5Config &config)
{
    const char *op_name = fig5OperatorName(config.op);
    auto build_netlist = [&] {
        return config.op == Fig5Operator::Adder4
            ? buildRippleAdder(4, config.style, true)
            : buildMultiplierUnsigned(4, config.style);
    };
    std::shared_ptr<const Netlist> nl = config.contextCache != nullptr
        ? config.contextCache->netlist(
              std::string("netlist/") + op_name + "/" +
                  faStyleName(config.style),
              build_netlist)
        : std::make_shared<const Netlist>(build_netlist());
    size_t out_bits = nl->outputs().size();

    Fig5Result result;
    result.op = config.op;
    result.defects = config.defects;
    result.repetitions = config.repetitions;
    result.style = config.style;
    result.seed = config.seed;

    // One independent injection per repetition; each evaluates all
    // 256 input pairs in random order to avoid special behaviour
    // from defect-induced memory (paper Section III-A). The pairs
    // reach each faulty operator through applyLanes(): state-free
    // fault sets run 64 pairs per bit-parallel sweep, stateful ones
    // fall back to the scalar path in the same order, so histograms
    // are bit-identical either way.
    struct RepHists
    {
        IntHistogram none, gate, trans;
        SimCounters sim;
    };
    size_t reps = static_cast<size_t>(std::max(0, config.repetitions));
    std::vector<RepHists> hists(reps);

    CleanFn clean_fn = config.op == Fig5Operator::Adder4
        ? cleanAdder(4, true)
        : cleanMultiplierUnsigned(4);

    CampaignEngine engine(config);
    engine.beginCampaign(reps);
    const std::string variant = "d" + std::to_string(config.defects);
    engine.parallelFor(reps, [&](size_t rep) {
        RepHists &h = hists[rep];
        CellKey key{"fig5", op_name, variant, rep};
        if (journalLookup(config.journal, key, [&](const JsonValue &v) {
                h.none = IntHistogram::fromJson(v.at("none"));
                h.gate = IntHistogram::fromJson(v.at("gate"));
                h.trans = IntHistogram::fromJson(v.at("trans"));
                h.sim = SimCounters::fromJson(v.at("sim"));
            })) {
            engine.reportCell(op_name, config.defects,
                              static_cast<int>(rep), 0.0);
            return;
        }
        // Sharded worker: cells owned by other shards are left for
        // their processes; the merged journals replay them later.
        if (!config.inShard(rep))
            return;
        Rng rng = Rng::substream(config.seed, {kStreamCell, rep});
        Injection trans_inj =
            injectTransistorDefects(*nl, config.defects, rng);
        Injection gate_inj =
            injectGateLevelFaults(*nl, config.defects, rng);
        OperatorSim trans_sim(nl, std::move(trans_inj), clean_fn);
        OperatorSim gate_sim(nl, std::move(gate_inj), clean_fn);

        std::vector<uint64_t> pairs(256);
        for (uint64_t i = 0; i < 256; ++i)
            pairs[i] = i;
        rng.shuffle(pairs);

        std::vector<uint64_t> trans_out(256), gate_out(256);
        trans_sim.applyLanes(pairs.data(), trans_out.data(), 256);
        gate_sim.applyLanes(pairs.data(), gate_out.data(), 256);

        for (size_t i = 0; i < 256; ++i) {
            uint64_t in = pairs[i];
            uint64_t a = in & 0xf, b = in >> 4;
            int64_t clean = config.op == Fig5Operator::Adder4
                ? static_cast<int64_t>(a + b)
                : static_cast<int64_t>(a * b);
            h.none.add(clean);
            h.trans.add(static_cast<int64_t>(
                trans_out[i] & ((1ull << out_bits) - 1)));
            h.gate.add(static_cast<int64_t>(
                gate_out[i] & ((1ull << out_bits) - 1)));
        }
        h.sim.merge(trans_sim.counters());
        h.sim.merge(gate_sim.counters());
        if (config.journal)
            config.journal->store(
                key, "{\"none\":" + h.none.toJson() +
                    ",\"gate\":" + h.gate.toJson() +
                    ",\"trans\":" + h.trans.toJson() +
                    ",\"sim\":" + h.sim.toJson() + "}");
        engine.reportCell(op_name, config.defects,
                          static_cast<int>(rep), 0.0);
    });

    for (const RepHists &h : hists) {
        result.none.merge(h.none);
        result.gate.merge(h.gate);
        result.trans.merge(h.trans);
        result.sim.merge(h.sim);
    }
    logSimCounters("fig5", result.sim);
    return result;
}

// ---------------------------------------------------------------
// Shared helpers

Hyper
hardwareHyper(const UciTaskSpec &spec, const AcceleratorConfig &a,
              double epoch_scale)
{
    Hyper h;
    // The physical array caps the hidden-layer size (the paper's
    // hardware uses 10 hidden neurons even when the software
    // optimum is larger).
    h.hidden = std::min(spec.hidden, a.hidden);
    h.epochs = std::max(
        1, static_cast<int>(spec.epochs * epoch_scale + 0.5));
    h.learningRate = spec.learningRate;
    h.momentum = 0.1;
    return h;
}

std::vector<UciTaskSpec>
selectTasks(const std::vector<std::string> &names)
{
    if (names.empty())
        return uciTasks();
    std::vector<UciTaskSpec> out;
    for (const auto &n : names)
        out.push_back(uciTask(n));
    return out;
}

Hyper
retrainHyper(const Hyper &hyper, double retrain_scale)
{
    Hyper h = hyper;
    h.epochs =
        std::max(1, static_cast<int>(hyper.epochs * retrain_scale + 0.5));
    return h;
}

bool
maybeWriteJson(const std::string &name, const std::string &json)
{
    std::string dir = jsonOutDir();
    if (dir.empty())
        return false;
    std::string path = dir + "/" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write JSON results to '%s'", path.c_str());
        return false;
    }
    out << json << "\n";
    return true;
}

namespace {

TaskContext
prepareTask(const CampaignConfig &config, const UciTaskSpec &spec,
            size_t task_index)
{
    TaskContext t;
    t.spec = spec;
    Rng data_rng =
        Rng::substream(config.seed, {kStreamData, task_index});
    t.ds = makeSyntheticTask(spec, data_rng, config.rows);
    t.hyper = hardwareHyper(spec, config.array, config.epochScale);
    t.logical = {spec.attributes, t.hyper.hidden, spec.classes};

    // Baseline: train the clean backend once; its weights
    // warm-start every retraining cell of this task.
    auto accel = makeBackend(config.backend, config.array, t.logical);
    Rng train_rng =
        Rng::substream(config.seed, {kStreamTrain, task_index});
    t.baseline = Trainer(t.hyper).train(*accel, t.ds, train_rng);
    return t;
}

} // namespace

std::string
taskContextKey(const CampaignConfig &config, const UciTaskSpec &spec,
               size_t index)
{
    // Everything prepareTask() reads, canonically encoded; two
    // configs with equal keys build bit-identical contexts.
    return "task/" + spec.name + "/" + std::to_string(index) +
        "/seed=" + std::to_string(config.seed) +
        ";rows=" + std::to_string(config.rows) +
        ";epoch_scale=" + jsonNumber(config.epochScale) +
        ";array=" + config.array.toJson() +
        ";backend=" + backendName(config.backend);
}

std::vector<std::shared_ptr<const TaskContext>>
prepareCampaignTasks(CampaignEngine &engine,
                     const CampaignConfig &config,
                     const std::vector<UciTaskSpec> &specs)
{
    std::vector<std::shared_ptr<const TaskContext>> ctx(specs.size());
    engine.parallelFor(specs.size(), [&](size_t t) {
        if (config.contextCache != nullptr) {
            ctx[t] = config.contextCache->task(
                taskContextKey(config, specs[t], t),
                [&] { return prepareTask(config, specs[t], t); });
        } else {
            ctx[t] = std::make_shared<const TaskContext>(
                prepareTask(config, specs[t], t));
        }
    });
    return ctx;
}

// ---------------------------------------------------------------
// Fig 10

std::vector<Fig10Curve>
runFig10(const Fig10Config &config)
{
    std::vector<UciTaskSpec> specs = selectTasks(config.tasks);
    CampaignEngine engine(config);
    auto ctx = prepareCampaignTasks(engine, config, specs);

    // Flatten the campaign into independent cells. The defect-free
    // point is a single evaluation (no injection randomness).
    struct Cell
    {
        size_t task;
        size_t variant; ///< index into defectCounts
        int rep;
    };
    std::vector<Cell> cells;
    for (size_t t = 0; t < specs.size(); ++t)
        for (size_t d = 0; d < config.defectCounts.size(); ++d) {
            int reps =
                config.defectCounts[d] == 0 ? 1 : config.repetitions;
            for (int rep = 0; rep < reps; ++rep)
                cells.push_back({t, d, rep});
        }

    std::vector<double> accuracy(cells.size());
    std::vector<SimCounters> cellSim(cells.size());
    engine.beginCampaign(cells.size());
    engine.parallelFor(cells.size(), [&](size_t i) {
        const Cell &c = cells[i];
        const TaskContext &t = *ctx[c.task];
        int defects = config.defectCounts[c.variant];

        CellKey key{"fig10", t.spec.name,
                    "v" + std::to_string(c.variant) + ":d" +
                        std::to_string(defects),
                    static_cast<uint64_t>(c.rep)};
        if (journalLookup(config.journal, key, [&](const JsonValue &v) {
                accuracy[i] = v.at("accuracy").asNumber();
                cellSim[i] = SimCounters::fromJson(v.at("sim"));
            })) {
            engine.reportCell(t.spec.name, defects, c.rep, accuracy[i]);
            return;
        }
        if (!config.inShard(i))
            return;

        // The cell's whole randomness budget comes from one
        // counter-derived stream: injection first, then fold
        // shuffling and retraining.
        Rng rng = Rng::substream(
            config.seed, {kStreamCell, c.task, c.variant,
                          static_cast<uint64_t>(c.rep)});

        auto accel = makeBackend(config.backend, config.array,
                                 t.logical);
        if (defects > 0) {
            DefectInjector injector(*accel, SitePool::inputAndHidden(),
                                    config.weighting);
            injector.inject(defects, rng);
        }

        double acc;
        if (config.retrain) {
            Trainer retrainer(
                retrainHyper(t.hyper, config.retrainScale));
            acc = crossValidate(*accel, t.ds, config.folds, retrainer,
                                rng, &t.baseline)
                      .meanAccuracy;
        } else {
            // Ablation: no retraining, test the baseline weights
            // through the faulty hardware.
            accel->setWeights(t.baseline);
            acc = evalAccuracy(*accel, t.ds);
        }
        accuracy[i] = acc;
        cellSim[i] = accel->simCounters();
        if (config.journal)
            config.journal->store(
                key, "{\"accuracy\":" + jsonNumber(acc) +
                    ",\"sim\":" + cellSim[i].toJson() + "}");
        engine.reportCell(t.spec.name, defects, c.rep, acc);
    });

    // Deterministic accumulation: cells are folded into the curves
    // in cell-index order, never in completion order.
    std::vector<Fig10Curve> curves(specs.size());
    std::vector<RunningStat> stats(specs.size() *
                                   config.defectCounts.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        stats[cells[i].task * config.defectCounts.size() +
              cells[i].variant]
            .add(accuracy[i]);
        curves[cells[i].task].sim.merge(cellSim[i]);
    }
    SimCounters total;
    for (size_t t = 0; t < specs.size(); ++t) {
        curves[t].task = specs[t].name;
        for (size_t d = 0; d < config.defectCounts.size(); ++d) {
            const RunningStat &s =
                stats[t * config.defectCounts.size() + d];
            curves[t].points.push_back(
                {config.defectCounts[d], s.mean(), s.stddev()});
        }
        total.merge(curves[t].sim);
    }
    logSimCounters("fig10", total);
    return curves;
}

// ---------------------------------------------------------------
// Fig 11

std::vector<Fig11Curve>
runFig11(const Fig11Config &config)
{
    std::vector<UciTaskSpec> specs = selectTasks(config.tasks);
    CampaignEngine engine(config);
    auto ctx = prepareCampaignTasks(engine, config, specs);

    size_t reps = static_cast<size_t>(std::max(0, config.repetitions));
    std::vector<Fig11Sample> samples(specs.size() * reps);
    std::vector<SimCounters> cellSim(samples.size());

    engine.beginCampaign(samples.size());
    engine.parallelFor(samples.size(), [&](size_t i) {
        size_t task = i / reps;
        size_t rep = i % reps;
        const TaskContext &t = *ctx[task];

        CellKey key{"fig11", t.spec.name, "v0", rep};
        if (journalLookup(config.journal, key, [&](const JsonValue &v) {
                Fig11Sample &s = samples[i];
                s.task = t.spec.name;
                s.amplitude = v.at("amplitude").asNumber();
                s.accuracy = v.at("accuracy").asNumber();
                s.site = v.at("site").asString();
                cellSim[i] = SimCounters::fromJson(v.at("sim"));
            })) {
            engine.reportCell(t.spec.name, 1, static_cast<int>(rep),
                              samples[i].accuracy);
            return;
        }
        if (!config.inShard(i))
            return;

        Rng rng = Rng::substream(config.seed,
                                 {kStreamCell, task, 0, rep});

        auto accel = makeBackend(config.backend, config.array,
                                 t.logical);
        DefectInjector injector(*accel, SitePool::outputCritical(),
                                config.weighting);
        auto records = injector.inject(1, rng);
        UnitSite site = accel->faultySites().front();

        // Retrain with the faulty output stage, then measure
        // accuracy and the error amplitude at the faulty unit
        // during the test phase only.
        Trainer retrainer(retrainHyper(t.hyper, config.retrainScale));
        auto folds = kFoldIndices(t.ds.size(), config.folds);
        RunningStat acc_stat;
        RunningStat amp_stat;
        for (size_t f = 0; f < folds.size(); ++f) {
            Dataset train_set = complementSubset(t.ds, folds, f);
            Dataset test_set = subset(t.ds, folds[f]);
            retrainer.train(*accel, train_set, rng, &t.baseline);
            accel->clearProbes();
            acc_stat.add(evalAccuracy(*accel, test_set));
            const DeviationProbe &p = accel->probe(site);
            if (p.amplitude.count() > 0)
                amp_stat.add(p.amplitude.mean());
        }
        Fig11Sample &sample = samples[i];
        sample.task = t.spec.name;
        sample.accuracy = acc_stat.mean();
        sample.amplitude = amp_stat.mean();
        sample.site = records.empty() ? site.describe()
                                      : records.front().what;
        cellSim[i] = accel->simCounters();
        if (config.journal)
            config.journal->store(
                key, "{\"amplitude\":" + jsonNumber(sample.amplitude) +
                    ",\"accuracy\":" + jsonNumber(sample.accuracy) +
                    ",\"site\":" + jsonString(sample.site) +
                    ",\"sim\":" + cellSim[i].toJson() + "}");
        engine.reportCell(t.spec.name, 1, static_cast<int>(rep),
                          sample.accuracy);
    });

    // Bin in cell-index order for deterministic curves.
    std::vector<Fig11Curve> curves(specs.size());
    SimCounters total;
    for (size_t task = 0; task < specs.size(); ++task) {
        Fig11Curve &curve = curves[task];
        curve.task = specs[task].name;
        LogBins bins(-3, 3, 1);
        for (size_t rep = 0; rep < reps; ++rep) {
            Fig11Sample &s = samples[task * reps + rep];
            bins.add(s.amplitude, s.accuracy);
            curve.samples.push_back(std::move(s));
            curve.sim.merge(cellSim[task * reps + rep]);
        }
        for (size_t b = 0; b < bins.numBins(); ++b)
            if (bins.binStat(b).count() > 0)
                curve.binAccuracy.push_back(
                    {bins.binCenter(b), bins.binStat(b).mean()});
        total.merge(curve.sim);
    }
    logSimCounters("fig11", total);
    return curves;
}

// ---------------------------------------------------------------
// JSON export

std::string
Fig5Result::toJson() const
{
    std::string out = "{\"figure\":\"fig5\",\"operator\":";
    out += jsonString(fig5OperatorName(op));
    out += ",\"defects\":" + std::to_string(defects);
    out += ",\"repetitions\":" + std::to_string(repetitions);
    out += ",\"fa_style\":" + jsonString(faStyleName(style));
    out += ",\"seed\":" + std::to_string(seed);
    out += ",\"histograms\":{\"none\":" + none.toJson();
    out += ",\"gate\":" + gate.toJson();
    out += ",\"trans\":" + trans.toJson();
    out += "},\"sim\":" + sim.toJson();
    out += "}";
    return out;
}

std::string
Fig10Curve::toJson() const
{
    std::string out =
        "{\"figure\":\"fig10\",\"task\":\"" + jsonEscape(task) +
        "\",\"points\":[";
    for (size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"defects\":" + std::to_string(points[i].defects);
        out += ",\"accuracy\":" + jsonNumber(points[i].accuracy);
        out += ",\"stddev\":" + jsonNumber(points[i].stddev) + "}";
    }
    out += "],\"sim\":" + sim.toJson();
    out += "}";
    return out;
}

std::string
Fig11Curve::toJson() const
{
    std::string out =
        "{\"figure\":\"fig11\",\"task\":\"" + jsonEscape(task) +
        "\",\"bins\":[";
    for (size_t i = 0; i < binAccuracy.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"amplitude\":" + jsonNumber(binAccuracy[i].first);
        out += ",\"accuracy\":" + jsonNumber(binAccuracy[i].second) +
            "}";
    }
    out += "],\"samples\":[";
    for (size_t i = 0; i < samples.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"amplitude\":" + jsonNumber(samples[i].amplitude);
        out += ",\"accuracy\":" + jsonNumber(samples[i].accuracy);
        out += ",\"site\":\"" + jsonEscape(samples[i].site) + "\"}";
    }
    out += "],\"sim\":" + sim.toJson();
    out += "}";
    return out;
}

} // namespace dtann
