#include "core/keylogic.hh"

#include "common/logging.hh"

namespace dtann {

Netlist
buildWriteDecoder(int lines)
{
    dtann_assert(lines >= 2 && lines <= 64, "unsupported decoder size");
    int bits = 1;
    while ((1 << bits) < lines)
        ++bits;

    NetlistBuilder bld;
    Bus addr = bld.inputBus(bits);
    Bus en = bld.inputBus(1);
    Bus addr_n(static_cast<size_t>(bits));
    for (int b = 0; b < bits; ++b)
        addr_n[static_cast<size_t>(b)] =
            bld.notG(addr[static_cast<size_t>(b)]);

    Bus sel(static_cast<size_t>(lines));
    for (int line = 0; line < lines; ++line) {
        bld.beginCell();
        Bus lits;
        for (int b = 0; b < bits; ++b)
            lits.push_back((line >> b) & 1
                               ? addr[static_cast<size_t>(b)]
                               : addr_n[static_cast<size_t>(b)]);
        lits.push_back(en[0]);
        sel[static_cast<size_t>(line)] = bld.andTree(lits);
    }
    bld.outputBus(sel);
    return bld.take();
}

WriteDecoder::WriteDecoder(int lines)
    : numLines(lines),
      nl(std::make_shared<Netlist>(buildWriteDecoder(lines)))
{
    addrBits = static_cast<int>(nl->inputs().size()) - 1;
    sim = std::make_unique<OperatorSim>(nl, Injection{});
}

std::vector<InjectionRecord>
WriteDecoder::inject(int count, Rng &rng)
{
    Injection inj = injectTransistorDefects(*nl, count, rng);
    // Merge with existing faults.
    FaultSet merged = sim->evaluator().faults();
    merged.merge(inj.faults);
    Injection combined;
    combined.faults = std::move(merged);
    combined.records = sim->faultRecords();
    combined.records.insert(combined.records.end(), inj.records.begin(),
                            inj.records.end());
    auto out = inj.records;
    sim = std::make_unique<OperatorSim>(nl, std::move(combined));
    return out;
}

std::vector<bool>
WriteDecoder::select(int address)
{
    dtann_assert(address >= 0 && address < (1 << addrBits),
                 "address out of range");
    uint64_t in = static_cast<uint64_t>(address) |
        (1ull << addrBits); // enable high
    uint64_t lanes = sim->apply(in);
    std::vector<bool> lines(static_cast<size_t>(numLines));
    for (int l = 0; l < numLines; ++l)
        lines[static_cast<size_t>(l)] = (lanes >> l) & 1;
    // Drop enable between writes, as the DMA sequencing does.
    sim->apply(static_cast<uint64_t>(address));
    return lines;
}

void
writeWeightsThroughDecoder(Accelerator &accel, const MlpWeights &w,
                           WriteDecoder &decoder)
{
    const AcceleratorConfig &cfg = accel.config();
    MlpTopology logical = accel.topology();
    dtann_assert(decoder.lines() == cfg.hidden + cfg.outputs,
                 "decoder must have one line per neuron");
    dtann_assert(w.topology() == logical, "weight topology mismatch");

    // Quantized physical row images, mapped like setWeights().
    std::vector<std::vector<Fix16>> hid_rows(
        static_cast<size_t>(cfg.hidden),
        std::vector<Fix16>(static_cast<size_t>(cfg.inputs + 1)));
    for (int j = 0; j < logical.hidden; ++j) {
        for (int i = 0; i < logical.inputs; ++i)
            hid_rows[static_cast<size_t>(j)][static_cast<size_t>(i)] =
                Fix16::fromDouble(w.hid(j, i));
        hid_rows[static_cast<size_t>(j)][static_cast<size_t>(cfg.inputs)] =
            Fix16::fromDouble(w.hid(j, logical.inputs));
    }
    std::vector<std::vector<Fix16>> out_rows(
        static_cast<size_t>(cfg.outputs),
        std::vector<Fix16>(static_cast<size_t>(cfg.hidden + 1)));
    for (int k = 0; k < logical.outputs; ++k) {
        for (int j = 0; j < logical.hidden; ++j)
            out_rows[static_cast<size_t>(k)][static_cast<size_t>(j)] =
                Fix16::fromDouble(w.out(k, j));
        out_rows[static_cast<size_t>(k)][static_cast<size_t>(cfg.hidden)] =
            Fix16::fromDouble(w.out(k, logical.hidden));
    }

    // Sequence every row write through the decoder: the asserted
    // line(s) decide which physical neuron actually receives it.
    for (int r = 0; r < cfg.hidden + cfg.outputs; ++r) {
        std::vector<bool> lines = decoder.select(r);
        const bool is_hidden = r < cfg.hidden;
        const auto &data = is_hidden
            ? hid_rows[static_cast<size_t>(r)]
            : out_rows[static_cast<size_t>(r - cfg.hidden)];
        for (int l = 0; l < decoder.lines(); ++l) {
            if (!lines[static_cast<size_t>(l)])
                continue;
            if (l < cfg.hidden && is_hidden) {
                accel.loadPhysicalHiddenRow(l, data);
            } else if (l >= cfg.hidden && !is_hidden) {
                accel.loadPhysicalOutputRow(l - cfg.hidden, data);
            }
            // Cross-layer misdirects hit rows of the wrong width;
            // the write is dropped (bus mismatch in hardware).
        }
    }
}

} // namespace dtann
