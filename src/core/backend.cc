#include "core/backend.hh"

#include <cmath>
#include <cstdio>
#include <tuple>

#include <array>

#include "ann/sigmoid.hh"
#include "circuit/lane_plane.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "core/accelerator.hh"
#include "core/systolic.hh"
#include "rtl/adder.hh"
#include "rtl/clean_model.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {

std::string
AcceleratorConfig::toJson() const
{
    std::string out = "{\"inputs\":" + std::to_string(inputs);
    out += ",\"hidden\":" + std::to_string(hidden);
    out += ",\"outputs\":" + std::to_string(outputs);
    out += ",\"fa_style\":" + jsonString(faStyleName(faStyle));
    out += "}";
    return out;
}

AcceleratorConfig
AcceleratorConfig::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw JsonError("accelerator config must be a JSON object");
    AcceleratorConfig c;
    c.inputs = jsonGetInt(v, "inputs", c.inputs, 1, 1 << 20);
    c.hidden = jsonGetInt(v, "hidden", c.hidden, 1, 1 << 20);
    c.outputs = jsonGetInt(v, "outputs", c.outputs, 1, 1 << 20);
    std::string style =
        jsonGetString(v, "fa_style", faStyleName(c.faStyle));
    if (!faStyleFromName(style, c.faStyle))
        throw JsonError("unknown fa_style '" + style +
                        "' (expected nand9 or mirror)");
    return c;
}

bool
UnitSite::operator<(const UnitSite &o) const
{
    return std::tie(kind, layer, neuron, index) <
        std::tie(o.kind, o.layer, o.neuron, o.index);
}

std::string
UnitSite::describe() const
{
    const char *k = "?";
    switch (kind) {
      case UnitKind::WeightLatch: k = "latch"; break;
      case UnitKind::Multiplier: k = "mult"; break;
      case UnitKind::AdderStage: k = "adder"; break;
      case UnitKind::Activation: k = "act"; break;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s[%s n%d i%d]", k,
                  layer == Layer::Hidden ? "hid" : "out", neuron, index);
    return buf;
}

SitePool
SitePool::inputAndHidden()
{
    SitePool p;
    p.hiddenLayer = true;
    p.outputLayer = false;
    return p;
}

SitePool
SitePool::outputCritical()
{
    SitePool p;
    p.hiddenLayer = false;
    p.outputLayer = true;
    p.latches = false;
    p.multipliers = false;
    p.adders = true;
    p.activations = true;
    return p;
}

SitePool
SitePool::all()
{
    SitePool p;
    p.hiddenLayer = p.outputLayer = true;
    return p;
}

std::string
SitePool::toJson() const
{
    auto flag = [](bool b) { return b ? "true" : "false"; };
    std::string out = "{\"hidden_layer\":";
    out += flag(hiddenLayer);
    out += ",\"output_layer\":";
    out += flag(outputLayer);
    out += ",\"latches\":";
    out += flag(latches);
    out += ",\"multipliers\":";
    out += flag(multipliers);
    out += ",\"adders\":";
    out += flag(adders);
    out += ",\"activations\":";
    out += flag(activations);
    out += "}";
    return out;
}

SitePool
SitePool::fromJson(const JsonValue &v)
{
    if (v.kind() == JsonValue::Kind::String) {
        const std::string &name = v.asString();
        if (name == "all")
            return all();
        if (name == "input_hidden")
            return inputAndHidden();
        if (name == "output_critical")
            return outputCritical();
        throw JsonError("unknown site pool '" + name +
                        "' (expected all, input_hidden or "
                        "output_critical)");
    }
    if (!v.isObject())
        throw JsonError("site pool must be a name string or an "
                        "object of eligibility flags");
    SitePool p;
    p.hiddenLayer = jsonGetBool(v, "hidden_layer", p.hiddenLayer);
    p.outputLayer = jsonGetBool(v, "output_layer", p.outputLayer);
    p.latches = jsonGetBool(v, "latches", p.latches);
    p.multipliers = jsonGetBool(v, "multipliers", p.multipliers);
    p.adders = jsonGetBool(v, "adders", p.adders);
    p.activations = jsonGetBool(v, "activations", p.activations);
    return p;
}

const char *
backendName(BackendKind kind)
{
    return kind == BackendKind::Spatial ? "spatial" : "systolic";
}

bool
backendFromName(const std::string &name, BackendKind &out)
{
    if (name == "spatial") {
        out = BackendKind::Spatial;
        return true;
    }
    if (name == "systolic") {
        out = BackendKind::Systolic;
        return true;
    }
    return false;
}

std::string
backendNameList()
{
    return "spatial, systolic";
}

HardwareBackend::HardwareBackend(const AcceleratorConfig &config,
                                 MlpTopology logical_topo)
    : cfg(config), logical(logical_topo),
      multNl(std::make_shared<Netlist>(
          buildMultiplierSigned(16, config.faStyle))),
      addNl(std::make_shared<Netlist>(
          buildRippleAdder(24, config.faStyle, false))),
      latchNl(std::make_shared<Netlist>(buildLatchRegister(16))),
      actNl(std::make_shared<Netlist>(
          buildSigmoidUnit(logisticPwlTable(), config.faStyle)))
{
    dtann_assert(logical.inputs <= cfg.inputs &&
                     logical.hidden <= cfg.hidden &&
                     logical.outputs <= cfg.outputs,
                 "logical network %d-%d-%d does not fit the %d-%d-%d "
                 "array (use the time-multiplexed wrapper)",
                 logical.inputs, logical.hidden, logical.outputs,
                 cfg.inputs, cfg.hidden, cfg.outputs);
}

HardwareBackend::~HardwareBackend() = default;

const Netlist &
HardwareBackend::unitNetlist(UnitKind kind) const
{
    switch (kind) {
      case UnitKind::WeightLatch:
        return *latchNl;
      case UnitKind::Multiplier:
        return *multNl;
      case UnitKind::AdderStage:
        return *addNl;
      case UnitKind::Activation:
        return *actNl;
      default:
        panic("bad unit kind");
    }
}

OperatorSim *
HardwareBackend::simFor(const UnitSite &site)
{
    auto it = faulty.find(site);
    return it == faulty.end() ? nullptr : it->second.get();
}

std::vector<InjectionRecord>
HardwareBackend::injectDefects(const UnitSite &pass_site, int count,
                               Rng &rng)
{
    // Key defects by the physical unit: a pass address given for a
    // shared (pass-multiplexed) unit lands on the same simulation
    // the forward paths look up.
    const UnitSite site = physicalSite(pass_site);
    std::shared_ptr<const Netlist> nl;
    CleanFn clean;
    switch (site.kind) {
      case UnitKind::WeightLatch:
        // Feedback netlist: no pruned/batched path to feed.
        nl = latchNl;
        break;
      case UnitKind::Multiplier:
        nl = multNl;
        clean = cleanMultiplierSigned(16);
        break;
      case UnitKind::AdderStage:
        nl = addNl;
        clean = cleanAdder(24, false);
        break;
      case UnitKind::Activation:
        nl = actNl;
        clean = cleanSigmoidUnit(logisticPwlTable());
        break;
    }
    Injection inj = injectTransistorDefects(*nl, count, rng);
    std::vector<InjectionRecord> records = inj.records;

    // Merge with any defects already present at this site.
    auto it = faulty.find(site);
    if (it != faulty.end()) {
        FaultSet merged = it->second->evaluator().faults();
        merged.merge(inj.faults);
        Injection combined;
        combined.faults = std::move(merged);
        combined.records = it->second->faultRecords();
        combined.records.insert(combined.records.end(), records.begin(),
                                records.end());
        it->second = std::make_unique<OperatorSim>(
            nl, std::move(combined), std::move(clean));
    } else {
        Injection fresh;
        fresh.faults = std::move(inj.faults);
        fresh.records = records;
        faulty[site] = std::make_unique<OperatorSim>(
            nl, std::move(fresh), std::move(clean));
    }
    probes[site]; // ensure a probe exists
    return records;
}

void
HardwareBackend::clearDefects()
{
    faulty.clear();
    probes.clear();
}

std::vector<UnitSite>
HardwareBackend::faultySites() const
{
    std::vector<UnitSite> sites;
    for (const auto &[site, sim] : faulty)
        sites.push_back(site);
    return sites;
}

bool
HardwareBackend::isFaulty(const UnitSite &site) const
{
    return faulty.find(physicalSite(site)) != faulty.end();
}

Fix16
HardwareBackend::bistMul(Layer layer, int neuron, int synapse, Fix16 w,
                         Fix16 x)
{
    return unitMul(layer, neuron, synapse, w, x);
}

Acc24
HardwareBackend::bistAdd(Layer layer, int neuron, int stage, Acc24 a,
                         Acc24 b)
{
    return unitAdd(layer, neuron, stage, a, b);
}

Fix16
HardwareBackend::bistAct(Layer layer, int neuron, Fix16 x)
{
    return unitAct(layer, neuron, x);
}

Fix16
HardwareBackend::bistLatchStore(Layer layer, int neuron, int synapse,
                                Fix16 d)
{
    return unitLatchStore(layer, neuron, synapse, d);
}

void
HardwareBackend::bypassUnit(const UnitSite &site)
{
    bypassed.insert(physicalSite(site));
}

void
HardwareBackend::clearBypasses()
{
    bypassed.clear();
}

bool
HardwareBackend::isBypassed(const UnitSite &site) const
{
    return bypassed.find(physicalSite(site)) != bypassed.end();
}

std::vector<UnitSite>
HardwareBackend::bypassedSites() const
{
    return {bypassed.begin(), bypassed.end()};
}

void
HardwareBackend::setActivationClamp(Layer layer, Fix16 lo, Fix16 hi)
{
    dtann_assert(static_cast<int16_t>(lo.bits()) <=
                     static_cast<int16_t>(hi.bits()),
                 "clamp window is empty");
    ActivationClamp &c = clamps[static_cast<size_t>(layer)];
    c.enabled = true;
    c.lo = lo;
    c.hi = hi;
}

void
HardwareBackend::clearActivationClamps()
{
    clamps[0] = ActivationClamp();
    clamps[1] = ActivationClamp();
    clampHitCount = 0;
}

const ActivationClamp &
HardwareBackend::activationClamp(Layer layer) const
{
    return clamps[static_cast<size_t>(layer)];
}

Fix16
HardwareBackend::clampValue(Layer layer, Fix16 x)
{
    const ActivationClamp &c = clamps[static_cast<size_t>(layer)];
    if (!c.enabled)
        return x;
    int16_t v = static_cast<int16_t>(x.bits());
    if (v < static_cast<int16_t>(c.lo.bits())) {
        ++clampHitCount;
        return c.lo;
    }
    if (v > static_cast<int16_t>(c.hi.bits())) {
        ++clampHitCount;
        return c.hi;
    }
    return x;
}

const DeviationProbe &
HardwareBackend::probe(const UnitSite &site) const
{
    auto it = probes.find(site);
    return it == probes.end() ? cleanProbe : it->second;
}

void
HardwareBackend::clearProbes()
{
    for (auto &[site, p] : probes)
        p = DeviationProbe();
}

Fix16
HardwareBackend::unitLatchStore(Layer layer, int neuron, int synapse,
                                Fix16 d)
{
    UnitSite pass{UnitKind::WeightLatch, layer, neuron, synapse};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site))
        return Fix16(); // latch disconnected: weight reads as zero
    OperatorSim *sim = simFor(site);
    if (!sim)
        return d;
    // Open the latch (EN=1) with D applied, then close it.
    uint64_t bits = static_cast<uint64_t>(d.bits());
    sim->apply(bits | (1ull << 16));
    uint64_t q = sim->apply(bits); // EN=0
    Fix16 stored = Fix16::fromRaw(static_cast<int16_t>(q & 0xffff));
    probes[pass].amplitude.add(
        std::abs(stored.toDouble() - d.toDouble()));
    return stored;
}

Fix16
HardwareBackend::unitMul(Layer layer, int neuron, int synapse, Fix16 w,
                         Fix16 x)
{
    UnitSite pass{UnitKind::Multiplier, layer, neuron, synapse};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site))
        return Fix16(); // product gated to zero
    OperatorSim *sim = simFor(site);
    Fix16 clean = Fix16::hwMul(w, x);
    if (!sim)
        return clean;
    uint64_t in = static_cast<uint64_t>(w.bits()) |
        (static_cast<uint64_t>(x.bits()) << 16);
    uint64_t product = sim->apply(in);
    Fix16 got = Fix16::fromRaw(static_cast<int16_t>(
        (product >> Fix16::fracBits) & 0xffff));
    probes[pass].amplitude.add(
        std::abs(got.toDouble() - clean.toDouble()));
    return got;
}

Acc24
HardwareBackend::unitAdd(Layer layer, int neuron, int stage, Acc24 a,
                         Acc24 b)
{
    UnitSite pass{UnitKind::AdderStage, layer, neuron, stage};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site))
        return a; // stage skipped: accumulator passes through
    OperatorSim *sim = simFor(site);
    Acc24 clean = Acc24::hwAdd(a, b);
    if (!sim)
        return clean;
    uint64_t in = static_cast<uint64_t>(a.bits()) |
        (static_cast<uint64_t>(b.bits()) << 24);
    uint64_t sum = sim->apply(in) & 0xffffffull;
    uint32_t u = static_cast<uint32_t>(sum);
    int32_t raw = (u & 0x800000u)
        ? static_cast<int32_t>(u | 0xff000000u)
        : static_cast<int32_t>(u);
    Acc24 got = Acc24::fromRaw(raw);
    probes[pass].amplitude.add(
        std::abs(got.toDouble() - clean.toDouble()));
    return got;
}

Fix16
HardwareBackend::unitAct(Layer layer, int neuron, Fix16 x)
{
    UnitSite pass{UnitKind::Activation, layer, neuron, 0};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site))
        return Fix16(); // neuron silenced
    OperatorSim *sim = simFor(site);
    Fix16 clean = logisticPwlFix(x);
    if (!sim)
        return clean;
    uint64_t y = sim->apply(static_cast<uint64_t>(x.bits()));
    Fix16 got = Fix16::fromRaw(static_cast<int16_t>(y & 0xffff));
    probes[pass].amplitude.add(
        std::abs(got.toDouble() - clean.toDouble()));
    return got;
}

void
HardwareBackend::unitMulLanes(Layer layer, int neuron, int synapse,
                              Fix16 w, const Fix16 *x, Fix16 *out,
                              size_t lanes)
{
    UnitSite pass{UnitKind::Multiplier, layer, neuron, synapse};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site)) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = Fix16(); // product gated to zero
        return;
    }
    OperatorSim *sim = simFor(site);
    if (!sim) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = Fix16::hwMul(w, x[l]);
        return;
    }
    std::array<uint64_t, kMaxLanes> in, product;
    for (size_t l = 0; l < lanes; ++l)
        in[l] = static_cast<uint64_t>(w.bits()) |
            (static_cast<uint64_t>(x[l].bits()) << 16);
    sim->applyLanes(in.data(), product.data(), lanes);
    DeviationProbe &pr = probes[pass];
    // Probe updates in lane (= row) order: the Welford accumulator
    // is order-dependent, and bit-identity with the scalar path
    // requires the same per-site sequence.
    for (size_t l = 0; l < lanes; ++l) {
        Fix16 clean = Fix16::hwMul(w, x[l]);
        Fix16 got = Fix16::fromRaw(static_cast<int16_t>(
            (product[l] >> Fix16::fracBits) & 0xffff));
        pr.amplitude.add(std::abs(got.toDouble() - clean.toDouble()));
        out[l] = got;
    }
}

void
HardwareBackend::unitAddLanes(Layer layer, int neuron, int stage,
                              Acc24 *acc, const Acc24 *b, size_t lanes)
{
    UnitSite pass{UnitKind::AdderStage, layer, neuron, stage};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site))
        return; // stage skipped: accumulator passes through
    OperatorSim *sim = simFor(site);
    if (!sim) {
        for (size_t l = 0; l < lanes; ++l)
            acc[l] = Acc24::hwAdd(acc[l], b[l]);
        return;
    }
    std::array<uint64_t, kMaxLanes> in, sum;
    for (size_t l = 0; l < lanes; ++l)
        in[l] = static_cast<uint64_t>(acc[l].bits()) |
            (static_cast<uint64_t>(b[l].bits()) << 24);
    sim->applyLanes(in.data(), sum.data(), lanes);
    DeviationProbe &pr = probes[pass];
    for (size_t l = 0; l < lanes; ++l) {
        Acc24 clean = Acc24::hwAdd(acc[l], b[l]);
        uint32_t u = static_cast<uint32_t>(sum[l] & 0xffffffull);
        int32_t raw = (u & 0x800000u)
            ? static_cast<int32_t>(u | 0xff000000u)
            : static_cast<int32_t>(u);
        Acc24 got = Acc24::fromRaw(raw);
        pr.amplitude.add(std::abs(got.toDouble() - clean.toDouble()));
        acc[l] = got;
    }
}

void
HardwareBackend::unitActLanes(Layer layer, int neuron, const Fix16 *x,
                              Fix16 *out, size_t lanes)
{
    UnitSite pass{UnitKind::Activation, layer, neuron, 0};
    UnitSite site = physicalSite(pass);
    if (isBypassed(site)) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = Fix16(); // neuron silenced
        return;
    }
    OperatorSim *sim = simFor(site);
    if (!sim) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = logisticPwlFix(x[l]);
        return;
    }
    std::array<uint64_t, kMaxLanes> in, y;
    for (size_t l = 0; l < lanes; ++l)
        in[l] = static_cast<uint64_t>(x[l].bits());
    sim->applyLanes(in.data(), y.data(), lanes);
    DeviationProbe &pr = probes[pass];
    for (size_t l = 0; l < lanes; ++l) {
        Fix16 clean = logisticPwlFix(x[l]);
        Fix16 got =
            Fix16::fromRaw(static_cast<int16_t>(y[l] & 0xffff));
        pr.amplitude.add(std::abs(got.toDouble() - clean.toDouble()));
        out[l] = got;
    }
}

bool
HardwareBackend::batchPure() const
{
    for (const auto &[site, sim] : faulty)
        if (!sim->batched())
            return false;
    return true;
}

SimCounters
HardwareBackend::simCounters() const
{
    SimCounters c;
    for (const auto &[site, sim] : faulty)
        c.merge(sim->counters());
    return c;
}

std::unique_ptr<HardwareBackend>
makeBackend(BackendKind kind, const AcceleratorConfig &config,
            MlpTopology logical)
{
    switch (kind) {
      case BackendKind::Spatial:
        return std::make_unique<SpatialBackend>(config, logical);
      case BackendKind::Systolic:
        return std::make_unique<SystolicBackend>(config, logical);
      default:
        panic("bad backend kind");
    }
}

} // namespace dtann
