#include "core/accelerator.hh"

#include <array>

#include "circuit/lane_plane.hh"
#include "common/logging.hh"
#include "core/injector.hh"

namespace dtann {

SpatialBackend::SpatialBackend(const AcceleratorConfig &config,
                               MlpTopology logical_topo)
    : HardwareBackend(config, logical_topo),
      hidW(static_cast<size_t>(config.hidden) *
           static_cast<size_t>(config.inputs + 1)),
      outW(static_cast<size_t>(config.outputs) *
           static_cast<size_t>(config.hidden + 1)),
      hidWIn(hidW.size()), outWIn(outW.size()),
      hiddenAct(static_cast<size_t>(config.hidden)),
      hidSums(static_cast<size_t>(config.hidden))
{
}

Fix16 &
SpatialBackend::hidWAt(int j, int i)
{
    return hidW[static_cast<size_t>(j) *
                    static_cast<size_t>(cfg.inputs + 1) +
                static_cast<size_t>(i)];
}

Fix16 &
SpatialBackend::outWAt(int k, int j)
{
    return outW[static_cast<size_t>(k) *
                    static_cast<size_t>(cfg.hidden + 1) +
                static_cast<size_t>(j)];
}

int
SpatialBackend::unitCount(UnitKind kind) const
{
    int hid_syn = cfg.hidden * (cfg.inputs + 1);
    int out_syn = cfg.outputs * (cfg.hidden + 1);
    switch (kind) {
      case UnitKind::WeightLatch:
      case UnitKind::Multiplier:
        return hid_syn + out_syn;
      case UnitKind::AdderStage:
        // A chain of N additions per neuron for N+1 products.
        return cfg.hidden * cfg.inputs + cfg.outputs * cfg.hidden;
      case UnitKind::Activation:
        return cfg.hidden + cfg.outputs;
      default:
        panic("bad unit kind");
    }
}

std::vector<UnitSite>
SpatialBackend::enumerateSites(const SitePool &pool) const
{
    return dtann::enumerateSites(cfg, pool);
}

void
SpatialBackend::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    // Hidden layer: logical weights into the top-left corner; the
    // rest stays 0. All writes go through the latch path.
    for (int j = 0; j < cfg.hidden; ++j) {
        for (int i = 0; i <= cfg.inputs; ++i) {
            double v = 0.0;
            if (j < logical.hidden) {
                if (i < logical.inputs)
                    v = w.hid(j, i);
                else if (i == cfg.inputs)
                    v = w.hid(j, logical.inputs); // bias synapse
            }
            Fix16 q = Fix16::fromDouble(v);
            hidWIn[static_cast<size_t>(j) *
                       static_cast<size_t>(cfg.inputs + 1) +
                   static_cast<size_t>(i)] = q;
            hidWAt(j, i) = unitLatchStore(Layer::Hidden, j, i, q);
        }
    }
    for (int k = 0; k < cfg.outputs; ++k) {
        for (int j = 0; j <= cfg.hidden; ++j) {
            double v = 0.0;
            if (k < logical.outputs) {
                if (j < logical.hidden)
                    v = w.out(k, j);
                else if (j == cfg.hidden)
                    v = w.out(k, logical.hidden); // bias synapse
            }
            Fix16 q = Fix16::fromDouble(v);
            outWIn[static_cast<size_t>(k) *
                       static_cast<size_t>(cfg.hidden + 1) +
                   static_cast<size_t>(j)] = q;
            outWAt(k, j) = unitLatchStore(Layer::Output, k, j, q);
        }
    }
}

void
SpatialBackend::forwardLayer(Layer layer, std::span<const Fix16> in,
                             std::span<Fix16> out)
{
    const Fix16 one = Fix16::fromDouble(1.0);
    int fanin = layer == Layer::Hidden ? cfg.inputs : cfg.hidden;
    int neurons = layer == Layer::Hidden ? cfg.hidden : cfg.outputs;
    for (int n = 0; n < neurons; ++n) {
        Fix16 *weights = layer == Layer::Hidden
            ? &hidWAt(n, 0) : &outWAt(n, 0);
        // Products: one multiplier per synapse, bias last.
        Acc24 acc = Acc24::fromFix16(
            unitMul(layer, n, 0, weights[0], in[0]));
        for (int i = 1; i <= fanin; ++i) {
            Fix16 x = i < fanin ? in[static_cast<size_t>(i)] : one;
            Fix16 p = unitMul(layer, n, i, weights[i], x);
            acc = unitAdd(layer, n, i - 1, acc, Acc24::fromFix16(p));
        }
        if (layer == Layer::Hidden)
            hidSums[static_cast<size_t>(n)] = acc;
        // The clamp sits after the activation unit on the datapath
        // only; bistAct() reads the unit raw via unitAct().
        out[static_cast<size_t>(n)] =
            clampValue(layer, unitAct(layer, n, acc.toFix16Sat()));
    }
}

void
SpatialBackend::forwardLayerLanes(Layer layer,
                                  const std::vector<const Fix16 *> &in,
                                  const std::vector<Fix16 *> &out,
                                  size_t lanes)
{
    dtann_assert(lanes >= 1 && lanes <= kMaxLanes,
                 "lane count out of range");
    const Fix16 one = Fix16::fromDouble(1.0);
    int fanin = layer == Layer::Hidden ? cfg.inputs : cfg.hidden;
    int neurons = layer == Layer::Hidden ? cfg.hidden : cfg.outputs;
    if (layer == Layer::Hidden)
        hidSumsLanes.resize(lanes * static_cast<size_t>(cfg.hidden));
    std::array<Fix16, kMaxLanes> x, p;
    std::array<Acc24, kMaxLanes> acc, addend;
    for (int n = 0; n < neurons; ++n) {
        Fix16 *weights = layer == Layer::Hidden
            ? &hidWAt(n, 0) : &outWAt(n, 0);
        for (size_t l = 0; l < lanes; ++l)
            x[l] = in[l][0];
        unitMulLanes(layer, n, 0, weights[0], x.data(), p.data(), lanes);
        for (size_t l = 0; l < lanes; ++l)
            acc[l] = Acc24::fromFix16(p[l]);
        for (int i = 1; i <= fanin; ++i) {
            for (size_t l = 0; l < lanes; ++l)
                x[l] = i < fanin ? in[l][i] : one;
            unitMulLanes(layer, n, i, weights[i], x.data(), p.data(),
                         lanes);
            for (size_t l = 0; l < lanes; ++l)
                addend[l] = Acc24::fromFix16(p[l]);
            unitAddLanes(layer, n, i - 1, acc.data(), addend.data(),
                         lanes);
        }
        // Mirror the scalar loop: the readable output latches hold
        // the last processed row's sums. The per-lane sums feed the
        // time-multiplexed batch path's key-logic accumulation.
        if (layer == Layer::Hidden) {
            hidSums[static_cast<size_t>(n)] = acc[lanes - 1];
            for (size_t l = 0; l < lanes; ++l)
                hidSumsLanes[l * static_cast<size_t>(cfg.hidden) +
                             static_cast<size_t>(n)] = acc[l];
        }
        for (size_t l = 0; l < lanes; ++l)
            x[l] = acc[l].toFix16Sat();
        unitActLanes(layer, n, x.data(), p.data(), lanes);
        // Clamp in lane (= row) order after the unit, mirroring the
        // scalar path bit for bit at every lane width.
        for (size_t l = 0; l < lanes; ++l)
            out[l][n] = clampValue(layer, p[l]);
    }
}

void
SpatialBackend::loadPhysicalHiddenRow(int phys_neuron,
                                      std::span<const Fix16> weights)
{
    dtann_assert(phys_neuron >= 0 && phys_neuron < cfg.hidden,
                 "physical neuron index out of range");
    dtann_assert(static_cast<int>(weights.size()) == cfg.inputs + 1,
                 "weight row arity mismatch");
    for (int i = 0; i <= cfg.inputs; ++i) {
        hidWIn[static_cast<size_t>(phys_neuron) *
                   static_cast<size_t>(cfg.inputs + 1) +
               static_cast<size_t>(i)] = weights[static_cast<size_t>(i)];
        hidWAt(phys_neuron, i) = unitLatchStore(
            Layer::Hidden, phys_neuron, i, weights[static_cast<size_t>(i)]);
    }
}

void
SpatialBackend::loadPhysicalOutputRow(int phys_neuron,
                                      std::span<const Fix16> weights)
{
    dtann_assert(phys_neuron >= 0 && phys_neuron < cfg.outputs,
                 "physical neuron index out of range");
    dtann_assert(static_cast<int>(weights.size()) == cfg.hidden + 1,
                 "weight row arity mismatch");
    for (int j = 0; j <= cfg.hidden; ++j) {
        outWIn[static_cast<size_t>(phys_neuron) *
                   static_cast<size_t>(cfg.hidden + 1) +
               static_cast<size_t>(j)] = weights[static_cast<size_t>(j)];
        outWAt(phys_neuron, j) = unitLatchStore(
            Layer::Output, phys_neuron, j, weights[static_cast<size_t>(j)]);
    }
}

void
SpatialBackend::runHiddenLayerLanes(const std::vector<const Fix16 *> &in,
                                    const std::vector<Fix16 *> &out,
                                    size_t lanes)
{
    dtann_assert(in.size() >= lanes && out.size() >= lanes,
                 "lane pointer arity mismatch");
    forwardLayerLanes(Layer::Hidden, in, out, lanes);
}

std::vector<Fix16>
SpatialBackend::runHiddenLayer(std::span<const Fix16> physical_input)
{
    dtann_assert(static_cast<int>(physical_input.size()) == cfg.inputs,
                 "physical input arity mismatch");
    forwardLayer(Layer::Hidden, physical_input, hiddenAct);
    return {hiddenAct.begin(), hiddenAct.end()};
}

std::vector<Fix16>
SpatialBackend::forwardFix(std::span<const Fix16> physical_input)
{
    dtann_assert(static_cast<int>(physical_input.size()) == cfg.inputs,
                 "physical input arity mismatch");
    forwardLayer(Layer::Hidden, physical_input, hiddenAct);
    std::vector<Fix16> out(static_cast<size_t>(cfg.outputs));
    forwardLayer(Layer::Output, hiddenAct, out);
    return out;
}

Activations
SpatialBackend::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == logical.inputs,
                 "logical input arity mismatch");
    std::vector<Fix16> phys(static_cast<size_t>(cfg.inputs));
    for (size_t i = 0; i < input.size(); ++i)
        phys[i] = Fix16::fromDouble(input[i]);
    std::vector<Fix16> out = forwardFix(phys);

    Activations act(static_cast<size_t>(logical.hidden),
                    static_cast<size_t>(logical.outputs));
    for (int j = 0; j < logical.hidden; ++j)
        act.hidden()[static_cast<size_t>(j)] =
            hiddenAct[static_cast<size_t>(j)].toDouble();
    for (int k = 0; k < logical.outputs; ++k)
        act.output()[static_cast<size_t>(k)] =
            out[static_cast<size_t>(k)].toDouble();
    return act;
}

std::vector<Activations>
SpatialBackend::forwardBatch(std::span<const std::vector<double>> inputs)
{
    size_t rows = inputs.size();
    std::vector<std::vector<Fix16>> phys(
        rows, std::vector<Fix16>(static_cast<size_t>(cfg.inputs)));
    for (size_t r = 0; r < rows; ++r) {
        dtann_assert(static_cast<int>(inputs[r].size()) ==
                         logical.inputs,
                     "logical input arity mismatch");
        for (size_t i = 0; i < inputs[r].size(); ++i)
            phys[r][i] = Fix16::fromDouble(inputs[r][i]);
    }

    std::vector<std::vector<Fix16>> hid(
        rows, std::vector<Fix16>(static_cast<size_t>(cfg.hidden)));
    std::vector<std::vector<Fix16>> outv(
        rows, std::vector<Fix16>(static_cast<size_t>(cfg.outputs)));
    size_t width = batchLaneWidth();
    for (size_t pos = 0; pos < rows; pos += width) {
        size_t lanes = std::min(width, rows - pos);
        std::vector<const Fix16 *> inPtr(lanes);
        std::vector<const Fix16 *> hidIn(lanes);
        std::vector<Fix16 *> hidPtr(lanes), outPtr(lanes);
        for (size_t l = 0; l < lanes; ++l) {
            inPtr[l] = phys[pos + l].data();
            hidIn[l] = hid[pos + l].data();
            hidPtr[l] = hid[pos + l].data();
            outPtr[l] = outv[pos + l].data();
        }
        forwardLayerLanes(Layer::Hidden, inPtr, hidPtr, lanes);
        forwardLayerLanes(Layer::Output, hidIn, outPtr, lanes);
    }

    std::vector<Activations> acts(rows);
    for (size_t r = 0; r < rows; ++r) {
        Activations &act = acts[r];
        act = Activations(static_cast<size_t>(logical.hidden),
                          static_cast<size_t>(logical.outputs));
        for (int j = 0; j < logical.hidden; ++j)
            act.hidden()[static_cast<size_t>(j)] =
                hid[r][static_cast<size_t>(j)].toDouble();
        for (int k = 0; k < logical.outputs; ++k)
            act.output()[static_cast<size_t>(k)] =
                outv[r][static_cast<size_t>(k)].toDouble();
    }
    // Mirror per-row forward(): the activation scratch holds the
    // last processed row.
    if (rows > 0)
        hiddenAct = hid[rows - 1];
    return acts;
}

} // namespace dtann
