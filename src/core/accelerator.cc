#include "core/accelerator.hh"

#include <cmath>
#include <cstdio>
#include <tuple>

#include <array>

#include "ann/sigmoid.hh"
#include "circuit/lane_plane.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "rtl/adder.hh"
#include "rtl/clean_model.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {

std::string
AcceleratorConfig::toJson() const
{
    std::string out = "{\"inputs\":" + std::to_string(inputs);
    out += ",\"hidden\":" + std::to_string(hidden);
    out += ",\"outputs\":" + std::to_string(outputs);
    out += ",\"fa_style\":" + jsonString(faStyleName(faStyle));
    out += "}";
    return out;
}

AcceleratorConfig
AcceleratorConfig::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw JsonError("accelerator config must be a JSON object");
    AcceleratorConfig c;
    c.inputs = jsonGetInt(v, "inputs", c.inputs, 1, 1 << 20);
    c.hidden = jsonGetInt(v, "hidden", c.hidden, 1, 1 << 20);
    c.outputs = jsonGetInt(v, "outputs", c.outputs, 1, 1 << 20);
    std::string style =
        jsonGetString(v, "fa_style", faStyleName(c.faStyle));
    if (!faStyleFromName(style, c.faStyle))
        throw JsonError("unknown fa_style '" + style +
                        "' (expected nand9 or mirror)");
    return c;
}

bool
UnitSite::operator<(const UnitSite &o) const
{
    return std::tie(kind, layer, neuron, index) <
        std::tie(o.kind, o.layer, o.neuron, o.index);
}

std::string
UnitSite::describe() const
{
    const char *k = "?";
    switch (kind) {
      case UnitKind::WeightLatch: k = "latch"; break;
      case UnitKind::Multiplier: k = "mult"; break;
      case UnitKind::AdderStage: k = "adder"; break;
      case UnitKind::Activation: k = "act"; break;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s[%s n%d i%d]", k,
                  layer == Layer::Hidden ? "hid" : "out", neuron, index);
    return buf;
}

Accelerator::Accelerator(const AcceleratorConfig &config,
                         MlpTopology logical_topo)
    : cfg(config), logical(logical_topo),
      multNl(std::make_shared<Netlist>(
          buildMultiplierSigned(16, config.faStyle))),
      addNl(std::make_shared<Netlist>(
          buildRippleAdder(24, config.faStyle, false))),
      latchNl(std::make_shared<Netlist>(buildLatchRegister(16))),
      actNl(std::make_shared<Netlist>(
          buildSigmoidUnit(logisticPwlTable(), config.faStyle))),
      hidW(static_cast<size_t>(config.hidden) *
           static_cast<size_t>(config.inputs + 1)),
      outW(static_cast<size_t>(config.outputs) *
           static_cast<size_t>(config.hidden + 1)),
      hidWIn(hidW.size()), outWIn(outW.size()),
      hiddenAct(static_cast<size_t>(config.hidden)),
      hidSums(static_cast<size_t>(config.hidden))
{
    dtann_assert(logical.inputs <= cfg.inputs &&
                     logical.hidden <= cfg.hidden &&
                     logical.outputs <= cfg.outputs,
                 "logical network %d-%d-%d does not fit the %d-%d-%d "
                 "array (use the time-multiplexed wrapper)",
                 logical.inputs, logical.hidden, logical.outputs,
                 cfg.inputs, cfg.hidden, cfg.outputs);
}

Fix16 &
Accelerator::hidWAt(int j, int i)
{
    return hidW[static_cast<size_t>(j) *
                    static_cast<size_t>(cfg.inputs + 1) +
                static_cast<size_t>(i)];
}

Fix16 &
Accelerator::outWAt(int k, int j)
{
    return outW[static_cast<size_t>(k) *
                    static_cast<size_t>(cfg.hidden + 1) +
                static_cast<size_t>(j)];
}

int
Accelerator::unitCount(UnitKind kind) const
{
    int hid_syn = cfg.hidden * (cfg.inputs + 1);
    int out_syn = cfg.outputs * (cfg.hidden + 1);
    switch (kind) {
      case UnitKind::WeightLatch:
      case UnitKind::Multiplier:
        return hid_syn + out_syn;
      case UnitKind::AdderStage:
        // A chain of N additions per neuron for N+1 products.
        return cfg.hidden * cfg.inputs + cfg.outputs * cfg.hidden;
      case UnitKind::Activation:
        return cfg.hidden + cfg.outputs;
      default:
        panic("bad unit kind");
    }
}

OperatorSim *
Accelerator::simFor(const UnitSite &site)
{
    auto it = faulty.find(site);
    return it == faulty.end() ? nullptr : it->second.get();
}

std::vector<InjectionRecord>
Accelerator::injectDefects(const UnitSite &site, int count, Rng &rng)
{
    std::shared_ptr<const Netlist> nl;
    CleanFn clean;
    switch (site.kind) {
      case UnitKind::WeightLatch:
        // Feedback netlist: no pruned/batched path to feed.
        nl = latchNl;
        break;
      case UnitKind::Multiplier:
        nl = multNl;
        clean = cleanMultiplierSigned(16);
        break;
      case UnitKind::AdderStage:
        nl = addNl;
        clean = cleanAdder(24, false);
        break;
      case UnitKind::Activation:
        nl = actNl;
        clean = cleanSigmoidUnit(logisticPwlTable());
        break;
    }
    Injection inj = injectTransistorDefects(*nl, count, rng);
    std::vector<InjectionRecord> records = inj.records;

    // Merge with any defects already present at this site.
    auto it = faulty.find(site);
    if (it != faulty.end()) {
        FaultSet merged = it->second->evaluator().faults();
        merged.merge(inj.faults);
        Injection combined;
        combined.faults = std::move(merged);
        combined.records = it->second->faultRecords();
        combined.records.insert(combined.records.end(), records.begin(),
                                records.end());
        it->second = std::make_unique<OperatorSim>(
            nl, std::move(combined), std::move(clean));
    } else {
        Injection fresh;
        fresh.faults = std::move(inj.faults);
        fresh.records = records;
        faulty[site] = std::make_unique<OperatorSim>(
            nl, std::move(fresh), std::move(clean));
    }
    probes[site]; // ensure a probe exists
    return records;
}

void
Accelerator::clearDefects()
{
    faulty.clear();
    probes.clear();
}

std::vector<UnitSite>
Accelerator::faultySites() const
{
    std::vector<UnitSite> sites;
    for (const auto &[site, sim] : faulty)
        sites.push_back(site);
    return sites;
}

bool
Accelerator::isFaulty(const UnitSite &site) const
{
    return faulty.find(site) != faulty.end();
}

Fix16
Accelerator::bistMul(Layer layer, int neuron, int synapse, Fix16 w,
                     Fix16 x)
{
    return unitMul(layer, neuron, synapse, w, x);
}

Acc24
Accelerator::bistAdd(Layer layer, int neuron, int stage, Acc24 a, Acc24 b)
{
    return unitAdd(layer, neuron, stage, a, b);
}

Fix16
Accelerator::bistAct(Layer layer, int neuron, Fix16 x)
{
    return unitAct(layer, neuron, x);
}

Fix16
Accelerator::bistLatchStore(Layer layer, int neuron, int synapse, Fix16 d)
{
    return unitLatchStore(layer, neuron, synapse, d);
}

void
Accelerator::bypassUnit(const UnitSite &site)
{
    bypassed.insert(site);
}

void
Accelerator::clearBypasses()
{
    bypassed.clear();
}

bool
Accelerator::isBypassed(const UnitSite &site) const
{
    return bypassed.find(site) != bypassed.end();
}

std::vector<UnitSite>
Accelerator::bypassedSites() const
{
    return {bypassed.begin(), bypassed.end()};
}

void
Accelerator::setActivationClamp(Layer layer, Fix16 lo, Fix16 hi)
{
    dtann_assert(static_cast<int16_t>(lo.bits()) <=
                     static_cast<int16_t>(hi.bits()),
                 "clamp window is empty");
    ActivationClamp &c = clamps[static_cast<size_t>(layer)];
    c.enabled = true;
    c.lo = lo;
    c.hi = hi;
}

void
Accelerator::clearActivationClamps()
{
    clamps[0] = ActivationClamp();
    clamps[1] = ActivationClamp();
    clampHitCount = 0;
}

const ActivationClamp &
Accelerator::activationClamp(Layer layer) const
{
    return clamps[static_cast<size_t>(layer)];
}

Fix16
Accelerator::clampValue(Layer layer, Fix16 x)
{
    const ActivationClamp &c = clamps[static_cast<size_t>(layer)];
    if (!c.enabled)
        return x;
    int16_t v = static_cast<int16_t>(x.bits());
    if (v < static_cast<int16_t>(c.lo.bits())) {
        ++clampHitCount;
        return c.lo;
    }
    if (v > static_cast<int16_t>(c.hi.bits())) {
        ++clampHitCount;
        return c.hi;
    }
    return x;
}

const DeviationProbe &
Accelerator::probe(const UnitSite &site) const
{
    auto it = probes.find(site);
    return it == probes.end() ? cleanProbe : it->second;
}

void
Accelerator::clearProbes()
{
    for (auto &[site, p] : probes)
        p = DeviationProbe();
}

Fix16
Accelerator::unitLatchStore(Layer layer, int neuron, int synapse, Fix16 d)
{
    UnitSite site{UnitKind::WeightLatch, layer, neuron, synapse};
    if (isBypassed(site))
        return Fix16(); // latch disconnected: weight reads as zero
    OperatorSim *sim = simFor(site);
    if (!sim)
        return d;
    // Open the latch (EN=1) with D applied, then close it.
    uint64_t bits = static_cast<uint64_t>(d.bits());
    sim->apply(bits | (1ull << 16));
    uint64_t q = sim->apply(bits); // EN=0
    Fix16 stored = Fix16::fromRaw(static_cast<int16_t>(q & 0xffff));
    probes[site].amplitude.add(
        std::abs(stored.toDouble() - d.toDouble()));
    return stored;
}

Fix16
Accelerator::unitMul(Layer layer, int neuron, int synapse, Fix16 w,
                     Fix16 x)
{
    UnitSite site{UnitKind::Multiplier, layer, neuron, synapse};
    if (isBypassed(site))
        return Fix16(); // product gated to zero
    OperatorSim *sim = simFor(site);
    Fix16 clean = Fix16::hwMul(w, x);
    if (!sim)
        return clean;
    uint64_t in = static_cast<uint64_t>(w.bits()) |
        (static_cast<uint64_t>(x.bits()) << 16);
    uint64_t product = sim->apply(in);
    Fix16 got = Fix16::fromRaw(static_cast<int16_t>(
        (product >> Fix16::fracBits) & 0xffff));
    probes[site].amplitude.add(
        std::abs(got.toDouble() - clean.toDouble()));
    return got;
}

Acc24
Accelerator::unitAdd(Layer layer, int neuron, int stage, Acc24 a, Acc24 b)
{
    UnitSite site{UnitKind::AdderStage, layer, neuron, stage};
    if (isBypassed(site))
        return a; // stage skipped: accumulator passes through
    OperatorSim *sim = simFor(site);
    Acc24 clean = Acc24::hwAdd(a, b);
    if (!sim)
        return clean;
    uint64_t in = static_cast<uint64_t>(a.bits()) |
        (static_cast<uint64_t>(b.bits()) << 24);
    uint64_t sum = sim->apply(in) & 0xffffffull;
    uint32_t u = static_cast<uint32_t>(sum);
    int32_t raw = (u & 0x800000u)
        ? static_cast<int32_t>(u | 0xff000000u)
        : static_cast<int32_t>(u);
    Acc24 got = Acc24::fromRaw(raw);
    probes[site].amplitude.add(
        std::abs(got.toDouble() - clean.toDouble()));
    return got;
}

Fix16
Accelerator::unitAct(Layer layer, int neuron, Fix16 x)
{
    UnitSite site{UnitKind::Activation, layer, neuron, 0};
    if (isBypassed(site))
        return Fix16(); // neuron silenced
    OperatorSim *sim = simFor(site);
    Fix16 clean = logisticPwlFix(x);
    if (!sim)
        return clean;
    uint64_t y = sim->apply(static_cast<uint64_t>(x.bits()));
    Fix16 got = Fix16::fromRaw(static_cast<int16_t>(y & 0xffff));
    probes[site].amplitude.add(
        std::abs(got.toDouble() - clean.toDouble()));
    return got;
}

void
Accelerator::unitMulLanes(Layer layer, int neuron, int synapse, Fix16 w,
                          const Fix16 *x, Fix16 *out, size_t lanes)
{
    UnitSite site{UnitKind::Multiplier, layer, neuron, synapse};
    if (isBypassed(site)) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = Fix16(); // product gated to zero
        return;
    }
    OperatorSim *sim = simFor(site);
    if (!sim) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = Fix16::hwMul(w, x[l]);
        return;
    }
    std::array<uint64_t, kMaxLanes> in, product;
    for (size_t l = 0; l < lanes; ++l)
        in[l] = static_cast<uint64_t>(w.bits()) |
            (static_cast<uint64_t>(x[l].bits()) << 16);
    sim->applyLanes(in.data(), product.data(), lanes);
    DeviationProbe &pr = probes[site];
    // Probe updates in lane (= row) order: the Welford accumulator
    // is order-dependent, and bit-identity with the scalar path
    // requires the same per-site sequence.
    for (size_t l = 0; l < lanes; ++l) {
        Fix16 clean = Fix16::hwMul(w, x[l]);
        Fix16 got = Fix16::fromRaw(static_cast<int16_t>(
            (product[l] >> Fix16::fracBits) & 0xffff));
        pr.amplitude.add(std::abs(got.toDouble() - clean.toDouble()));
        out[l] = got;
    }
}

void
Accelerator::unitAddLanes(Layer layer, int neuron, int stage, Acc24 *acc,
                          const Acc24 *b, size_t lanes)
{
    UnitSite site{UnitKind::AdderStage, layer, neuron, stage};
    if (isBypassed(site))
        return; // stage skipped: accumulator passes through
    OperatorSim *sim = simFor(site);
    if (!sim) {
        for (size_t l = 0; l < lanes; ++l)
            acc[l] = Acc24::hwAdd(acc[l], b[l]);
        return;
    }
    std::array<uint64_t, kMaxLanes> in, sum;
    for (size_t l = 0; l < lanes; ++l)
        in[l] = static_cast<uint64_t>(acc[l].bits()) |
            (static_cast<uint64_t>(b[l].bits()) << 24);
    sim->applyLanes(in.data(), sum.data(), lanes);
    DeviationProbe &pr = probes[site];
    for (size_t l = 0; l < lanes; ++l) {
        Acc24 clean = Acc24::hwAdd(acc[l], b[l]);
        uint32_t u = static_cast<uint32_t>(sum[l] & 0xffffffull);
        int32_t raw = (u & 0x800000u)
            ? static_cast<int32_t>(u | 0xff000000u)
            : static_cast<int32_t>(u);
        Acc24 got = Acc24::fromRaw(raw);
        pr.amplitude.add(std::abs(got.toDouble() - clean.toDouble()));
        acc[l] = got;
    }
}

void
Accelerator::unitActLanes(Layer layer, int neuron, const Fix16 *x,
                          Fix16 *out, size_t lanes)
{
    UnitSite site{UnitKind::Activation, layer, neuron, 0};
    if (isBypassed(site)) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = Fix16(); // neuron silenced
        return;
    }
    OperatorSim *sim = simFor(site);
    if (!sim) {
        for (size_t l = 0; l < lanes; ++l)
            out[l] = logisticPwlFix(x[l]);
        return;
    }
    std::array<uint64_t, kMaxLanes> in, y;
    for (size_t l = 0; l < lanes; ++l)
        in[l] = static_cast<uint64_t>(x[l].bits());
    sim->applyLanes(in.data(), y.data(), lanes);
    DeviationProbe &pr = probes[site];
    for (size_t l = 0; l < lanes; ++l) {
        Fix16 clean = logisticPwlFix(x[l]);
        Fix16 got =
            Fix16::fromRaw(static_cast<int16_t>(y[l] & 0xffff));
        pr.amplitude.add(std::abs(got.toDouble() - clean.toDouble()));
        out[l] = got;
    }
}

void
Accelerator::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    // Hidden layer: logical weights into the top-left corner; the
    // rest stays 0. All writes go through the latch path.
    for (int j = 0; j < cfg.hidden; ++j) {
        for (int i = 0; i <= cfg.inputs; ++i) {
            double v = 0.0;
            if (j < logical.hidden) {
                if (i < logical.inputs)
                    v = w.hid(j, i);
                else if (i == cfg.inputs)
                    v = w.hid(j, logical.inputs); // bias synapse
            }
            Fix16 q = Fix16::fromDouble(v);
            hidWIn[static_cast<size_t>(j) *
                       static_cast<size_t>(cfg.inputs + 1) +
                   static_cast<size_t>(i)] = q;
            hidWAt(j, i) = unitLatchStore(Layer::Hidden, j, i, q);
        }
    }
    for (int k = 0; k < cfg.outputs; ++k) {
        for (int j = 0; j <= cfg.hidden; ++j) {
            double v = 0.0;
            if (k < logical.outputs) {
                if (j < logical.hidden)
                    v = w.out(k, j);
                else if (j == cfg.hidden)
                    v = w.out(k, logical.hidden); // bias synapse
            }
            Fix16 q = Fix16::fromDouble(v);
            outWIn[static_cast<size_t>(k) *
                       static_cast<size_t>(cfg.hidden + 1) +
                   static_cast<size_t>(j)] = q;
            outWAt(k, j) = unitLatchStore(Layer::Output, k, j, q);
        }
    }
}

void
Accelerator::forwardLayer(Layer layer, std::span<const Fix16> in,
                          std::span<Fix16> out)
{
    const Fix16 one = Fix16::fromDouble(1.0);
    int fanin = layer == Layer::Hidden ? cfg.inputs : cfg.hidden;
    int neurons = layer == Layer::Hidden ? cfg.hidden : cfg.outputs;
    for (int n = 0; n < neurons; ++n) {
        Fix16 *weights = layer == Layer::Hidden
            ? &hidWAt(n, 0) : &outWAt(n, 0);
        // Products: one multiplier per synapse, bias last.
        Acc24 acc = Acc24::fromFix16(
            unitMul(layer, n, 0, weights[0], in[0]));
        for (int i = 1; i <= fanin; ++i) {
            Fix16 x = i < fanin ? in[static_cast<size_t>(i)] : one;
            Fix16 p = unitMul(layer, n, i, weights[i], x);
            acc = unitAdd(layer, n, i - 1, acc, Acc24::fromFix16(p));
        }
        if (layer == Layer::Hidden)
            hidSums[static_cast<size_t>(n)] = acc;
        // The clamp sits after the activation unit on the datapath
        // only; bistAct() reads the unit raw via unitAct().
        out[static_cast<size_t>(n)] =
            clampValue(layer, unitAct(layer, n, acc.toFix16Sat()));
    }
}

void
Accelerator::forwardLayerLanes(Layer layer,
                               const std::vector<const Fix16 *> &in,
                               const std::vector<Fix16 *> &out,
                               size_t lanes)
{
    dtann_assert(lanes >= 1 && lanes <= kMaxLanes,
                 "lane count out of range");
    const Fix16 one = Fix16::fromDouble(1.0);
    int fanin = layer == Layer::Hidden ? cfg.inputs : cfg.hidden;
    int neurons = layer == Layer::Hidden ? cfg.hidden : cfg.outputs;
    if (layer == Layer::Hidden)
        hidSumsLanes.resize(lanes * static_cast<size_t>(cfg.hidden));
    std::array<Fix16, kMaxLanes> x, p;
    std::array<Acc24, kMaxLanes> acc, addend;
    for (int n = 0; n < neurons; ++n) {
        Fix16 *weights = layer == Layer::Hidden
            ? &hidWAt(n, 0) : &outWAt(n, 0);
        for (size_t l = 0; l < lanes; ++l)
            x[l] = in[l][0];
        unitMulLanes(layer, n, 0, weights[0], x.data(), p.data(), lanes);
        for (size_t l = 0; l < lanes; ++l)
            acc[l] = Acc24::fromFix16(p[l]);
        for (int i = 1; i <= fanin; ++i) {
            for (size_t l = 0; l < lanes; ++l)
                x[l] = i < fanin ? in[l][i] : one;
            unitMulLanes(layer, n, i, weights[i], x.data(), p.data(),
                         lanes);
            for (size_t l = 0; l < lanes; ++l)
                addend[l] = Acc24::fromFix16(p[l]);
            unitAddLanes(layer, n, i - 1, acc.data(), addend.data(),
                         lanes);
        }
        // Mirror the scalar loop: the readable output latches hold
        // the last processed row's sums. The per-lane sums feed the
        // time-multiplexed batch path's key-logic accumulation.
        if (layer == Layer::Hidden) {
            hidSums[static_cast<size_t>(n)] = acc[lanes - 1];
            for (size_t l = 0; l < lanes; ++l)
                hidSumsLanes[l * static_cast<size_t>(cfg.hidden) +
                             static_cast<size_t>(n)] = acc[l];
        }
        for (size_t l = 0; l < lanes; ++l)
            x[l] = acc[l].toFix16Sat();
        unitActLanes(layer, n, x.data(), p.data(), lanes);
        // Clamp in lane (= row) order after the unit, mirroring the
        // scalar path bit for bit at every lane width.
        for (size_t l = 0; l < lanes; ++l)
            out[l][n] = clampValue(layer, p[l]);
    }
}

void
Accelerator::loadPhysicalHiddenRow(int phys_neuron,
                                   std::span<const Fix16> weights)
{
    dtann_assert(phys_neuron >= 0 && phys_neuron < cfg.hidden,
                 "physical neuron index out of range");
    dtann_assert(static_cast<int>(weights.size()) == cfg.inputs + 1,
                 "weight row arity mismatch");
    for (int i = 0; i <= cfg.inputs; ++i) {
        hidWIn[static_cast<size_t>(phys_neuron) *
                   static_cast<size_t>(cfg.inputs + 1) +
               static_cast<size_t>(i)] = weights[static_cast<size_t>(i)];
        hidWAt(phys_neuron, i) = unitLatchStore(
            Layer::Hidden, phys_neuron, i, weights[static_cast<size_t>(i)]);
    }
}

void
Accelerator::loadPhysicalOutputRow(int phys_neuron,
                                   std::span<const Fix16> weights)
{
    dtann_assert(phys_neuron >= 0 && phys_neuron < cfg.outputs,
                 "physical neuron index out of range");
    dtann_assert(static_cast<int>(weights.size()) == cfg.hidden + 1,
                 "weight row arity mismatch");
    for (int j = 0; j <= cfg.hidden; ++j) {
        outWIn[static_cast<size_t>(phys_neuron) *
                   static_cast<size_t>(cfg.hidden + 1) +
               static_cast<size_t>(j)] = weights[static_cast<size_t>(j)];
        outWAt(phys_neuron, j) = unitLatchStore(
            Layer::Output, phys_neuron, j, weights[static_cast<size_t>(j)]);
    }
}

void
Accelerator::runHiddenLayerLanes(const std::vector<const Fix16 *> &in,
                                 const std::vector<Fix16 *> &out,
                                 size_t lanes)
{
    dtann_assert(in.size() >= lanes && out.size() >= lanes,
                 "lane pointer arity mismatch");
    forwardLayerLanes(Layer::Hidden, in, out, lanes);
}

bool
Accelerator::batchPure() const
{
    for (const auto &[site, sim] : faulty)
        if (!sim->batched())
            return false;
    return true;
}

std::vector<Fix16>
Accelerator::runHiddenLayer(std::span<const Fix16> physical_input)
{
    dtann_assert(static_cast<int>(physical_input.size()) == cfg.inputs,
                 "physical input arity mismatch");
    forwardLayer(Layer::Hidden, physical_input, hiddenAct);
    return {hiddenAct.begin(), hiddenAct.end()};
}

std::vector<Fix16>
Accelerator::forwardFix(std::span<const Fix16> physical_input)
{
    dtann_assert(static_cast<int>(physical_input.size()) == cfg.inputs,
                 "physical input arity mismatch");
    forwardLayer(Layer::Hidden, physical_input, hiddenAct);
    std::vector<Fix16> out(static_cast<size_t>(cfg.outputs));
    forwardLayer(Layer::Output, hiddenAct, out);
    return out;
}

Activations
Accelerator::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == logical.inputs,
                 "logical input arity mismatch");
    std::vector<Fix16> phys(static_cast<size_t>(cfg.inputs));
    for (size_t i = 0; i < input.size(); ++i)
        phys[i] = Fix16::fromDouble(input[i]);
    std::vector<Fix16> out = forwardFix(phys);

    Activations act(static_cast<size_t>(logical.hidden),
                    static_cast<size_t>(logical.outputs));
    for (int j = 0; j < logical.hidden; ++j)
        act.hidden()[static_cast<size_t>(j)] =
            hiddenAct[static_cast<size_t>(j)].toDouble();
    for (int k = 0; k < logical.outputs; ++k)
        act.output()[static_cast<size_t>(k)] =
            out[static_cast<size_t>(k)].toDouble();
    return act;
}

std::vector<Activations>
Accelerator::forwardBatch(std::span<const std::vector<double>> inputs)
{
    size_t rows = inputs.size();
    std::vector<std::vector<Fix16>> phys(
        rows, std::vector<Fix16>(static_cast<size_t>(cfg.inputs)));
    for (size_t r = 0; r < rows; ++r) {
        dtann_assert(static_cast<int>(inputs[r].size()) ==
                         logical.inputs,
                     "logical input arity mismatch");
        for (size_t i = 0; i < inputs[r].size(); ++i)
            phys[r][i] = Fix16::fromDouble(inputs[r][i]);
    }

    std::vector<std::vector<Fix16>> hid(
        rows, std::vector<Fix16>(static_cast<size_t>(cfg.hidden)));
    std::vector<std::vector<Fix16>> outv(
        rows, std::vector<Fix16>(static_cast<size_t>(cfg.outputs)));
    size_t width = batchLaneWidth();
    for (size_t pos = 0; pos < rows; pos += width) {
        size_t lanes = std::min(width, rows - pos);
        std::vector<const Fix16 *> inPtr(lanes);
        std::vector<const Fix16 *> hidIn(lanes);
        std::vector<Fix16 *> hidPtr(lanes), outPtr(lanes);
        for (size_t l = 0; l < lanes; ++l) {
            inPtr[l] = phys[pos + l].data();
            hidIn[l] = hid[pos + l].data();
            hidPtr[l] = hid[pos + l].data();
            outPtr[l] = outv[pos + l].data();
        }
        forwardLayerLanes(Layer::Hidden, inPtr, hidPtr, lanes);
        forwardLayerLanes(Layer::Output, hidIn, outPtr, lanes);
    }

    std::vector<Activations> acts(rows);
    for (size_t r = 0; r < rows; ++r) {
        Activations &act = acts[r];
        act = Activations(static_cast<size_t>(logical.hidden),
                          static_cast<size_t>(logical.outputs));
        for (int j = 0; j < logical.hidden; ++j)
            act.hidden()[static_cast<size_t>(j)] =
                hid[r][static_cast<size_t>(j)].toDouble();
        for (int k = 0; k < logical.outputs; ++k)
            act.output()[static_cast<size_t>(k)] =
                outv[r][static_cast<size_t>(k)].toDouble();
    }
    // Mirror per-row forward(): the activation scratch holds the
    // last processed row.
    if (rows > 0)
        hiddenAct = hid[rows - 1];
    return acts;
}

SimCounters
Accelerator::simCounters() const
{
    SimCounters c;
    for (const auto &[site, sim] : faulty)
        c.merge(sim->counters());
    return c;
}

} // namespace dtann
