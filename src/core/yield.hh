/**
 * @file
 * Effective-yield analysis.
 *
 * The paper motivates defect-tolerant accelerators with the growing
 * defect counts of scaled technologies (Borkar; Alam et al.). This
 * module turns a Fig 10 accuracy-vs-defects curve into the metric a
 * manufacturer cares about: the fraction of dies that still deliver
 * acceptable accuracy at a given defect density, assuming
 * Poisson-distributed random defects over the accelerator area.
 *
 * A conventional (defect-intolerant) circuit of the same area is
 * functional only when it has zero defects — the classic Poisson
 * yield model — giving the comparison baseline.
 */

#ifndef DTANN_CORE_YIELD_HH
#define DTANN_CORE_YIELD_HH

#include "core/campaign.hh"

namespace dtann {

/** Yield figures at one defect density. */
struct YieldPoint
{
    double defectsPerCm2;   ///< defect density
    double meanDefects;     ///< lambda = density x area
    double classicYield;    ///< P(0 defects): intolerant circuit
    double effectiveYield;  ///< P(accuracy >= threshold)
    double expectedAccuracy;///< E[accuracy] over the defect count
};

/**
 * Evaluate yield from an accuracy curve.
 *
 * @param curve accuracy vs defect count (piecewise-linear
 *        interpolation between measured points, clamped beyond the
 *        last point)
 * @param area_mm2 die area of the accelerator
 * @param defects_per_cm2 defect density
 * @param accuracy_threshold minimum acceptable accuracy (absolute)
 */
YieldPoint effectiveYield(const Fig10Curve &curve, double area_mm2,
                          double defects_per_cm2,
                          double accuracy_threshold);

/** Accuracy at a (possibly fractional) defect count, interpolated. */
double interpolateAccuracy(const Fig10Curve &curve, double defects);

/** Poisson probability mass P(N = k) for mean @p lambda. */
double poissonPmf(int k, double lambda);

} // namespace dtann

#endif // DTANN_CORE_YIELD_HH
