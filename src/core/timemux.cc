#include "core/timemux.hh"

#include "circuit/lane_plane.hh"
#include "common/logging.hh"

namespace dtann {

TimeMuxedMlp::TimeMuxedMlp(Accelerator &a, MlpTopology logical_topo)
    : accel(a), logical(logical_topo)
{
    dtann_assert(logical.inputs >= 1 && logical.hidden >= 1 &&
                     logical.outputs >= 1,
                 "degenerate topology");
}

void
TimeMuxedMlp::setWeights(const MlpWeights &w)
{
    dtann_assert(w.topology() == logical, "weight topology mismatch");
    hidRows.assign(static_cast<size_t>(logical.hidden), {});
    for (int j = 0; j < logical.hidden; ++j) {
        auto &row = hidRows[static_cast<size_t>(j)];
        row.resize(static_cast<size_t>(logical.inputs + 1));
        for (int i = 0; i <= logical.inputs; ++i)
            row[static_cast<size_t>(i)] = Fix16::fromDouble(w.hid(j, i));
    }
    outRows.assign(static_cast<size_t>(logical.outputs), {});
    for (int k = 0; k < logical.outputs; ++k) {
        auto &row = outRows[static_cast<size_t>(k)];
        row.resize(static_cast<size_t>(logical.hidden + 1));
        for (int j = 0; j <= logical.hidden; ++j)
            row[static_cast<size_t>(j)] = Fix16::fromDouble(w.out(k, j));
    }
}

std::vector<Fix16>
muxRunLayer(Accelerator &accel,
            const std::vector<std::vector<Fix16>> &rows,
            std::span<const Fix16> input)
{
    const AcceleratorConfig &cfg = accel.config();
    int P = cfg.inputs;          // physical fan-in per pass
    int B = cfg.hidden;          // physical neurons per pass
    int fanin = static_cast<int>(input.size());
    int chunks = (fanin + P - 1) / P;

    std::vector<Fix16> result(rows.size());
    std::vector<Fix16> phys_in(static_cast<size_t>(P));
    std::vector<Fix16> phys_row(static_cast<size_t>(P + 1));

    for (size_t batch = 0; batch < rows.size();
         batch += static_cast<size_t>(B)) {
        size_t in_batch =
            std::min<size_t>(static_cast<size_t>(B),
                             rows.size() - batch);
        if (chunks == 1) {
            // Fits in one pass: whole row (weights + bias) loaded,
            // activation applied directly.
            for (size_t p = 0; p < in_batch; ++p) {
                const auto &row = rows[batch + p];
                std::fill(phys_row.begin(), phys_row.end(), Fix16());
                for (int i = 0; i < fanin; ++i)
                    phys_row[static_cast<size_t>(i)] =
                        row[static_cast<size_t>(i)];
                phys_row[static_cast<size_t>(P)] = row.back(); // bias
                accel.loadPhysicalHiddenRow(static_cast<int>(p),
                                            phys_row);
            }
            std::fill(phys_in.begin(), phys_in.end(), Fix16());
            for (int i = 0; i < fanin; ++i)
                phys_in[static_cast<size_t>(i)] =
                    input[static_cast<size_t>(i)];
            std::vector<Fix16> acts = accel.runHiddenLayer(phys_in);
            for (size_t p = 0; p < in_batch; ++p)
                result[batch + p] = acts[p];
            continue;
        }

        // Oversized fan-in: accumulate chunk sums in key logic.
        std::vector<Acc24> totals(in_batch);
        for (int c = 0; c < chunks; ++c) {
            int base = c * P;
            int width = std::min(P, fanin - base);
            bool last = c == chunks - 1;
            for (size_t p = 0; p < in_batch; ++p) {
                const auto &row = rows[batch + p];
                std::fill(phys_row.begin(), phys_row.end(), Fix16());
                for (int i = 0; i < width; ++i)
                    phys_row[static_cast<size_t>(i)] =
                        row[static_cast<size_t>(base + i)];
                if (last)
                    phys_row[static_cast<size_t>(P)] = row.back();
                accel.loadPhysicalHiddenRow(static_cast<int>(p),
                                            phys_row);
            }
            std::fill(phys_in.begin(), phys_in.end(), Fix16());
            for (int i = 0; i < width; ++i)
                phys_in[static_cast<size_t>(i)] =
                    input[static_cast<size_t>(base + i)];
            accel.runHiddenLayer(phys_in);
            for (size_t p = 0; p < in_batch; ++p)
                totals[p] =
                    Acc24::hwAdd(totals[p], accel.hiddenSums()[p]);
        }
        // Final activation pass: feed each neuron's saturated sum
        // back on its own input line with an exact weight of 1.0 so
        // the physical activation unit produces the neuron output.
        std::fill(phys_in.begin(), phys_in.end(), Fix16());
        for (size_t p = 0; p < in_batch; ++p) {
            std::fill(phys_row.begin(), phys_row.end(), Fix16());
            phys_row[p] = Fix16::fromDouble(1.0);
            accel.loadPhysicalHiddenRow(static_cast<int>(p), phys_row);
            phys_in[p] = totals[p].toFix16Sat();
        }
        std::vector<Fix16> acts = accel.runHiddenLayer(phys_in);
        for (size_t p = 0; p < in_batch; ++p)
            result[batch + p] = acts[p];
    }
    return result;
}

std::vector<std::vector<Fix16>>
muxRunLayerBatch(Accelerator &accel,
                 const std::vector<std::vector<Fix16>> &rows,
                 const std::vector<std::vector<Fix16>> &inputs)
{
    const AcceleratorConfig &cfg = accel.config();
    int P = cfg.inputs;          // physical fan-in per pass
    int B = cfg.hidden;          // physical neurons per pass
    size_t N = inputs.size();
    int fanin = N == 0 ? 0 : static_cast<int>(inputs[0].size());
    int chunks = (fanin + P - 1) / P;

    std::vector<std::vector<Fix16>> result(
        N, std::vector<Fix16>(rows.size()));
    size_t width = batchLaneWidth();
    std::vector<Fix16> phys_row(static_cast<size_t>(P + 1));
    std::vector<std::vector<Fix16>> phys_in(
        width, std::vector<Fix16>(static_cast<size_t>(P)));
    std::vector<std::vector<Fix16>> acts(
        width, std::vector<Fix16>(static_cast<size_t>(B)));

    for (size_t pos = 0; pos < N; pos += width) {
        size_t lanes = std::min(width, N - pos);
        std::vector<const Fix16 *> inPtr(lanes);
        std::vector<Fix16 *> actPtr(lanes);
        for (size_t l = 0; l < lanes; ++l) {
            inPtr[l] = phys_in[l].data();
            actPtr[l] = acts[l].data();
        }

        for (size_t batch = 0; batch < rows.size();
             batch += static_cast<size_t>(B)) {
            size_t in_batch =
                std::min<size_t>(static_cast<size_t>(B),
                                 rows.size() - batch);
            if (chunks == 1) {
                // Fits in one pass: whole rows (weights + bias)
                // loaded once, then all lanes activate directly.
                for (size_t p = 0; p < in_batch; ++p) {
                    const auto &row = rows[batch + p];
                    std::fill(phys_row.begin(), phys_row.end(),
                              Fix16());
                    for (int i = 0; i < fanin; ++i)
                        phys_row[static_cast<size_t>(i)] =
                            row[static_cast<size_t>(i)];
                    phys_row[static_cast<size_t>(P)] = row.back();
                    accel.loadPhysicalHiddenRow(static_cast<int>(p),
                                                phys_row);
                }
                for (size_t l = 0; l < lanes; ++l) {
                    auto &in = phys_in[l];
                    std::fill(in.begin(), in.end(), Fix16());
                    for (int i = 0; i < fanin; ++i)
                        in[static_cast<size_t>(i)] =
                            inputs[pos + l][static_cast<size_t>(i)];
                }
                accel.runHiddenLayerLanes(inPtr, actPtr, lanes);
                for (size_t l = 0; l < lanes; ++l)
                    for (size_t p = 0; p < in_batch; ++p)
                        result[pos + l][batch + p] = acts[l][p];
                continue;
            }

            // Oversized fan-in: accumulate per-lane chunk sums in
            // key logic.
            std::vector<Acc24> totals(lanes * in_batch);
            for (int c = 0; c < chunks; ++c) {
                int base = c * P;
                int width = std::min(P, fanin - base);
                bool last = c == chunks - 1;
                for (size_t p = 0; p < in_batch; ++p) {
                    const auto &row = rows[batch + p];
                    std::fill(phys_row.begin(), phys_row.end(),
                              Fix16());
                    for (int i = 0; i < width; ++i)
                        phys_row[static_cast<size_t>(i)] =
                            row[static_cast<size_t>(base + i)];
                    if (last)
                        phys_row[static_cast<size_t>(P)] = row.back();
                    accel.loadPhysicalHiddenRow(static_cast<int>(p),
                                                phys_row);
                }
                for (size_t l = 0; l < lanes; ++l) {
                    auto &in = phys_in[l];
                    std::fill(in.begin(), in.end(), Fix16());
                    for (int i = 0; i < width; ++i)
                        in[static_cast<size_t>(i)] =
                            inputs[pos + l]
                                  [static_cast<size_t>(base + i)];
                }
                accel.runHiddenLayerLanes(inPtr, actPtr, lanes);
                const std::vector<Acc24> &sums =
                    accel.hiddenSumsLanes();
                for (size_t l = 0; l < lanes; ++l)
                    for (size_t p = 0; p < in_batch; ++p)
                        totals[l * in_batch + p] = Acc24::hwAdd(
                            totals[l * in_batch + p],
                            sums[l * static_cast<size_t>(B) + p]);
            }
            // Final activation pass: feed each neuron's saturated
            // sum back on its own input line with an exact weight
            // of 1.0 so the physical activation unit produces the
            // neuron output — one identity load for all lanes.
            for (size_t p = 0; p < in_batch; ++p) {
                std::fill(phys_row.begin(), phys_row.end(), Fix16());
                phys_row[p] = Fix16::fromDouble(1.0);
                accel.loadPhysicalHiddenRow(static_cast<int>(p),
                                            phys_row);
            }
            for (size_t l = 0; l < lanes; ++l) {
                auto &in = phys_in[l];
                std::fill(in.begin(), in.end(), Fix16());
                for (size_t p = 0; p < in_batch; ++p)
                    in[p] = totals[l * in_batch + p].toFix16Sat();
            }
            accel.runHiddenLayerLanes(inPtr, actPtr, lanes);
            for (size_t l = 0; l < lanes; ++l)
                for (size_t p = 0; p < in_batch; ++p)
                    result[pos + l][batch + p] = acts[l][p];
        }
    }
    return result;
}

Activations
TimeMuxedMlp::forward(std::span<const double> input)
{
    dtann_assert(static_cast<int>(input.size()) == logical.inputs,
                 "logical input arity mismatch");
    dtann_assert(!hidRows.empty(), "setWeights() before forward()");

    std::vector<Fix16> fix_in(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        fix_in[i] = Fix16::fromDouble(input[i]);

    std::vector<Fix16> hidden = muxRunLayer(accel, hidRows, fix_in);
    std::vector<Fix16> output = muxRunLayer(accel, outRows, hidden);

    Activations act;
    act.layers.resize(2);
    act.layers[0].reserve(hidden.size());
    for (Fix16 h : hidden)
        act.layers[0].push_back(h.toDouble());
    act.layers[1].reserve(output.size());
    for (Fix16 o : output)
        act.layers[1].push_back(o.toDouble());
    return act;
}

std::vector<Activations>
TimeMuxedMlp::forwardBatch(std::span<const std::vector<double>> inputs)
{
    dtann_assert(!hidRows.empty(), "setWeights() before forward()");
    if (!accel.batchPure())
        return rowLoopBatch(inputs); // stateful faulty units need
                                     // the exact per-row sequence
    size_t N = inputs.size();
    std::vector<std::vector<Fix16>> fix_in(N);
    for (size_t r = 0; r < N; ++r) {
        dtann_assert(static_cast<int>(inputs[r].size()) ==
                         logical.inputs,
                     "logical input arity mismatch");
        fix_in[r].resize(inputs[r].size());
        for (size_t i = 0; i < inputs[r].size(); ++i)
            fix_in[r][i] = Fix16::fromDouble(inputs[r][i]);
    }

    std::vector<std::vector<Fix16>> hidden =
        muxRunLayerBatch(accel, hidRows, fix_in);
    std::vector<std::vector<Fix16>> output =
        muxRunLayerBatch(accel, outRows, hidden);

    std::vector<Activations> acts(N);
    for (size_t r = 0; r < N; ++r) {
        Activations &act = acts[r];
        act.layers.resize(2);
        act.layers[0].reserve(hidden[r].size());
        for (Fix16 h : hidden[r])
            act.layers[0].push_back(h.toDouble());
        act.layers[1].reserve(output[r].size());
        for (Fix16 o : output[r])
            act.layers[1].push_back(o.toDouble());
    }
    return acts;
}

size_t
muxLayerPasses(const AcceleratorConfig &cfg, int neurons, int fanin)
{
    size_t batches = static_cast<size_t>(
        (neurons + cfg.hidden - 1) / cfg.hidden);
    size_t chunks = static_cast<size_t>(
        (fanin + cfg.inputs - 1) / cfg.inputs);
    size_t per_batch = chunks == 1 ? 1 : chunks + 1; // + activation pass
    return batches * per_batch;
}

size_t
TimeMuxedMlp::passesPerRow() const
{
    const AcceleratorConfig &cfg = accel.config();
    return muxLayerPasses(cfg, logical.hidden, logical.inputs) +
        muxLayerPasses(cfg, logical.outputs, logical.hidden);
}

size_t
TimeMuxedMlp::weightWordsPerRow() const
{
    // Every pass reloads a full physical weight row per busy
    // neuron.
    const AcceleratorConfig &cfg = accel.config();
    return passesPerRow() * static_cast<size_t>(cfg.hidden) *
        static_cast<size_t>(cfg.inputs + 1);
}

int
TimeMuxedMlp::muxFactor() const
{
    const AcceleratorConfig &cfg = accel.config();
    int total = logical.hidden + logical.outputs;
    int phys = cfg.hidden;
    return (total + phys - 1) / phys;
}

} // namespace dtann
