/**
 * @file
 * Reconstruction of faulty logic functions from defective schematics.
 *
 * Given a gate kind and a set of transistor-level defects, the
 * reconstruction computes, for every input combination, whether the
 * defective P network connects Vdd to the output (Z_P) and whether
 * the defective N network connects the output to Vss (Z_N), then
 * resolves the output with B-block semantics:
 *
 *   Z_N = 1            -> 0   (the ground path dominates)
 *   Z_N = 0, Z_P = 1   -> 1
 *   Z_N = 0, Z_P = 0   -> MEM (floating output keeps its value)
 *
 * The result replaces the gate's behaviour in the Evaluator. This
 * is the paper's Section III-B pipeline (schematic -> defects ->
 * reconstructed logic expression / state element).
 */

#ifndef DTANN_TRANSISTOR_RECONSTRUCT_HH
#define DTANN_TRANSISTOR_RECONSTRUCT_HH

#include <span>
#include <vector>

#include "circuit/gate_function.hh"
#include "common/rng.hh"
#include "transistor/defect.hh"
#include "transistor/switch_network.hh"

namespace dtann {

/** Outcome of reconstructing a defective gate. */
struct ReconstructedGate
{
    GateFunction function; ///< truth table over {0, 1, MEM}
    bool delayed = false;  ///< a Delay defect is present
};

/**
 * Reconstruct the behaviour of @p kind with @p defects injected.
 */
ReconstructedGate reconstruct(GateKind kind,
                              std::span<const Defect> defects);

/** Overload for brace-enclosed defect lists. */
inline ReconstructedGate
reconstruct(GateKind kind, std::initializer_list<Defect> defects)
{
    return reconstruct(kind,
                       std::span<const Defect>(defects.begin(),
                                               defects.size()));
}

/**
 * Draw a random defect for a gate of kind @p kind.
 *
 * Open/ShortSD pick a transistor uniformly over both networks;
 * Bridge picks a network proportionally to its transistor count and
 * then a random distinct node pair within it.
 */
Defect randomDefect(GateKind kind, Rng &rng,
                    const DefectMix &mix = DefectMix());

/**
 * Enumerate every single Open and ShortSD defect of @p kind (used
 * by exhaustive tests and fault-site statistics).
 */
std::vector<Defect> allSingleSwitchDefects(GateKind kind);

} // namespace dtann

#endif // DTANN_TRANSISTOR_RECONSTRUCT_HH
