/**
 * @file
 * Transistor-level defect descriptions.
 *
 * The two main physical defect classes are opens (excess material
 * removed; a transistor path is cut) and shorts (insufficient
 * material removed; source-drain permanently connected, or a bridge
 * between two circuit nodes). Partial opens/shorts manifest as
 * delays, modelled as the gate output turning into a state element
 * that propagates its value one evaluation late.
 */

#ifndef DTANN_TRANSISTOR_DEFECT_HH
#define DTANN_TRANSISTOR_DEFECT_HH

#include <cstdint>
#include <string>

namespace dtann {

/** Kinds of transistor-level defects. */
enum class DefectKind : uint8_t {
    Open,     ///< transistor path cut (stuck open)
    ShortSD,  ///< source-drain short (stuck closed)
    Bridge,   ///< two nodes of a channel network merged
    Delay,    ///< partial defect; gate becomes a delay element
};

/** One defect within one gate's schematic. */
struct Defect
{
    DefectKind kind;
    bool pNetwork;       ///< affected channel network (not for Delay)
    uint8_t switchIndex; ///< Open/ShortSD: transistor index
    uint8_t nodeA;       ///< Bridge: first merged node
    uint8_t nodeB;       ///< Bridge: second merged node

    /** Human-readable description (for experiment logs). */
    std::string describe() const;
};

/** Relative frequency of each defect kind during random injection. */
struct DefectMix
{
    double open = 0.45;
    double shortSd = 0.35;
    double bridge = 0.15;
    double delay = 0.05;
};

} // namespace dtann

#endif // DTANN_TRANSISTOR_DEFECT_HH
