#include "transistor/switch_network.hh"

#include <array>

#include "common/logging.hh"

namespace dtann {

namespace {

/** Shorthand switch constructors. */
Switch
nmos(uint8_t a, uint8_t b, uint8_t in)
{
    return Switch{a, b, in, false};
}

Switch
pmos(uint8_t a, uint8_t b, uint8_t in)
{
    return Switch{a, b, in, true};
}

/** Build the schematic table once. */
std::array<GateSchematic, static_cast<size_t>(GateKind::NumKinds)>
buildSchematics()
{
    std::array<GateSchematic, static_cast<size_t>(GateKind::NumKinds)> t{};
    auto set = [&t](GateKind k, ChannelNetwork p, ChannelNetwork n) {
        auto &s = t[static_cast<size_t>(k)];
        s.kind = k;
        s.p = std::move(p);
        s.n = std::move(n);
    };

    // NOT: single complementary pair.
    set(GateKind::Not,
        {2, {pmos(0, 1, 0)}},
        {2, {nmos(1, 0, 0)}});

    // NAND2: P parallel, N series.
    set(GateKind::Nand2,
        {2, {pmos(0, 1, 0), pmos(0, 1, 1)}},
        {3, {nmos(1, 2, 0), nmos(2, 0, 1)}});

    // NAND3.
    set(GateKind::Nand3,
        {2, {pmos(0, 1, 0), pmos(0, 1, 1), pmos(0, 1, 2)}},
        {4, {nmos(1, 2, 0), nmos(2, 3, 1), nmos(3, 0, 2)}});

    // NOR2: P series, N parallel.
    set(GateKind::Nor2,
        {3, {pmos(0, 2, 0), pmos(2, 1, 1)}},
        {2, {nmos(1, 0, 0), nmos(1, 0, 1)}});

    // NOR3.
    set(GateKind::Nor3,
        {4, {pmos(0, 2, 0), pmos(2, 3, 1), pmos(3, 1, 2)}},
        {2, {nmos(1, 0, 0), nmos(1, 0, 1), nmos(1, 0, 2)}});

    // AOI21: out = !((a & b) | c).
    // N: (a series b) parallel c; P: (a parallel b) series c.
    set(GateKind::Aoi21,
        {3, {pmos(0, 2, 0), pmos(0, 2, 1), pmos(2, 1, 2)}},
        {3, {nmos(1, 2, 0), nmos(2, 0, 1), nmos(1, 0, 2)}});

    // AOI22: out = !((a & b) | (c & d)).
    set(GateKind::Aoi22,
        {3, {pmos(0, 2, 0), pmos(0, 2, 1), pmos(2, 1, 2), pmos(2, 1, 3)}},
        {4, {nmos(1, 2, 0), nmos(2, 0, 1), nmos(1, 3, 2), nmos(3, 0, 3)}});

    // OAI21: out = !((a | b) & c).
    set(GateKind::Oai21,
        {3, {pmos(0, 2, 0), pmos(2, 1, 1), pmos(0, 1, 2)}},
        {3, {nmos(1, 2, 0), nmos(1, 2, 1), nmos(2, 0, 2)}});

    // OAI22: out = !((a | b) & (c | d)).
    set(GateKind::Oai22,
        {4, {pmos(0, 2, 0), pmos(2, 1, 1), pmos(0, 3, 2), pmos(3, 1, 3)}},
        {3, {nmos(1, 2, 0), nmos(1, 2, 1), nmos(2, 0, 2), nmos(2, 0, 3)}});

    // Mirror-adder carry: out = !((a & b) | (c & (a | b))).
    // Self-dual majority: P topology mirrors N.
    set(GateKind::CarryN,
        {4, {pmos(0, 2, 0), pmos(2, 1, 1),
             pmos(0, 3, 2), pmos(3, 1, 0), pmos(3, 1, 1)}},
        {4, {nmos(1, 2, 0), nmos(2, 0, 1),
             nmos(1, 3, 2), nmos(3, 0, 0), nmos(3, 0, 1)}});

    // Mirror-adder sum: out = !((a & b & c) | (d & (a | b | c))).
    // Also self-dual.
    set(GateKind::MirrorSumN,
        {5, {pmos(0, 2, 0), pmos(2, 3, 1), pmos(3, 1, 2),
             pmos(0, 4, 3), pmos(4, 1, 0), pmos(4, 1, 1), pmos(4, 1, 2)}},
        {5, {nmos(1, 2, 0), nmos(2, 3, 1), nmos(3, 0, 2),
             nmos(1, 4, 3), nmos(4, 0, 0), nmos(4, 0, 1), nmos(4, 0, 2)}});

    return t;
}

const auto schematicTable = buildSchematics();

} // namespace

bool
hasSchematic(GateKind kind)
{
    switch (kind) {
      case GateKind::Const0:
      case GateKind::Const1:
      case GateKind::NumKinds:
        return false;
      default:
        return true;
    }
}

const GateSchematic &
schematicFor(GateKind kind)
{
    dtann_assert(hasSchematic(kind), "%s has no transistor schematic",
                 gateName(kind));
    return schematicTable[static_cast<size_t>(kind)];
}

} // namespace dtann
