/**
 * @file
 * Transistor-level view of CMOS gates.
 *
 * Every gate kind maps to a pair of channel networks: a P pull-up
 * network connecting Vdd to the output and an N pull-down network
 * connecting the output to Vss. Each network is a graph whose edges
 * are transistors (switches) controlled by gate inputs. This is the
 * level at which defects are injected.
 *
 * Node convention within a network: node 0 is the rail (Vdd for P,
 * Vss for N), node 1 is the gate output, nodes 2+ are internal
 * source/drain connections.
 */

#ifndef DTANN_TRANSISTOR_SWITCH_NETWORK_HH
#define DTANN_TRANSISTOR_SWITCH_NETWORK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/gate.hh"

namespace dtann {

/** One transistor within a channel network. */
struct Switch
{
    uint8_t nodeA;  ///< first source/drain connection
    uint8_t nodeB;  ///< second source/drain connection
    uint8_t input;  ///< controlling gate-input index
    bool pmos;      ///< PMOS conducts on 0, NMOS conducts on 1

    /** Does this (defect-free) transistor conduct for these inputs? */
    bool
    conducts(uint32_t inputs) const
    {
        bool high = (inputs >> input) & 1;
        return pmos ? !high : high;
    }
};

/** One channel network (pull-up or pull-down). */
struct ChannelNetwork
{
    uint8_t numNodes = 2;        ///< rail + out + internals
    std::vector<Switch> switches;
};

/** Full transistor schematic of a gate: P and N networks. */
struct GateSchematic
{
    GateKind kind;
    ChannelNetwork p;  ///< pull-up (rail = Vdd)
    ChannelNetwork n;  ///< pull-down (rail = Vss)

    /** Total transistors. */
    size_t
    transistorCount() const
    {
        return p.switches.size() + n.switches.size();
    }
};

/**
 * The static CMOS schematic of @p kind.
 *
 * Fatal for kinds without a single-stage schematic (constants).
 */
const GateSchematic &schematicFor(GateKind kind);

/** True when @p kind has a transistor schematic (is a fault site). */
bool hasSchematic(GateKind kind);

} // namespace dtann

#endif // DTANN_TRANSISTOR_SWITCH_NETWORK_HH
