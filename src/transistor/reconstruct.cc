#include "transistor/reconstruct.hh"

#include <array>
#include <cstdio>

#include "common/logging.hh"

namespace dtann {

std::string
Defect::describe() const
{
    char buf[64];
    switch (kind) {
      case DefectKind::Open:
        std::snprintf(buf, sizeof(buf), "open(%c,t%d)",
                      pNetwork ? 'P' : 'N', switchIndex);
        break;
      case DefectKind::ShortSD:
        std::snprintf(buf, sizeof(buf), "short(%c,t%d)",
                      pNetwork ? 'P' : 'N', switchIndex);
        break;
      case DefectKind::Bridge:
        std::snprintf(buf, sizeof(buf), "bridge(%c,n%d-n%d)",
                      pNetwork ? 'P' : 'N', nodeA, nodeB);
        break;
      case DefectKind::Delay:
        std::snprintf(buf, sizeof(buf), "delay");
        break;
      default:
        std::snprintf(buf, sizeof(buf), "?");
    }
    return buf;
}

namespace {

/** Tiny union-find over channel-network nodes. */
class NodeSets
{
  public:
    explicit NodeSets(int n)
    {
        dtann_assert(n <= 8, "channel networks have few nodes");
        for (int i = 0; i < n; ++i)
            parent[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
    }

    uint8_t
    find(uint8_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void unite(uint8_t a, uint8_t b) { parent[find(a)] = find(b); }

  private:
    std::array<uint8_t, 8> parent{};
};

/** Per-switch defect status within one network. */
struct SwitchStatus
{
    bool open = false;
    bool shortSd = false;
};

/**
 * Does the defective network conduct between rail (node 0) and
 * output (node 1) for the given input combination?
 */
bool
networkConducts(const ChannelNetwork &net,
                const std::vector<SwitchStatus> &status,
                std::span<const Defect> defects, bool p_network,
                uint32_t inputs)
{
    NodeSets sets(net.numNodes);
    // Bridges merge nodes unconditionally.
    for (const Defect &d : defects)
        if (d.kind == DefectKind::Bridge && d.pNetwork == p_network)
            sets.unite(d.nodeA, d.nodeB);
    // Conducting transistors merge their terminals.
    for (size_t i = 0; i < net.switches.size(); ++i) {
        const Switch &sw = net.switches[i];
        bool on;
        if (status[i].shortSd)
            on = true;
        else if (status[i].open)
            on = false;
        else
            on = sw.conducts(inputs);
        if (on)
            sets.unite(sw.nodeA, sw.nodeB);
    }
    return sets.find(0) == sets.find(1);
}

} // namespace

ReconstructedGate
reconstruct(GateKind kind, std::span<const Defect> defects)
{
    const GateSchematic &sch = schematicFor(kind);
    int arity = gateArity(kind);

    std::vector<SwitchStatus> p_status(sch.p.switches.size());
    std::vector<SwitchStatus> n_status(sch.n.switches.size());
    bool delayed = false;
    for (const Defect &d : defects) {
        switch (d.kind) {
          case DefectKind::Open:
          case DefectKind::ShortSD: {
            auto &status = d.pNetwork ? p_status : n_status;
            dtann_assert(d.switchIndex < status.size(),
                         "defect switch index out of range");
            if (d.kind == DefectKind::Open)
                status[d.switchIndex].open = true;
            else
                status[d.switchIndex].shortSd = true;
            break;
          }
          case DefectKind::Bridge: {
            const ChannelNetwork &net = d.pNetwork ? sch.p : sch.n;
            dtann_assert(d.nodeA < net.numNodes && d.nodeB < net.numNodes,
                         "bridge node out of range");
            break; // Applied inside networkConducts().
          }
          case DefectKind::Delay:
            delayed = true;
            break;
          default:
            panic("unknown defect kind");
        }
    }

    uint32_t value_mask = 0, mem_mask = 0;
    for (uint32_t in = 0; in < (1u << arity); ++in) {
        bool zp = networkConducts(sch.p, p_status, defects, true, in);
        bool zn = networkConducts(sch.n, n_status, defects, false, in);
        // B-block resolution: ground dominates; neither path floats.
        if (zn) {
            // Output 0.
        } else if (zp) {
            value_mask |= 1u << in;
        } else {
            mem_mask |= 1u << in;
        }
    }
    return {GateFunction(arity, value_mask, mem_mask), delayed};
}

Defect
randomDefect(GateKind kind, Rng &rng, const DefectMix &mix)
{
    const GateSchematic &sch = schematicFor(kind);
    size_t np = sch.p.switches.size();
    size_t nn = sch.n.switches.size();

    double total = mix.open + mix.shortSd + mix.bridge + mix.delay;
    double draw = rng.nextDouble() * total;

    Defect d{};
    if (draw < mix.open || draw < mix.open + mix.shortSd) {
        d.kind = draw < mix.open ? DefectKind::Open : DefectKind::ShortSD;
        size_t t = rng.nextUint(np + nn);
        d.pNetwork = t < np;
        d.switchIndex = static_cast<uint8_t>(d.pNetwork ? t : t - np);
    } else if (draw < mix.open + mix.shortSd + mix.bridge) {
        d.kind = DefectKind::Bridge;
        // Weight the network by its transistor count.
        d.pNetwork = rng.nextUint(np + nn) < np;
        const ChannelNetwork &net = d.pNetwork ? sch.p : sch.n;
        d.nodeA = static_cast<uint8_t>(rng.nextUint(net.numNodes));
        do {
            d.nodeB = static_cast<uint8_t>(rng.nextUint(net.numNodes));
        } while (d.nodeB == d.nodeA);
    } else {
        d.kind = DefectKind::Delay;
    }
    return d;
}

std::vector<Defect>
allSingleSwitchDefects(GateKind kind)
{
    const GateSchematic &sch = schematicFor(kind);
    std::vector<Defect> out;
    for (int pn = 0; pn < 2; ++pn) {
        const ChannelNetwork &net = pn ? sch.p : sch.n;
        for (size_t i = 0; i < net.switches.size(); ++i) {
            for (DefectKind k : {DefectKind::Open, DefectKind::ShortSD}) {
                Defect d{};
                d.kind = k;
                d.pNetwork = pn != 0;
                d.switchIndex = static_cast<uint8_t>(i);
                out.push_back(d);
            }
        }
    }
    return out;
}

} // namespace dtann
