#include "cpu/kernel.hh"

#include "ann/sigmoid.hh"
#include "common/logging.hh"

namespace dtann {

KernelShape
KernelShape::of(MlpTopology topo)
{
    KernelShape s;
    s.synapses = static_cast<size_t>(topo.hidden) *
            static_cast<size_t>(topo.inputs + 1) +
        static_cast<size_t>(topo.outputs) *
            static_cast<size_t>(topo.hidden + 1);
    s.neurons =
        static_cast<size_t>(topo.hidden) + static_cast<size_t>(topo.outputs);
    return s;
}

KernelOpCounts
kernelOpsPerRow(MlpTopology topo)
{
    KernelShape shape = KernelShape::of(topo);
    KernelOpCounts ops;
    // Per synapse: load weight, load input, multiply, accumulate,
    // loop branch.
    ops.loads += 2 * shape.synapses;
    ops.multiplies += shape.synapses;
    ops.adds += shape.synapses;
    ops.branches += shape.synapses;
    // Per neuron: PWL sigmoid = index extraction (2 adds), LUT read
    // of (a, b), multiply, add, store activation, loop branch.
    ops.adds += 3 * shape.neurons;
    ops.lutReads += 2 * shape.neurons;
    ops.multiplies += shape.neurons;
    ops.stores += shape.neurons;
    ops.branches += shape.neurons;
    return ops;
}

std::vector<Fix16>
runSoftwareKernel(MlpTopology topo, const std::vector<Fix16> &hid_w,
                  const std::vector<Fix16> &out_w,
                  const std::vector<Fix16> &input)
{
    dtann_assert(hid_w.size() == static_cast<size_t>(topo.hidden) *
                     static_cast<size_t>(topo.inputs + 1),
                 "hidden weight size mismatch");
    dtann_assert(out_w.size() == static_cast<size_t>(topo.outputs) *
                     static_cast<size_t>(topo.hidden + 1),
                 "output weight size mismatch");
    dtann_assert(input.size() == static_cast<size_t>(topo.inputs),
                 "input arity mismatch");

    const Fix16 one = Fix16::fromDouble(1.0);
    std::vector<Fix16> hidden(static_cast<size_t>(topo.hidden));
    for (int j = 0; j < topo.hidden; ++j) {
        Acc24 acc;
        const Fix16 *w =
            &hid_w[static_cast<size_t>(j) *
                   static_cast<size_t>(topo.inputs + 1)];
        for (int i = 0; i < topo.inputs; ++i)
            acc = Acc24::hwAdd(acc, Acc24::fromFix16(Fix16::hwMul(
                                        w[i], input[static_cast<size_t>(i)])));
        acc = Acc24::hwAdd(
            acc, Acc24::fromFix16(Fix16::hwMul(w[topo.inputs], one)));
        hidden[static_cast<size_t>(j)] = logisticPwlFix(acc.toFix16Sat());
    }
    std::vector<Fix16> out(static_cast<size_t>(topo.outputs));
    for (int k = 0; k < topo.outputs; ++k) {
        Acc24 acc;
        const Fix16 *w =
            &out_w[static_cast<size_t>(k) *
                   static_cast<size_t>(topo.hidden + 1)];
        for (int j = 0; j < topo.hidden; ++j)
            acc = Acc24::hwAdd(acc, Acc24::fromFix16(Fix16::hwMul(
                                        w[j], hidden[static_cast<size_t>(j)])));
        acc = Acc24::hwAdd(
            acc, Acc24::fromFix16(Fix16::hwMul(w[topo.hidden], one)));
        out[static_cast<size_t>(k)] = logisticPwlFix(acc.toFix16Sat());
    }
    return out;
}

} // namespace dtann
