#include "cpu/simple_cpu.hh"

namespace dtann {

double
SimpleCpuModel::cyclesPerRow(MlpTopology topo) const
{
    KernelShape shape = KernelShape::of(topo);
    return static_cast<double>(shape.synapses) * cfg.cyclesPerSynapse +
        static_cast<double>(shape.neurons) * cfg.cyclesPerNeuron +
        cfg.cyclesPerRow;
}

CpuExecution
SimpleCpuModel::execute(MlpTopology topo) const
{
    CpuExecution e;
    e.cyclesPerRow = cyclesPerRow(topo);
    e.timePerRowNs = e.cyclesPerRow * 1e3 / cfg.clockMhz;
    e.avgPowerW = cfg.avgPowerW;
    e.energyPerRowNj = e.timePerRowNs * cfg.avgPowerW;
    return e;
}

double
SimpleCpuModel::energyRatioVs(double accel_energy_per_row_nj,
                              MlpTopology topo) const
{
    return execute(topo).energyPerRowNj / accel_energy_per_row_nj;
}

} // namespace dtann
