/**
 * @file
 * In-order CPU cycle/energy model (paper Table IV).
 *
 * Models the paper's baseline: an Intel Stealey (A110)-class
 * low-power in-order core at 90 nm, 800 MHz, running the trimmed
 * software kernel with a perfect 1-cycle L1 (the paper subtracts
 * the cache hierarchy to avoid biasing the comparison).
 *
 * Cycle accounting: the per-synapse inner loop compiles to ~8
 * Alpha-like instructions (2 loads, multiply, accumulate, address
 * updates, compare + branch). On a 2-issue in-order pipeline the
 * 4-cycle multiply latency and load-use dependencies limit it to
 * an effective CPI of ~2.3, i.e. ~18.5 cycles per synapse; neuron
 * and row overheads add the rest. These constants are calibrated
 * so the 90-10-10 network costs 19680 cycles/row, the paper's
 * Wattch/SimpleScalar measurement; power is the paper's measured
 * 2.78 W average, giving 68388 nJ/row at 800 MHz.
 */

#ifndef DTANN_CPU_SIMPLE_CPU_HH
#define DTANN_CPU_SIMPLE_CPU_HH

#include "cpu/kernel.hh"

namespace dtann {

/** Core parameters. */
struct CpuConfig
{
    double clockMhz = 800.0;
    double avgPowerW = 2.78;        ///< Wattch average, caches removed
    double cyclesPerSynapse = 18.5; ///< calibrated (see file comment)
    double cyclesPerNeuron = 35.0;  ///< sigmoid PWL + loop overheads
    double cyclesPerRow = 110.0;    ///< call/setup/row I/O overhead
};

/** Table IV row for one network topology. */
struct CpuExecution
{
    double cyclesPerRow;
    double timePerRowNs;
    double avgPowerW;
    double energyPerRowNj;
};

/** Cycle/energy model of the software baseline. */
class SimpleCpuModel
{
  public:
    explicit SimpleCpuModel(const CpuConfig &config = CpuConfig())
        : cfg(config)
    {
    }

    const CpuConfig &config() const { return cfg; }

    /** Cycles to process one input row of @p topo. */
    double cyclesPerRow(MlpTopology topo) const;

    /** Full Table IV characterization for @p topo. */
    CpuExecution execute(MlpTopology topo) const;

    /**
     * Energy ratio CPU / accelerator for one row (the paper's
     * ~1000x headline).
     */
    double energyRatioVs(double accel_energy_per_row_nj,
                         MlpTopology topo) const;

  private:
    CpuConfig cfg;
};

} // namespace dtann

#endif // DTANN_CPU_SIMPLE_CPU_HH
