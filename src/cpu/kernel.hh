/**
 * @file
 * The trimmed-down software ANN kernel (paper Section V).
 *
 * The paper compares the accelerator against the same computation
 * run as software on a low-power in-order core: a C loop nest
 * performing exactly the operations of the hardware version
 * (fixed-point MACs and the PWL sigmoid). This header provides
 * both the runnable kernel (used to validate functional
 * equivalence) and its operation/instruction counts (used by the
 * cycle model).
 */

#ifndef DTANN_CPU_KERNEL_HH
#define DTANN_CPU_KERNEL_HH

#include <vector>

#include "ann/mlp.hh"
#include "common/fixed_point.hh"

namespace dtann {

/** Dynamic operation counts of one input row. */
struct KernelOpCounts
{
    size_t multiplies = 0;
    size_t adds = 0;
    size_t loads = 0;
    size_t stores = 0;
    size_t branches = 0;
    size_t lutReads = 0;

    size_t
    total() const
    {
        return multiplies + adds + loads + stores + branches + lutReads;
    }
};

/** Synapse and neuron counts of a topology (bias included). */
struct KernelShape
{
    size_t synapses; ///< MAC iterations per row
    size_t neurons;  ///< sigmoid evaluations per row

    static KernelShape of(MlpTopology topo);
};

/** Operation counts of one forward row for @p topo. */
KernelOpCounts kernelOpsPerRow(MlpTopology topo);

/**
 * The runnable trimmed-down kernel: identical arithmetic to the
 * clean accelerator (used by tests to prove the software model
 * computes the same row outputs).
 */
std::vector<Fix16> runSoftwareKernel(MlpTopology topo,
                                     const std::vector<Fix16> &hid_w,
                                     const std::vector<Fix16> &out_w,
                                     const std::vector<Fix16> &input);

} // namespace dtann

#endif // DTANN_CPU_KERNEL_HH
