/**
 * @file
 * Ablation: full-adder implementation styles (9x NAND2 vs 28T
 * mirror adder with complex CMOS gates).
 *
 * The paper's injection framework exists precisely to "assess
 * different implementations of arithmetic operators"; this bench
 * compares transistor budget, defect masking, and the Fig 5
 * distribution divergence across the two styles.
 */

#include "bench_util.hh"
#include "circuit/evaluator.hh"
#include "common/json.hh"
#include "core/campaign.hh"
#include "core/cost_model.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"

using namespace dtann;

namespace {

/** Fraction of single transistor defects that change the adder's
 *  input/output function at all. */
double
maskedDefectFraction(FaStyle style, int trials, Rng &rng)
{
    Netlist nl = buildRippleAdder(4, style, true);
    int masked = 0;
    for (int t = 0; t < trials; ++t) {
        Injection inj = injectTransistorDefects(nl, 1, rng);
        Evaluator ev(nl, std::move(inj.faults));
        bool differs = false;
        // Two passes over all inputs so MEM effects surface.
        for (int pass = 0; pass < 2 && !differs; ++pass)
            for (uint64_t in = 0; in < 256 && !differs; ++in) {
                uint64_t a = in & 0xf, b = in >> 4;
                ev.setInputRange(0, 4, a);
                ev.setInputRange(4, 4, b);
                ev.evaluate();
                differs = ev.outputRange(0, 5) != a + b;
            }
        masked += differs ? 0 : 1;
    }
    return static_cast<double>(masked) / trials;
}

const char *
styleName(FaStyle s)
{
    return s == FaStyle::Nand9 ? "NAND9" : "Mirror";
}

} // namespace

int
main()
{
    benchBanner("Ablation: full-adder style (NAND9 vs mirror)",
                "Temam, ISCA 2012, Section III (operator variants)");

    int trials = scaled(600, 200);
    int reps = scaled(300, 100);
    Rng rng(experimentSeed());

    TextTable t({"style", "adder T/bit", "array transistors",
                 "array area mm^2", "masked 1-defect frac",
                 "fig5 TV @20 defects"});
    std::string styles_json;
    SimCounters sim;
    for (FaStyle style : {FaStyle::Nand9, FaStyle::Mirror}) {
        Netlist bit = buildRippleAdder(1, style, true);
        AcceleratorConfig cfg;
        cfg.faStyle = style;
        CostModel cm(cfg);
        double masked = maskedDefectFraction(style, trials, rng);
        Fig5Config f5cfg;
        f5cfg.op = Fig5Operator::Adder4;
        f5cfg.defects = 20;
        f5cfg.repetitions = reps;
        f5cfg.seed = experimentSeed() + static_cast<uint64_t>(style);
        f5cfg.style = style;
        Fig5Result f5 = runFig5(f5cfg);
        sim.merge(f5.sim);
        double tv = f5.trans.totalVariation(f5.none);
        t.addRow({styleName(style),
                  std::to_string(bit.transistorCount()),
                  std::to_string(cm.arrayTransistors()),
                  fmtDouble(cm.accelerator().areaMm2, 2),
                  fmtDouble(masked, 3), fmtDouble(tv, 4)});
        if (!styles_json.empty())
            styles_json += ",";
        styles_json += std::string("{\"style\":") +
            jsonString(styleName(style)) + ",\"adder_t_per_bit\":" +
            std::to_string(bit.transistorCount()) +
            ",\"array_transistors\":" +
            std::to_string(cm.arrayTransistors()) + ",\"area_mm2\":" +
            jsonNumber(cm.accelerator().areaMm2) +
            ",\"masked_defect_fraction\":" + jsonNumber(masked) +
            ",\"fig5_tv_at_20_defects\":" + jsonNumber(tv) + "}";
    }
    t.print(std::cout);
    maybeWriteJson(
        "ablation_fastyle",
        campaignEnvelope("ablation_fastyle",
                         "{\"trials\":" + std::to_string(trials) +
                             ",\"repetitions\":" +
                             std::to_string(reps) + "}",
                         experimentSeed(), sim,
                         "{\"styles\":[" + styles_json + "]}"));
    std::printf("\n(the cost model is calibrated at the NAND9 "
                "point; the mirror adder trades ~22%% fewer adder "
                "transistors for complex-gate fault behaviour)\n");
    return 0;
}
