/**
 * @file
 * Key-logic sensitivity: one transistor defect in the weight-write
 * decoder vs one in the array.
 *
 * The paper's Section II rationale in an experiment: array defects
 * are silenced by retraining, but "a faulty transistor within this
 * control logic would wreck the accelerator" — and retraining
 * cannot help, because every weight write keeps being misrouted.
 */

#include "ann/crossval.hh"
#include "bench_util.hh"
#include "core/injector.hh"
#include "core/keylogic.hh"
#include "data/synth_uci.hh"

using namespace dtann;

namespace {

/** ForwardModel whose weight writes pass through a decoder. */
class DecodedAccelerator : public ForwardModel
{
  public:
    DecodedAccelerator(Accelerator &a, WriteDecoder &d)
        : accel(a), decoder(d)
    {
    }

    MlpTopology topology() const override { return accel.topology(); }

    void
    setWeights(const MlpWeights &w) override
    {
        writeWeightsThroughDecoder(accel, w, decoder);
    }

    Activations
    forward(std::span<const double> input) override
    {
        return accel.forward(input);
    }

    std::vector<Activations>
    forwardBatch(std::span<const std::vector<double>> inputs) override
    {
        return accel.forwardBatch(inputs);
    }

  private:
    Accelerator &accel;
    WriteDecoder &decoder;
};

} // namespace

int
main()
{
    benchBanner("Key-logic sensitivity: decoder vs array defects",
                "Temam, ISCA 2012, Section II");

    int reps = scaled(60, 12);
    Rng rng(experimentSeed());

    const UciTaskSpec &spec = uciTask("iris");
    Dataset ds = makeSyntheticTask(spec, rng, fullScale() ? 0 : 240);

    AcceleratorConfig cfg;
    cfg.inputs = 16;
    cfg.hidden = 6;
    cfg.outputs = 3;
    MlpTopology logical{spec.attributes, 6, spec.classes};
    Hyper hyper{6, scaled(100, 40), 0.2, 0.1};
    Hyper retrain = hyper;
    retrain.epochs = std::max(10, hyper.epochs / 3);

    RunningStat clean_acc, array_acc, decoder_acc;
    int decoder_wrecked = 0;
    for (int rep = 0; rep < reps; ++rep) {
        // Clean reference.
        Accelerator a0(cfg, logical);
        WriteDecoder d0(cfg.hidden + cfg.outputs);
        DecodedAccelerator m0(a0, d0);
        Rng t0 = rng.split();
        MlpWeights w0 = Trainer(hyper).train(m0, ds, t0);
        Rng c0 = rng.split();
        clean_acc.add(
            crossValidate(m0, ds, 2, Trainer(retrain), c0, &w0)
                .meanAccuracy);

        // One transistor defect in the ARRAY, retrained.
        Accelerator a1(cfg, logical);
        WriteDecoder d1(cfg.hidden + cfg.outputs);
        DecodedAccelerator m1(a1, d1);
        Rng t1 = rng.split();
        MlpWeights w1 = Trainer(hyper).train(m1, ds, t1);
        Rng i1 = rng.split();
        DefectInjector inj(a1, SitePool::inputAndHidden());
        inj.inject(1, i1);
        Rng c1 = rng.split();
        array_acc.add(
            crossValidate(m1, ds, 2, Trainer(retrain), c1, &w1)
                .meanAccuracy);

        // One transistor defect in the write DECODER, retrained
        // (through the broken write path, as it would be on die).
        Accelerator a2(cfg, logical);
        WriteDecoder d2(cfg.hidden + cfg.outputs);
        DecodedAccelerator m2(a2, d2);
        Rng t2 = rng.split();
        MlpWeights w2 = Trainer(hyper).train(m2, ds, t2);
        Rng i2 = rng.split();
        d2.inject(1, i2);
        Rng c2 = rng.split();
        double acc =
            crossValidate(m2, ds, 2, Trainer(retrain), c2, &w2)
                .meanAccuracy;
        decoder_acc.add(acc);
        if (acc < 0.9 * clean_acc.mean())
            ++decoder_wrecked;
    }

    TextTable t({"configuration", "mean accuracy", "min accuracy"});
    t.addRow({"clean", fmtDouble(clean_acc.mean(), 3),
              fmtDouble(clean_acc.min(), 3)});
    t.addRow({"1 array defect + retrain", fmtDouble(array_acc.mean(), 3),
              fmtDouble(array_acc.min(), 3)});
    t.addRow({"1 decoder defect + retrain",
              fmtDouble(decoder_acc.mean(), 3),
              fmtDouble(decoder_acc.min(), 3)});
    t.print(std::cout);
    std::printf("\ndecoder defects wrecking the accelerator "
                "(accuracy < 90%% of clean): %d/%d\n",
                decoder_wrecked, reps);
    std::printf("(this is why the interface/decoder is 'key logic' "
                "that must be defect-free — it is only %.1f%% of the "
                "area, so hardening it is cheap)\n", 0.6);
    return 0;
}
