/**
 * @file
 * Tables I and II: hyper-parameter space and per-task best
 * hyper-parameters found by cross-validated grid search.
 *
 * The data sets are synthetic stand-ins with the paper's
 * dimensions, so the selected optima need not equal Table II's —
 * the harness reports both side by side.
 */

#include "ann/hyper.hh"
#include "bench_util.hh"
#include "data/synth_uci.hh"

using namespace dtann;

int
main()
{
    benchBanner("Tables I & II: hyper-parameter search",
                "Temam, ISCA 2012, Tables I and II");

    HyperSpace space =
        fullScale() ? HyperSpace::paperTableI() : HyperSpace::reduced();
    std::printf("Table I search space (%s): hidden %d..%d, epochs "
                "%d..%d, lr %.1f..%.1f, momentum %.1f..%.1f -> %zu "
                "points\n\n",
                fullScale() ? "paper" : "reduced", space.hidden.front(),
                space.hidden.back(), space.epochs.front(),
                space.epochs.back(), space.learningRate.front(),
                space.learningRate.back(), space.momentum.front(),
                space.momentum.back(), space.size());

    int folds = scaled(10, 3);
    size_t rows = fullScale() ? 0 : 220;
    Rng master(experimentSeed());

    TextTable table({"task", "in", "out", "lr", "epochs", "hidden",
                     "accuracy", "paper(lr,epochs,hidden)"});
    for (const UciTaskSpec &spec : uciTasks()) {
        Rng task_rng = master.split();
        Dataset ds = makeSyntheticTask(spec, task_rng, rows);
        HyperResult r = gridSearch(ds, space, folds, task_rng);
        char paper[48];
        std::snprintf(paper, sizeof(paper), "%.1f, %d, %d",
                      spec.learningRate, spec.epochs, spec.hidden);
        table.addRow({spec.name, std::to_string(spec.attributes),
                      std::to_string(spec.classes),
                      fmtDouble(r.best.learningRate, 1),
                      std::to_string(r.best.epochs),
                      std::to_string(r.best.hidden),
                      fmtDouble(r.accuracy, 3), paper});
    }
    table.print(std::cout);
    return 0;
}
