/**
 * @file
 * Head-to-head defect mitigation: accuracy vs defect count for the
 * six strategies (noop / retrain / bypass / remap / clamp /
 * replicate), the measured BIST diagnosis coverage, and the
 * accuracy-vs-area/energy Pareto standings.
 *
 * Extends the paper beyond blind tolerance (Section VI-C retraining
 * and spare output neurons): a BIST pass locates defective units,
 * and the map drives targeted bypass (fault-aware pruning),
 * output-row remapping onto spares, or replication + median voting
 * across spares; learned activation clamping filters exceptional
 * values without any diagnosis at all. Defects are drawn over the
 * whole array — including the output layer, the Fig 11 weak spot —
 * and every strategy of a cell faces identical physical defects.
 * Each strategy's hardware budget is costed from the core
 * cost-model netlists, so the closing table reports what a point of
 * accuracy costs in array area and per-row energy.
 *
 * Thin wrapper over the built-in "mitigation" scenario spec; this
 * bench and `dtann_campaign --builtin mitigation` run the identical
 * campaign.
 */

#include <chrono>

#include "bench_util.hh"
#include "service/builtin_specs.hh"
#include "service/runner.hh"

using namespace dtann;

int
main()
{
    benchBanner("Mitigation head-to-head: " + strategyNameList(),
                "extension of Temam, ISCA 2012, Section VI-C "
                "(diagnosis-driven mitigation + Pareto costing)");

    ScenarioSpec spec = builtinSpec("mitigation", fullScale());
    applyEnvOverrides(spec);
    const MitigationConfig &cfg = spec.mitigation;

    spec.runConfig().onCellDone = [](const CellReport &r) {
        if (r.cellsDone % 25 == 0 || r.cellsDone == r.cellsTotal)
            std::fprintf(stderr, "  [%zu/%zu] %s defects=%d rep=%d\n",
                         r.cellsDone, r.cellsTotal, r.task.c_str(),
                         r.defects, r.rep);
    };

    auto start = std::chrono::steady_clock::now();
    ScenarioResult result = runScenario(spec);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    std::printf("campaign wall clock: %.2f s (%d worker threads)\n\n",
                secs, ThreadPool::resolveThreads(cfg.threads));
    const std::vector<MitigationCurve> &curves = result.mitigation;

    // One table per task: rows = defect counts, one accuracy column
    // per strategy, plus the bypass/remap diagnosis coverage.
    for (const std::string &task : cfg.tasks) {
        std::vector<const MitigationCurve *> per_strategy;
        for (const MitigationCurve &c : curves)
            if (c.task == task)
                per_strategy.push_back(&c);

        std::printf("task %s:\n", task.c_str());
        std::vector<std::string> cols{"defects"};
        for (const MitigationCurve *c : per_strategy)
            cols.push_back(strategyName(c->strategy));
        cols.push_back("bist coverage");
        TextTable t(cols);
        for (size_t d = 0; d < cfg.defectCounts.size(); ++d) {
            std::vector<std::string> row{
                std::to_string(cfg.defectCounts[d])};
            double coverage = 1.0;
            for (const MitigationCurve *c : per_strategy) {
                row.push_back(fmtDouble(c->points[d].accuracy, 3));
                if (c->strategy == Strategy::BypassFaulty)
                    coverage = c->points[d].coverage;
            }
            row.push_back(fmtDouble(coverage, 3));
            t.addRow(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }

    // Headline: does each strategy earn its keep over the paper's
    // blind retraining once defects are present (>= 2 injected)?
    std::printf("vs retrain-only at >=2 defects:");
    bool first = true;
    for (Strategy s : cfg.strategies) {
        if (s == Strategy::NoOp || s == Strategy::RetrainOnly)
            continue;
        int wins = 0, cells = 0;
        double gain = 0.0;
        for (const std::string &task : cfg.tasks) {
            const MitigationCurve *retrain = nullptr, *cand = nullptr;
            for (const MitigationCurve &c : curves) {
                if (c.task != task)
                    continue;
                if (c.strategy == Strategy::RetrainOnly)
                    retrain = &c;
                if (c.strategy == s)
                    cand = &c;
            }
            if (!retrain || !cand)
                continue;
            for (size_t d = 0; d < cfg.defectCounts.size(); ++d) {
                if (cfg.defectCounts[d] < 2)
                    continue;
                ++cells;
                wins += cand->points[d].accuracy >=
                    retrain->points[d].accuracy;
                gain += cand->points[d].accuracy -
                    retrain->points[d].accuracy;
            }
        }
        if (cells == 0)
            continue;
        std::printf("%s %s >= on %d/%d points (mean gain %+.3f)",
                    first ? "" : ",", strategyName(s), wins, cells,
                    gain / cells);
        first = false;
    }
    std::printf("\n");
    std::printf("(the paper's retraining already silences most "
                "input/hidden-layer defects; the map pays off on the "
                "output-layer faults retraining cannot reach, bypass "
                "converts undiagnosed heavy faults into clean zeros, "
                "and clamp caps them without any diagnosis)\n\n");

    // Pareto standings: what a strategy's accuracy (mean over the
    // defective points) costs in provisioned hardware. Area/energy
    // overheads are fractions of the stock array; the BIST budget
    // is one-time configuration work, reported per unit.
    for (const std::string &task : cfg.tasks) {
        std::printf("task %s accuracy-vs-cost Pareto:\n", task.c_str());
        TextTable t({"strategy", "pareto acc", "area ovh %",
                     "energy ovh %", "spare rows", "bist vec/unit"});
        for (const MitigationCurve &c : curves) {
            if (c.task != task)
                continue;
            t.addRow({strategyName(c.strategy),
                      fmtDouble(c.paretoAccuracy, 3),
                      fmtDouble(100.0 * c.cost.areaOverhead, 2),
                      fmtDouble(100.0 * c.cost.energyOverhead, 2),
                      std::to_string(c.cost.spareRows),
                      std::to_string(c.cost.bistVectorsPerUnit)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    maybeWriteJson(result.name, result.json);
    return 0;
}
