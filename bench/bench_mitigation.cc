/**
 * @file
 * Head-to-head defect mitigation: accuracy vs defect count for the
 * four strategies (noop / retrain / bypass / remap), plus the
 * measured BIST diagnosis coverage.
 *
 * Extends the paper beyond blind tolerance (Section VI-C retraining
 * and spare output neurons): a BIST pass locates defective units,
 * and the map drives targeted bypass (fault-aware pruning) or
 * output-row remapping onto spares. Defects are drawn over the
 * whole array — including the output layer, the Fig 11 weak spot —
 * and every strategy of a cell faces identical physical defects.
 *
 * Thin wrapper over the built-in "mitigation" scenario spec; this
 * bench and `dtann_campaign --builtin mitigation` run the identical
 * campaign.
 */

#include <chrono>

#include "bench_util.hh"
#include "service/builtin_specs.hh"
#include "service/runner.hh"

using namespace dtann;

int
main()
{
    benchBanner("Mitigation head-to-head: noop/retrain/bypass/remap",
                "extension of Temam, ISCA 2012, Section VI-C "
                "(diagnosis-driven mitigation)");

    ScenarioSpec spec = builtinSpec("mitigation", fullScale());
    applyEnvOverrides(spec);
    const MitigationConfig &cfg = spec.mitigation;

    spec.runConfig().onCellDone = [](const CellReport &r) {
        if (r.cellsDone % 25 == 0 || r.cellsDone == r.cellsTotal)
            std::fprintf(stderr, "  [%zu/%zu] %s defects=%d rep=%d\n",
                         r.cellsDone, r.cellsTotal, r.task.c_str(),
                         r.defects, r.rep);
    };

    auto start = std::chrono::steady_clock::now();
    ScenarioResult result = runScenario(spec);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    std::printf("campaign wall clock: %.2f s (%d worker threads)\n\n",
                secs, ThreadPool::resolveThreads(cfg.threads));
    const std::vector<MitigationCurve> &curves = result.mitigation;

    // One table per task: rows = defect counts, one accuracy column
    // per strategy, plus the bypass/remap diagnosis coverage.
    for (const std::string &task : cfg.tasks) {
        std::vector<const MitigationCurve *> per_strategy;
        for (const MitigationCurve &c : curves)
            if (c.task == task)
                per_strategy.push_back(&c);

        std::printf("task %s:\n", task.c_str());
        std::vector<std::string> cols{"defects"};
        for (const MitigationCurve *c : per_strategy)
            cols.push_back(strategyName(c->strategy));
        cols.push_back("bist coverage");
        TextTable t(cols);
        for (size_t d = 0; d < cfg.defectCounts.size(); ++d) {
            std::vector<std::string> row{
                std::to_string(cfg.defectCounts[d])};
            double coverage = 1.0;
            for (const MitigationCurve *c : per_strategy) {
                row.push_back(fmtDouble(c->points[d].accuracy, 3));
                if (c->strategy == Strategy::BypassFaulty)
                    coverage = c->points[d].coverage;
            }
            row.push_back(fmtDouble(coverage, 3));
            t.addRow(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }

    // Headline: does the defect map earn its keep once defects are
    // present (>= 2 injected)?
    int bypass_wins = 0, remap_wins = 0, cells = 0;
    double bypass_gain = 0.0, remap_gain = 0.0;
    for (const std::string &task : cfg.tasks) {
        const MitigationCurve *retrain = nullptr, *bypass = nullptr,
                              *remap = nullptr;
        for (const MitigationCurve &c : curves) {
            if (c.task != task)
                continue;
            if (c.strategy == Strategy::RetrainOnly)
                retrain = &c;
            if (c.strategy == Strategy::BypassFaulty)
                bypass = &c;
            if (c.strategy == Strategy::RemapToSpares)
                remap = &c;
        }
        for (size_t d = 0; d < cfg.defectCounts.size(); ++d) {
            if (cfg.defectCounts[d] < 2)
                continue;
            ++cells;
            bypass_wins += bypass->points[d].accuracy >=
                retrain->points[d].accuracy;
            remap_wins += remap->points[d].accuracy >=
                retrain->points[d].accuracy;
            bypass_gain += bypass->points[d].accuracy -
                retrain->points[d].accuracy;
            remap_gain += remap->points[d].accuracy -
                retrain->points[d].accuracy;
        }
    }
    std::printf("vs retrain-only at >=2 defects: bypass >= on %d/%d "
                "points (mean gain %+.3f), remap >= on %d/%d points "
                "(mean gain %+.3f)\n",
                bypass_wins, cells, bypass_gain / cells, remap_wins,
                cells, remap_gain / cells);
    std::printf("(the paper's retraining already silences most "
                "input/hidden-layer defects; the map pays off on the "
                "output-layer faults retraining cannot reach, and "
                "bypass converts undiagnosed heavy faults into clean "
                "zeros)\n");

    maybeWriteJson(result.name, result.json);
    return 0;
}
