/**
 * @file
 * Ablation: spatial expansion vs partial time-multiplexing
 * (paper Section II and the Fig 3 add-ons).
 *
 * Two claims are quantified: (1) a time-multiplexed mapping
 * multiplies the effective defect count by the multiplexing
 * factor; (2) larger-than-array networks pay a pass-count latency
 * and weight-reload traffic penalty.
 */

#include "ann/fixed_mlp.hh"
#include "bench_util.hh"
#include "common/json.hh"
#include "core/campaign.hh"
#include "core/cost_model.hh"
#include "core/injector.hh"
#include "core/timemux.hh"

using namespace dtann;

namespace {

/** Fraction of random rows whose outputs deviate from clean. */
double
deviationRate(ForwardModel &model, ForwardModel &ref, int inputs,
              Rng &rng, int rows = 60)
{
    int deviating = 0;
    for (int t = 0; t < rows; ++t) {
        std::vector<double> in(static_cast<size_t>(inputs));
        for (double &v : in)
            v = rng.nextDouble();
        if (model.forward(in).output() != ref.forward(in).output())
            ++deviating;
    }
    return static_cast<double>(deviating) / rows;
}

} // namespace

int
main()
{
    benchBanner("Ablation: spatial expansion vs time-multiplexing",
                "Temam, ISCA 2012, Section II");

    std::string mappings_json;

    // Latency/traffic penalty of time-multiplexing (MNIST-class
    // 784-input network on the 90-input array).
    {
        AcceleratorConfig cfg; // 90-10-10
        Accelerator accel(cfg, {90, 10, 10});
        TextTable t({"logical network", "passes/row", "weight words/row",
                     "mux factor"});
        for (MlpTopology topo :
             {MlpTopology{90, 10, 10}, MlpTopology{90, 40, 10},
              MlpTopology{784, 10, 10}, MlpTopology{784, 40, 10}}) {
            TimeMuxedMlp mux(accel, topo);
            char name[32];
            std::snprintf(name, sizeof(name), "%d-%d-%d", topo.inputs,
                          topo.hidden, topo.outputs);
            t.addRow({name, std::to_string(mux.passesPerRow()),
                      std::to_string(mux.weightWordsPerRow()),
                      std::to_string(mux.muxFactor())});
            if (!mappings_json.empty())
                mappings_json += ",";
            mappings_json += std::string("{\"network\":") +
                jsonString(name) + ",\"passes_per_row\":" +
                std::to_string(mux.passesPerRow()) +
                ",\"weight_words_per_row\":" +
                std::to_string(mux.weightWordsPerRow()) +
                ",\"mux_factor\":" + std::to_string(mux.muxFactor()) +
                "}";
        }
        t.print(std::cout);
        std::printf("(spatially expanded fit = 2 passes; paper: a "
                    "network N times larger needs at least N times "
                    "the row delay)\n\n");
    }

    // Defect multiplication: same physical defect, spatial vs
    // time-multiplexed mapping.
    {
        int reps = scaled(60, 20);
        Rng rng(experimentSeed());
        AcceleratorConfig small;
        small.inputs = 12;
        small.hidden = 4;
        small.outputs = 3;

        MlpTopology fit{12, 4, 3};    // spatial: 1 logical per phys
        MlpTopology big{12, 12, 3};   // mux factor (12+3)/4 = 4

        RunningStat spatial_rate, mux_rate;
        for (int r = 0; r < reps; ++r) {
            MlpWeights wfit(fit);
            MlpWeights wbig(big);
            Rng wr = rng.split();
            wfit.initRandom(wr, 1.0);
            wbig.initRandom(wr, 1.0);

            Accelerator a1(small, fit);
            a1.setWeights(wfit);
            FixedMlp ref1(fit);
            ref1.setWeights(wfit);
            DefectInjector inj1(a1, SitePool::inputAndHidden());
            Rng ir = rng.split();
            inj1.inject(3, ir);
            Rng dr = rng.split();
            spatial_rate.add(deviationRate(a1, ref1, 12, dr));

            Accelerator a2(small, {12, 4, 3});
            TimeMuxedMlp mux(a2, big);
            mux.setWeights(wbig);
            FixedMlp ref2(big);
            ref2.setWeights(wbig);
            DefectInjector inj2(a2, SitePool::inputAndHidden());
            Rng ir2 = rng.split();
            inj2.inject(3, ir2);
            Rng dr2 = rng.split();
            mux_rate.add(deviationRate(mux, ref2, 12, dr2));
        }
        std::printf("row-deviation rate with 3 physical defects "
                    "(%d repetitions):\n",
                    reps);
        std::printf("  spatially expanded mapping : %.3f\n",
                    spatial_rate.mean());
        std::printf("  time-multiplexed (factor 4): %.3f\n",
                    mux_rate.mean());
        std::printf("(paper: a defect at a hardware neuron affects "
                    "all application neurons mapped to it, "
                    "multiplying the effective defect count)\n");
        maybeWriteJson(
            "ablation_timemux",
            campaignEnvelope(
                "ablation_timemux",
                "{\"repetitions\":" + std::to_string(reps) +
                    ",\"defects\":3}",
                experimentSeed(), SimCounters(),
                "{\"mappings\":[" + mappings_json +
                    "],\"deviation\":{\"spatial\":" +
                    jsonNumber(spatial_rate.mean()) +
                    ",\"time_muxed\":" + jsonNumber(mux_rate.mean()) +
                    "}}"));
    }
    return 0;
}
