/**
 * @file
 * Fig 10: accuracy vs number of defects in the input and hidden
 * layers, after retraining, for the 10 benchmark tasks.
 *
 * Thin wrapper over the built-in "fig10" scenario spec (quick mode
 * trades repetition count, fold count, dataset size and epoch
 * budget for runtime while keeping the paper's shape: flat accuracy
 * up to ~12 defects, gradual degradation beyond); this bench and
 * `dtann_campaign --builtin fig10` run the identical campaign.
 */

#include <chrono>

#include "bench_util.hh"
#include "service/builtin_specs.hh"
#include "service/runner.hh"

using namespace dtann;

int
main()
{
    benchBanner("Fig 10: accuracy vs # defects (input+hidden layers)",
                "Temam, ISCA 2012, Figure 10");

    ScenarioSpec spec = builtinSpec("fig10", fullScale());
    applyEnvOverrides(spec);

    // Progress heartbeat on stderr so paper-scale runs (hours) are
    // observably alive; cheap enough to leave on at quick scale.
    spec.runConfig().onCellDone = [](const CellReport &r) {
        if (r.cellsDone % 50 == 0 || r.cellsDone == r.cellsTotal)
            std::fprintf(stderr, "  [%zu/%zu] %s defects=%d rep=%d\n",
                         r.cellsDone, r.cellsTotal, r.task.c_str(),
                         r.defects, r.rep);
    };

    auto start = std::chrono::steady_clock::now();
    ScenarioResult result = runScenario(spec);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    std::printf("campaign wall clock: %.2f s (%d worker threads; "
                "set DTANN_THREADS to change — results are "
                "bit-identical for any count)\n",
                secs,
                ThreadPool::resolveThreads(spec.runConfig().threads));

    const std::vector<Fig10Curve> &curves = result.fig10;

    // Print one combined series: rows = defect counts, one column
    // per task (the paper's figure layout).
    std::vector<std::string> cols{"defects"};
    for (const auto &c : curves)
        cols.push_back(c.task);
    std::vector<std::vector<double>> points;
    for (size_t p = 0; p < curves[0].points.size(); ++p) {
        std::vector<double> row{
            static_cast<double>(curves[0].points[p].defects)};
        for (const auto &c : curves)
            row.push_back(c.points[p].accuracy);
        points.push_back(std::move(row));
    }
    printSeries(std::cout, "accuracy after retraining vs # defects",
                cols, points);

    // Headline checks from the paper's text.
    int tolerant_at_12 = 0;
    for (const auto &c : curves) {
        double base = c.points[0].accuracy;
        double at12 = base;
        for (const auto &pt : c.points)
            if (pt.defects <= 12)
                at12 = pt.accuracy;
        if (at12 >= base - 0.10)
            ++tolerant_at_12;
    }
    std::printf("tasks within 0.10 of baseline at <=12 defects: "
                "%d/%zu (paper: all applications tolerate up to 12 "
                "defects)\n",
                tolerant_at_12, curves.size());

    maybeWriteJson(result.name, result.json);
    return 0;
}
