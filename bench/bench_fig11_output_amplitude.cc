/**
 * @file
 * Fig 11: accuracy vs error amplitude for single defects in the
 * output layer's adders and activation functions.
 *
 * Thin wrapper over the built-in "fig11" scenario spec; this bench
 * and `dtann_campaign --builtin fig11` run the identical campaign.
 */

#include "bench_util.hh"
#include "service/builtin_specs.hh"
#include "service/runner.hh"

using namespace dtann;

int
main()
{
    benchBanner("Fig 11: accuracy vs output-layer error amplitude",
                "Temam, ISCA 2012, Figure 11");

    ScenarioSpec spec = builtinSpec("fig11", fullScale());
    applyEnvOverrides(spec);
    ScenarioResult result = runScenario(spec);
    const std::vector<Fig11Curve> &curves = result.fig11;

    for (const auto &c : curves) {
        std::vector<std::vector<double>> points;
        for (const auto &[amp, acc] : c.binAccuracy)
            points.push_back({amp, acc});
        printSeries(std::cout,
                    "task " + c.task +
                        ": accuracy vs mean error amplitude "
                        "(log-binned)",
                    {"amplitude", "accuracy"}, points);
    }

    // Headline check: for small amplitudes accuracy stays high;
    // the sensitivity to large amplitudes is task-dependent.
    int low_amp_ok = 0, low_amp_total = 0;
    for (const auto &c : curves) {
        for (const auto &s : c.samples) {
            if (s.amplitude < 0.1) {
                ++low_amp_total;
                double base = 0.0;
                for (const auto &s2 : c.samples)
                    base = std::max(base, s2.accuracy);
                if (s.accuracy >= base - 0.15)
                    ++low_amp_ok;
            }
        }
    }
    std::printf("low-amplitude (<0.1) faulty networks within 0.15 "
                "of task best: %d/%d\n",
                low_amp_ok, low_amp_total);
    std::printf("(paper: accuracy remains high while the amplitude "
                "cannot sway the class; some tasks are sensitive "
                "even to tiny errors)\n");

    maybeWriteJson(result.name, result.json);
    return 0;
}
