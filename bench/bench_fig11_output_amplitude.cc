/**
 * @file
 * Fig 11: accuracy vs error amplitude for single defects in the
 * output layer's adders and activation functions.
 */

#include "bench_util.hh"
#include "core/campaign.hh"

using namespace dtann;

int
main()
{
    benchBanner("Fig 11: accuracy vs output-layer error amplitude",
                "Temam, ISCA 2012, Figure 11");

    Fig11Config cfg;
    cfg.seed = experimentSeed();
    if (fullScale()) {
        cfg.repetitions = 100;
        cfg.folds = 10;
        cfg.rows = 0;
        cfg.epochScale = 1.0;
        cfg.retrainScale = 0.25;
    } else {
        cfg.tasks = {"iris", "ionosphere", "robot", "wine"};
        cfg.repetitions = 12;
        cfg.folds = 2;
        cfg.rows = 300;
        cfg.epochScale = 0.3;
        cfg.retrainScale = 0.3;
    }

    auto curves = runFig11(cfg);
    for (const auto &c : curves) {
        std::vector<std::vector<double>> points;
        for (const auto &[amp, acc] : c.binAccuracy)
            points.push_back({amp, acc});
        printSeries(std::cout,
                    "task " + c.task +
                        ": accuracy vs mean error amplitude "
                        "(log-binned)",
                    {"amplitude", "accuracy"}, points);
    }

    // Headline check: for small amplitudes accuracy stays high;
    // the sensitivity to large amplitudes is task-dependent.
    int low_amp_ok = 0, low_amp_total = 0;
    for (const auto &c : curves) {
        for (const auto &s : c.samples) {
            if (s.amplitude < 0.1) {
                ++low_amp_total;
                double base = 0.0;
                for (const auto &s2 : c.samples)
                    base = std::max(base, s2.accuracy);
                if (s.accuracy >= base - 0.15)
                    ++low_amp_ok;
            }
        }
    }
    std::printf("low-amplitude (<0.1) faulty networks within 0.15 "
                "of task best: %d/%d\n",
                low_amp_ok, low_amp_total);
    std::printf("(paper: accuracy remains high while the amplitude "
                "cannot sway the class; some tasks are sensitive "
                "even to tiny errors)\n");

    maybeWriteJson("fig11", toJson(curves));
    return 0;
}
