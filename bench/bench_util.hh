/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures and prints the same rows/series the paper reports.
 * Campaign sizes default to a scaled-down "quick" configuration
 * that preserves the shape of every result; DTANN_FULL=1 switches
 * to paper scale (see EXPERIMENTS.md).
 */

#ifndef DTANN_BENCH_BENCH_UTIL_HH
#define DTANN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "common/env.hh"
#include "common/table.hh"

namespace dtann {

/** Print the standard bench banner and log the active DTANN_* knobs
 *  (so JSON exports are reproducible from the log alone). */
inline void
benchBanner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "==========================================================\n"
              << what << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "scale: " << (fullScale() ? "FULL (paper)" : "quick")
              << " (set DTANN_FULL=1 for paper scale), seed "
              << experimentSeed() << "\n"
              << "==========================================================\n";
    env::dump();
}

} // namespace dtann

#endif // DTANN_BENCH_BENCH_UTIL_HH
