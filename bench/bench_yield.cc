/**
 * @file
 * Effective yield vs defect density.
 *
 * Extends the paper's motivation quantitatively: combine a measured
 * Fig 10 accuracy-vs-defects curve with a Poisson defect model to
 * compare the defect-tolerant array's effective yield against a
 * conventional circuit of the same 9.02 mm^2 area that dies on its
 * first defect.
 */

#include "bench_util.hh"
#include "common/json.hh"
#include "core/cost_model.hh"
#include "core/yield.hh"

using namespace dtann;

int
main()
{
    benchBanner("Effective yield vs defect density",
                "Temam, ISCA 2012, Section I motivation (Borkar; "
                "Alam et al.)");

    // Measure one tolerance curve (vehicle: shows the cliff).
    Fig10Config cfg;
    cfg.seed = experimentSeed();
    cfg.tasks = {"vehicle"};
    cfg.defectCounts = {0, 12, 27, 54, 108};
    cfg.repetitions = scaled(20, 2);
    cfg.folds = scaled(10, 2);
    cfg.rows = fullScale() ? 0 : 300;
    cfg.epochScale = fullScale() ? 1.0 : 0.3;
    cfg.retrainScale = 0.3;
    Fig10Curve curve = runFig10(cfg).front();

    std::printf("accuracy curve (task %s):", curve.task.c_str());
    for (const auto &p : curve.points)
        std::printf("  %d:%.3f", p.defects, p.accuracy);
    std::printf("\n\n");

    CostModel cm((AcceleratorConfig()));
    double area = cm.accelerator().areaMm2;
    double threshold = 0.9 * curve.points.front().accuracy;
    std::printf("die area %.2f mm^2, acceptance threshold %.3f "
                "(90%% of clean accuracy)\n\n",
                area, threshold);

    TextTable t({"defects/cm^2", "mean defects/die", "classic yield",
                 "effective yield", "E[accuracy]"});
    std::string points_json;
    for (double density : {10.0, 50.0, 100.0, 300.0, 600.0, 1200.0}) {
        YieldPoint y = effectiveYield(curve, area, density, threshold);
        t.addRow({fmtDouble(density, 0), fmtDouble(y.meanDefects, 2),
                  fmtDouble(y.classicYield, 4),
                  fmtDouble(y.effectiveYield, 4),
                  fmtDouble(y.expectedAccuracy, 3)});
        if (!points_json.empty())
            points_json += ",";
        points_json += "{\"density\":" + jsonNumber(density) +
            ",\"mean_defects\":" + jsonNumber(y.meanDefects) +
            ",\"classic_yield\":" + jsonNumber(y.classicYield) +
            ",\"effective_yield\":" + jsonNumber(y.effectiveYield) +
            ",\"expected_accuracy\":" + jsonNumber(y.expectedAccuracy) +
            "}";
    }
    t.print(std::cout);
    maybeWriteJson(
        "yield",
        campaignEnvelope(
            "yield", cfg.toJson(), cfg.seed, curve.sim,
            "{\"area_mm2\":" + jsonNumber(area) + ",\"threshold\":" +
                jsonNumber(threshold) + ",\"accuracy_curve\":" +
                curve.toJson() + ",\"points\":[" + points_json +
                "]}"));
    std::printf("\n(classic yield = P(zero defects): what a "
                "defect-intolerant custom circuit of equal area "
                "would yield; the gap is the paper's argument for "
                "intrinsically defect-tolerant accelerators. The "
                "accuracy curve is measured up to %d defects and "
                "clamped beyond, so effective yield at the highest "
                "densities is optimistic.)\n",
                curve.points.back().defects);
    return 0;
}
