/**
 * @file
 * Ablation: adder architecture (ripple-carry vs carry-select).
 *
 * The injection framework exists to "assess different neural
 * network organizations and operators"; this bench quantifies the
 * classic latency/area/fault-surface trade-off between the two
 * adder architectures used for the 24-bit accumulation stages.
 */

#include "bench_util.hh"
#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"

using namespace dtann;

namespace {

/** Fraction of single transistor defects changing the function. */
double
observableDefectFraction(const Netlist &nl, int trials, Rng &rng,
                         int width)
{
    int observable = 0;
    uint64_t mask = (1ull << width) - 1;
    for (int t = 0; t < trials; ++t) {
        Injection inj = injectTransistorDefects(nl, 1, rng);
        Evaluator ev(nl, std::move(inj.faults));
        bool differs = false;
        Rng vec_rng(t);
        for (int pass = 0; pass < 2 && !differs; ++pass) {
            for (int v = 0; v < 200 && !differs; ++v) {
                uint64_t a = vec_rng.nextUint(mask + 1);
                uint64_t b = vec_rng.nextUint(mask + 1);
                ev.setInputRange(0, static_cast<size_t>(width), a);
                ev.setInputRange(static_cast<size_t>(width),
                                 static_cast<size_t>(width), b);
                ev.evaluate();
                uint64_t expect = (a + b) & ((mask << 1) | 1);
                differs = ev.outputRange(
                              0, static_cast<size_t>(width) + 1) !=
                    expect;
            }
        }
        observable += differs ? 1 : 0;
    }
    return static_cast<double>(observable) / trials;
}

} // namespace

int
main()
{
    benchBanner("Ablation: adder architecture (ripple vs carry-select)",
                "Temam, ISCA 2012, Section III (operator studies)");

    int trials = scaled(500, 150);
    Rng rng(experimentSeed());
    constexpr int width = 24; // the accumulator stages

    Netlist ripple = buildRippleAdder(width, FaStyle::Nand9, true);
    Netlist select = buildCarrySelectAdder(width, 4, FaStyle::Nand9,
                                           true);

    TextTable t({"architecture", "transistors", "depth (gates)",
                 "observable 1-defect frac"});
    t.addRow({"ripple-carry", std::to_string(ripple.transistorCount()),
              std::to_string(ripple.depth()),
              fmtDouble(observableDefectFraction(ripple, trials, rng,
                                                 width),
                        3)});
    t.addRow({"carry-select/4",
              std::to_string(select.transistorCount()),
              std::to_string(select.depth()),
              fmtDouble(observableDefectFraction(select, trials, rng,
                                                 width),
                        3)});
    t.print(std::cout);
    std::printf("\n(carry-select shortens the accumulator critical "
                "path at ~2x transistor cost; its speculative "
                "duplication also masks more single defects — the "
                "unused speculation absorbs them)\n");
    return 0;
}
