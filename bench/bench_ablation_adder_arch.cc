/**
 * @file
 * Ablation: adder architecture (ripple-carry vs carry-select).
 *
 * The injection framework exists to "assess different neural
 * network organizations and operators"; this bench quantifies the
 * classic latency/area/fault-surface trade-off between the two
 * adder architectures used for the 24-bit accumulation stages.
 */

#include "bench_util.hh"
#include "circuit/evaluator.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "core/campaign.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"

using namespace dtann;

namespace {

/** Fraction of single transistor defects changing the function. */
double
observableDefectFraction(const Netlist &nl, int trials, Rng &rng,
                         int width)
{
    int observable = 0;
    uint64_t mask = (1ull << width) - 1;
    for (int t = 0; t < trials; ++t) {
        Injection inj = injectTransistorDefects(nl, 1, rng);
        Evaluator ev(nl, std::move(inj.faults));
        bool differs = false;
        Rng vec_rng(t);
        for (int pass = 0; pass < 2 && !differs; ++pass) {
            for (int v = 0; v < 200 && !differs; ++v) {
                uint64_t a = vec_rng.nextUint(mask + 1);
                uint64_t b = vec_rng.nextUint(mask + 1);
                ev.setInputRange(0, static_cast<size_t>(width), a);
                ev.setInputRange(static_cast<size_t>(width),
                                 static_cast<size_t>(width), b);
                ev.evaluate();
                uint64_t expect = (a + b) & ((mask << 1) | 1);
                differs = ev.outputRange(
                              0, static_cast<size_t>(width) + 1) !=
                    expect;
            }
        }
        observable += differs ? 1 : 0;
    }
    return static_cast<double>(observable) / trials;
}

} // namespace

int
main()
{
    benchBanner("Ablation: adder architecture (ripple vs carry-select)",
                "Temam, ISCA 2012, Section III (operator studies)");

    int trials = scaled(500, 150);
    Rng rng(experimentSeed());
    constexpr int width = 24; // the accumulator stages

    Netlist ripple = buildRippleAdder(width, FaStyle::Nand9, true);
    Netlist select = buildCarrySelectAdder(width, 4, FaStyle::Nand9,
                                           true);

    double ripple_frac =
        observableDefectFraction(ripple, trials, rng, width);
    double select_frac =
        observableDefectFraction(select, trials, rng, width);

    TextTable t({"architecture", "transistors", "depth (gates)",
                 "observable 1-defect frac"});
    t.addRow({"ripple-carry", std::to_string(ripple.transistorCount()),
              std::to_string(ripple.depth()),
              fmtDouble(ripple_frac, 3)});
    t.addRow({"carry-select/4",
              std::to_string(select.transistorCount()),
              std::to_string(select.depth()),
              fmtDouble(select_frac, 3)});
    t.print(std::cout);

    auto arch_json = [](const char *name, const Netlist &nl,
                        double frac) {
        return std::string("{\"architecture\":") + jsonString(name) +
            ",\"transistors\":" + std::to_string(nl.transistorCount()) +
            ",\"depth\":" + std::to_string(nl.depth()) +
            ",\"observable_defect_fraction\":" + jsonNumber(frac) + "}";
    };
    maybeWriteJson(
        "ablation_adder_arch",
        campaignEnvelope(
            "ablation_adder_arch",
            "{\"trials\":" + std::to_string(trials) + "}",
            experimentSeed(), SimCounters(),
            "{\"architectures\":[" +
                arch_json("ripple-carry", ripple, ripple_frac) + "," +
                arch_json("carry-select/4", select, select_frac) +
                "]}"));
    std::printf("\n(carry-select shortens the accumulator critical "
                "path at ~2x transistor cost; its speculative "
                "duplication also masks more single defects — the "
                "unused speculation absorbs them)\n");
    return 0;
}
