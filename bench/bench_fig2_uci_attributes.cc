/**
 * @file
 * Fig 2: cumulative fraction of UCI data sets vs #attributes.
 */

#include "bench_util.hh"
#include "data/uci_meta.hh"

using namespace dtann;

int
main()
{
    benchBanner("Fig 2: UCI repository attribute census",
                "Temam, ISCA 2012, Figure 2");

    std::vector<std::vector<double>> points;
    for (int a : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 1000, 10000})
        points.push_back({static_cast<double>(a),
                          censusCumulativeFraction(a)});
    printSeries(std::cout, "cumulative fraction of data sets vs "
                           "#attributes (135 data sets)",
                {"attributes", "cum_fraction"}, points);

    std::printf("design-point checks:\n");
    std::printf("  fraction with < 100 attributes : %.3f "
                "(paper: > 0.92)\n",
                censusCumulativeFraction(99));
    std::printf("  fraction covered by 90 inputs  : %.3f\n",
                censusCumulativeFraction(90));
    std::printf("  census size                    : %zu data sets\n",
                uciCensus().size());
    return 0;
}
