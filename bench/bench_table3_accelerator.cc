/**
 * @file
 * Table III: accelerator, activation-function and memory-interface
 * characteristics at 90 nm, plus the Section VI-A key-logic
 * scaling projection and a functional-model throughput benchmark.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/cost_model.hh"
#include "core/injector.hh"

using namespace dtann;

namespace {

void
printTableIII()
{
    CostModel cm((AcceleratorConfig()));
    BlockCost acc = cm.accelerator();
    BlockCost act = cm.activation();
    BlockCost itf = cm.interface();

    TextTable t({"characteristic", "accelerator", "activation",
                 "interface", "paper(accel)"});
    t.addRow({"time (ns)", fmtDouble(acc.latencyNs, 2),
              fmtDouble(act.latencyNs, 2), fmtDouble(itf.latencyNs, 2),
              "14.92"});
    t.addRow({"area (mm^2)", fmtDouble(acc.areaMm2, 3),
              fmtDouble(act.areaMm2, 4), fmtDouble(itf.areaMm2, 4),
              "9.02"});
    t.addRow({"power (W)", fmtDouble(acc.powerW, 3),
              fmtDouble(act.powerW, 4), fmtDouble(itf.powerW, 4),
              "4.70"});
    t.addRow({"energy/row (nJ)", fmtDouble(acc.energyPerRowNj, 2),
              fmtDouble(act.energyPerRowNj, 4),
              fmtDouble(itf.energyPerRowNj, 4), "70.16"});
    t.print(std::cout);

    std::printf("\npaper reference values: activation 2.84 ns / "
                "0.017 mm^2 / 0.0019 W; interface 0.047 mm^2 / "
                "0.0054 W\n");
    std::printf("array transistors: %zu; interface transistors: %zu\n",
                cm.arrayTransistors(), cm.interfaceTransistors());

    DmaModel dma;
    std::printf("\nmemory interface sizing (Section VI-A):\n");
    std::printf("  bandwidth demand   : %.2f GB/s (paper: 11.23)\n",
                DmaModel::demandGBs(90 * 16, 14.92));
    std::printf("  peak link bandwidth: %.1f GB/s (QPI-class 12.8)\n",
                dma.peakBandwidthGBs());
    std::printf("  required clock     : %.0f MHz (paper: 754, "
                "clocked at 800)\n",
                dma.requiredClockMhz(90 * 16, 14.92));

    std::printf("\nkey-logic area fraction across technology "
                "generations (array halves per step):\n");
    const char *nodes[] = {"90nm", "65nm", "45nm", "32nm",
                           "22nm", "16nm", "11nm"};
    for (int g = 0; g <= 6; ++g)
        std::printf("  +%d gen (%s): %.1f%%%s\n", g, nodes[g],
                    100.0 * cm.keyLogicFraction(g),
                    g == 4 ? "  (paper: <10% at 22nm)"
                           : (g == 6 ? "  (paper: ~25% at 11nm)" : ""));

    std::printf("\nhardening the key logic with 2x transistors "
                "costs +%.2f%% of total area today and +%.1f%% at "
                "11nm (+6 gen) -- cheap insurance, as the paper "
                "argues\n",
                100.0 * cm.hardenedKeyLogicOverhead(2.0, 0),
                100.0 * cm.hardenedKeyLogicOverhead(2.0, 6));

    std::printf("\noutput-layer critical logic (Section VI-C): "
                "%.1f%% of output layer, %.1f%% of total area "
                "(paper: 25.9%% / 2.3%%)\n",
                100.0 * cm.outputCriticalShareOfOutputLayer(),
                100.0 * cm.outputCriticalAreaFraction());
}

/** Functional-model forward throughput (clean array). */
void
BM_ForwardCleanRow(benchmark::State &state)
{
    MlpTopology topo{90, 10, 10};
    Accelerator accel((AcceleratorConfig()), topo);
    MlpWeights w(topo);
    Rng rng(1);
    w.initRandom(rng);
    accel.setWeights(w);
    std::vector<double> in(90);
    for (double &v : in)
        v = rng.nextDouble();
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel.forward(in));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardCleanRow);

/** Forward throughput with gate-level simulated faulty units. */
void
BM_ForwardFaultyRow(benchmark::State &state)
{
    MlpTopology topo{90, 10, 10};
    Accelerator accel((AcceleratorConfig()), topo);
    MlpWeights w(topo);
    Rng rng(1);
    w.initRandom(rng);
    accel.setWeights(w);
    DefectInjector inj(accel, SitePool::inputAndHidden());
    inj.inject(static_cast<int>(state.range(0)), rng);
    std::vector<double> in(90);
    for (double &v : in)
        v = rng.nextDouble();
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel.forward(in));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardFaultyRow)->Arg(1)->Arg(9)->Arg(27);

} // namespace

int
main(int argc, char **argv)
{
    benchBanner("Table III: accelerator characteristics at 90nm",
                "Temam, ISCA 2012, Table III + Section VI-A");
    printTableIII();
    std::printf("\nfunctional-model throughput "
                "(google-benchmark):\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
