/**
 * @file
 * Fig 5: output-value distributions of a 4-bit adder (1/5/20
 * defects) and a 4-bit multiplier (20 defects), comparing
 * transistor-level and gate-level fault injection against the
 * defect-free distribution.
 */

#include "bench_util.hh"
#include "core/campaign.hh"

using namespace dtann;

namespace {

std::string all_json; ///< accumulates every configuration's export

void
printResult(const Fig5Result &r, const char *name, int max_value)
{
    if (!all_json.empty())
        all_json += ",";
    all_json += r.toJson();
    std::printf("\n-- %s, %d defect(s), %d repetitions --\n", name,
                r.defects, r.repetitions);
    std::vector<std::vector<double>> points;
    for (int v = 0; v <= max_value; ++v) {
        points.push_back({static_cast<double>(v),
                          static_cast<double>(r.none.at(v)),
                          static_cast<double>(r.gate.at(v)),
                          static_cast<double>(r.trans.at(v))});
    }
    printSeries(std::cout, "output-value histogram",
                {"value", "none", "gate", "trans"}, points);
    std::printf("total-variation vs clean: transistor %.4f, "
                "gate %.4f (paper: transistor profile stays closer "
                "to error-free)\n",
                r.trans.totalVariation(r.none),
                r.gate.totalVariation(r.none));
}

} // namespace

int
main()
{
    benchBanner("Fig 5: 4-bit operator behaviour under defects",
                "Temam, ISCA 2012, Figure 5");
    Fig5Config cfg;
    cfg.repetitions = scaled(1000, 200);

    for (int defects : {1, 5, 20}) {
        cfg.op = Fig5Operator::Adder4;
        cfg.defects = defects;
        // Each configuration gets its own counter-derived seed so
        // results stay independent of run order and thread count.
        cfg.seed = experimentSeed() + static_cast<uint64_t>(defects);
        printResult(runFig5(cfg), "4-bit adder", 30);
    }
    cfg.op = Fig5Operator::Multiplier4;
    cfg.defects = 20;
    cfg.seed = experimentSeed() + 1000;
    printResult(runFig5(cfg), "4-bit multiplier", 225);

    maybeWriteJson("fig5", "[" + all_json + "]");
    return 0;
}
