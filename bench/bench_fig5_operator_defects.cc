/**
 * @file
 * Fig 5: output-value distributions of 4-bit operators under
 * defects, comparing transistor-level and gate-level fault
 * injection against the defect-free distribution.
 *
 * Thin wrapper over the built-in "fig5" scenario spec: the sweep
 * axes (operators x defect counts), scale, and seed all come from
 * builtinSpec(), so this bench and `dtann_campaign --builtin fig5`
 * run the identical campaign.
 */

#include "bench_util.hh"
#include "service/builtin_specs.hh"
#include "service/runner.hh"

using namespace dtann;

namespace {

void
printResult(const Fig5Result &r)
{
    const char *name = r.op == Fig5Operator::Adder4
        ? "4-bit adder"
        : "4-bit multiplier";
    int max_value = r.op == Fig5Operator::Adder4 ? 30 : 225;
    std::printf("\n-- %s, %d defect(s), %d repetitions --\n", name,
                r.defects, r.repetitions);
    std::vector<std::vector<double>> points;
    for (int v = 0; v <= max_value; ++v) {
        points.push_back({static_cast<double>(v),
                          static_cast<double>(r.none.at(v)),
                          static_cast<double>(r.gate.at(v)),
                          static_cast<double>(r.trans.at(v))});
    }
    printSeries(std::cout, "output-value histogram",
                {"value", "none", "gate", "trans"}, points);
    std::printf("total-variation vs clean: transistor %.4f, "
                "gate %.4f (paper: transistor profile stays closer "
                "to error-free)\n",
                r.trans.totalVariation(r.none),
                r.gate.totalVariation(r.none));
}

} // namespace

int
main()
{
    benchBanner("Fig 5: 4-bit operator behaviour under defects",
                "Temam, ISCA 2012, Figure 5");

    ScenarioSpec spec = builtinSpec("fig5", fullScale());
    applyEnvOverrides(spec);
    ScenarioResult result = runScenario(spec);

    for (const Fig5Result &r : result.fig5)
        printResult(r);

    maybeWriteJson(result.name, result.json);
    return 0;
}
