/**
 * @file
 * Ablation: retraining vs no retraining under defects.
 *
 * The paper's central mechanism is that periodic retraining
 * silences faulty elements ("the defect tolerance of neural
 * networks proves to be an actual property of hardware neural
 * networks, provided the neural network is periodically
 * retrained"). This bench isolates that contribution by testing
 * the same faulty arrays with and without retraining.
 */

#include "bench_util.hh"
#include "core/campaign.hh"

using namespace dtann;

int
main()
{
    benchBanner("Ablation: retraining vs none under defects",
                "Temam, ISCA 2012, Section VI-C / Conclusions");

    Fig10Config base;
    base.seed = experimentSeed();
    base.tasks = fullScale()
        ? std::vector<std::string>{}
        : std::vector<std::string>{"iris", "glass", "vehicle", "sonar"};
    base.defectCounts = {0, 12, 27, 54, 108};
    base.repetitions = scaled(30, 2);
    base.folds = scaled(10, 2);
    base.rows = fullScale() ? 0 : 300;
    base.epochScale = fullScale() ? 1.0 : 0.3;
    base.retrainScale = 0.3;

    Fig10Config no_retrain = base;
    no_retrain.retrain = false;

    // Both sweeps run on the parallel campaign engine; identical
    // seeds mean identical injected defects in the two columns.
    auto with = runFig10(base);
    auto without = runFig10(no_retrain);

    TextTable t({"task", "defects", "acc (retrained)",
                 "acc (no retrain)", "recovered"});
    for (size_t c = 0; c < with.size(); ++c) {
        for (size_t p = 0; p < with[c].points.size(); ++p) {
            const auto &w = with[c].points[p];
            const auto &n = without[c].points[p];
            t.addRow({with[c].task, std::to_string(w.defects),
                      fmtDouble(w.accuracy, 3), fmtDouble(n.accuracy, 3),
                      fmtDouble(w.accuracy - n.accuracy, 3)});
        }
    }
    t.print(std::cout);
    std::printf("\n(the 'recovered' column is the accuracy retraining "
                "buys back; the paper's defect tolerance holds "
                "*provided the network is periodically retrained*)\n");
    std::printf("(protocol note: the retrained column is held-out "
                "cross-validation while the no-retrain column is "
                "whole-set accuracy of the pre-trained weights, so "
                "small negative 'recovered' values at low defect "
                "counts are evaluation bias, not harm from "
                "retraining)\n");

    SimCounters sim;
    for (const auto &c : with)
        sim.merge(c.sim);
    for (const auto &c : without)
        sim.merge(c.sim);
    maybeWriteJson("ablation_retraining",
                   campaignEnvelope(
                       "ablation_retraining", base.toJson(), base.seed,
                       sim,
                       "{\"retrained\":" + toJson(with) +
                           ",\"no_retrain\":" + toJson(without) + "}"));
    return 0;
}
