/**
 * @file
 * Ablation: spare output neurons (paper Section VI-C mitigation).
 *
 * Single heavy defects in the output layer's activation/adders are
 * the accelerator's weak spot (Fig 11). This bench compares the
 * post-retraining accuracy of plain networks against networks with
 * pairwise-redundant output neurons, and reports the area cost of
 * the sparing.
 */

#include "ann/crossval.hh"
#include "bench_util.hh"
#include "common/json.hh"
#include "core/campaign.hh"
#include "core/cost_model.hh"
#include "core/injector.hh"
#include "core/spare.hh"
#include "data/synth_uci.hh"

using namespace dtann;

int
main()
{
    benchBanner("Ablation: spare (redundant) output neurons",
                "Temam, ISCA 2012, Section VI-C");

    int reps = scaled(40, 8);
    Rng rng(experimentSeed());

    const UciTaskSpec &spec = uciTask("iris");
    Dataset ds = makeSyntheticTask(spec, rng, fullScale() ? 0 : 240);

    AcceleratorConfig cfg;
    cfg.inputs = 16;
    cfg.hidden = 8;
    cfg.outputs = 9; // 3 logical x 3 copies (median voter)
    MlpTopology logical{spec.attributes, 8, spec.classes};
    constexpr int copies = 3;

    Hyper hyper{8, scaled(100, 40), 0.2, 0.1};
    Hyper retrain = hyper;
    retrain.epochs = std::max(10, hyper.epochs / 3);

    RunningStat plain_acc, spared_acc, plain_worst, spared_worst;
    for (int rep = 0; rep < reps; ++rep) {
        uint64_t defect_seed = rng.raw()();

        // Plain network.
        Accelerator a1(cfg, logical);
        Rng t1 = rng.split();
        MlpWeights w1 = Trainer(hyper).train(a1, ds, t1);
        {
            Rng ir(defect_seed);
            DefectInjector inj(a1, SitePool::outputCritical());
            inj.inject(1, ir);
            // Make the single unit badly broken (heavy defect).
            UnitSite s = a1.faultySites().front();
            a1.injectDefects(s, 15, ir);
        }
        Rng c1 = rng.split();
        CrossValResult r1 =
            crossValidate(a1, ds, scaled(10, 2), Trainer(retrain), c1,
                          &w1);
        plain_acc.add(r1.meanAccuracy);
        plain_worst.add(r1.meanAccuracy);

        // Spared network, same defect seed against its primary
        // output stage.
        Accelerator a2(cfg, sparedTopology(logical, copies));
        SparedOutputMlp spared(a2, logical, copies);
        Rng t2 = rng.split();
        MlpWeights w2 = Trainer(hyper).train(spared, ds, t2);
        {
            Rng ir(defect_seed);
            DefectInjector inj(a2, SitePool::outputCritical());
            inj.inject(1, ir);
            UnitSite s = a2.faultySites().front();
            a2.injectDefects(s, 15, ir);
        }
        Rng c2 = rng.split();
        CrossValResult r2 = crossValidate(spared, ds, scaled(10, 2),
                                          Trainer(retrain), c2, &w2);
        spared_acc.add(r2.meanAccuracy);
        spared_worst.add(r2.meanAccuracy);
    }

    TextTable t({"configuration", "mean accuracy", "worst accuracy"});
    t.addRow({"plain outputs", fmtDouble(plain_acc.mean(), 3),
              fmtDouble(plain_worst.min(), 3)});
    t.addRow({"3-copy median outputs", fmtDouble(spared_acc.mean(), 3),
              fmtDouble(spared_worst.min(), 3)});
    t.print(std::cout);

    CostModel cm(cfg);
    double area_cost =
        100.0 * (copies - 1) * cm.outputCriticalAreaFraction();
    maybeWriteJson(
        "ablation_spare",
        campaignEnvelope(
            "ablation_spare",
            "{\"repetitions\":" + std::to_string(reps) +
                ",\"copies\":" + std::to_string(copies) + "}",
            experimentSeed(), SimCounters(),
            "{\"plain\":{\"mean_accuracy\":" +
                jsonNumber(plain_acc.mean()) + ",\"worst_accuracy\":" +
                jsonNumber(plain_worst.min()) +
                "},\"spared\":{\"mean_accuracy\":" +
                jsonNumber(spared_acc.mean()) + ",\"worst_accuracy\":" +
                jsonNumber(spared_worst.min()) +
                "},\"area_cost_percent\":" + jsonNumber(area_cost) +
                "}"));
    std::printf("\narea cost of sparing: output layer replicated "
                "x%d, i.e. about +%.2f%% of total array area\n",
                copies, area_cost);
    std::printf("(paper: key-logic hardening is preferable while the "
                "critical fraction is small; sparing wins as "
                "technology scales)\n");
    return 0;
}
