/**
 * @file
 * Table IV: processor execution characteristics and the
 * accelerator-vs-CPU energy comparison (Section VI-B).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/cost_model.hh"
#include "cpu/simple_cpu.hh"

using namespace dtann;

namespace {

void
printTableIV()
{
    SimpleCpuModel cpu;
    MlpTopology topo{90, 10, 10};
    CpuExecution e = cpu.execute(topo);

    TextTable t({"characteristic", "value", "paper"});
    t.addRow({"clock frequency (MHz)",
              fmtDouble(cpu.config().clockMhz, 0), "800"});
    t.addRow({"# cycles per row", fmtDouble(e.cyclesPerRow, 0),
              "19680"});
    t.addRow({"avg power per cycle (W)", fmtDouble(e.avgPowerW, 2),
              "2.78"});
    t.addRow({"energy per row (nJ)", fmtDouble(e.energyPerRowNj, 0),
              "68388"});
    t.print(std::cout);

    KernelOpCounts ops = kernelOpsPerRow(topo);
    std::printf("\nkernel operations per row: %zu multiplies, %zu "
                "adds, %zu loads, %zu stores, %zu branches, %zu LUT "
                "reads\n",
                ops.multiplies, ops.adds, ops.loads, ops.stores,
                ops.branches, ops.lutReads);

    CostModel cm((AcceleratorConfig()));
    BlockCost acc = cm.accelerator();
    std::printf("\nSection VI-B comparison (per input row):\n");
    std::printf("  accelerator: %.2f ns, %.2f W, %.2f nJ\n",
                acc.latencyNs, acc.powerW, acc.energyPerRowNj);
    std::printf("  processor  : %.0f ns, %.2f W, %.0f nJ\n",
                e.timePerRowNs, e.avgPowerW, e.energyPerRowNj);
    std::printf("  energy ratio CPU/accelerator: %.0fx "
                "(paper: ~975x; Hameed et al. report ~500x for "
                "H.264, Chung et al. ~100x)\n",
                cpu.energyRatioVs(acc.energyPerRowNj, topo));
    std::printf("  speedup (latency)           : %.0fx\n",
                e.timePerRowNs / acc.latencyNs);
    std::printf("  note: accelerator power is HIGHER (%.2f vs %.2f "
                "W) -- the win is energy, not power\n",
                acc.powerW, e.avgPowerW);
}

/** Wall-clock throughput of the trimmed software kernel. */
void
BM_SoftwareKernelRow(benchmark::State &state)
{
    MlpTopology topo{90, 10, 10};
    Rng rng(1);
    std::vector<Fix16> hid_w(
        static_cast<size_t>(topo.hidden) *
        static_cast<size_t>(topo.inputs + 1));
    std::vector<Fix16> out_w(
        static_cast<size_t>(topo.outputs) *
        static_cast<size_t>(topo.hidden + 1));
    for (auto &w : hid_w)
        w = Fix16::fromDouble(rng.nextDouble(-0.5, 0.5));
    for (auto &w : out_w)
        w = Fix16::fromDouble(rng.nextDouble(-0.5, 0.5));
    std::vector<Fix16> in(90);
    for (auto &v : in)
        v = Fix16::fromDouble(rng.nextDouble());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runSoftwareKernel(topo, hid_w, out_w, in));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SoftwareKernelRow);

} // namespace

int
main(int argc, char **argv)
{
    benchBanner("Table IV: processor execution characteristics",
                "Temam, ISCA 2012, Table IV + Section VI-B");
    printTableIV();
    std::printf("\nhost-machine kernel throughput "
                "(google-benchmark):\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
