/**
 * @file
 * Simulator micro-benchmarks: gate-level evaluation throughput,
 * faulty-operator simulation cost, and reconstruction cost. These
 * bound the runtime of the defect campaigns.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "ann/sigmoid.hh"
#include "circuit/batch_evaluator.hh"
#include "circuit/evaluator.hh"
#include "circuit/lane_plane.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "core/deep_mux.hh"
#include "core/injector.hh"
#include "core/spare.hh"
#include "core/timemux.hh"
#include "rtl/adder.hh"
#include "rtl/clean_model.hh"
#include "rtl/fault_inject.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"
#include "rtl/sigmoid_unit.hh"
#include "transistor/reconstruct.hh"

using namespace dtann;

namespace {

void
BM_EvalAdder16(benchmark::State &state)
{
    Netlist nl = buildRippleAdder(16, FaStyle::Nand9, true);
    Evaluator ev(nl);
    Rng rng(1);
    uint64_t a = rng.nextUint(1 << 16), b = rng.nextUint(1 << 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a + 12345) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalAdder16);

void
BM_EvalMultiplier16(benchmark::State &state)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Evaluator ev(nl);
    uint64_t a = 0x1234, b = 0x4321;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a * 7 + 3) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalMultiplier16);

void
BM_EvalMultiplier16Faulty(benchmark::State &state)
{
    // Baseline of the faulty hot path: full scalar sweep over every
    // gate. The Pruned/Batch variants below inject the same defects
    // (same seed) so their vectors/s counters are comparable.
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(2);
    Injection inj =
        injectTransistorDefects(nl, static_cast<int>(state.range(0)), rng);
    Evaluator ev(nl, std::move(inj.faults));
    uint64_t a = 0x1234, b = 0x4321;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a * 7 + 3) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
    state.counters["vectors/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvalMultiplier16Faulty)->Arg(1)->Arg(8);

void
BM_EvalMultiplier16FaultyPruned(benchmark::State &state)
{
    // Cone-pruned scalar path: only the fault cone plus its support
    // is gate-simulated; out-of-cone output bits come from the
    // native clean model.
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(2);
    Injection inj =
        injectTransistorDefects(nl, static_cast<int>(state.range(0)), rng);
    Evaluator ev(nl, std::move(inj.faults), cleanMultiplierSigned(16));
    uint64_t a = 0x1234, b = 0x4321;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a * 7 + 3) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
    state.counters["vectors/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["active_gates"] = static_cast<double>(
        ev.conePruned() ? ev.faultCone().activeGates.size()
                        : nl.numGates());
}
BENCHMARK(BM_EvalMultiplier16FaultyPruned)->Arg(1)->Arg(8);

/**
 * Narrow-cone pair: injection seed 275 lands a state-free defect
 * whose cone plus support is 24 of 2604 gates (~1%) — the class of
 * defect where pruning pays off most. The Faulty/FaultyPruned pair
 * above uses uniformly random sites (mean active fraction ~0.94 on
 * this operator), so the two pairs bracket the pruning win.
 */
void
BM_EvalMultiplier16NarrowFault(benchmark::State &state)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(275);
    Injection inj = injectTransistorDefects(nl, 1, rng);
    Evaluator ev(nl, std::move(inj.faults),
                 state.range(0) ? cleanMultiplierSigned(16) : CleanFn{});
    uint64_t a = 0x1234, b = 0x4321;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a * 7 + 3) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
    state.counters["vectors/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["active_gates"] = static_cast<double>(
        ev.conePruned() ? ev.faultCone().activeGates.size()
                        : nl.numGates());
}
BENCHMARK(BM_EvalMultiplier16NarrowFault)
    ->Arg(0)  // full scalar sweep
    ->Arg(1); // cone-pruned

void
BM_BatchEvalMultiplier16Faulty(benchmark::State &state)
{
    // 64-lane faulty batch with cone-pruned splicing: the campaign
    // hot path for state-free fault sets (test-set sweeps).
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(2);
    Injection inj =
        injectTransistorDefects(nl, static_cast<int>(state.range(0)), rng);
    // Transistor reconstruction sometimes yields MEM behaviour,
    // which the batch path hands back to the scalar evaluator;
    // redraw until the set is state-free so this measures the
    // batch path itself.
    while (!inj.faults.isStateless())
        inj = injectTransistorDefects(
            nl, static_cast<int>(state.range(0)), rng);
    auto ev = BatchEvaluator::tryCreate(nl, std::move(inj.faults),
                                        cleanMultiplierSigned(16));
    std::vector<uint64_t> in(64), out(64);
    Rng vrng(6);
    for (auto &v : in)
        v = vrng.nextUint(1ull << 32);
    for (auto _ : state) {
        ev->evaluateLanes(in.data(), out.data(), 64);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * 64 * nl.numGates()));
    state.counters["vectors/s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * 64),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchEvalMultiplier16Faulty)->Arg(1)->Arg(8);

void
BM_BatchEvalMultiplier16FaultyLanes(benchmark::State &state)
{
    // The faulty sweep at each supported plane width (Arg = lanes):
    // 64 is the single-word differential oracle, 256/512 the wide
    // planes (DESIGN.md §9). The label records which kernel ISA this
    // machine dispatched to, so envelopes from different hosts stay
    // comparable.
    size_t lanes = static_cast<size_t>(state.range(0));
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(2);
    Injection inj = injectTransistorDefects(nl, 8, rng);
    while (!inj.faults.isStateless())
        inj = injectTransistorDefects(nl, 8, rng);
    auto ev =
        BatchEvaluator::tryCreate(nl, std::move(inj.faults),
                                  cleanMultiplierSigned(16), lanes);
    std::vector<uint64_t> in(lanes), out(lanes);
    Rng vrng(6);
    for (auto &v : in)
        v = vrng.nextUint(1ull << 32);
    for (auto _ : state) {
        ev->evaluateLanes(in.data(), out.data(), lanes);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * lanes * nl.numGates()));
    state.counters["vectors/s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * lanes),
        benchmark::Counter::kIsRate);
    state.SetLabel(laneSweepIsaFor(lanes / 64));
}
BENCHMARK(BM_BatchEvalMultiplier16FaultyLanes)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512);

void
BM_EvalSigmoidUnit(benchmark::State &state)
{
    Netlist nl = buildSigmoidUnit(logisticPwlTable(), FaStyle::Nand9);
    Evaluator ev(nl);
    uint64_t x = 0x0400;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(x));
        x = (x + 911) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalSigmoidUnit);

void
BM_EvalLatchRegister(benchmark::State &state)
{
    Netlist nl = buildLatchRegister(16);
    Evaluator ev(nl);
    uint64_t d = 0xa5a5;
    for (auto _ : state) {
        ev.setInputBits(d | (1ull << 16), 17);
        ev.evaluate();
        ev.setInput(16, false);
        ev.evaluate();
        benchmark::DoNotOptimize(ev.outputBits(16));
        d = (d << 1) | (d >> 15);
        d &= 0xffff;
    }
}
BENCHMARK(BM_EvalLatchRegister);

void
BM_ReconstructGate(benchmark::State &state)
{
    Rng rng(3);
    for (auto _ : state) {
        Defect d = randomDefect(GateKind::MirrorSumN, rng);
        benchmark::DoNotOptimize(
            reconstruct(GateKind::MirrorSumN, {{d}}));
    }
}
BENCHMARK(BM_ReconstructGate);

void
BM_InjectTwentyDefects(benchmark::State &state)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(injectTransistorDefects(nl, 20, rng));
    }
}
BENCHMARK(BM_InjectTwentyDefects);

void
BM_BatchEvalMultiplier16(benchmark::State &state)
{
    // 64 vectors per call: the bit-parallel path used by
    // exhaustive verification.
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    BatchEvaluator ev(nl);
    std::vector<uint64_t> vectors(64);
    Rng rng(5);
    for (auto &v : vectors)
        v = rng.nextUint(1ull << 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateVectors(vectors));
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * 64 * nl.numGates()));
}
BENCHMARK(BM_BatchEvalMultiplier16);

// ---------------------------------------------------------------
// Model-level forward throughput: the campaign hot loop is a
// test-set sweep through a (possibly defective) ForwardModel, so
// these bound campaign runtime directly. Each family compares the
// per-row scalar loop (Arg 0) against forwardBatch (Arg 1); all use
// one lane-batchable injected defect so the batched variants
// measure the hoisted 64-lane path, and a 256-row sweep so lane
// groups are full.

constexpr size_t kSweepRows = 256;

std::vector<std::vector<double>>
sweepRows(int width, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> rows(kSweepRows);
    for (auto &row : rows) {
        row.resize(static_cast<size_t>(width));
        for (double &v : row)
            v = rng.nextDouble();
    }
    return rows;
}

/**
 * Build a 12-4-3 array mapped to @p topo with one injected defect
 * whose faulty sim is lane-batchable (redrawing sites until
 * batchPure() holds, the model-level analogue of the state-free
 * redraw above).
 */
std::unique_ptr<Accelerator>
pureFaultyArray(MlpTopology topo, uint64_t seed)
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    Rng rng(seed);
    std::unique_ptr<Accelerator> accel;
    do {
        accel = std::make_unique<Accelerator>(cfg, topo);
        DefectInjector inj(*accel, SitePool::inputAndHidden());
        inj.inject(1, rng);
    } while (!accel->batchPure());
    return accel;
}

void
sweepModel(benchmark::State &state, ForwardModel &model,
           const std::vector<std::vector<double>> &rows)
{
    if (state.range(0)) {
        for (auto _ : state) {
            auto acts = model.forwardBatch(rows);
            benchmark::DoNotOptimize(acts.data());
        }
    } else {
        for (auto _ : state) {
            for (const auto &row : rows) {
                Activations act = model.forward(row);
                benchmark::DoNotOptimize(act.layers.data());
            }
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * rows.size()));
    state.counters["rows/s"] = benchmark::Counter(
        static_cast<double>(state.iterations() * rows.size()),
        benchmark::Counter::kIsRate);
}

void
BM_AcceleratorForwardFaulty(benchmark::State &state)
{
    // The plain-Accelerator sweep: the per-vector cost baseline the
    // wrapper batch paths are held to (within 2x).
    auto accel = pureFaultyArray({12, 4, 3}, 21);
    MlpWeights w({12, 4, 3});
    Rng wr(7);
    w.initRandom(wr, 1.2);
    accel->setWeights(w);
    sweepModel(state, *accel, sweepRows(12, 8));
}
BENCHMARK(BM_AcceleratorForwardFaulty)->Arg(0)->Arg(1);

void
BM_TimeMuxForwardFaulty(benchmark::State &state)
{
    // Fit topology (mux factor 1): isolates the mux engine's
    // per-pass weight-reload overhead against the plain sweep.
    auto accel = pureFaultyArray({12, 4, 3}, 21);
    TimeMuxedMlp mux(*accel, {12, 4, 3});
    MlpWeights w({12, 4, 3});
    Rng wr(7);
    w.initRandom(wr, 1.2);
    mux.setWeights(w);
    sweepModel(state, mux, sweepRows(12, 8));
}
BENCHMARK(BM_TimeMuxForwardFaulty)->Arg(0)->Arg(1);

void
BM_TimeMuxForwardFaultyMuxed(benchmark::State &state)
{
    // Oversized logical network (mux factor 4): the Fig 5/10/11
    // campaign shape where batching pays the most.
    auto accel = pureFaultyArray({12, 4, 3}, 21);
    TimeMuxedMlp mux(*accel, {12, 12, 3});
    MlpWeights w({12, 12, 3});
    Rng wr(7);
    w.initRandom(wr, 1.2);
    mux.setWeights(w);
    sweepModel(state, mux, sweepRows(12, 8));
}
BENCHMARK(BM_TimeMuxForwardFaultyMuxed)->Arg(0)->Arg(1);

void
BM_SpareForwardFaulty(benchmark::State &state)
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 6; // 3 copies of 2 logical outputs
    MlpTopology logical{12, 4, 2};
    Rng rng(33);
    std::unique_ptr<Accelerator> accel;
    do {
        accel = std::make_unique<Accelerator>(
            cfg, sparedTopology(logical, 3));
        DefectInjector inj(*accel, SitePool::outputCritical());
        inj.inject(1, rng);
    } while (!accel->batchPure());
    SparedOutputMlp spared(*accel, logical, 3);
    MlpWeights w(logical);
    Rng wr(7);
    w.initRandom(wr, 1.2);
    spared.setWeights(w);
    sweepModel(state, spared, sweepRows(12, 8));
}
BENCHMARK(BM_SpareForwardFaulty)->Arg(0)->Arg(1);

void
BM_DeepMuxForwardFaulty(benchmark::State &state)
{
    // 3-stage stack on the same array: the deep-campaign hot loop.
    auto accel = pureFaultyArray({12, 4, 3}, 21);
    DeepTopology topo{{12, 9, 7, 3}};
    DeepMuxedNetwork deep(*accel, topo);
    DeepWeights w(topo);
    Rng wr(7);
    w.initRandom(wr, 1.0);
    deep.setLayerWeights(w);
    sweepModel(state, deep, sweepRows(12, 8));
}
BENCHMARK(BM_DeepMuxForwardFaulty)->Arg(0)->Arg(1);

} // namespace

#ifndef DTANN_BUILD_TYPE
#define DTANN_BUILD_TYPE "unknown"
#endif

namespace {

/**
 * The "dtann_build_type" recorded in an existing bench envelope at
 * @p path; empty when the file is absent, unreadable, or predates
 * build-type stamping.
 */
std::string
recordedBuildType(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream body;
    body << in.rdbuf();
    try {
        JsonValue v = jsonParse(body.str());
        if (const JsonValue *ctx = v.find("context"))
            if (const JsonValue *bt = ctx->find("dtann_build_type"))
                return bt->asString();
    } catch (const std::exception &) {
    }
    return "";
}

} // namespace

/**
 * Custom main: like every figure bench, mirror the results to
 * $DTANN_JSON_OUT/sim_throughput.json when that directory is set
 * (google-benchmark's own JSON reporter format), so the perf
 * trajectory of the simulator hot path is machine-readable. An
 * explicit --benchmark_out on the command line wins.
 *
 * The envelope's context records the dtann build type and the
 * negotiated lane width/ISA. Baseline guard: a JSON target that was
 * recorded from a Release build is never overwritten by any other
 * build type — debug numbers silently replacing a Release baseline
 * would invalidate every later regression comparison.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0)
            has_out = true;
    std::string dir = jsonOutDir();
    std::string out_flag, fmt_flag;
    if (!dir.empty() && !has_out) {
        std::string out_path = dir + "/sim_throughput.json";
        std::string prev = recordedBuildType(out_path);
        if (prev == "Release" &&
            std::string(DTANN_BUILD_TYPE) != "Release") {
            std::fprintf(
                stderr,
                "bench_sim_throughput: refusing to overwrite '%s': "
                "it was recorded from a Release build and this is a "
                "%s build; rebuild with -DCMAKE_BUILD_TYPE=Release "
                "or point DTANN_JSON_OUT elsewhere\n",
                out_path.c_str(), DTANN_BUILD_TYPE);
            return 1;
        }
        out_flag = "--benchmark_out=" + out_path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    benchmark::AddCustomContext("dtann_build_type", DTANN_BUILD_TYPE);
    benchmark::AddCustomContext(
        "dtann_lanes", std::to_string(batchLaneWidth()));
    benchmark::AddCustomContext("dtann_lane_isa", batchLaneIsa());
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
