/**
 * @file
 * Simulator micro-benchmarks: gate-level evaluation throughput,
 * faulty-operator simulation cost, and reconstruction cost. These
 * bound the runtime of the defect campaigns.
 */

#include <benchmark/benchmark.h>

#include "ann/sigmoid.hh"
#include "circuit/batch_evaluator.hh"
#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"
#include "rtl/sigmoid_unit.hh"
#include "transistor/reconstruct.hh"

using namespace dtann;

namespace {

void
BM_EvalAdder16(benchmark::State &state)
{
    Netlist nl = buildRippleAdder(16, FaStyle::Nand9, true);
    Evaluator ev(nl);
    Rng rng(1);
    uint64_t a = rng.nextUint(1 << 16), b = rng.nextUint(1 << 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a + 12345) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalAdder16);

void
BM_EvalMultiplier16(benchmark::State &state)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Evaluator ev(nl);
    uint64_t a = 0x1234, b = 0x4321;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a * 7 + 3) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalMultiplier16);

void
BM_EvalMultiplier16Faulty(benchmark::State &state)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(2);
    Injection inj =
        injectTransistorDefects(nl, static_cast<int>(state.range(0)), rng);
    Evaluator ev(nl, std::move(inj.faults));
    uint64_t a = 0x1234, b = 0x4321;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(a | (b << 16)));
        a = (a * 7 + 3) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalMultiplier16Faulty)->Arg(1)->Arg(8);

void
BM_EvalSigmoidUnit(benchmark::State &state)
{
    Netlist nl = buildSigmoidUnit(logisticPwlTable(), FaStyle::Nand9);
    Evaluator ev(nl);
    uint64_t x = 0x0400;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateBits(x));
        x = (x + 911) & 0xffff;
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * nl.numGates()));
}
BENCHMARK(BM_EvalSigmoidUnit);

void
BM_EvalLatchRegister(benchmark::State &state)
{
    Netlist nl = buildLatchRegister(16);
    Evaluator ev(nl);
    uint64_t d = 0xa5a5;
    for (auto _ : state) {
        ev.setInputBits(d | (1ull << 16), 17);
        ev.evaluate();
        ev.setInput(16, false);
        ev.evaluate();
        benchmark::DoNotOptimize(ev.outputBits(16));
        d = (d << 1) | (d >> 15);
        d &= 0xffff;
    }
}
BENCHMARK(BM_EvalLatchRegister);

void
BM_ReconstructGate(benchmark::State &state)
{
    Rng rng(3);
    for (auto _ : state) {
        Defect d = randomDefect(GateKind::MirrorSumN, rng);
        benchmark::DoNotOptimize(
            reconstruct(GateKind::MirrorSumN, {{d}}));
    }
}
BENCHMARK(BM_ReconstructGate);

void
BM_InjectTwentyDefects(benchmark::State &state)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(injectTransistorDefects(nl, 20, rng));
    }
}
BENCHMARK(BM_InjectTwentyDefects);

void
BM_BatchEvalMultiplier16(benchmark::State &state)
{
    // 64 vectors per call: the bit-parallel path used by
    // exhaustive verification.
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    BatchEvaluator ev(nl);
    std::vector<uint64_t> vectors(64);
    Rng rng(5);
    for (auto &v : vectors)
        v = rng.nextUint(1ull << 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ev.evaluateVectors(vectors));
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * 64 * nl.numGates()));
}
BENCHMARK(BM_BatchEvalMultiplier16);

} // namespace

BENCHMARK_MAIN();
