/**
 * @file
 * Running an MNIST-class network (784 inputs) on the 90-input
 * array via partial time-multiplexing.
 *
 * The paper's Fig 2 argument: 90 inputs cover >90% of UCI tasks;
 * for the rest, the spatially expanded array doubles as a
 * sub-network that a controller time-multiplexes. This example
 * shows the functional path, the pass/traffic accounting, and the
 * defect-multiplication effect.
 */

#include <algorithm>
#include <cstdio>

#include "ann/trainer.hh"
#include "core/cost_model.hh"
#include "core/injector.hh"
#include "core/timemux.hh"

using namespace dtann;

namespace {

/** A synthetic 784-input two-class task (digit-like blobs). */
Dataset
makeDigitsLike(Rng &rng, size_t rows)
{
    Dataset ds;
    ds.name = "digits784";
    ds.numAttributes = 784;
    ds.numClasses = 2;
    for (size_t r = 0; r < rows; ++r) {
        int label = static_cast<int>(r % 2);
        std::vector<double> row(784);
        for (size_t i = 0; i < row.size(); ++i) {
            double base = (i / 28 + i % 28) % 2 == label ? 0.7 : 0.3;
            row[i] = std::clamp(base + rng.nextGauss(0.0, 0.15), 0.0, 1.0);
        }
        ds.rows.push_back(std::move(row));
        ds.labels.push_back(label);
    }
    return ds;
}

} // namespace

int
main()
{
    Rng rng(11);
    Dataset ds = makeDigitsLike(rng, 80);

    AcceleratorConfig cfg; // physical 90-10-10
    Accelerator accel(cfg, {90, 10, 10});
    MlpTopology logical{784, 10, 2};
    TimeMuxedMlp mux(accel, logical);

    std::printf("logical network %d-%d-%d on the 90-10-10 array:\n",
                logical.inputs, logical.hidden, logical.outputs);
    std::printf("  passes per row      : %zu\n", mux.passesPerRow());
    std::printf("  weight words per row: %zu\n",
                mux.weightWordsPerRow());
    std::printf("  mux factor          : %d\n", mux.muxFactor());

    CostModel cm(cfg);
    double row_ns = cm.accelerator().latencyNs *
        static_cast<double>(mux.passesPerRow()) / 2.0;
    std::printf("  est. row latency    : %.1f ns (vs %.2f ns "
                "spatially expanded)\n",
                row_ns, cm.accelerator().latencyNs);

    Trainer trainer({10, 12, 0.3, 0.1});
    trainer.train(mux, ds, rng);
    std::printf("accuracy after training   : %.3f\n",
                evalAccuracy(mux, ds));

    // Defect multiplication: one faulty physical activation is
    // shared by every logical neuron that rides it.
    DefectInjector injector(accel, SitePool::inputAndHidden());
    injector.inject(2, rng);
    std::printf("accuracy with 2 defects   : %.3f (mux factor "
                "multiplies their reach)\n",
                evalAccuracy(mux, ds));
    return 0;
}
