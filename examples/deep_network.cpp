/**
 * @file
 * Deep networks on the array — the paper's future-work direction
 * ("efficiently tackle very large networks, such as Deep
 * Networks").
 *
 * Trains a 3-hidden-layer stack entirely through the physical
 * 90-10-10 array's time-multiplexed execution, then injects
 * defects and retrains.
 */

#include <cstdio>

#include "ann/trainer.hh"
#include "core/deep_mux.hh"
#include "core/injector.hh"
#include "data/synth_uci.hh"

using namespace dtann;

int
main()
{
    Rng rng(21);
    const UciTaskSpec &spec = uciTask("vehicle");
    Dataset ds = makeSyntheticTask(spec, rng, 240);

    AcceleratorConfig cfg; // the paper's physical 90-10-10 array
    Accelerator accel(cfg, {90, 10, 10});

    // An 18-12-10-8-4 stack: three hidden layers, time-multiplexed
    // over the 10 physical neurons.
    DeepTopology topo{{spec.attributes, 12, 10, 8, spec.classes}};
    DeepMuxedNetwork deep(accel, topo);
    std::printf("deep stack");
    for (int w : topo.layers)
        std::printf(" %d", w);
    std::printf(" on the 90-10-10 array: %zu passes per row\n",
                deep.passesPerRow());

    Trainer trainer({10, 60, 0.3, 0.3});
    DeepWeights init(topo);
    init.initRandom(rng, 1.2);
    DeepWeights w = trainer.trainLayers(deep, ds, rng, &init);
    std::printf("clean accuracy        : %.3f\n",
                evalAccuracy(deep, ds));

    DefectInjector injector(accel, SitePool::inputAndHidden(),
                            SiteWeighting::Uniform);
    injector.inject(6, rng);
    std::printf("with 6 defects        : %.3f (every logical layer "
                "shares the faulty units)\n",
                evalAccuracy(deep, ds));

    Trainer retrainer({10, 20, 0.3, 0.3});
    retrainer.trainLayers(deep, ds, rng, &w);
    std::printf("after retraining      : %.3f\n",
                evalAccuracy(deep, ds));
    return 0;
}
