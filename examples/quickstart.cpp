/**
 * @file
 * Quickstart: train a classifier on the accelerator, inject
 * defects, retrain, and compare accuracy.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "ann/trainer.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"
#include "data/synth_uci.hh"

using namespace dtann;

int
main()
{
    // 1. A classification task: the robot failure-detection
    //    stand-in (90 attributes, 5 classes) -- it fills the
    //    array's 90 inputs completely.
    Rng rng(42);
    Dataset ds = makeSyntheticTask(uciTask("robot"), rng, 240);
    std::printf("dataset: %s, %zu rows, %d attributes, %d classes\n",
                ds.name.c_str(), ds.size(), ds.numAttributes,
                ds.numClasses);

    // 2. The physical array: the paper's 90-10-10 spatially
    //    expanded accelerator. The logical 4-8-3 task network is
    //    mapped onto its top-left corner.
    AcceleratorConfig cfg; // 90 inputs, 10 hidden, 10 outputs
    MlpTopology logical{90, 6, 5};
    Accelerator accel(cfg, logical);

    // 3. Off-line training on a companion core, forward passes
    //    through the (bit-exact fixed-point) hardware.
    Trainer trainer({6, 120, 0.2, 0.1});
    MlpWeights weights = trainer.train(accel, ds, rng);
    std::printf("clean accuracy      : %.3f\n",
                evalAccuracy(accel, ds));

    // 4. Silicon happens: a dozen random transistor-level defects
    //    in the input and hidden layers (operators and latches
    //    drawn uniformly, as in the paper).
    DefectInjector injector(accel, SitePool::inputAndHidden(),
                            SiteWeighting::Uniform);
    auto records = injector.inject(12, rng);
    std::printf("injected defects:\n");
    for (const auto &r : records)
        std::printf("  %s\n", r.what.c_str());
    std::printf("accuracy w/ defects : %.3f (no retraining)\n",
                evalAccuracy(accel, ds));

    // 5. Retrain through the faulty hardware: back-propagation
    //    silences the faulty elements.
    Trainer retrainer({6, 40, 0.2, 0.1});
    retrainer.train(accel, ds, rng, &weights);
    std::printf("accuracy retrained  : %.3f\n",
                evalAccuracy(accel, ds));
    return 0;
}
