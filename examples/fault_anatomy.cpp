/**
 * @file
 * Anatomy of a transistor defect: from a CMOS schematic to a
 * reconstructed (possibly stateful) logic function.
 *
 * Walks the paper's Section III-B example gate — the complement of
 * (a+b).(c+d), an OAI22 — through open, short and bridge defects,
 * printing the reconstructed truth tables with B-block semantics.
 */

#include <cstdio>

#include "transistor/reconstruct.hh"

using namespace dtann;

namespace {

char
lvChar(LogicValue v)
{
    switch (v) {
      case LogicValue::Zero: return '0';
      case LogicValue::One: return '1';
      default: return 'M'; // memory effect: output floats
    }
}

void
printTable(const char *title, const GateFunction &f)
{
    std::printf("%-44s", title);
    for (uint32_t in = 0; in < (1u << f.numInputs()); ++in)
        std::printf("%c", lvChar(f.eval(in)));
    std::printf("%s\n", f.hasMem() ? "   (state element!)" : "");
}

} // namespace

int
main()
{
    GateKind gate = GateKind::Oai22;
    const GateSchematic &sch = schematicFor(gate);
    std::printf("gate: %s = !((a|b) & (c|d)), %zu transistors "
                "(%zu PMOS pull-up, %zu NMOS pull-down)\n\n",
                gateName(gate), sch.transistorCount(),
                sch.p.switches.size(), sch.n.switches.size());
    std::printf("truth tables over inputs dcba = 0000..1111 "
                "(M = floating output retains its value):\n\n");

    printTable("defect-free:",
               GateFunction::fromGateKind(gate));

    // Open at the drain of the 'a' pull-up transistor: the a,b
    // pull-up path dies; some inputs float the output.
    Defect open_a{DefectKind::Open, true, 0, 0, 0};
    printTable("open(P, t_a):", reconstruct(gate, {{open_a}}).function);

    // Source-drain short of the 'c' pull-up transistor: the added
    // conduction is masked by the dominant ground path.
    Defect short_c{DefectKind::ShortSD, true, 2, 0, 0};
    printTable("short(P, t_c) [logically masked]:",
               reconstruct(gate, {{short_c}}).function);

    // Bridge between the internal nodes of the two pull-up
    // branches: pull-up paths can now mix a with d and c with b.
    Defect bridge{DefectKind::Bridge, true, 0, 2, 3};
    printTable("bridge(P, n2-n3):",
               reconstruct(gate, {{bridge}}).function);

    // Both networks opened at once: a pure state element.
    std::printf("\nNOT gate with both transistors open:\n");
    std::vector<Defect> both = {{DefectKind::Open, true, 0, 0, 0},
                                {DefectKind::Open, false, 0, 0, 0}};
    printTable("open(P) + open(N):",
               reconstruct(GateKind::Not, both).function);

    std::printf("\nthis is why the paper injects faults at the "
                "transistor level: none of these behaviours is a "
                "stuck-at of a gate input.\n");
    return 0;
}
