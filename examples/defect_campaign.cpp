/**
 * @file
 * Defect-tolerance campaign on a user-chosen task.
 *
 * Usage: defect_campaign [task] [max_defects] [reps]
 *   task        one of the 10 benchmark tasks (default: wine)
 *   max_defects sweep upper bound (default: 24)
 *   reps        faulty networks per point (default: 3)
 *
 * Demonstrates the library's experiment API: dataset generation,
 * baseline training, random transistor-defect injection, retraining
 * through the faulty forward path, and per-site deviation probes.
 */

#include <cstdio>
#include <cstdlib>

#include "ann/crossval.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"
#include "data/synth_uci.hh"

using namespace dtann;

int
main(int argc, char **argv)
{
    const char *task = argc > 1 ? argv[1] : "wine";
    int max_defects = argc > 2 ? std::atoi(argv[2]) : 24;
    int reps = argc > 3 ? std::atoi(argv[3]) : 3;

    const UciTaskSpec &spec = uciTask(task);
    Rng rng(7);
    Dataset ds = makeSyntheticTask(spec, rng, 240);

    AcceleratorConfig cfg;
    MlpTopology logical{spec.attributes,
                        std::min(spec.hidden, cfg.hidden),
                        spec.classes};
    Accelerator accel(cfg, logical);

    Hyper hyper{logical.hidden,
                std::max(20, spec.epochs / 4),
                spec.learningRate, 0.1};
    Trainer trainer(hyper);
    MlpWeights baseline = trainer.train(accel, ds, rng);

    Hyper retrain_hyper = hyper;
    retrain_hyper.epochs = std::max(10, hyper.epochs / 3);
    Trainer retrainer(retrain_hyper);

    std::printf("task %s on 90-10-10 array, logical %d-%d-%d\n",
                spec.name.c_str(), logical.inputs, logical.hidden,
                logical.outputs);
    std::printf("%8s  %8s  %8s\n", "defects", "accuracy", "stddev");
    for (int defects = 0; defects <= max_defects; defects += 6) {
        RunningStat stat;
        for (int rep = 0; rep < (defects == 0 ? 1 : reps); ++rep) {
            accel.clearDefects();
            if (defects > 0) {
                DefectInjector injector(accel,
                                        SitePool::inputAndHidden());
                injector.inject(defects, rng);
            }
            CrossValResult cv = crossValidate(
                accel, ds, 3, retrainer, rng, &baseline);
            stat.add(cv.meanAccuracy);
        }
        std::printf("%8d  %8.3f  %8.3f\n", defects, stat.mean(),
                    stat.stddev());
    }

    // Show where the last injection's faults sat and how much each
    // deviated during the final test phase.
    std::printf("\nfaulty sites of the last network:\n");
    for (const UnitSite &site : accel.faultySites()) {
        const DeviationProbe &p = accel.probe(site);
        std::printf("  %-20s observed %zu ops, mean |dev| %.4f\n",
                    site.describe().c_str(), p.amplitude.count(),
                    p.amplitude.mean());
    }
    return 0;
}
