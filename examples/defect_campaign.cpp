/**
 * @file
 * Defect-tolerance campaign on a user-chosen task.
 *
 * Usage: defect_campaign [task] [max_defects] [reps]
 *   task        one of the 10 benchmark tasks (default: wine)
 *   max_defects sweep upper bound (default: 24)
 *   reps        faulty networks per point (default: 3)
 *
 * Demonstrates the unified campaign API: a Fig10Config drives the
 * parallel CampaignEngine (every (defect count, repetition) cell is
 * an independent work unit with its own counter-derived RNG
 * stream), and the onCellDone callback streams per-cell progress.
 * Results are bit-identical for any DTANN_THREADS value.
 */

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hh"

using namespace dtann;

int
main(int argc, char **argv)
{
    const char *task = argc > 1 ? argv[1] : "wine";
    int max_defects = argc > 2 ? std::atoi(argv[2]) : 24;
    int reps = argc > 3 ? std::atoi(argv[3]) : 3;

    Fig10Config cfg;
    cfg.tasks = {task};
    cfg.defectCounts.clear();
    for (int d = 0; d <= max_defects; d += 6)
        cfg.defectCounts.push_back(d);
    cfg.repetitions = reps;
    cfg.folds = 3;
    cfg.rows = 240;
    cfg.epochScale = 0.25;
    cfg.retrainScale = 0.35;
    cfg.seed = 7;

    // Per-cell progress: the engine serializes callbacks, so plain
    // stdio is safe even with many worker threads.
    cfg.onCellDone = [](const CellReport &r) {
        std::printf("  cell %zu/%zu: %s, %d defect(s), rep %d -> "
                    "accuracy %.3f\n",
                    r.cellsDone, r.cellsTotal, r.task.c_str(),
                    r.defects, r.rep, r.accuracy);
    };

    std::printf("task %s on 90-10-10 array, %d worker thread(s)\n",
                task, ThreadPool::resolveThreads(cfg.threads));

    auto curves = runFig10(cfg);

    std::printf("\n%8s  %8s  %8s\n", "defects", "accuracy", "stddev");
    for (const Fig10Point &p : curves[0].points)
        std::printf("%8d  %8.3f  %8.3f\n", p.defects, p.accuracy,
                    p.stddev);

    // Machine-readable export of the same sweep.
    std::printf("\nJSON: %s\n", curves[0].toJson().c_str());
    return 0;
}
