/**
 * @file
 * Accelerator vs CPU: the Section VI-B energy comparison, plus a
 * DMA-driven streaming run exercising the ready/accept handshake.
 */

#include <cstdio>

#include "ann/trainer.hh"
#include "core/accelerator.hh"
#include "core/cost_model.hh"
#include "core/dma.hh"
#include "cpu/simple_cpu.hh"
#include "data/synth_uci.hh"

using namespace dtann;

int
main()
{
    // Train a spam filter (57 attributes) on the array.
    Rng rng(3);
    const UciTaskSpec &spec = uciTask("spam");
    Dataset ds = makeSyntheticTask(spec, rng, 400);
    AcceleratorConfig cfg;
    MlpTopology logical{spec.attributes, 6, spec.classes};
    Accelerator accel(cfg, logical);
    Trainer trainer({6, 60, 0.1, 0.1});
    trainer.train(accel, ds, rng);
    std::printf("spam-filter accuracy: %.3f\n",
                evalAccuracy(accel, ds));

    // Stream the test set through the double-buffered DMA channel.
    HandshakeChannel<DmaRow> in_ch;
    HandshakeChannel<DmaRow> out_ch;
    size_t next = 0, done = 0, stalls = 0;
    while (done < ds.size()) {
        // Producer side: the DMA offers rows while a buffer is free.
        while (next < ds.size()) {
            DmaRow row(ds.rows[next].size());
            for (size_t i = 0; i < row.size(); ++i)
                row[i] = Fix16::fromDouble(ds.rows[next][i]);
            if (!in_ch.offer(std::move(row))) {
                ++stalls;
                break;
            }
            ++next;
        }
        // Accelerator side: accept, process, emit.
        if (in_ch.available()) {
            DmaRow row = in_ch.accept();
            std::vector<Fix16> phys(static_cast<size_t>(cfg.inputs));
            for (size_t i = 0; i < row.size(); ++i)
                phys[i] = row[i];
            std::vector<Fix16> out = accel.forwardFix(phys);
            if (!out_ch.offer(std::move(out)))
                continue; // output buffer full: retry next round
            ++done;
        }
        if (out_ch.available())
            out_ch.accept(); // consumer drains results
    }
    std::printf("streamed %zu rows through the DMA handshake "
                "(%zu producer stalls)\n",
                done, stalls);

    // The headline energy comparison.
    CostModel cm(cfg);
    SimpleCpuModel cpu;
    MlpTopology paper_net{90, 10, 10};
    BlockCost acc = cm.accelerator();
    CpuExecution e = cpu.execute(paper_net);
    double rows = static_cast<double>(ds.size());
    std::printf("\nper %zu rows of the 90-10-10 network:\n",
                ds.size());
    std::printf("  accelerator: %8.1f us, %10.1f nJ\n",
                rows * acc.latencyNs / 1e3, rows * acc.energyPerRowNj);
    std::printf("  CPU (A110) : %8.1f us, %10.1f nJ\n",
                rows * e.timePerRowNs / 1e3, rows * e.energyPerRowNj);
    std::printf("  energy ratio: %.0fx, speedup: %.0fx\n",
                e.energyPerRowNj / acc.energyPerRowNj,
                e.timePerRowNs / acc.latencyNs);
    return 0;
}
