/**
 * @file
 * Tests for the gate-level activation unit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {
namespace {

/** A simple 16-segment fit of the logistic function over [-8, 8). */
PwlTable
logisticTable()
{
    PwlTable t;
    for (int i = 0; i < 16; ++i) {
        double x0 = -8.0 + i;
        double x1 = x0 + 1.0;
        double y0 = 1.0 / (1.0 + std::exp(-x0));
        double y1 = 1.0 / (1.0 + std::exp(-x1));
        double a = y1 - y0;
        double b = y0 - a * x0;
        t[static_cast<size_t>(i)] = {Fix16::fromDouble(a),
                                     Fix16::fromDouble(b)};
    }
    return t;
}

TEST(SigmoidUnitRef, SaturatesOutsideRange)
{
    PwlTable t = logisticTable();
    EXPECT_DOUBLE_EQ(sigmoidUnitRef(t, Fix16::fromDouble(20.0)).toDouble(),
                     1.0);
    EXPECT_DOUBLE_EQ(sigmoidUnitRef(t, Fix16::fromDouble(-20.0)).toDouble(),
                     0.0);
    EXPECT_DOUBLE_EQ(sigmoidUnitRef(t, Fix16::fromDouble(8.0)).toDouble(),
                     1.0);
}

TEST(SigmoidUnitRef, ApproximatesLogistic)
{
    PwlTable t = logisticTable();
    for (double x = -7.9; x < 7.9; x += 0.37) {
        double ref = 1.0 / (1.0 + std::exp(-x));
        double got = sigmoidUnitRef(t, Fix16::fromDouble(x)).toDouble();
        EXPECT_NEAR(got, ref, 0.02) << "x=" << x;
    }
}

TEST(SigmoidUnitRef, MonotoneOverSampledInputs)
{
    PwlTable t = logisticTable();
    double prev = -1.0;
    for (int raw = -9000; raw <= 9000; raw += 64) {
        double y =
            sigmoidUnitRef(t, Fix16::fromRaw(static_cast<int16_t>(raw)))
                .toDouble();
        // Q6.10 coefficient quantization allows small local dips
        // (about 4 LSB) near the flat tails.
        EXPECT_GE(y, prev - 0.005) << "raw=" << raw;
        prev = y;
    }
}

TEST(SigmoidUnit, NetlistMatchesReferenceExactly)
{
    PwlTable t = logisticTable();
    Netlist nl = buildSigmoidUnit(t, FaStyle::Nand9);
    Evaluator ev(nl);
    // Sweep raw input space coarsely plus edges.
    std::vector<int32_t> raws;
    for (int32_t r = -32768; r <= 32767; r += 97)
        raws.push_back(r);
    for (int32_t r : {-32768, 32767, -8193, -8192, -8191, 8191, 8192,
                      0, -1, 1, 1023, 1024})
        raws.push_back(r);
    for (int32_t r : raws) {
        Fix16 x = Fix16::fromRaw(static_cast<int16_t>(r));
        uint64_t got = ev.evaluateBits(
            static_cast<uint64_t>(x.bits()));
        Fix16 expect = sigmoidUnitRef(t, x);
        EXPECT_EQ(got, static_cast<uint64_t>(expect.bits()))
            << "raw=" << r;
    }
}

TEST(SigmoidUnit, MirrorStyleAlsoMatches)
{
    PwlTable t = logisticTable();
    Netlist nl = buildSigmoidUnit(t, FaStyle::Mirror);
    Evaluator ev(nl);
    Rng rng(77);
    for (int i = 0; i < 300; ++i) {
        int16_t raw = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        Fix16 x = Fix16::fromRaw(raw);
        uint64_t got = ev.evaluateBits(static_cast<uint64_t>(x.bits()));
        EXPECT_EQ(got,
                  static_cast<uint64_t>(sigmoidUnitRef(t, x).bits()))
            << "raw=" << raw;
    }
}

TEST(SigmoidUnit, SizeIsSubstantial)
{
    // The paper reports the activation unit as a distinct block
    // (Table III); ours is a real datapath, not a toy.
    PwlTable t = logisticTable();
    Netlist nl = buildSigmoidUnit(t, FaStyle::Nand9);
    EXPECT_GT(nl.transistorCount(), 8000u);
    EXPECT_EQ(nl.inputs().size(), 16u);
    EXPECT_EQ(nl.outputs().size(), 16u);
}

} // namespace
} // namespace dtann
