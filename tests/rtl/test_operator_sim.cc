/**
 * @file
 * Tests for OperatorSim and fault phenomenology on real operators,
 * including the input-order sensitivity that motivates the paper's
 * randomized presentation ("in order to avoid any special behavior
 * related to the memory property induced by some faults").
 */

#include <gtest/gtest.h>

#include "ann/sigmoid.hh"
#include "common/stats.hh"
#include "rtl/adder.hh"
#include "rtl/multiplier.hh"
#include "rtl/operator_sim.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {
namespace {

TEST(OperatorSim, MemoryFaultsMakeResultsOrderDependent)
{
    // Find an injection with MEM behaviour, then show that the
    // same set of inputs produces different output histograms in
    // ascending vs descending order — the effect the paper's
    // random-order protocol controls for.
    auto nl = std::make_shared<Netlist>(
        buildRippleAdder(4, FaStyle::Nand9, true));
    for (uint64_t seed = 0; seed < 80; ++seed) {
        Rng rng(seed);
        Injection inj = injectTransistorDefects(*nl, 5, rng);
        bool has_mem = false;
        for (const auto &[g, fn] : inj.faults.overrides)
            has_mem |= fn.hasMem();
        if (!has_mem)
            continue;

        Injection inj2;
        inj2.faults = inj.faults;
        OperatorSim up(nl, std::move(inj));
        OperatorSim down(nl, std::move(inj2));
        IntHistogram up_hist, down_hist;
        for (uint64_t v = 0; v < 256; ++v)
            up_hist.add(static_cast<int64_t>(up.apply(v) & 0x1f));
        for (uint64_t v = 256; v-- > 0;)
            down_hist.add(static_cast<int64_t>(down.apply(v) & 0x1f));
        if (up_hist.totalVariation(down_hist) > 0.0)
            return; // order dependence demonstrated
    }
    FAIL() << "no order-dependent MEM injection found in 80 seeds";
}

TEST(OperatorSim, SharedNetlistIndependentState)
{
    // Two sims over the same netlist must not share evaluation
    // state.
    auto nl = std::make_shared<Netlist>(
        buildRippleAdder(8, FaStyle::Nand9, false));
    OperatorSim a(nl, Injection{});
    OperatorSim b(nl, Injection{});
    EXPECT_EQ(a.apply(0x00ff), 0xffu);
    EXPECT_EQ(b.apply(0x0101), 0x02u);
    EXPECT_EQ(a.apply(0x00ff), 0xffu);
}

TEST(OperatorSim, SigmoidUnitSingleDefectAmplitudesAreBitWeighted)
{
    // Single defects in the activation unit produce output errors
    // whose magnitudes cluster at powers of two of the affected
    // bit — the effect behind the paper's Fig 11 amplitude axis.
    auto nl = std::make_shared<Netlist>(
        buildSigmoidUnit(logisticPwlTable(), FaStyle::Nand9));
    Rng rng(13);
    int observed = 0;
    for (int trial = 0; trial < 25; ++trial) {
        Injection inj = injectTransistorDefects(*nl, 1, rng);
        OperatorSim sim(nl, std::move(inj));
        double max_err = 0.0;
        for (int raw = -8192; raw < 8192; raw += 256) {
            Fix16 x = Fix16::fromRaw(static_cast<int16_t>(raw));
            Fix16 clean = logisticPwlFix(x);
            uint64_t out = sim.apply(static_cast<uint64_t>(x.bits()));
            Fix16 got =
                Fix16::fromRaw(static_cast<int16_t>(out & 0xffff));
            max_err = std::max(
                max_err, std::abs(got.toDouble() - clean.toDouble()));
        }
        if (max_err > 0.0)
            ++observed;
        // Errors are bounded by the representable range.
        EXPECT_LE(max_err, 64.0);
    }
    // Some single defects must be visible, but many are masked.
    EXPECT_GT(observed, 0);
    EXPECT_LT(observed, 25);
}

TEST(OperatorSim, MultiplierDefectsRespectOperandSensitivity)
{
    // A defective multiplier can only deviate when excited: for
    // operand pairs that never touch the faulty cell's inputs, the
    // result stays exact. Weight 0 x input 0 is the canonical
    // unused-synapse case (probed by the accelerator tests).
    auto nl = std::make_shared<Netlist>(
        buildMultiplierSigned(16, FaStyle::Nand9));
    Rng rng(29);
    int zero_safe = 0;
    const int trials = 20;
    for (int trial = 0; trial < trials; ++trial) {
        Injection inj = injectTransistorDefects(*nl, 1, rng);
        OperatorSim sim(nl, std::move(inj));
        if ((sim.apply(0) & 0xffffffffull) == 0)
            ++zero_safe;
    }
    // The zero product has no active partial products; nearly all
    // single defects leave it intact.
    EXPECT_GE(zero_safe, trials - 2);
}

TEST(OperatorSim, FaultRecordsSurviveConstruction)
{
    auto nl = std::make_shared<Netlist>(
        buildRippleAdder(4, FaStyle::Nand9, true));
    Rng rng(3);
    Injection inj = injectTransistorDefects(*nl, 4, rng);
    auto records = inj.records;
    OperatorSim sim(nl, std::move(inj));
    ASSERT_EQ(sim.faultRecords().size(), records.size());
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(sim.faultRecords()[i].what, records[i].what);
    EXPECT_EQ(&sim.netlist(), nl.get());
}

} // namespace
} // namespace dtann
