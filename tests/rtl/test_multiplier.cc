/**
 * @file
 * Tests for array multiplier netlists (unsigned and Baugh-Wooley).
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "rtl/multiplier.hh"

namespace dtann {
namespace {

struct MulCase
{
    int width;
    FaStyle style;
    bool isSigned;
};

class MultiplierTest : public ::testing::TestWithParam<MulCase>
{
};

TEST_P(MultiplierTest, ExhaustiveOrRandomizedCorrectness)
{
    auto [width, style, is_signed] = GetParam();
    Netlist nl = is_signed ? buildMultiplierSigned(width, style)
                           : buildMultiplierUnsigned(width, style);
    ASSERT_EQ(nl.outputs().size(), static_cast<size_t>(2 * width));
    Evaluator ev(nl);
    uint64_t in_mask = (1ull << width) - 1;
    uint64_t out_mask = (1ull << (2 * width)) - 1;

    auto check = [&](uint64_t a, uint64_t b) {
        ev.setInputRange(0, static_cast<size_t>(width), a);
        ev.setInputRange(static_cast<size_t>(width),
                         static_cast<size_t>(width), b);
        ev.evaluate();
        uint64_t got = ev.outputRange(0, static_cast<size_t>(2 * width));
        uint64_t expect;
        if (is_signed) {
            // Sign-extend operands, multiply, take 2w bits.
            int64_t sa = static_cast<int64_t>(a << (64 - width)) >>
                (64 - width);
            int64_t sb = static_cast<int64_t>(b << (64 - width)) >>
                (64 - width);
            expect = static_cast<uint64_t>(sa * sb) & out_mask;
        } else {
            expect = (a * b) & out_mask;
        }
        EXPECT_EQ(got, expect) << "a=" << a << " b=" << b;
    };

    if (width <= 5) {
        for (uint64_t a = 0; a <= in_mask; ++a)
            for (uint64_t b = 0; b <= in_mask; ++b)
                check(a, b);
    } else {
        Rng rng(13);
        for (int i = 0; i < 1000; ++i)
            check(rng.nextUint(in_mask + 1), rng.nextUint(in_mask + 1));
        check(in_mask, in_mask);
        check(0, in_mask);
        check(1ull << (width - 1), 1ull << (width - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MultiplierTest,
    ::testing::Values(MulCase{2, FaStyle::Nand9, false},
                      MulCase{4, FaStyle::Nand9, false},
                      MulCase{4, FaStyle::Mirror, false},
                      MulCase{2, FaStyle::Nand9, true},
                      MulCase{3, FaStyle::Nand9, true},
                      MulCase{4, FaStyle::Nand9, true},
                      MulCase{4, FaStyle::Mirror, true},
                      MulCase{5, FaStyle::Mirror, true},
                      MulCase{8, FaStyle::Nand9, false},
                      MulCase{16, FaStyle::Nand9, true},
                      MulCase{16, FaStyle::Mirror, true}),
    [](const auto &info) {
        return std::string(info.param.isSigned ? "S" : "U") +
            std::to_string(info.param.width) +
            (info.param.style == FaStyle::Nand9 ? "Nand9" : "Mirror");
    });

TEST(Multiplier, SignedSixteenBitMatchesHwMul)
{
    // The datapath contract: Q6.10 hwMul == product bits [25:10].
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    Evaluator ev(nl);
    Rng rng(21);
    for (int i = 0; i < 500; ++i) {
        int16_t a = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        int16_t b = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        ev.setInputRange(0, 16, static_cast<uint16_t>(a));
        ev.setInputRange(16, 16, static_cast<uint16_t>(b));
        ev.evaluate();
        uint64_t mid = ev.outputRange(Fix16::fracBits, 16);
        Fix16 expect = Fix16::hwMul(Fix16::fromRaw(a), Fix16::fromRaw(b));
        EXPECT_EQ(mid, static_cast<uint64_t>(expect.bits()))
            << "a=" << a << " b=" << b;
    }
}

TEST(Multiplier, EveryPartialProductAndAdderIsACell)
{
    // 4x4 unsigned: 16 pp cells + reduction cells; groups must be
    // numerous enough for two-level defect sampling.
    Netlist nl = buildMultiplierUnsigned(4, FaStyle::Nand9);
    EXPECT_GE(nl.numGroups(), 16);
}

TEST(Multiplier, SixteenBitSizeIsRealistic)
{
    Netlist nl = buildMultiplierSigned(16, FaStyle::Nand9);
    // A 16x16 array multiplier has a few thousand transistors.
    EXPECT_GT(nl.transistorCount(), 5000u);
    EXPECT_LT(nl.transistorCount(), 20000u);
}

} // namespace
} // namespace dtann
