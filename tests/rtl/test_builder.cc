/**
 * @file
 * Unit tests for the composite-logic builder primitives.
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "rtl/builder.hh"

namespace dtann {
namespace {

/** Evaluate a single-output builder circuit over all inputs. */
uint32_t
truthTable(Netlist &nl, int inputs)
{
    Evaluator ev(nl);
    uint32_t table = 0;
    for (uint32_t in = 0; in < (1u << inputs); ++in)
        if (ev.evaluateBits(in) & 1)
            table |= 1u << in;
    return table;
}

TEST(Builder, And2Or2Xor2Xnor2)
{
    struct Case
    {
        const char *name;
        NetId (*make)(NetlistBuilder &, NetId, NetId);
        uint32_t expect; // truth over ba = 00,01,10,11
    };
    const Case cases[] = {
        {"and2",
         [](NetlistBuilder &b, NetId x, NetId y) { return b.and2(x, y); },
         0b1000},
        {"or2",
         [](NetlistBuilder &b, NetId x, NetId y) { return b.or2(x, y); },
         0b1110},
        {"xor2",
         [](NetlistBuilder &b, NetId x, NetId y) { return b.xor2(x, y); },
         0b0110},
        {"xnor2",
         [](NetlistBuilder &b, NetId x, NetId y) {
             return b.xnor2(x, y);
         },
         0b1001},
    };
    for (const Case &c : cases) {
        NetlistBuilder bld;
        Bus in = bld.inputBus(2);
        bld.netlist().markOutput(c.make(bld, in[0], in[1]));
        Netlist nl = bld.take();
        EXPECT_EQ(truthTable(nl, 2), c.expect) << c.name;
    }
}

TEST(Builder, Mux2SelectsSecondWhenHigh)
{
    NetlistBuilder bld;
    Bus in = bld.inputBus(3); // sel, a, b
    bld.netlist().markOutput(bld.mux2(in[0], in[1], in[2]));
    Netlist nl = bld.take();
    Evaluator ev(nl);
    for (uint32_t v = 0; v < 8; ++v) {
        bool sel = v & 1, a = v & 2, b = v & 4;
        EXPECT_EQ(ev.evaluateBits(v) & 1, (sel ? b : a) ? 1u : 0u)
            << "v=" << v;
    }
}

TEST(Builder, ReductionTrees)
{
    for (int width : {1, 2, 3, 5, 8}) {
        NetlistBuilder bld;
        Bus in = bld.inputBus(width);
        bld.netlist().markOutput(bld.andTree(in));
        Netlist nl = bld.take();
        Evaluator ev(nl);
        uint64_t all = (1ull << width) - 1;
        EXPECT_EQ(ev.evaluateBits(all), 1u) << "width " << width;
        if (width > 1)
            EXPECT_EQ(ev.evaluateBits(all - 1), 0u);
        EXPECT_EQ(ev.evaluateBits(0), width == 0 ? 1u : 0u);
    }
    NetlistBuilder bld;
    Bus in = bld.inputBus(5);
    bld.netlist().markOutput(bld.orTree(in));
    Netlist nl = bld.take();
    Evaluator ev(nl);
    EXPECT_EQ(ev.evaluateBits(0), 0u);
    EXPECT_EQ(ev.evaluateBits(0b00100), 1u);
}

TEST(Builder, HalfAdderExhaustive)
{
    NetlistBuilder bld;
    Bus in = bld.inputBus(2);
    SumCarry sc = bld.halfAdder(in[0], in[1]);
    bld.netlist().markOutput(sc.sum);
    bld.netlist().markOutput(sc.carry);
    Netlist nl = bld.take();
    Evaluator ev(nl);
    for (uint32_t v = 0; v < 4; ++v) {
        uint64_t out = ev.evaluateBits(v);
        uint32_t total = (v & 1) + ((v >> 1) & 1);
        EXPECT_EQ(out & 1, total & 1);
        EXPECT_EQ((out >> 1) & 1, total >> 1);
    }
}

TEST(Builder, FullAdderBothStylesExhaustive)
{
    for (FaStyle style : {FaStyle::Nand9, FaStyle::Mirror}) {
        NetlistBuilder bld;
        Bus in = bld.inputBus(3);
        SumCarry sc = bld.fullAdder(in[0], in[1], in[2], style);
        bld.netlist().markOutput(sc.sum);
        bld.netlist().markOutput(sc.carry);
        Netlist nl = bld.take();
        Evaluator ev(nl);
        for (uint32_t v = 0; v < 8; ++v) {
            uint64_t out = ev.evaluateBits(v);
            uint32_t total =
                (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
            EXPECT_EQ(out & 1, total & 1)
                << "style " << static_cast<int>(style) << " v=" << v;
            EXPECT_EQ((out >> 1) & 1, total >> 1);
        }
    }
}

TEST(Builder, CellGroupsAdvance)
{
    NetlistBuilder bld;
    Bus in = bld.inputBus(2);
    bld.beginCell();
    bld.and2(in[0], in[1]);
    uint16_t g1 = bld.netlist().group();
    bld.beginCell();
    bld.or2(in[0], in[1]);
    uint16_t g2 = bld.netlist().group();
    EXPECT_NE(g1, g2);
}

TEST(Builder, FullAdderTransistorBudgets)
{
    NetlistBuilder b1;
    Bus i1 = b1.inputBus(3);
    b1.fullAdder(i1[0], i1[1], i1[2], FaStyle::Nand9);
    EXPECT_EQ(b1.netlist().transistorCount(), 36u);

    NetlistBuilder b2;
    Bus i2 = b2.inputBus(3);
    b2.fullAdder(i2[0], i2[1], i2[2], FaStyle::Mirror);
    EXPECT_EQ(b2.netlist().transistorCount(), 28u);
}

} // namespace
} // namespace dtann
