/**
 * @file
 * Tests for ripple-carry adder netlists (both full-adder styles).
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"

namespace dtann {
namespace {

struct AdderCase
{
    int width;
    FaStyle style;
};

class AdderTest : public ::testing::TestWithParam<AdderCase>
{
};

TEST_P(AdderTest, ExhaustiveOrRandomizedCorrectness)
{
    auto [width, style] = GetParam();
    Netlist nl = buildRippleAdder(width, style, true);
    Evaluator ev(nl);
    uint64_t mask = (width == 64) ? ~0ull : ((1ull << width) - 1);

    auto check = [&](uint64_t a, uint64_t b) {
        ev.setInputRange(0, static_cast<size_t>(width), a);
        ev.setInputRange(static_cast<size_t>(width),
                         static_cast<size_t>(width), b);
        ev.evaluate();
        uint64_t sum = ev.outputRange(0, static_cast<size_t>(width));
        uint64_t cout = ev.outputRange(static_cast<size_t>(width), 1);
        uint64_t expect = a + b;
        EXPECT_EQ(sum, expect & mask) << "a=" << a << " b=" << b;
        EXPECT_EQ(cout, (expect >> width) & 1) << "a=" << a << " b=" << b;
    };

    if (width <= 5) {
        for (uint64_t a = 0; a <= mask; ++a)
            for (uint64_t b = 0; b <= mask; ++b)
                check(a, b);
    } else {
        Rng rng(42);
        for (int i = 0; i < 2000; ++i)
            check(rng.nextUint(mask + 1), rng.nextUint(mask + 1));
        check(mask, mask);
        check(0, 0);
        check(mask, 1);
    }
}

TEST_P(AdderTest, OneCellGroupPerBit)
{
    auto [width, style] = GetParam();
    Netlist nl = buildRippleAdder(width, style, true);
    EXPECT_EQ(nl.numGroups(), width);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, AdderTest,
    ::testing::Values(AdderCase{2, FaStyle::Nand9},
                      AdderCase{4, FaStyle::Nand9},
                      AdderCase{4, FaStyle::Mirror},
                      AdderCase{5, FaStyle::Mirror},
                      AdderCase{16, FaStyle::Nand9},
                      AdderCase{16, FaStyle::Mirror},
                      AdderCase{24, FaStyle::Nand9},
                      AdderCase{24, FaStyle::Mirror}),
    [](const auto &info) {
        return std::to_string(info.param.width) +
            (info.param.style == FaStyle::Nand9 ? "Nand9" : "Mirror");
    });

TEST(Adder, TransistorCountsByStyle)
{
    // 9 NAND2 = 36T per bit vs 28T for the mirror adder.
    Netlist nand9 = buildRippleAdder(8, FaStyle::Nand9, true);
    Netlist mirror = buildRippleAdder(8, FaStyle::Mirror, true);
    EXPECT_EQ(nand9.transistorCount(), 8u * 36u);
    EXPECT_EQ(mirror.transistorCount(), 8u * 28u);
    EXPECT_LT(mirror.transistorCount(), nand9.transistorCount());
}

TEST(Adder, NoCarryOutVariantHasFewerOutputs)
{
    Netlist with = buildRippleAdder(8, FaStyle::Nand9, true);
    Netlist without = buildRippleAdder(8, FaStyle::Nand9, false);
    EXPECT_EQ(with.outputs().size(), 9u);
    EXPECT_EQ(without.outputs().size(), 8u);
}

TEST(Adder, DepthGrowsLinearly)
{
    Netlist small = buildRippleAdder(4, FaStyle::Nand9, true);
    Netlist big = buildRippleAdder(16, FaStyle::Nand9, true);
    EXPECT_GT(big.depth(), small.depth());
}

TEST(Adder, TwosComplementWrapInterpretation)
{
    // The 16-bit adder implements Q6.10 hwAdd exactly (wrap).
    Netlist nl = buildRippleAdder(16, FaStyle::Nand9, false);
    Evaluator ev(nl);
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        int16_t a = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        int16_t b = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        ev.setInputRange(0, 16, static_cast<uint16_t>(a));
        ev.setInputRange(16, 16, static_cast<uint16_t>(b));
        ev.evaluate();
        Fix16 expect = Fix16::hwAdd(Fix16::fromRaw(a), Fix16::fromRaw(b));
        EXPECT_EQ(ev.outputRange(0, 16),
                  static_cast<uint64_t>(expect.bits()));
    }
}

} // namespace
} // namespace dtann
