/**
 * @file
 * Differential suite: the cone-pruned scalar path and the 64-lane
 * batched path of OperatorSim must be bit-identical to the full
 * scalar relaxation sweep, for random transistor-level injections
 * on every operator shape the accelerator simulates — including
 * the stateless-vs-stateful fallback decision and the oscillation
 * flag.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "ann/sigmoid.hh"
#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/clean_model.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"
#include "rtl/operator_sim.hh"
#include "rtl/sigmoid_unit.hh"

namespace dtann {
namespace {

/**
 * Run @p trials random injections on @p nl. Per trial: evaluate a
 * random input sequence on the plain scalar Evaluator (no clean
 * model, full sweep — the reference semantics), then assert the
 * OperatorSim batch path (applyLanes) and cone-pruned scalar path
 * (apply) produce bit-identical outputs and the same oscillation
 * flag, and that the batch fallback decision matches
 * FaultSet::isStateless().
 */
void
runDifferential(std::shared_ptr<const Netlist> nl, CleanFn clean,
                int input_bits, int trials, size_t vectors,
                uint64_t seed)
{
    Rng rng(seed);
    int batched_trials = 0;
    for (int trial = 0; trial < trials; ++trial) {
        int defects = 1 + static_cast<int>(rng.nextUint(4));
        Injection inj = injectTransistorDefects(*nl, defects, rng);
        const bool stateless = inj.faults.isStateless();

        std::vector<uint64_t> in(vectors);
        for (auto &v : in)
            v = rng.nextUint(1ull << input_bits);

        // Reference: full scalar sweep over every gate.
        Evaluator ref(*nl, inj.faults);
        std::vector<uint64_t> want(vectors);
        for (size_t i = 0; i < vectors; ++i)
            want[i] = ref.evaluateBits(in[i]);
        const bool ref_osc = ref.lastOscillated();

        // Batched path (falls back to ordered scalar applies for
        // stateful fault sets / feedback netlists).
        Injection inj_lanes{inj.faults, inj.records};
        OperatorSim lanes(nl, std::move(inj_lanes), clean);
        EXPECT_EQ(lanes.batched(),
                  stateless && !nl->hasFeedback() && clean != nullptr)
            << "trial " << trial;
        std::vector<uint64_t> got(vectors);
        lanes.applyLanes(in.data(), got.data(), vectors);
        for (size_t i = 0; i < vectors; ++i)
            EXPECT_EQ(got[i], want[i])
                << "lanes trial " << trial << " vector " << in[i];
        EXPECT_EQ(lanes.lastOscillated(), ref_osc) << "trial " << trial;

        // Cone-pruned scalar path, one apply() per vector.
        Injection inj_scalar{inj.faults, inj.records};
        OperatorSim scalar(nl, std::move(inj_scalar), clean);
        EXPECT_EQ(scalar.conePruned(),
                  clean != nullptr && !nl->hasFeedback())
            << "trial " << trial;
        for (size_t i = 0; i < vectors; ++i)
            EXPECT_EQ(scalar.apply(in[i]), want[i])
                << "scalar trial " << trial << " vector " << in[i];
        EXPECT_EQ(scalar.lastOscillated(), ref_osc) << "trial " << trial;

        batched_trials += lanes.batched() ? 1 : 0;
    }
    // Both sides of the fallback decision must actually be
    // exercised on feedback-free shapes: transistor-level
    // reconstruction yields a mix of state-free and MEM behaviours.
    if (clean && !nl->hasFeedback()) {
        EXPECT_GT(batched_trials, 0);
        EXPECT_LT(batched_trials, trials);
    } else {
        EXPECT_EQ(batched_trials, 0);
    }
}

TEST(OperatorSimDifferential, RippleAdder24)
{
    auto nl = std::make_shared<Netlist>(
        buildRippleAdder(24, FaStyle::Nand9, false));
    runDifferential(nl, cleanAdder(24, false), 48, 200, 24, 101);
}

TEST(OperatorSimDifferential, MultiplierSigned16)
{
    auto nl = std::make_shared<Netlist>(
        buildMultiplierSigned(16, FaStyle::Nand9));
    runDifferential(nl, cleanMultiplierSigned(16), 32, 200, 16, 202);
}

TEST(OperatorSimDifferential, SigmoidUnit)
{
    auto nl = std::make_shared<Netlist>(
        buildSigmoidUnit(logisticPwlTable(), FaStyle::Nand9));
    runDifferential(nl, cleanSigmoidUnit(logisticPwlTable()), 16, 200,
                    24, 303);
}

TEST(OperatorSimDifferential, LatchRegister16)
{
    // Feedback netlist: no clean model, no pruning, no batching —
    // applyLanes must fall back to ordered scalar applies so latch
    // state evolves exactly as the reference.
    auto nl =
        std::make_shared<Netlist>(buildLatchRegister(16));
    ASSERT_TRUE(nl->hasFeedback());
    runDifferential(nl, CleanFn{}, 17, 200, 24, 404);
}

TEST(OperatorSimDifferential, EnvKnobsForceSlowPaths)
{
    // DTANN_NO_BATCH / DTANN_NO_CONE are the equivalence-testing
    // escape hatches: they must force the fallback paths without
    // changing a single output bit.
    auto nl = std::make_shared<Netlist>(
        buildMultiplierUnsigned(8, FaStyle::Nand9));
    CleanFn clean = cleanMultiplierUnsigned(8);
    Rng rng(55);
    FaultSet faults;
    faults.stuckAt.push_back(
        {static_cast<uint32_t>(rng.nextUint(nl->numGates())), -1, true});
    ASSERT_TRUE(faults.isStateless());

    std::vector<uint64_t> in(96);
    for (auto &v : in)
        v = rng.nextUint(1ull << 16);
    std::vector<uint64_t> want(in.size());
    {
        OperatorSim fast(nl, Injection{faults, {}}, clean);
        ASSERT_TRUE(fast.batched());
        ASSERT_TRUE(fast.conePruned());
        fast.applyLanes(in.data(), want.data(), in.size());
    }

    setenv("DTANN_NO_BATCH", "1", 1);
    {
        OperatorSim sim(nl, Injection{faults, {}}, clean);
        EXPECT_FALSE(sim.batched());
        EXPECT_TRUE(sim.conePruned());
        std::vector<uint64_t> got(in.size());
        sim.applyLanes(in.data(), got.data(), in.size());
        EXPECT_EQ(got, want);
    }
    setenv("DTANN_NO_CONE", "1", 1);
    {
        OperatorSim sim(nl, Injection{faults, {}}, clean);
        EXPECT_FALSE(sim.batched());
        EXPECT_FALSE(sim.conePruned());
        std::vector<uint64_t> got(in.size());
        sim.applyLanes(in.data(), got.data(), in.size());
        EXPECT_EQ(got, want);
    }
    unsetenv("DTANN_NO_BATCH");
    {
        OperatorSim sim(nl, Injection{faults, {}}, clean);
        EXPECT_TRUE(sim.batched());
        EXPECT_FALSE(sim.conePruned());
        std::vector<uint64_t> got(in.size());
        sim.applyLanes(in.data(), got.data(), in.size());
        EXPECT_EQ(got, want);
    }
    unsetenv("DTANN_NO_CONE");
}

TEST(OperatorSimDifferential, BitIdenticalAcrossLaneWidths)
{
    // The DTANN_LANES knob must never change results: sweep every
    // supported plane width (and auto) against the 64-lane oracle
    // on the same stateless injection.
    auto nl = std::make_shared<Netlist>(
        buildMultiplierUnsigned(6, FaStyle::Nand9));
    CleanFn clean = cleanMultiplierUnsigned(6);
    Rng rng(77);
    Injection inj = injectTransistorDefects(*nl, 2, rng);
    while (!inj.faults.isStateless())
        inj = injectTransistorDefects(*nl, 2, rng);

    std::vector<uint64_t> in(300);
    for (auto &v : in)
        v = rng.nextUint(1ull << 12);

    auto runAt = [&](const char *lanes, size_t expect_width) {
        if (lanes)
            setenv("DTANN_LANES", lanes, 1);
        else
            unsetenv("DTANN_LANES");
        Injection copy{inj.faults, inj.records};
        OperatorSim sim(nl, std::move(copy), clean);
        EXPECT_TRUE(sim.batched());
        if (expect_width > 0)
            EXPECT_EQ(sim.laneCount(), expect_width);
        std::vector<uint64_t> out(in.size());
        sim.applyLanes(in.data(), out.data(), in.size());
        unsetenv("DTANN_LANES");
        return out;
    };
    auto oracle = runAt("64", 64);
    EXPECT_EQ(runAt("256", 256), oracle);
    EXPECT_EQ(runAt("512", 512), oracle);
    EXPECT_EQ(runAt(nullptr, 0), oracle); // auto width
}

TEST(OperatorSimDifferential, CountersAccountForEveryVector)
{
    auto nl = std::make_shared<Netlist>(
        buildMultiplierUnsigned(6, FaStyle::Nand9));
    CleanFn clean = cleanMultiplierUnsigned(6);
    FaultSet faults;
    faults.stuckAt.push_back({3, -1, false});

    OperatorSim sim(nl, Injection{faults, {}}, clean);
    ASSERT_TRUE(sim.batched());
    std::vector<uint64_t> in(130, 5), out(130);
    sim.applyLanes(in.data(), out.data(), in.size());
    uint64_t scalar_one = sim.apply(5);
    EXPECT_EQ(scalar_one, out[0]);

    SimCounters c = sim.counters();
    EXPECT_EQ(c.batchVectors, 130u);
    EXPECT_EQ(c.scalarVectors, 1u);
    EXPECT_EQ(c.vectors(), 131u);
    // Sweep accounting follows the configured lane width: 130
    // vectors need ceil(130 / width) kernel passes of width slots.
    size_t width = sim.laneCount();
    ASSERT_GT(width, 0u);
    uint64_t sweeps = (130 + width - 1) / width;
    EXPECT_EQ(c.batchSweeps, sweeps);
    EXPECT_EQ(c.batchLaneSlots, sweeps * width);
    EXPECT_GT(c.gateEvals, 0u);
    EXPECT_NEAR(c.laneOccupancy(),
                130.0 / static_cast<double>(sweeps * width), 1e-12);
    EXPECT_LT(c.scalarFallbackRate(), 0.01);
}

} // namespace
} // namespace dtann
