/**
 * @file
 * Tests for gate-level latch registers.
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/fault_inject.hh"
#include "rtl/latch.hh"

namespace dtann {
namespace {

/** Drive the register: write with EN high, then close EN. */
uint64_t
writeAndRead(Evaluator &ev, int width, uint64_t value)
{
    ev.setInputRange(0, static_cast<size_t>(width), value);
    ev.setInput(static_cast<size_t>(width), true);
    ev.evaluate();
    ev.setInput(static_cast<size_t>(width), false);
    ev.evaluate();
    return ev.outputRange(0, static_cast<size_t>(width));
}

TEST(LatchRegister, StoresPatterns)
{
    Netlist nl = buildLatchRegister(16);
    Evaluator ev(nl);
    for (uint64_t pattern : {0x0000ull, 0xffffull, 0xa5a5ull, 0x1234ull})
        EXPECT_EQ(writeAndRead(ev, 16, pattern), pattern);
}

TEST(LatchRegister, HoldsWhileDataChanges)
{
    Netlist nl = buildLatchRegister(8);
    Evaluator ev(nl);
    EXPECT_EQ(writeAndRead(ev, 8, 0x5a), 0x5au);
    // Change D with EN low: Q must not move.
    ev.setInputRange(0, 8, 0xff);
    ev.evaluate();
    EXPECT_EQ(ev.outputRange(0, 8), 0x5au);
    ev.setInputRange(0, 8, 0x00);
    ev.evaluate();
    EXPECT_EQ(ev.outputRange(0, 8), 0x5au);
}

TEST(LatchRegister, TransparentWhileEnabled)
{
    Netlist nl = buildLatchRegister(4);
    Evaluator ev(nl);
    ev.setInput(4, true);
    ev.setInputRange(0, 4, 0x3);
    ev.evaluate();
    EXPECT_EQ(ev.outputRange(0, 4), 0x3u);
    ev.setInputRange(0, 4, 0xc);
    ev.evaluate();
    EXPECT_EQ(ev.outputRange(0, 4), 0xcu);
}

TEST(LatchRegister, RewriteOverwrites)
{
    Netlist nl = buildLatchRegister(16);
    Evaluator ev(nl);
    EXPECT_EQ(writeAndRead(ev, 16, 0xffff), 0xffffu);
    EXPECT_EQ(writeAndRead(ev, 16, 0x0001), 0x0001u);
}

TEST(LatchRegister, HasFeedbackStructure)
{
    Netlist nl = buildLatchRegister(2);
    EXPECT_TRUE(nl.hasFeedback());
    EXPECT_EQ(nl.numGroups(), 2);
}

TEST(LatchRegister, StuckCellUnderDefect)
{
    // Inject transistor defects into a 16-bit register until the
    // stored value is corrupted for some pattern, demonstrating
    // that storage itself is a fault site. (Statistical: with 8
    // defects, corruption of some pattern is near-certain.)
    Rng rng(3);
    Netlist nl = buildLatchRegister(16);
    int corrupted = 0;
    for (int trial = 0; trial < 20; ++trial) {
        Injection inj = injectTransistorDefects(nl, 8, rng);
        Evaluator ev(nl, std::move(inj.faults));
        bool bad = false;
        for (uint64_t pattern : {0x0000ull, 0xffffull, 0xa5a5ull}) {
            ev.setInputRange(0, 16, pattern);
            ev.setInput(16, true);
            ev.evaluate();
            ev.setInput(16, false);
            ev.evaluate();
            if (ev.outputRange(0, 16) != pattern)
                bad = true;
        }
        corrupted += bad ? 1 : 0;
    }
    EXPECT_GT(corrupted, 5);
}

} // namespace
} // namespace dtann
