/**
 * @file
 * Tests for the carry-select adder architecture.
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"

namespace dtann {
namespace {

struct CsCase
{
    int width;
    int block;
    FaStyle style;
};

class CarrySelectTest : public ::testing::TestWithParam<CsCase>
{
};

TEST_P(CarrySelectTest, MatchesArithmetic)
{
    auto [width, block, style] = GetParam();
    Netlist nl = buildCarrySelectAdder(width, block, style, true);
    Evaluator ev(nl);
    uint64_t mask = (1ull << width) - 1;

    auto check = [&](uint64_t a, uint64_t b) {
        ev.setInputRange(0, static_cast<size_t>(width), a);
        ev.setInputRange(static_cast<size_t>(width),
                         static_cast<size_t>(width), b);
        ev.evaluate();
        EXPECT_EQ(ev.outputRange(0, static_cast<size_t>(width)),
                  (a + b) & mask)
            << "a=" << a << " b=" << b;
        EXPECT_EQ(ev.outputRange(static_cast<size_t>(width), 1),
                  ((a + b) >> width) & 1);
    };

    if (width <= 5) {
        for (uint64_t a = 0; a <= mask; ++a)
            for (uint64_t b = 0; b <= mask; ++b)
                check(a, b);
    } else {
        Rng rng(9);
        for (int i = 0; i < 1500; ++i)
            check(rng.nextUint(mask + 1), rng.nextUint(mask + 1));
        check(mask, mask);
        check(mask, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CarrySelectTest,
    ::testing::Values(CsCase{4, 2, FaStyle::Nand9},
                      CsCase{5, 2, FaStyle::Nand9},
                      CsCase{5, 3, FaStyle::Mirror},
                      CsCase{16, 4, FaStyle::Nand9},
                      CsCase{16, 5, FaStyle::Mirror},
                      CsCase{24, 4, FaStyle::Nand9},
                      CsCase{24, 6, FaStyle::Nand9}),
    [](const auto &info) {
        return "W" + std::to_string(info.param.width) + "B" +
            std::to_string(info.param.block) +
            (info.param.style == FaStyle::Nand9 ? "Nand9" : "Mirror");
    });

TEST(CarrySelect, ShorterCriticalPathThanRipple)
{
    Netlist ripple = buildRippleAdder(24, FaStyle::Nand9, true);
    Netlist select = buildCarrySelectAdder(24, 4, FaStyle::Nand9, true);
    EXPECT_LT(select.depth(), ripple.depth());
}

TEST(CarrySelect, CostsMoreTransistors)
{
    Netlist ripple = buildRippleAdder(24, FaStyle::Nand9, true);
    Netlist select = buildCarrySelectAdder(24, 4, FaStyle::Nand9, true);
    EXPECT_GT(select.transistorCount(), ripple.transistorCount());
    // Speculation roughly doubles the adder cells.
    EXPECT_LT(select.transistorCount(), 3 * ripple.transistorCount());
}

TEST(CarrySelect, SurvivesDefectInjection)
{
    // The defect machinery works on any operator netlist.
    Netlist nl = buildCarrySelectAdder(8, 4, FaStyle::Nand9, true);
    Rng rng(5);
    int deviating = 0;
    for (int t = 0; t < 20; ++t) {
        Injection inj = injectTransistorDefects(nl, 10, rng);
        Evaluator ev(nl, std::move(inj.faults));
        for (uint64_t a = 0; a < 256 && !deviating; a += 37)
            for (uint64_t b = 0; b < 256; b += 41)
                if (ev.evaluateBits(a | (b << 8)) !=
                    (((a + b) & 0xff) | (((a + b) >> 8) << 8))) {
                    ++deviating;
                    break;
                }
    }
    EXPECT_GT(deviating, 0);
}

} // namespace
} // namespace dtann
