/**
 * @file
 * Tests for random fault injection into operator netlists.
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"
#include "rtl/multiplier.hh"
#include "rtl/operator_sim.hh"

namespace dtann {
namespace {

TEST(FaultInject, TransistorInjectionCountsAndRecords)
{
    Netlist nl = buildRippleAdder(8, FaStyle::Nand9, true);
    Rng rng(1);
    Injection inj = injectTransistorDefects(nl, 5, rng);
    EXPECT_EQ(inj.records.size(), 5u);
    // Multiple defects can share a gate, so overrides <= 5.
    EXPECT_LE(inj.faults.overrides.size() + inj.faults.delayed.size(), 5u);
    EXPECT_FALSE(inj.faults.empty());
    for (const auto &r : inj.records) {
        EXPECT_LT(r.gate, nl.numGates());
        EXPECT_FALSE(r.what.empty());
    }
}

TEST(FaultInject, DeterministicForSameSeed)
{
    Netlist nl = buildRippleAdder(8, FaStyle::Nand9, true);
    Rng a(99), b(99);
    Injection ia = injectTransistorDefects(nl, 10, a);
    Injection ib = injectTransistorDefects(nl, 10, b);
    ASSERT_EQ(ia.records.size(), ib.records.size());
    for (size_t i = 0; i < ia.records.size(); ++i) {
        EXPECT_EQ(ia.records[i].gate, ib.records[i].gate);
        EXPECT_EQ(ia.records[i].what, ib.records[i].what);
    }
}

TEST(FaultInject, GateLevelFaultsAreStuckAts)
{
    Netlist nl = buildMultiplierUnsigned(4, FaStyle::Nand9);
    Rng rng(5);
    Injection inj = injectGateLevelFaults(nl, 7, rng);
    EXPECT_EQ(inj.faults.stuckAt.size(), 7u);
    EXPECT_TRUE(inj.faults.overrides.empty());
    for (const auto &f : inj.faults.stuckAt) {
        EXPECT_LT(f.gate, nl.numGates());
        EXPECT_GE(f.input, -1);
        EXPECT_LT(f.input, nl.gate(f.gate).arity());
    }
}

TEST(FaultInject, ManyDefectsUsuallyChangeAdderBehaviour)
{
    // With 20 transistor defects in a 4-bit adder, the output
    // should deviate from the clean sum for most injections.
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);
    Rng rng(11);
    int deviating = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
        Injection inj = injectTransistorDefects(nl, 20, rng);
        Evaluator ev(nl, std::move(inj.faults));
        bool differs = false;
        for (uint64_t a = 0; a < 16 && !differs; ++a) {
            for (uint64_t b = 0; b < 16 && !differs; ++b) {
                ev.setInputRange(0, 4, a);
                ev.setInputRange(4, 4, b);
                ev.evaluate();
                if (ev.outputRange(0, 5) != a + b)
                    differs = true;
            }
        }
        deviating += differs ? 1 : 0;
    }
    EXPECT_GT(deviating, trials * 2 / 3);
}

TEST(FaultInject, SingleDefectOftenBenignOnLargeOperator)
{
    // Paper Fig 5: one defect barely affects a 4-bit adder's value
    // distribution; many single defects are completely masked or
    // rarely excited.
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);
    Rng rng(23);
    int identical = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        Injection inj = injectTransistorDefects(nl, 1, rng);
        Evaluator ev(nl, std::move(inj.faults));
        int mismatches = 0;
        for (uint64_t a = 0; a < 16; ++a) {
            for (uint64_t b = 0; b < 16; ++b) {
                ev.setInputRange(0, 4, a);
                ev.setInputRange(4, 4, b);
                ev.evaluate();
                if (ev.outputRange(0, 5) != a + b)
                    ++mismatches;
            }
        }
        if (mismatches == 0)
            ++identical;
    }
    // Some single defects are invisible, but not all.
    EXPECT_GT(identical, 0);
    EXPECT_LT(identical, trials);
}

TEST(OperatorSim, WrapsEvaluatorWithSharedNetlist)
{
    auto nl = std::make_shared<Netlist>(
        buildRippleAdder(8, FaStyle::Nand9, false));
    Rng rng(2);
    Injection inj = injectTransistorDefects(*nl, 0, rng);
    // Zero defects: must match the clean adder.
    OperatorSim sim(nl, std::move(inj));
    for (uint64_t a : {0ull, 17ull, 255ull})
        for (uint64_t b : {0ull, 5ull, 250ull})
            EXPECT_EQ(sim.apply(a | (b << 8)), (a + b) & 0xff);
    EXPECT_TRUE(sim.faultRecords().empty());
}

TEST(OperatorSim, ResetClearsMemoryState)
{
    auto nl = std::make_shared<Netlist>(
        buildRippleAdder(4, FaStyle::Nand9, true));
    // Find an injection that produces MEM behaviour by scanning
    // seeds; opens commonly do.
    for (uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng(seed);
        Injection inj = injectTransistorDefects(*nl, 3, rng);
        bool has_mem = false;
        for (const auto &[g, fn] : inj.faults.overrides)
            has_mem |= fn.hasMem();
        if (!has_mem)
            continue;
        OperatorSim sim(nl, std::move(inj));
        uint64_t first = sim.apply(0x00);
        sim.apply(0xff);
        sim.reset();
        EXPECT_EQ(sim.apply(0x00), first);
        return;
    }
    FAIL() << "no MEM-producing injection found in 50 seeds";
}

} // namespace
} // namespace dtann
