/**
 * @file
 * Tests for the weight-write decoder (key logic).
 */

#include <gtest/gtest.h>

#include "ann/trainer.hh"
#include "core/keylogic.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(WriteDecoder, CleanDecoderIsOneHot)
{
    WriteDecoder dec(7);
    EXPECT_EQ(dec.lines(), 7);
    EXPECT_EQ(dec.addressBits(), 3);
    for (int addr = 0; addr < 7; ++addr) {
        auto lines = dec.select(addr);
        for (int l = 0; l < 7; ++l)
            EXPECT_EQ(lines[static_cast<size_t>(l)], l == addr)
                << "addr " << addr << " line " << l;
    }
}

TEST(WriteDecoder, NetlistShapeSanity)
{
    Netlist nl = buildWriteDecoder(20);
    EXPECT_EQ(nl.inputs().size(), 6u);  // 5 address bits + enable
    EXPECT_EQ(nl.outputs().size(), 20u);
    EXPECT_GT(nl.transistorCount(), 100u);
    EXPECT_LT(nl.transistorCount(), 3000u); // it IS small key logic
}

TEST(WriteDecoder, DefectsCanMisroute)
{
    // Over many random single defects, at least one decoder
    // misbehaves for some address (wrong line, extra line, or no
    // line).
    int misbehaving = 0;
    for (uint64_t seed = 0; seed < 30; ++seed) {
        WriteDecoder dec(7);
        Rng rng(seed);
        dec.inject(1, rng);
        bool bad = false;
        for (int addr = 0; addr < 7 && !bad; ++addr) {
            auto lines = dec.select(addr);
            for (int l = 0; l < 7; ++l)
                if (lines[static_cast<size_t>(l)] != (l == addr))
                    bad = true;
        }
        misbehaving += bad ? 1 : 0;
    }
    EXPECT_GT(misbehaving, 5);
    EXPECT_LT(misbehaving, 30) << "some defects should be masked";
}

TEST(WriteDecoder, CleanDecodedWritesEqualDirectWrites)
{
    MlpTopology logical{12, 4, 3};
    Accelerator via_decoder(smallArray(), logical);
    Accelerator direct(smallArray(), logical);
    MlpWeights w(logical);
    Rng rng(3);
    w.initRandom(rng, 1.5);

    WriteDecoder dec(smallArray().hidden + smallArray().outputs);
    writeWeightsThroughDecoder(via_decoder, w, dec);
    direct.setWeights(w);

    for (int t = 0; t < 25; ++t) {
        std::vector<double> in(12);
        for (double &v : in)
            v = rng.nextDouble();
        EXPECT_EQ(via_decoder.forward(in).output(),
                  direct.forward(in).output());
    }
}

TEST(WriteDecoder, FaultyDecoderCorruptsNetworkFunction)
{
    // Find a decoder defect that misroutes, then show the written
    // network computes something else.
    MlpTopology logical{12, 4, 3};
    MlpWeights w(logical);
    Rng wrng(5);
    w.initRandom(wrng, 1.5);

    for (uint64_t seed = 0; seed < 60; ++seed) {
        WriteDecoder dec(7);
        Rng rng(seed);
        dec.inject(2, rng);
        bool misroutes = false;
        for (int addr = 0; addr < 7 && !misroutes; ++addr) {
            auto lines = dec.select(addr);
            for (int l = 0; l < 7; ++l)
                if (lines[static_cast<size_t>(l)] != (l == addr))
                    misroutes = true;
        }
        if (!misroutes)
            continue;

        Accelerator corrupted(smallArray(), logical);
        Accelerator direct(smallArray(), logical);
        // Recreate to reset decoder state, then write.
        WriteDecoder dec2(7);
        Rng rng2(seed);
        dec2.inject(2, rng2);
        writeWeightsThroughDecoder(corrupted, w, dec2);
        direct.setWeights(w);

        Rng in_rng(7);
        for (int t = 0; t < 50; ++t) {
            std::vector<double> in(12);
            for (double &v : in)
                v = in_rng.nextDouble();
            if (corrupted.forward(in).output() !=
                direct.forward(in).output())
                return; // corruption observed: the paper's point
        }
    }
    FAIL() << "no misrouting decoder defect found in 60 seeds";
}

} // namespace
} // namespace dtann
